// Perf-trajectory benchmarks: the three benchmarks scripts/bench.sh
// records into BENCH_PR*.json so successive PRs can compare ns/op and
// allocs/op on the per-frame / per-step hot paths — triangle
// rasterization, a 16-rank composite, and a full transport round trip
// over a loopback pipe. All three report allocations; the steady-state
// targets are asserted exactly by the AllocsPerRun tests next to each
// package.
package eth_test

import (
	"net"
	"testing"

	"github.com/ascr-ecx/eth/internal/blast"
	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/compositing"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/domain"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/geom"
	"github.com/ascr-ecx/eth/internal/raster"
	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
)

// benchTriangles projects the blast isosurface into screen space once so
// the benchmark times rasterization only.
func benchTriangles(b *testing.B) []raster.Triangle {
	b.Helper()
	mesh, err := geom.Isosurface(benchGrid, "temperature", 0.45)
	if err != nil {
		b.Fatal(err)
	}
	cam := camera.ForBounds(benchGrid.Bounds())
	tris := make([]raster.Triangle, 0, mesh.TriangleCount())
	for ti := 0; ti < mesh.TriangleCount(); ti++ {
		var out raster.Triangle
		visible := true
		for c := 0; c < 3; c++ {
			p := mesh.Verts[mesh.Tris[ti][c]]
			x, y, depth, ok := cam.Project(p, benchImage, benchImage)
			if !ok {
				visible = false
				break
			}
			out.V[c] = raster.Vertex{X: x, Y: y, Depth: depth, Color: vec.New(1, 0.5, 0.2)}
		}
		if visible {
			tris = append(tris, out)
		}
	}
	return tris
}

// BenchmarkTriangles times a steady-state triangle re-render into an
// existing frame: the per-image cost of the VTK-style geometry pipeline
// after extraction.
func BenchmarkTriangles(b *testing.B) {
	tris := benchTriangles(b)
	frame := fb.New(benchImage, benchImage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.Clear(vec.V3{})
		raster.DrawTriangles(frame, tris, 0)
	}
}

// BenchmarkComposite16 times a 16-rank depth composite of real partial
// renders, for both schedules.
func BenchmarkComposite16(b *testing.B) {
	dec, err := domain.Decompose(benchCloud, 16)
	if err != nil {
		b.Fatal(err)
	}
	cam := camera.ForBounds(benchCloud.Bounds())
	frames := make([]*fb.Frame, dec.Ranks())
	for i, piece := range dec.Pieces {
		r, err := render.New("points")
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = fb.New(benchImage, benchImage)
		if _, err := r.Render(frames[i], piece, &cam, render.Options{ColorField: "speed"}); err != nil {
			b.Fatal(err)
		}
	}
	for _, alg := range []compositing.Algorithm{compositing.DirectSend, compositing.BinarySwap} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := compositing.Composite(frames, alg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportRoundTrip times one full in-situ interface exchange —
// SendDataset, peer Recv, ack — over an in-memory pipe, so the numbers
// isolate serialization and framing from TCP.
func BenchmarkTransportRoundTrip(b *testing.B) {
	step := benchCloud.Slice(0, 50_000)
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "flate"
		}
		b.Run(name, func(b *testing.B) {
			cl, sr := net.Pipe()
			send, recv := transport.NewConn(cl), transport.NewConn(sr)
			defer send.Close()
			defer recv.Close()
			send.SetCompression(compress)
			recv.SetDatasetReuse(true)
			errc := make(chan error, 1)
			go func() {
				for {
					typ, ds, _, err := recv.Recv()
					if err != nil {
						errc <- err
						return
					}
					if typ == transport.MsgDone {
						errc <- nil
						return
					}
					if ds == nil || ds.Count() == 0 {
						errc <- err
						return
					}
					if err := recv.SendAck(0); err != nil {
						errc <- err
						return
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := send.SendDataset(step); err != nil {
					b.Fatal(err)
				}
				if _, _, _, err := send.Recv(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := send.SendDone(); err != nil {
				b.Fatal(err)
			}
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// cosmoDriftSteps builds k temporally coherent particle steps with an
// active region: one contiguous ~10% slab of the bench cloud advances
// along its velocities each step while the rest of the cloud — and the
// IDs, velocities, and speed field — stay byte-identical. That is the
// shape a structure-formation step actually hands the in-situ interface:
// a collapsing cluster moves, the quiescent background does not. The
// temporal codecs' residual is therefore mostly zero with one dense
// stripe per position array. (cosmo.Generate itself reseeds per step, so
// successive Generate calls are byte-decorrelated and useless for
// measuring temporal coding.)
func cosmoDriftSteps(k int) []data.Dataset {
	base := benchCloud.Slice(0, 50_000)
	n := base.Count()
	lo, hi := n/2, n/2+n/10
	const dt = 0.01
	steps := make([]data.Dataset, k)
	for j := 0; j < k; j++ {
		c := data.NewPointCloud(n)
		copy(c.IDs, base.IDs)
		copy(c.X, base.X)
		copy(c.Y, base.Y)
		copy(c.Z, base.Z)
		copy(c.VX, base.VX)
		copy(c.VY, base.VY)
		copy(c.VZ, base.VZ)
		for i := lo; i < hi; i++ {
			c.X[i] = base.X[i] + float32(j)*dt*base.VX[i]
			c.Y[i] = base.Y[i] + float32(j)*dt*base.VY[i]
			c.Z[i] = base.Z[i] + float32(j)*dt*base.VZ[i]
		}
		c.SpeedField()
		steps[j] = c
	}
	return steps
}

// blastSteps builds k successive epochs of the blast volume: the front
// advances but the ambient field and turbulence are step-independent, so
// most cells are byte-identical between steps.
func blastSteps(b *testing.B, k int) []data.Dataset {
	b.Helper()
	p := blast.SmallParams()
	steps := make([]data.Dataset, k)
	for j := 0; j < k; j++ {
		p.TimeStep = j
		g, err := blast.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		steps[j] = g
	}
	return steps
}

// BenchmarkTransportCodecSweep measures every wire codec against both
// coherent workloads — a drifting HACC-style particle cloud and the
// advancing XRAGE-style blast volume. Each iteration is a full send +
// recv + ack round trip cycling through the step ring, so temporal
// codecs run in steady delta mode after the warm-up keyframe. The extra
// wire-B/op metric is the per-step payload actually crossing the wire,
// which scripts/bench.sh records alongside ns/op and allocs/op.
func BenchmarkTransportCodecSweep(b *testing.B) {
	workloads := []struct {
		name  string
		steps []data.Dataset
	}{
		{"cosmo", cosmoDriftSteps(4)},
		{"blast", blastSteps(b, 4)},
	}
	for _, wl := range workloads {
		for _, name := range transport.Codecs() {
			codec, err := transport.ParseCodec(name)
			if err != nil {
				b.Fatal(err)
			}
			wl, codec := wl, codec
			b.Run(wl.name+"/"+name, func(b *testing.B) {
				cl, sr := net.Pipe()
				send, recv := transport.NewConn(cl), transport.NewConn(sr)
				defer send.Close()
				defer recv.Close()
				send.SetCodec(codec)
				recv.SetDatasetReuse(true)
				errc := make(chan error, 1)
				go func() {
					for {
						typ, ds, _, err := recv.Recv()
						if err != nil {
							errc <- err
							return
						}
						if typ == transport.MsgDone {
							errc <- nil
							return
						}
						if ds == nil || ds.Count() == 0 {
							errc <- err
							return
						}
						if err := recv.SendAck(0); err != nil {
							errc <- err
							return
						}
					}
				}()
				roundTrip := func(i int) {
					if err := send.SendDataset(wl.steps[i%len(wl.steps)]); err != nil {
						b.Fatal(err)
					}
					if _, _, _, err := send.Recv(); err != nil {
						b.Fatal(err)
					}
				}
				// Warm one full ring: the keyframe and buffer growth happen
				// here, so the timed region is the steady state.
				for i := 0; i < len(wl.steps); i++ {
					roundTrip(i)
				}
				wireBefore := send.BytesSent
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					roundTrip(i)
				}
				b.StopTimer()
				b.ReportMetric(float64(send.BytesSent-wireBefore)/float64(b.N), "wire-B/op")
				if err := send.SendDone(); err != nil {
					b.Fatal(err)
				}
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
