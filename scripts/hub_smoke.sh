#!/bin/sh
# End-to-end smoke for the multi-viewer broadcast hub: boot a real
# sim+viz pair with -serve, attach three ethwatch viewers over real
# sockets, steer the run from one of them, kill -9 another mid-stream
# and resume it from its cursor checkpoint, then audit the journal with
# ethinfo. No curl, no jq — every probe is one of our own binaries.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/ethgen" ./cmd/ethgen
go build -o "$tmp/ethsim" ./cmd/ethsim
go build -o "$tmp/ethviz" ./cmd/ethviz
go build -o "$tmp/ethwatch" ./cmd/ethwatch
go build -o "$tmp/ethinfo" ./cmd/ethinfo

steps=24
echo "== generate $steps hacc steps"
"$tmp/ethgen" -workload hacc -particles 20000 -steps "$steps" -out "$tmp/data" >/dev/null

# The viz proxy opens the hub before it dials the simulation, so viewers
# can attach while the rendezvous is still pending — no startup race.
echo "== boot ethviz -serve"
"$tmp/ethviz" -layout "$tmp/eth.layout" -width 192 -height 192 -images 2 \
    -serve 127.0.0.1:0 -queue 64 -history 64 \
    -trace "$tmp/viz.jsonl" >"$tmp/viz.log" 2>&1 &
vizpid=$!; pids="$pids $vizpid"

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's|^hub: serving \([0-9.:]*\) .*|\1|p' "$tmp/viz.log")"
    [ -n "$addr" ] && break
    if ! kill -0 "$vizpid" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "hub endpoint never came up:"; cat "$tmp/viz.log"; exit 1
fi
echo "   hub at $addr"

echo "== attach 3 viewers (one steering), then boot ethsim"
"$tmp/ethwatch" -addr "$addr" -name watcher-a -from 0 -idle 10s \
    >"$tmp/a.log" 2>&1 &
apid=$!; pids="$pids $apid"
"$tmp/ethwatch" -addr "$addr" -name watcher-b -from 0 -idle 10s \
    -cursor "$tmp/b.ckpt" >"$tmp/b1.log" 2>&1 &
bpid=$!; pids="$pids $bpid"
"$tmp/ethwatch" -addr "$addr" -name steerer -set ratio=0.5 -once -idle 10s \
    >"$tmp/c.log" 2>&1 &
cpid=$!; pids="$pids $cpid"

"$tmp/ethsim" -data "$tmp/data/hacc_step*.ethd" -layout "$tmp/eth.layout" \
    >"$tmp/sim.log" 2>&1 &
simpid=$!; pids="$pids $simpid"

# Kill watcher-b with SIGKILL once it has streamed a couple of frames:
# the cursor checkpoint it rewrites after every frame is all a resumed
# viewer needs.
i=0
while [ "$(grep -c '^step ' "$tmp/b1.log" || true)" -lt 2 ]; do
    i=$((i + 1))
    if [ $i -gt 200 ]; then echo "watcher-b never streamed:"; cat "$tmp/b1.log"; exit 1; fi
    sleep 0.05
done
kill -9 "$bpid" 2>/dev/null || true
wait "$bpid" 2>/dev/null || true
echo "== killed watcher-b mid-stream; resuming from its cursor"
"$tmp/ethwatch" -addr "$addr" -name watcher-b -cursor "$tmp/b.ckpt" -idle 10s \
    >"$tmp/b2.log" 2>&1 &
b2pid=$!; pids="$pids $b2pid"

wait "$apid" "$cpid" "$b2pid" "$simpid" "$vizpid"
pids=""

echo "== validate delivery"
grep -q '^resuming at step ' "$tmp/b2.log" || {
    echo "resumed viewer ignored its cursor:"; cat "$tmp/b2.log"; exit 1; }
got_a="$(grep -c '^step ' "$tmp/a.log")"
if [ "$got_a" -ne "$steps" ]; then
    echo "watcher-a saw $got_a/$steps frames:"; cat "$tmp/a.log"; exit 1
fi
# The killed viewer plus its resumed incarnation must cover every step
# exactly once apart from the at-most-one step replayed across the kill.
covered="$(cat "$tmp/b1.log" "$tmp/b2.log" | sed -n 's/^step \([0-9]*\):.*/\1/p' | sort -un | wc -l)"
if [ "$covered" -ne "$steps" ]; then
    echo "kill+resume covered $covered/$steps steps:"
    cat "$tmp/b1.log" "$tmp/b2.log"; exit 1
fi
grep -q '^steered: ' "$tmp/c.log" || { echo "steerer never steered:"; cat "$tmp/c.log"; exit 1; }

echo "== audit journal"
"$tmp/ethinfo" -journal "$tmp/viz.jsonl" > "$tmp/audit.txt"
grep -q ' forward seq=' "$tmp/audit.txt" || {
    echo "steering was never forwarded to the simulation:"; cat "$tmp/audit.txt"; exit 1; }
joins="$("$tmp/ethinfo" -journal -json "$tmp/viz.jsonl" | sed -n 's/.*"joins": \([0-9]*\).*/\1/p')"
if [ "${joins:-0}" -ne 4 ]; then
    echo "audit counted $joins joins, want 4:"; cat "$tmp/audit.txt"; exit 1
fi

echo "ok"
