#!/usr/bin/env sh
# Run the perf-trajectory benchmarks and emit a machine-readable record.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Runs the root-package benchmarks (BenchmarkTriangles, BenchmarkComposite16,
# BenchmarkTransportRoundTrip, BenchmarkTransportCodecSweep, ...) with
# -benchmem and converts the standard `go test -bench` output into JSON.
# Benchmarks that report a custom wire-B/op metric (the codec sweep's
# per-step wire payload) gain a "wire_bytes_per_op" field:
#
#   {
#     "goos": "linux", "goarch": "amd64", "cpu": "...",
#     "benchmarks": [
#       {"name": "BenchmarkTriangles", "iterations": N,
#        "ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...},
#       ...
#     ]
#   }
#
# Successive PRs snapshot this as BENCH_PR<n>.json so the allocation gate
# has a committed before/after trail (see the Performance section in
# README.md). The script uses only the Go toolchain and awk.
set -eu

out="${1:-bench.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench=. -benchmem -benchtime=1s -count=1 -run='^$' . | tee "$raw" >&2

awk '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; wire = ""
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "wire-B/op") wire = $(i - 1)
    }
    if (ns == "") next
    n++
    names[n] = name; its[n] = iters; nss[n] = ns; bs[n] = bytes; as[n] = allocs; ws[n] = wire
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        if (ws[i] != "") printf ", \"wire_bytes_per_op\": %s", ws[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out" >&2
