#!/bin/sh
# Repo-wide check: vet, build, and race-enabled tests. Run from anywhere.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "ok"
