#!/bin/sh
# Repo-wide check: vet, build, ethlint, race-enabled tests, and a short
# fuzz pass over the dataset container reader. Run from anywhere.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== ethlint ./..."
go run ./cmd/ethlint ./...

echo "== go test -race ./..."
go test -race ./...

# Supervision chaos: run the process-level suite (subprocess SIGKILL,
# watchdog teardown, panic restart) by name so a rename that silently
# drops a chaos test from the default run fails loudly here.
echo "== go test -race -run 'TestProc|TestSupervised' ./internal/supervise ./internal/coupling"
go test -race -run 'TestProc|TestSupervised' ./internal/supervise/ ./internal/coupling/

echo "== go test -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio"
go test -run='^$' -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio/

echo "== go test -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport"
go test -run='^$' -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport/

# Benchmark smoke: one iteration of every benchmark with -benchmem, so a
# benchmark that panics or regresses into a compile error fails the gate
# (allocation budgets themselves are asserted by the AllocsPerRun tests).
echo "== go test -bench=. -benchtime=1x -benchmem -run='^\$' ."
go test -bench=. -benchtime=1x -benchmem -run='^$' .

echo "ok"
