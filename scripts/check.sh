#!/bin/sh
# Repo-wide check: vet, build, ethlint, race-enabled tests, and a short
# fuzz pass over the dataset container reader. Run from anywhere.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# The -max-ignores bound is the suppression-debt gate: fixing a finding
# is free, suppressing one spends budget. Raising the bound is a
# deliberate, reviewed act. -stale-ignores fails on directives that no
# longer suppress anything. (19: re-audited for the fleet scheduler —
# two stale directives removed, one new justified nakedgo in
# internal/ingest whose flush-loop lifecycle is owned by Close.)
echo "== ethlint -max-ignores 19 -stale-ignores ./..."
go run ./cmd/ethlint -max-ignores 19 -stale-ignores ./...

echo "== go test -race ./..."
go test -race ./...

# The steady-state allocation gates and the pool-identity leak tests
# skip themselves under -race (the race runtime allocates, and its
# sync.Pool randomly drops Put items), so run them again without it — a
# hot-path allocation regression or an error-path pool leak must fail
# CI, not hide behind the race build.
echo "== go test -run 'Allocs|Releases' ./internal/transport ./internal/raster ./internal/compositing ./internal/hub"
go test -run 'Allocs|Releases' ./internal/transport/ ./internal/raster/ ./internal/compositing/ ./internal/hub/

# Supervision chaos: run the process-level suite (subprocess SIGKILL,
# watchdog teardown, panic restart) by name so a rename that silently
# drops a chaos test from the default run fails loudly here.
echo "== go test -race -run 'TestProc|TestSupervised' ./internal/supervise ./internal/coupling"
go test -race -run 'TestProc|TestSupervised' ./internal/supervise/ ./internal/coupling/

# Codec chaos: the temporal-codec recovery scenarios (corrupt delta
# frames, keyframe resync after reconnect/restart, cross-codec
# bit-exactness) by name, for the same reason.
echo "== go test -race -run 'TestChaosCodec|TestChaos.*Delta|TestProcSIGKILLDeltaResync' ./internal/coupling ./internal/supervise"
go test -race -run 'TestChaosCodec|TestChaos.*Delta|TestProcSIGKILLDeltaResync' ./internal/coupling/ ./internal/supervise/

# Hub chaos: the multi-viewer broadcast scenarios (slow subscriber
# never perturbs the publish cadence, kill+cursor-resume is
# byte-identical with a keyframe downgrade, steering replays
# deterministically) by name, race-enabled, for the same reason.
echo "== go test -race -run 'TestHubChaos' ./internal/hub"
go test -race -run 'TestHubChaos' ./internal/hub/

# Live telemetry plane: boot a real run with -obs and validate the
# exposition end to end with ethtop -once (which fails unless /metrics
# parses as Prometheus text and /healthz answers) — no curl, no jq.
echo "== ethrun -obs + ethtop -once"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -z "${runpid:-}" ] || kill "$runpid" 2>/dev/null || true' EXIT
go build -o "$tmp/ethrun" ./cmd/ethrun
go build -o "$tmp/ethtop" ./cmd/ethtop
"$tmp/ethrun" -workload hacc -particles 20000 -steps 10 -images 2 \
    -width 128 -height 128 -obs 127.0.0.1:0 >"$tmp/obs.log" 2>&1 &
runpid=$!
url=""
i=0
while [ $i -lt 100 ]; do
    url="$(sed -n 's|^obs: serving \(http://[^/]*\)/metrics$|\1|p' "$tmp/obs.log")"
    [ -n "$url" ] && break
    if ! kill -0 "$runpid" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "obs endpoint never came up:"; cat "$tmp/obs.log"; exit 1
fi
"$tmp/ethtop" -once "$url"
wait "$runpid"
runpid=""

echo "== go test -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio"
go test -run='^$' -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio/

echo "== go test -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport"
go test -run='^$' -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport/

echo "== go test -fuzz=FuzzDeltaRoundTrip -fuzztime=10s ./internal/transport"
go test -run='^$' -fuzz=FuzzDeltaRoundTrip -fuzztime=10s ./internal/transport/

echo "== go test -fuzz=FuzzSteeringMessage -fuzztime=10s ./internal/hub"
go test -run='^$' -fuzz=FuzzSteeringMessage -fuzztime=10s ./internal/hub/

# Multi-viewer broadcast smoke: real sim+viz+hub processes, three
# ethwatch viewers over real sockets, one steered, one SIGKILLed and
# resumed from its cursor, then a journal audit via ethinfo.
echo "== scripts/hub_smoke.sh"
./scripts/hub_smoke.sh

# Fleet chaos: run the scheduler suites (worker SIGKILL mid-write,
# scheduler SIGKILL + resume, torn-tail ingestion) by name, race-enabled,
# so a rename that drops one from the default run fails loudly here.
echo "== go test -race -run 'TestFleet|TestCollector|TestBatcher' ./internal/fleet ./internal/ingest"
go test -race -run 'TestFleet|TestCollector|TestBatcher' ./internal/fleet/ ./internal/ingest/

# Fleet smoke: real ethserve + ethbench worker subprocesses, one worker
# SIGKILLed mid-attempt, the scheduler SIGKILLed mid-sweep and resumed,
# then an ethinfo conservation-law audit of the merged journal.
echo "== scripts/fleet_smoke.sh"
./scripts/fleet_smoke.sh

# Benchmark smoke: one iteration of every benchmark with -benchmem, so a
# benchmark that panics or regresses into a compile error fails the gate
# (allocation budgets themselves are asserted by the AllocsPerRun tests).
echo "== go test -bench=. -benchtime=1x -benchmem -run='^\$' ."
go test -bench=. -benchtime=1x -benchmem -run='^$' .

echo "ok"
