#!/bin/sh
# End-to-end smoke for the experiment fleet scheduler: submit a sweep of
# real ethbench experiments (plus slow exec pads that keep the queue
# busy) to ethserve with 3 workers, SIGKILL one worker mid-attempt,
# SIGKILL the scheduler itself mid-sweep, resume with `ethserve -resume`,
# and audit the merged journal with ethinfo — every spec must complete
# and the conservation law (completed + quarantined == submitted) must
# balance. No curl, no jq — every probe is one of our own binaries.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/ethserve" ./cmd/ethserve
go build -o "$tmp/ethbench" ./cmd/ethbench
go build -o "$tmp/ethinfo" ./cmd/ethinfo

# Pads are leased first (FIFO) and sleep long enough to give both kills
# a window; the bench specs are real single-experiment worker runs.
cat > "$tmp/sweep.json" <<EOF
[
  {"id": "pad-1", "kind": "exec", "args": ["/bin/sh", "-c", "sleep 1.2; : fleet_smoke_pad_1"]},
  {"id": "pad-2", "kind": "exec", "args": ["/bin/sh", "-c", "sleep 1.2; : fleet_smoke_pad_2"]},
  {"id": "pad-3", "kind": "exec", "args": ["/bin/sh", "-c", "sleep 1.2; : fleet_smoke_pad_3"]},
  {"id": "pad-4", "kind": "exec", "args": ["/bin/sh", "-c", "sleep 1.2; : fleet_smoke_pad_4"]},
  {"id": "table1", "kind": "bench"},
  {"id": "fig8",  "kind": "bench"},
  {"id": "fig9",  "kind": "bench"},
  {"id": "fig10", "kind": "bench"},
  {"id": "fig11", "kind": "bench"},
  {"id": "fig12", "kind": "bench"},
  {"id": "fig13", "kind": "bench"},
  {"id": "fig14", "kind": "bench"},
  {"id": "fig15", "kind": "bench"},
  {"id": "pad-5", "kind": "exec", "args": ["/bin/sh", "-c", "sleep 1.2; : fleet_smoke_pad_5"]}
]
EOF
total=14

echo "== start fleet (3 workers)"
"$tmp/ethserve" -dir "$tmp/fleet" -sweep "$tmp/sweep.json" -workers 3 \
    -retries 3 -stall 0 -bench-bin "$tmp/ethbench" \
    >"$tmp/serve1.log" 2>&1 &
servepid=$!; pids="$pids $servepid"

echo "== SIGKILL one worker mid-attempt"
i=0
padpid=""
while [ $i -lt 200 ]; do
    padpid="$(pgrep -f fleet_smoke_pad_1 || true)"
    [ -n "$padpid" ] && break
    if ! kill -0 "$servepid" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 0.05
done
if [ -n "$padpid" ]; then
    kill -9 $padpid 2>/dev/null || true
    echo "   killed pad-1 worker (pid $padpid); the retry ladder takes it from here"
else
    echo "   pad-1 already finished; worker-kill window missed" ; exit 1
fi

# Kill the scheduler once the checkpoint records progress but the sweep
# is still running — the classic mid-sweep crash.
echo "== SIGKILL the scheduler mid-sweep"
i=0
while [ $i -lt 400 ]; do
    if grep -q '"done":\["' "$tmp/fleet/fleet.ckpt" 2>/dev/null; then break; fi
    if ! kill -0 "$servepid" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 0.05
done
if ! kill -0 "$servepid" 2>/dev/null; then
    echo "scheduler finished before the kill window:"; cat "$tmp/serve1.log"; exit 1
fi
kill -9 "$servepid" 2>/dev/null || true
wait "$servepid" 2>/dev/null || true
pids=""
echo "   scheduler killed; checkpoint survives"

# Orphaned workers from the killed scheduler may still be running; the
# resumed fleet's retry ladder absorbs their journal locks.
echo "== resume the fleet"
if ! "$tmp/ethserve" -dir "$tmp/fleet" -resume -workers 3 \
    -retries 3 -stall 0 -bench-bin "$tmp/ethbench" \
    >"$tmp/serve2.log" 2>&1; then
    echo "resumed fleet failed:"; cat "$tmp/serve2.log"; exit 1
fi
grep -q "completed=$total" "$tmp/serve2.log" || {
    echo "resumed fleet did not complete all $total specs:"; cat "$tmp/serve2.log"; exit 1; }

echo "== validate artifacts"
for id in table1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15; do
    [ -s "$tmp/fleet/artifacts/$id/$id.csv" ] || {
        echo "missing artifact for $id"; ls -R "$tmp/fleet/artifacts"; exit 1; }
done

echo "== audit journal"
"$tmp/ethinfo" -journal "$tmp/fleet/fleet.jsonl" > "$tmp/audit.txt"
grep -q 'balanced=true' "$tmp/audit.txt" || {
    echo "fleet audit does not balance:"; cat "$tmp/audit.txt"; exit 1; }
submitted="$("$tmp/ethinfo" -journal -json "$tmp/fleet/fleet.jsonl" | sed -n 's/.*"submitted": \([0-9]*\).*/\1/p' | head -1)"
completed="$("$tmp/ethinfo" -journal -json "$tmp/fleet/fleet.jsonl" | sed -n 's/.*"completed": \([0-9]*\).*/\1/p' | head -1)"
if [ "${submitted:-0}" -ne "$total" ] || [ "${completed:-0}" -ne "$total" ]; then
    echo "audit counted submitted=$submitted completed=$completed, want $total:"; cat "$tmp/audit.txt"; exit 1
fi
grep -q 'requeue' "$tmp/audit.txt" || {
    echo "killed worker never requeued — the chaos did not bite:"; cat "$tmp/audit.txt"; exit 1; }

echo "ok"
