module github.com/ascr-ecx/eth

go 1.22
