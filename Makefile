# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check bench lint fuzz

build:
	go build ./...

test:
	go test ./...

# Project-specific static analysis (internal/lint via cmd/ethlint).
lint:
	go run ./cmd/ethlint ./...

# Short fuzz pass over the dataset container reader.
fuzz:
	go test -run='^$$' -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio/

# Full gate: vet + build + ethlint + race-enabled tests + short fuzz pass.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem ./...
