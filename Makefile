# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check bench lint sarif fuzz

build:
	go build ./...

test:
	go test ./...

# Project-specific static analysis (internal/lint via cmd/ethlint). The
# suppression-debt gate bounds //lint:ignore directives so findings get
# fixed, not silenced; -stale-ignores fails on directives that no longer
# suppress anything.
lint:
	go run ./cmd/ethlint -max-ignores 19 -stale-ignores ./...

# SARIF log for code-scanning consumers (uploaded as a CI artifact).
sarif:
	go run ./cmd/ethlint -sarif -max-ignores 19 -stale-ignores ./... > ethlint.sarif

# Short fuzz passes over the dataset container reader, the framed wire
# format (checksummed dataset frames must detect any byte flip, for
# every codec; temporal codecs must reconstruct bit-exactly), and the
# hub steering codec (corruption must surface ErrSteering, never a
# panic or a silently-applied wrong value).
fuzz:
	go test -run='^$$' -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio/
	go test -run='^$$' -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport/
	go test -run='^$$' -fuzz=FuzzDeltaRoundTrip -fuzztime=10s ./internal/transport/
	go test -run='^$$' -fuzz=FuzzSteeringMessage -fuzztime=10s ./internal/hub/

# Full gate: vet + build + ethlint + race-enabled tests + short fuzz pass.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem ./...
