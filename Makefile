# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check bench lint fuzz

build:
	go build ./...

test:
	go test ./...

# Project-specific static analysis (internal/lint via cmd/ethlint).
lint:
	go run ./cmd/ethlint ./...

# Short fuzz passes over the dataset container reader and the framed
# wire format (checksummed dataset frames must detect any byte flip).
fuzz:
	go test -run='^$$' -fuzz=FuzzReadVTK -fuzztime=10s ./internal/vtkio/
	go test -run='^$$' -fuzz=FuzzFrameFlip -fuzztime=10s ./internal/transport/

# Full gate: vet + build + ethlint + race-enabled tests + short fuzz pass.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem ./...
