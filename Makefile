# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# Full gate: vet + build + race-enabled tests.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem ./...
