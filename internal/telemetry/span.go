package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the log2 histogram: bucket b holds
// values v with bits.Len64(v) == b, i.e. 2^(b-1) <= v < 2^b (bucket 0
// holds v <= 0). 64 buckets cover the full int64 range, so nanosecond
// latencies from single digits to hours all land in a real bucket.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed distribution. Observations cost
// three atomic adds plus two bounded CAS loops; quantiles are approximate
// (upper bucket bound, clamped to the observed max), which is plenty for
// the p50/p95/p99 latency reporting the harness needs.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a value to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observed value (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an approximate q-quantile (q in [0, 1]): the upper
// bound of the log2 bucket holding the target observation, clamped to the
// observed maximum. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			ub := int64(math.MaxInt64)
			if b < 63 {
				ub = (int64(1) << uint(b)) - 1
			}
			if mx := h.max.Load(); mx < ub {
				ub = mx
			}
			return ub
		}
	}
	return h.max.Load()
}

// BucketBound returns the inclusive upper bound of log2 bucket b:
// bucket 0 holds v <= 0, bucket b (0 < b < 63) holds v <= 2^b - 1, and
// the final bucket is unbounded (math.MaxInt64). Exposition code pairs
// these bounds with CumulativeBuckets to render the distribution.
func BucketBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= histBuckets-1 {
		return math.MaxInt64
	}
	return (int64(1) << uint(b)) - 1
}

// CumulativeBuckets fills dst with the running total of observations per
// log2 bucket (dst[b] counts observations <= BucketBound(b)) and returns
// the number of buckets written: the index after the last non-empty
// bucket, so callers can render only the occupied prefix. dst must have
// space for NumBuckets entries. The walk is lock-free — concurrent
// observers may land between bucket loads, so the counts are a live
// approximation, exactly like every other scrape of a running system.
func (h *Histogram) CumulativeBuckets(dst []int64) int {
	var cum int64
	used := 0
	for b := 0; b < histBuckets; b++ {
		n := h.buckets[b].Load()
		cum += n
		dst[b] = cum
		if n > 0 {
			used = b + 1
		}
	}
	return used
}

// NumBuckets is the bucket count CumulativeBuckets requires of dst.
const NumBuckets = histBuckets

// reset zeroes the histogram (registry lock held by caller).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// SpanMetric aggregates completed spans under one name: invocation count,
// total wall-clock time, and a latency distribution. It is the per-phase
// aggregation the harness reads back after a run.
type SpanMetric struct {
	hist *Histogram
}

// Name returns the span metric's registered name.
func (m *SpanMetric) Name() string { return m.hist.name }

// Observe records one completed span of the given duration.
func (m *SpanMetric) Observe(d time.Duration) { m.hist.ObserveDuration(d) }

// Count returns the number of completed spans.
func (m *SpanMetric) Count() int64 { return m.hist.Count() }

// Total returns the summed wall-clock time across completed spans.
func (m *SpanMetric) Total() time.Duration { return time.Duration(m.hist.Sum()) }

// Quantile returns the approximate q-quantile span duration.
func (m *SpanMetric) Quantile(q float64) time.Duration {
	return time.Duration(m.hist.Quantile(q))
}

// Span is one in-flight timed region, created by Registry.StartSpan. Ending
// it records the elapsed time into the registry's SpanMetric for its name.
// Spans nest: Child opens a sub-region whose metric name is the parent's
// name plus "/child", so aggregated totals keep the call structure.
type Span struct {
	r      *Registry
	parent *Span
	name   string
	start  time.Time
}

// StartSpan opens a timed region under the given metric name.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{r: r, name: name, start: time.Now()}
}

// ObserveSpan records a pre-measured duration under the given span name —
// the zero-allocation path for hot loops that manage their own clocks.
func (r *Registry) ObserveSpan(name string, d time.Duration) {
	//lint:ignore metricname registry plumbing forwards the caller's already-checked name
	r.Span(name).Observe(d)
}

// Name returns the span's full (slash-joined) metric name.
func (s *Span) Name() string { return s.name }

// Parent returns the enclosing span, or nil for a root span.
func (s *Span) Parent() *Span { return s.parent }

// Child opens a nested span named parent/name.
func (s *Span) Child(name string) *Span {
	return &Span{r: s.r, parent: s, name: s.name + "/" + name, start: time.Now()}
}

// End closes the span, records its duration, and returns it.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	//lint:ignore metricname span plumbing forwards the name StartSpan was opened with
	s.r.ObserveSpan(s.name, d)
	return d
}

// SpanStat is one row of a registry's span report.
type SpanStat struct {
	Name          string
	Count         int64
	Total         time.Duration
	P50, P95, P99 time.Duration
}

// SpanStats reports every span metric with at least one observation,
// sorted by name.
func (r *Registry) SpanStats() []SpanStat {
	r.mu.RLock()
	metrics := make([]*SpanMetric, 0, len(r.spans))
	for _, m := range r.spans {
		metrics = append(metrics, m)
	}
	r.mu.RUnlock()
	out := make([]SpanStat, 0, len(metrics))
	for _, m := range metrics {
		if m.Count() == 0 {
			continue
		}
		out = append(out, SpanStat{
			Name:  m.Name(),
			Count: m.Count(),
			Total: m.Total(),
			P50:   m.Quantile(0.50),
			P95:   m.Quantile(0.95),
			P99:   m.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
