package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var r Registry
	c := r.Counter("rays")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d", c.Value())
	}
	if c.Name() != "rays" {
		t.Errorf("name = %q", c.Name())
	}
	// Same name returns the same counter.
	if r.Counter("rays") != c {
		t.Error("counter identity not stable")
	}
}

func TestConcurrentCounting(t *testing.T) {
	var r Registry
	const workers = 16
	const per = 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*per {
		t.Errorf("hits = %d, want %d", got, workers*per)
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	var r Registry
	r.Counter("a").Add(10)
	r.Counter("b").Add(2)
	s1 := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("c").Add(1)
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if d["a"] != 5 || d["b"] != 0 || d["c"] != 1 {
		t.Errorf("delta = %v", d)
	}
}

func TestReset(t *testing.T) {
	var r Registry
	r.Counter("x").Add(9)
	r.Reset()
	if r.Counter("x").Value() != 0 {
		t.Error("reset failed")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{"zeta": 1, "alpha": 2}
	str := s.String()
	if !strings.HasPrefix(str, "alpha=2") {
		t.Errorf("String not sorted: %q", str)
	}
	if !strings.Contains(str, "zeta=1") {
		t.Errorf("String missing counter: %q", str)
	}
}

func TestDefaultRegistryUsable(t *testing.T) {
	Default.Counter("telemetry_test_counter").Inc()
	if Default.Snapshot()["telemetry_test_counter"] < 1 {
		t.Error("default registry broken")
	}
}
