package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestGaugeBasics(t *testing.T) {
	var r Registry
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("value = %d", g.Value())
	}
	if g.Name() != "depth" {
		t.Errorf("name = %q", g.Name())
	}
	if r.Gauge("depth") != g {
		t.Error("gauge identity not stable")
	}
	if got := r.Gauges()["depth"]; got != 5 {
		t.Errorf("Gauges() = %d", got)
	}
	r.Reset()
	if g.Value() != 0 {
		t.Error("reset did not zero gauge")
	}
}

func TestHistogramBasics(t *testing.T) {
	var r Registry
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 1106 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	// p100 must be clamped to the observed max, not the bucket bound.
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want 1000", q)
	}
	// The median observation is 3; its bucket [2,4) has upper bound 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if got := h.Quantile(0); got <= 0 {
		t.Errorf("p0 = %d", got)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var r Registry
	h := r.Histogram("empty")
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(42)
	r.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("reset did not clear histogram")
	}
	if h.Quantile(0.99) != 0 {
		t.Error("reset histogram quantile nonzero")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var r Registry
	h := r.Histogram("ext")
	h.Observe(-5) // bucket 0
	h.Observe(math.MaxInt64)
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(1.0); q != math.MaxInt64 {
		t.Errorf("p100 = %d", q)
	}
	if h.Min() != -5 {
		t.Errorf("min = %d", h.Min())
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	var r Registry
	sp := r.StartSpan("render")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Errorf("span duration %v too short", d)
	}
	m := r.Span("render")
	if m.Count() != 1 {
		t.Errorf("count = %d", m.Count())
	}
	if m.Total() != d {
		t.Errorf("total %v != recorded %v", m.Total(), d)
	}
	if m.Quantile(0.5) <= 0 {
		t.Error("median span duration missing")
	}
}

func TestSpanNesting(t *testing.T) {
	var r Registry
	parent := r.StartSpan("step")
	child := parent.Child("render")
	grand := child.Child("bvh")
	if grand.Name() != "step/render/bvh" {
		t.Errorf("nested name = %q", grand.Name())
	}
	if grand.Parent() != child || child.Parent() != parent || parent.Parent() != nil {
		t.Error("parent links wrong")
	}
	grand.End()
	child.End()
	parent.End()
	for _, name := range []string{"step", "step/render", "step/render/bvh"} {
		if r.Span(name).Count() != 1 {
			t.Errorf("span %s not recorded", name)
		}
	}
	// Parent wall-clock encloses the child's.
	if r.Span("step").Total() < r.Span("step/render").Total() {
		t.Error("parent total < child total")
	}
}

func TestObserveSpanAndStats(t *testing.T) {
	var r Registry
	r.ObserveSpan("a", 10*time.Millisecond)
	r.ObserveSpan("a", 20*time.Millisecond)
	r.ObserveSpan("b", time.Millisecond)
	r.Span("never") // registered but unobserved: must not appear
	stats := r.SpanStats()
	if len(stats) != 2 {
		t.Fatalf("stats rows = %d, want 2", len(stats))
	}
	if stats[0].Name != "a" || stats[1].Name != "b" {
		t.Errorf("stats not sorted: %v", stats)
	}
	if stats[0].Count != 2 || stats[0].Total != 30*time.Millisecond {
		t.Errorf("a: count %d total %v", stats[0].Count, stats[0].Total)
	}
	if stats[0].P95 < stats[0].P50 {
		t.Error("p95 < p50")
	}
}

func TestDeltaReportsVanishedCounters(t *testing.T) {
	earlier := Snapshot{"kept": 3, "gone": 9}
	later := Snapshot{"kept": 5, "new": 2}
	d := later.Delta(earlier)
	if d["kept"] != 2 || d["new"] != 2 {
		t.Errorf("delta = %v", d)
	}
	// A counter present earlier but missing now (post-Reset registry swap)
	// must surface as a negative delta, not silently vanish.
	if got, ok := d["gone"]; !ok || got != -9 {
		t.Errorf("vanished counter delta = %d (present %v), want -9", got, ok)
	}
}

func TestConcurrentMixedMetrics(t *testing.T) {
	var r Registry
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i))
				r.ObserveSpan("s", time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	if r.Counter("c").Value() != workers*200 {
		t.Errorf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != workers*200 {
		t.Errorf("histogram count = %d", r.Histogram("h").Count())
	}
	if r.Span("s").Count() != workers*200 {
		t.Errorf("span count = %d", r.Span("s").Count())
	}
}

// BenchmarkRegistryCounter proves hot-loop lookups do not serialize: the
// read path takes only an RLock, so parallel goroutines looking up the
// same counter scale instead of convoying on a global mutex.
func BenchmarkRegistryCounter(b *testing.B) {
	var r Registry
	r.Counter("hot") // pre-create: benchmark the lookup fast path
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Counter("hot").Inc()
		}
	})
}

// BenchmarkHistogramObserve measures the hot-loop observation cost.
func BenchmarkHistogramObserve(b *testing.B) {
	var r Registry
	h := r.Histogram("hot")
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

// TestCumulativeBuckets checks the exposition walk: cumulative counts
// pair with BucketBound, and the returned length covers exactly the
// occupied prefix.
func TestCumulativeBuckets(t *testing.T) {
	var r Registry
	h := r.Histogram("cb")
	for _, v := range []int64{0, 1, 1, 3, 100} {
		h.Observe(v)
	}
	var buckets [NumBuckets]int64
	used := h.CumulativeBuckets(buckets[:])
	// 100 has bits.Len64 = 7, so the last occupied bucket is 7.
	if used != 8 {
		t.Fatalf("used = %d, want 8", used)
	}
	// Bucket 0 (v <= 0) holds one observation; bucket 1 (v <= 1) adds two.
	if buckets[0] != 1 || buckets[1] != 3 {
		t.Errorf("buckets[0,1] = %d,%d, want 1,3", buckets[0], buckets[1])
	}
	if buckets[used-1] != h.Count() {
		t.Errorf("last occupied bucket = %d, want count %d", buckets[used-1], h.Count())
	}
	if BucketBound(0) != 0 || BucketBound(1) != 1 || BucketBound(2) != 3 {
		t.Errorf("bounds = %d,%d,%d, want 0,1,3", BucketBound(0), BucketBound(1), BucketBound(2))
	}
	if BucketBound(NumBuckets-1) != math.MaxInt64 || BucketBound(NumBuckets+5) != math.MaxInt64 {
		t.Error("final bucket bound should be MaxInt64")
	}
}

// TestEachMetric checks the registry walks visit every registered metric.
func TestEachMetric(t *testing.T) {
	var r Registry
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(1)
	r.Span("s").Observe(time.Millisecond)
	names := map[string]bool{}
	r.EachCounter(func(c *Counter) { names["c:"+c.Name()] = true })
	r.EachGauge(func(g *Gauge) { names["g:"+g.Name()] = true })
	r.EachHistogram(func(h *Histogram) { names["h:"+h.Name()] = true })
	r.EachSpan(func(s *SpanMetric) { names["s:"+s.Name()] = true })
	for _, want := range []string{"c:a", "c:b", "g:g", "h:h", "s:s"} {
		if !names[want] {
			t.Errorf("walk missed %s (got %v)", want, names)
		}
	}
}
