// Package telemetry is ETH's low-overhead counter registry, the stand-in
// for the TACC Stats hardware-counter collection the paper uses to
// analyze results (§V-A). Components register named counters and bump
// them from hot loops with atomic adds; the harness snapshots the
// registry per experiment phase and reports deltas.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a single monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry holds a set of named counters. The zero value is ready to use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// Default is the process-wide registry.
var Default = &Registry{}

// Counter returns the counter with the given name, creating it if needed.
// Safe for concurrent use; the returned pointer is stable.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns a copy of all counter values at this instant.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	return s
}

// Reset zeroes every counter (for test isolation and per-run phases).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
}

// Snapshot is a point-in-time view of counter values.
type Snapshot map[string]int64

// Delta returns s - earlier per counter (counters absent from earlier are
// treated as zero).
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s {
		out[name] = v - earlier[name]
	}
	return out
}

// String renders the snapshot sorted by name.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, s[n])
	}
	return out
}
