// Package telemetry is ETH's low-overhead instrumentation registry, the
// stand-in for the TACC Stats hardware-counter collection the paper uses
// to analyze results (§V-A). Components register named metrics and update
// them from hot loops with atomic operations; the harness snapshots the
// registry per experiment phase and reports deltas.
//
// Four metric kinds are provided:
//
//   - Counter: monotonically increasing value (rays cast, bytes sent).
//   - Gauge: last-value metric (current queue depth, active pairs).
//   - Histogram: log2-bucketed distribution with approximate quantiles
//     (per-message latency, per-image render time).
//   - SpanMetric: aggregated wall-clock time for a named code region,
//     fed by Span start/end pairs or pre-measured durations.
//
// All metric updates are lock-free atomic operations; registry lookups
// take a read lock only (writes happen once per name), so hot loops that
// cache the returned pointer — or even re-look it up — do not serialize.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a single monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric: unlike a Counter it may move in either
// direction, and snapshots report its instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds a set of named metrics. The zero value is ready to use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter    // guarded by mu
	gauges   map[string]*Gauge      // guarded by mu
	hists    map[string]*Histogram  // guarded by mu
	spans    map[string]*SpanMetric // guarded by mu
}

// Default is the process-wide registry.
var Default = &Registry{}

// Counter returns the counter with the given name, creating it if needed.
// Safe for concurrent use; the returned pointer is stable. Lookups of an
// existing counter take only a read lock, so hot loops do not serialize.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	if h = r.hists[name]; h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// Span returns the span metric with the given name, creating it if
// needed.
func (r *Registry) Span(name string) *SpanMetric {
	r.mu.RLock()
	s := r.spans[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = map[string]*SpanMetric{}
	}
	if s = r.spans[name]; s == nil {
		s = &SpanMetric{hist: newHistogram(name)}
		r.spans[name] = s
	}
	return s
}

// Snapshot returns a copy of all counter values at this instant.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	return s
}

// Gauges returns a copy of all gauge values at this instant.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]int64{}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// EachCounter calls fn once per registered counter, in no particular
// order. The registry's read lock is released before fn runs, so fn may
// itself use the registry; new registrations during the walk may or may
// not be visited. EachGauge/EachHistogram/EachSpan behave identically.
// Exposition code (internal/obs) builds /metrics from these walks.
func (r *Registry) EachCounter(fn func(*Counter)) {
	r.mu.RLock()
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	r.mu.RUnlock()
	for _, c := range cs {
		fn(c)
	}
}

// EachGauge calls fn once per registered gauge (see EachCounter).
func (r *Registry) EachGauge(fn func(*Gauge)) {
	r.mu.RLock()
	gs := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	r.mu.RUnlock()
	for _, g := range gs {
		fn(g)
	}
}

// EachHistogram calls fn once per registered histogram (see EachCounter).
func (r *Registry) EachHistogram(fn func(*Histogram)) {
	r.mu.RLock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.RUnlock()
	for _, h := range hs {
		fn(h)
	}
}

// EachSpan calls fn once per registered span metric (see EachCounter).
func (r *Registry) EachSpan(fn func(*SpanMetric)) {
	r.mu.RLock()
	ss := make([]*SpanMetric, 0, len(r.spans))
	for _, s := range r.spans {
		ss = append(ss, s)
	}
	r.mu.RUnlock()
	for _, s := range ss {
		fn(s)
	}
}

// Reset zeroes every metric (for test isolation and per-run phases).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, s := range r.spans {
		s.hist.reset()
	}
}

// Snapshot is a point-in-time view of counter values.
type Snapshot map[string]int64

// Delta returns s - earlier per counter. Counters absent from earlier are
// treated as zero; counters present in earlier but absent from s (e.g.
// after a registry swap) are emitted with negative deltas so the result
// accounts for every counter either side saw.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s {
		out[name] = v - earlier[name]
	}
	for name, v := range earlier {
		if _, ok := s[name]; !ok {
			out[name] = -v
		}
	}
	return out
}

// String renders the snapshot sorted by name.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, s[n])
	}
	return out
}
