package proxy

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/journal"
)

// panicOp is an analysis operation that panics on a chosen step.
type panicOp struct{ step int }

func (p panicOp) Name() string { return "panic-op" }
func (p panicOp) Apply(ctx OpContext, ds data.Dataset) (OpResult, error) {
	if ctx.Step == p.step {
		panic("injected analysis panic")
	}
	return OpResult{Op: p.Name(), Summary: "ok"}, nil
}

func TestVizPanicContained(t *testing.T) {
	jw := journal.New()
	vp, err := NewVizProxy(VizConfig{
		Width: 16, Height: 16, Algorithm: "points",
		Operations: []Operation{panicOp{step: 1}},
		Journal:    jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vp.RenderStep(0, testCloud(50, 1)); err != nil {
		t.Fatalf("step 0: %v", err)
	}
	_, err = vp.RenderStep(1, testCloud(50, 2))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("step 1 err = %v, want ErrPanic", err)
	}
	// The panicked step must not appear as a completed result, and the
	// cursor must not advance past it.
	for _, r := range vp.Results {
		if r.Step == 1 {
			t.Fatal("panicked step recorded as completed")
		}
	}
	if vp.NextStep() != 1 {
		t.Fatalf("NextStep = %d, want 1 (panicked step incomplete)", vp.NextStep())
	}
	var ev *journal.Event
	for i, e := range jw.Events() {
		if e.Type == journal.TypeError && strings.Contains(e.Detail, "panic contained") {
			ev = &jw.Events()[i]
		}
	}
	if ev == nil || !strings.Contains(ev.Err, "injected analysis panic") ||
		!strings.Contains(ev.Err, "goroutine") {
		t.Fatalf("panic error event missing stack: %+v", ev)
	}
}

func TestSimPanicContained(t *testing.T) {
	jw := journal.New()
	src := &FuncSource{N: 2, Fn: func(step int) (data.Dataset, error) {
		if step == 1 {
			panic("injected source panic")
		}
		return testCloud(10, 1), nil
	}}
	sp, err := NewSimProxy(SimConfig{Journal: jw}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.StepData(0); err != nil {
		t.Fatalf("step 0: %v", err)
	}
	if _, err := sp.StepData(1); !errors.Is(err, ErrPanic) {
		t.Fatalf("step 1 err = %v, want ErrPanic", err)
	}
}

func TestVizCursorPersistsAndResumes(t *testing.T) {
	cursor := filepath.Join(t.TempDir(), "rank0.ckpt")
	cfg := VizConfig{Width: 16, Height: 16, Algorithm: "points", CursorPath: cursor, Journal: journal.New()}
	vp, err := NewVizProxy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vp.NextStep() != 0 {
		t.Fatalf("fresh NextStep = %d", vp.NextStep())
	}
	for step := 0; step < 3; step++ {
		if _, err := vp.RenderStep(step, testCloud(40, int64(step))); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := journal.ReadCheckpoint(cursor)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 3 {
		t.Fatalf("checkpoint step = %d, want 3", cp.Step)
	}
	// A checkpoint event per completed step.
	var ckpts int
	for _, ev := range cfg.Journal.Events() {
		if ev.Type == journal.TypeCheckpoint {
			ckpts++
		}
	}
	if ckpts != 3 {
		t.Fatalf("checkpoint events = %d, want 3", ckpts)
	}

	// A second incarnation over the same cursor resumes at step 3.
	vp2, err := NewVizProxy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vp2.NextStep() != 3 {
		t.Fatalf("resumed NextStep = %d, want 3", vp2.NextStep())
	}
}
