// Package proxy implements the paper's two-process architecture (§III-A):
// a simulation proxy that replays previously exported simulation data in
// place of the real simulation, and a visualization proxy that receives
// each time step over the in-situ interface and renders it. The basic
// unit of granularity is a pair of such processes (Figure 4b); pairs can
// be coupled in one process or connected over the socket layer.
package proxy

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/hub"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/sampling"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// Simulation-proxy telemetry: per-step generate/sample span aggregation.
var (
	spanSimGenerate = telemetry.Default.Span("sim.generate")
	spanSimSample   = telemetry.Default.Span("sim.sample")
)

// StepSource supplies the simulation data stream, one dataset per time
// step. Implementations: DiskSource replays exported dumps (the paper's
// design); generator-backed sources synthesize data on the fly.
type StepSource interface {
	// Steps returns the number of time steps available.
	Steps() int
	// Step returns the dataset for time step i (0-based).
	Step(i int) (data.Dataset, error)
}

// DiskSource replays datasets from files — the paper's "preliminary run
// of the simulation writes data out; our simulation proxy then reads the
// simulation data into memory and presents it to the simulation/analysis
// interface" (§I).
type DiskSource struct {
	paths []string
}

// NewDiskSource creates a source over the given dataset files, one per
// time step, replayed in order.
func NewDiskSource(paths ...string) (*DiskSource, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("proxy: disk source needs at least one file")
	}
	return &DiskSource{paths: paths}, nil
}

// NewDiskSourceGlob creates a source over files matching pattern, in
// lexical order.
func NewDiskSourceGlob(pattern string) (*DiskSource, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	return NewDiskSource(paths...)
}

// Steps implements StepSource.
func (s *DiskSource) Steps() int { return len(s.paths) }

// Step implements StepSource.
func (s *DiskSource) Step(i int) (data.Dataset, error) {
	if i < 0 || i >= len(s.paths) {
		return nil, fmt.Errorf("proxy: step %d out of range [0, %d)", i, len(s.paths))
	}
	return vtkio.ReadFile(s.paths[i])
}

// FuncSource adapts a generator function to a StepSource.
type FuncSource struct {
	N  int
	Fn func(step int) (data.Dataset, error)
}

// Steps implements StepSource.
func (s *FuncSource) Steps() int { return s.N }

// Step implements StepSource.
func (s *FuncSource) Step(i int) (data.Dataset, error) { return s.Fn(i) }

// MemSource serves pre-built datasets (used by tests and the tight
// coupling driver).
type MemSource struct {
	Data []data.Dataset
}

// Steps implements StepSource.
func (s *MemSource) Steps() int { return len(s.Data) }

// Step implements StepSource.
func (s *MemSource) Step(i int) (data.Dataset, error) {
	if i < 0 || i >= len(s.Data) {
		return nil, fmt.Errorf("proxy: step %d out of range", i)
	}
	return s.Data[i], nil
}

// SimConfig configures a simulation-proxy rank.
type SimConfig struct {
	// Rank identifies this proxy pair.
	Rank int
	// Ranks is the total pair count; the proxy serves piece Rank of each
	// step partitioned Ranks ways. Ranks <= 1 serves whole steps.
	Ranks int
	// SamplingRatio applies spatial sampling before the data crosses the
	// in-situ interface (sampling on the simulation side, §IV-B).
	SamplingRatio float64
	// SamplingMethod selects the point-sampling strategy.
	SamplingMethod sampling.Method
	// Seed drives sampling determinism.
	Seed int64
	// Compress enables DEFLATE framing on the in-situ interface — the
	// compression lever of the paper's introduction, traded against CPU.
	// Legacy sugar for Codec: "flate"; ignored when Codec is set.
	Compress bool
	// Codec names the wire codec for the in-situ interface ("raw",
	// "flate", "delta", "delta+flate"; "" defers to Compress). The
	// temporal codecs key frames against the previous step and are
	// resynchronized with a keyframe on every fresh connection.
	Codec string
	// Journal, when set, receives one event per dataset fetch, sampling
	// decision, wire transfer, and error.
	Journal *journal.Writer
	// Steering, when set, is consulted at every step boundary: sampling
	// ratio and wire codec changes apply to the next step's data, are
	// journaled, and are seq-gated so each update applies exactly once.
	// Wire steering forwarded by the visualization proxy folds into the
	// same boundary.
	Steering hub.Source
}

// SimProxy is one simulation-proxy rank.
type SimProxy struct {
	cfg   SimConfig
	codec transport.CodecID
	src   StepSource
	// stop, when set, drains the serve loop at the next step boundary
	// (graceful shutdown: the in-flight step completes and is acked).
	stop <-chan struct{}
	// Steering state. steerSeq gates the scripted source; wire (under
	// wmu, written by the connection's control-frame handler) buffers
	// steering forwarded by the visualization proxy until the next step
	// boundary; wireSeq gates its application.
	steerSeq uint64
	wmu      sync.Mutex
	wire     hub.State
	wireSeq  uint64
}

// SetStop installs a drain channel: when it fires, ServeFrom finishes
// the step it is on and returns an ErrStopped-wrapped error instead of
// starting the next step. Typically wired to a context's Done channel.
func (s *SimProxy) SetStop(ch <-chan struct{}) { s.stop = ch }

// NewSimProxy creates a simulation proxy over the given source.
func NewSimProxy(cfg SimConfig, src StepSource) (*SimProxy, error) {
	if src == nil {
		return nil, fmt.Errorf("proxy: nil step source")
	}
	if cfg.Ranks < 0 || (cfg.Ranks > 0 && (cfg.Rank < 0 || cfg.Rank >= cfg.Ranks)) {
		return nil, fmt.Errorf("proxy: rank %d outside [0, %d)", cfg.Rank, cfg.Ranks)
	}
	if cfg.SamplingRatio == 0 {
		cfg.SamplingRatio = 1
	}
	if cfg.SamplingRatio < 0 || cfg.SamplingRatio > 1 {
		return nil, fmt.Errorf("proxy: sampling ratio %v outside (0, 1]", cfg.SamplingRatio)
	}
	codec, err := transport.ParseCodec(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.Codec == "" && cfg.Compress {
		codec = transport.CodecFlate
	}
	return &SimProxy{cfg: cfg, codec: codec, src: src}, nil
}

// Codec reports the wire codec this proxy stamps on every connection it
// serves.
func (s *SimProxy) Codec() transport.CodecID { return s.codec }

// Steps returns the number of time steps this proxy will serve.
func (s *SimProxy) Steps() int { return s.src.Steps() }

// StepData prepares the dataset this rank presents to the in-situ
// interface for step i: the rank's spatial piece, spatially sampled. The
// fetch is journaled under the generate phase, partition + sampling under
// the sample phase.
func (s *SimProxy) StepData(i int) (_ data.Dataset, err error) {
	defer containPanic(s.cfg.Journal, s.cfg.Rank, i, "sim", &err)
	// Tight-coupling drivers call StepData directly; ServeFrom already
	// applied steering for this step, in which case this is a no-op.
	s.applySteering(i, nil)
	t0 := time.Now()
	ds, err := s.src.Step(i)
	if err != nil {
		s.cfg.Journal.Error(s.cfg.Rank, i, err)
		return nil, err
	}
	genDur := time.Since(t0)
	spanSimGenerate.Observe(genDur)
	s.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeDataset, Phase: journal.PhaseGenerate,
		Rank: s.cfg.Rank, Step: i, DurNS: int64(genDur),
		Elements: ds.Count(), Bytes: ds.Bytes(),
	})

	t1 := time.Now()
	before := ds.Count()
	if s.cfg.Ranks > 1 {
		pieces := ds.Partition(s.cfg.Ranks)
		if s.cfg.Rank >= len(pieces) {
			err := fmt.Errorf("proxy: partition produced %d pieces for rank %d", len(pieces), s.cfg.Rank)
			s.cfg.Journal.Error(s.cfg.Rank, i, err)
			return nil, err
		}
		ds = pieces[s.cfg.Rank]
	}
	sampled, err := applySampling(ds, s.cfg.SamplingRatio, s.cfg.SamplingMethod, s.cfg.Seed)
	if err != nil {
		s.cfg.Journal.Error(s.cfg.Rank, i, err)
		return nil, err
	}
	sampleDur := time.Since(t1)
	spanSimSample.Observe(sampleDur)
	s.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeSample, Phase: journal.PhaseSample,
		Rank: s.cfg.Rank, Step: i, DurNS: int64(sampleDur),
		Elements: sampled.Count(),
		Detail: fmt.Sprintf("method=%v ratio=%g kept=%d/%d",
			s.cfg.SamplingMethod, ratioOrOne(s.cfg.SamplingRatio), sampled.Count(), before),
	})
	return sampled, nil
}

// applySteering folds pending steering (scripted source and/or wire
// messages forwarded by the visualization proxy) into the proxy's
// sampling ratio and wire codec at a step boundary. Both paths are
// seq-gated so each update applies exactly once; every effective change
// is journaled, making a steered run replayable from its journal.
func (s *SimProxy) applySteering(step int, conn *transport.Conn) {
	var pend hub.State
	if s.cfg.Steering != nil {
		if sc := s.cfg.Steering.Current(step); sc.Seq > s.steerSeq {
			s.steerSeq = sc.Seq
			pend = sc
		}
	}
	s.wmu.Lock()
	if s.wire.Seq > s.wireSeq {
		s.wireSeq = s.wire.Seq
		// Wire steering arrived after any scripted state was captured, so
		// it wins the per-axis merge.
		if s.wire.HasRatio {
			pend.HasRatio, pend.Ratio = true, s.wire.Ratio
		}
		if s.wire.HasCodec {
			pend.HasCodec, pend.Codec = true, s.wire.Codec
		}
	}
	s.wmu.Unlock()
	if pend.HasRatio && pend.Ratio != s.cfg.SamplingRatio {
		s.cfg.SamplingRatio = pend.Ratio
		s.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeSteer, Rank: s.cfg.Rank, Step: step,
			Detail: fmt.Sprintf("sim applied step=%d ratio=%g", step, pend.Ratio),
		})
	}
	if pend.HasCodec && pend.Codec != s.codec {
		s.codec = pend.Codec
		if conn != nil {
			conn.SetCodec(pend.Codec)
		}
		s.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeSteer, Rank: s.cfg.Rank, Step: step,
			Detail: fmt.Sprintf("sim applied step=%d codec=%s", step, pend.Codec),
		})
	}
}

// ratioOrOne reports the effective sampling ratio (0 means disabled = 1).
func ratioOrOne(r float64) float64 {
	if r == 0 {
		return 1
	}
	return r
}

// applySampling thins a dataset of either kind.
func applySampling(ds data.Dataset, ratio float64, method sampling.Method, seed int64) (data.Dataset, error) {
	if ratio >= 1 {
		return ds, nil
	}
	switch d := ds.(type) {
	case *data.PointCloud:
		return sampling.Points(d, ratio, method, seed)
	case *data.StructuredGrid:
		return sampling.Grid(d, ratio)
	default:
		return nil, fmt.Errorf("proxy: cannot sample dataset kind %v", ds.Kind())
	}
}

// Serve runs the paper's §III-C simulation-proxy protocol over an
// established connection: send each step's dataset, wait for the
// visualization proxy's ack, then signal completion. It returns the
// total payload bytes sent.
func (s *SimProxy) Serve(conn *transport.Conn) (int64, error) {
	_, n, err := s.ServeFrom(conn, 0)
	return n, err
}

// ServeFrom is Serve starting at step from — the resume entry point after
// a reconnect. It returns next, the first step that was NOT acknowledged
// (next == Steps() means the stream completed and Done was sent), along
// with the bytes sent over this connection. A degradation-policy driver
// reconnects and calls ServeFrom(conn2, next) to resume without
// duplicating or skipping a step; the wire step in each dataset frame
// lets the receiver detect any step it already rendered.
func (s *SimProxy) ServeFrom(conn *transport.Conn, from int) (next int, bytes int64, err error) {
	conn.SetCodec(s.codec)
	conn.Journal = s.cfg.Journal
	conn.Rank = s.cfg.Rank
	// Steering forwarded by the visualization proxy arrives as control
	// frames on this connection (processed inside Recv while waiting for
	// acks); buffer it for the next step boundary.
	conn.OnControl(func(p []byte) error {
		m, err := hub.DecodeMsg(p)
		if err != nil {
			s.cfg.Journal.Error(s.cfg.Rank, -1, err)
			return err
		}
		if m.Kind != hub.KindSteer {
			return fmt.Errorf("proxy: unexpected control kind %d on sim connection", m.Kind)
		}
		s.wmu.Lock()
		s.wire.Merge(m)
		s.wmu.Unlock()
		return nil
	})
	next = from
	for step := from; step < s.Steps(); step++ {
		if s.stop != nil {
			select {
			case <-s.stop:
				return next, conn.BytesSent, fmt.Errorf("proxy: serve drained before step %d: %w", step, ErrStopped)
			default:
			}
		}
		s.applySteering(step, conn)
		conn.Step = step
		ds, err := s.StepData(step)
		if err != nil {
			return next, conn.BytesSent, fmt.Errorf("proxy: preparing step %d: %w", step, err)
		}
		if err := conn.SendDataset(ds); err != nil {
			s.cfg.Journal.Error(s.cfg.Rank, step, err)
			return next, conn.BytesSent, fmt.Errorf("proxy: sending step %d: %w", step, err)
		}
		typ, _, ackStep, err := conn.Recv()
		if err != nil {
			return next, conn.BytesSent, fmt.Errorf("proxy: waiting for ack %d: %w", step, err)
		}
		if typ != transport.MsgAck || ackStep != int64(step) {
			return next, conn.BytesSent, fmt.Errorf("proxy: expected ack for step %d, got type %d step %d", step, typ, ackStep)
		}
		next = step + 1
	}
	if err := conn.SendDone(); err != nil {
		return next, conn.BytesSent, err
	}
	return next, conn.BytesSent, nil
}
