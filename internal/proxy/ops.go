package proxy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ascr-ecx/eth/internal/analysis"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// writeDataset saves a dataset in the ETHD container.
func writeDataset(path string, ds data.Dataset) error {
	return vtkio.WriteFile(path, ds)
}

// Operation is an in-situ analysis step the visualization proxy applies
// to every received dataset, alongside rendering — the paper's
// "easily configurable visualization operations": "since ETH is based on
// VTK, many operations can be easily added to the pipelines tested, and
// they can be specific to the data and visualizations that are of
// interest" (§III). Operations produce compact extracts (catalogs,
// statistics) rather than pixels.
type Operation interface {
	// Name identifies the operation in results and file names.
	Name() string
	// Apply processes one time step's dataset. ctx carries step/rank
	// identity and the artifact directory (may be empty = do not write).
	Apply(ctx OpContext, ds data.Dataset) (OpResult, error)
}

// OpContext identifies the step an operation runs in.
type OpContext struct {
	Step   int
	Rank   int
	OutDir string
}

// OpResult summarizes one operation application.
type OpResult struct {
	// Op is the operation name.
	Op string
	// Summary is a one-line human-readable digest.
	Summary string
	// ExtractBytes is the size of the extract written (0 if none).
	ExtractBytes int64
}

// artifactPath names an operation's per-step output file.
func (c OpContext) artifactPath(op, ext string) string {
	return filepath.Join(c.OutDir,
		fmt.Sprintf("%s_step%03d_rank%d.%s", op, c.Step, c.Rank, ext))
}

// HaloOperation runs the friends-of-friends halo finder on particle
// steps and writes the halo catalog as JSON — the cosmology extract of
// the paper's introduction.
type HaloOperation struct {
	// Options forwards to analysis.FOF.
	Options analysis.FOFOptions
}

// Name implements Operation.
func (*HaloOperation) Name() string { return "halos" }

// Apply implements Operation.
func (h *HaloOperation) Apply(ctx OpContext, ds data.Dataset) (OpResult, error) {
	cloud, ok := ds.(*data.PointCloud)
	if !ok {
		return OpResult{}, fmt.Errorf("proxy: halos operation requires a point cloud, got %v", ds.Kind())
	}
	halos, err := analysis.FOF(cloud, h.Options)
	if err != nil {
		return OpResult{}, err
	}
	res := OpResult{
		Op:      "halos",
		Summary: fmt.Sprintf("%d halos from %d particles", len(halos), cloud.Count()),
	}
	if ctx.OutDir != "" {
		raw, err := json.MarshalIndent(halos, "", "  ")
		if err != nil {
			return res, err
		}
		path := ctx.artifactPath("halos", "json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return res, err
		}
		res.ExtractBytes = int64(len(raw))
	}
	return res, nil
}

// StatsOperation computes per-field statistics and a histogram for the
// named field of any dataset kind — the monitoring extract.
type StatsOperation struct {
	// Field names the scalar; empty selects "speed" for clouds and
	// "temperature" for grids.
	Field string
	// Bins is the histogram resolution (default 16).
	Bins int
}

// Name implements Operation.
func (*StatsOperation) Name() string { return "stats" }

// statsExtract is the JSON document StatsOperation writes.
type statsExtract struct {
	Field     string              `json:"field"`
	Stats     analysis.FieldStats `json:"stats"`
	BinEdges  []float64           `json:"binEdges"`
	BinCounts []int               `json:"binCounts"`
}

// Apply implements Operation.
func (s *StatsOperation) Apply(ctx OpContext, ds data.Dataset) (OpResult, error) {
	name := s.Field
	var values []float32
	switch d := ds.(type) {
	case *data.PointCloud:
		if name == "" {
			name = "speed"
		}
		f, err := d.Field(name)
		if err != nil {
			return OpResult{}, err
		}
		values = f.Values
	case *data.StructuredGrid:
		if name == "" {
			name = "temperature"
		}
		f, err := d.Field(name)
		if err != nil {
			return OpResult{}, err
		}
		values = f.Values
	case *data.UnstructuredGrid:
		if name == "" {
			name = "temperature"
		}
		f, err := d.Field(name)
		if err != nil {
			return OpResult{}, err
		}
		values = f.Values
	default:
		return OpResult{}, fmt.Errorf("proxy: stats operation: unsupported kind %v", ds.Kind())
	}
	bins := s.Bins
	if bins <= 0 {
		bins = 16
	}
	st := analysis.Stats(values)
	edges, counts := analysis.Histogram(values, bins)
	res := OpResult{
		Op:      "stats",
		Summary: fmt.Sprintf("%s: %s", name, st),
	}
	if ctx.OutDir != "" {
		raw, err := json.MarshalIndent(statsExtract{
			Field: name, Stats: st, BinEdges: edges, BinCounts: counts,
		}, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(ctx.artifactPath("stats", "json"), raw, 0o644); err != nil {
			return res, err
		}
		res.ExtractBytes = int64(len(raw))
	}
	return res, nil
}

// SaveOperation writes the received dataset back to disk in the ETHD
// container — useful for capturing exactly what crossed the in-situ
// interface (post-sampling), e.g. to validate sampling pipelines.
type SaveOperation struct{}

// Name implements Operation.
func (*SaveOperation) Name() string { return "save" }

// Apply implements Operation.
func (*SaveOperation) Apply(ctx OpContext, ds data.Dataset) (OpResult, error) {
	if ctx.OutDir == "" {
		return OpResult{Op: "save", Summary: "skipped (no output directory)"}, nil
	}
	path := ctx.artifactPath("data", "ethd")
	if err := writeDataset(path, ds); err != nil {
		return OpResult{}, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return OpResult{}, err
	}
	return OpResult{
		Op:           "save",
		Summary:      fmt.Sprintf("wrote %s", filepath.Base(path)),
		ExtractBytes: info.Size(),
	}, nil
}
