package proxy

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/hub"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Proxy telemetry counters.
var (
	ctrSteps  = telemetry.Default.Counter("proxy.steps")
	ctrImages = telemetry.Default.Counter("proxy.images")
)

// FramePublisher receives each completed step's final rendered frame
// for fan-out to live viewers (implemented by hub.Hub). Publishing must
// never block the render loop.
type FramePublisher interface {
	PublishFrame(step int, f *fb.Frame)
}

// VizConfig configures a visualization-proxy rank.
type VizConfig struct {
	// Rank identifies this proxy pair.
	Rank int
	// Width, Height are the framebuffer dimensions.
	Width, Height int
	// Algorithm names the rendering back-end (render registry).
	Algorithm string
	// Options carries rendering parameters.
	Options render.Options
	// ImagesPerStep is how many renders each step receives (the paper
	// renders hundreds of frames per step by varying camera/isovalue).
	ImagesPerStep int
	// OutDir, when non-empty, receives PNG artifacts named
	// step<NNN>_img<MMM>_rank<R>.png.
	OutDir string
	// Operations are additional in-situ analysis steps applied to every
	// received dataset after rendering (§III "easily configurable
	// visualization operations").
	Operations []Operation
	// CursorPath, when non-empty, persists the step cursor as an
	// atomically-replaced checkpoint file: the cursor is loaded at
	// construction and rewritten after every completed step, so a
	// restarted incarnation resumes at the first unfinished step instead
	// of replaying the run.
	CursorPath string
	// Journal, when set, receives one event per render, analysis
	// operation, wire transfer, and error.
	Journal *journal.Writer
	// Publisher, when set, receives each step's final rendered frame
	// (the broadcast hub). Publishing is non-blocking by contract.
	Publisher FramePublisher
	// Steering, when set, is consulted at every step boundary: camera
	// and isovalue steering is applied locally before rendering;
	// sampling-ratio and codec steering is forwarded upstream to the
	// simulation proxy over the control channel. Steering is applied
	// only between steps and journaled, so a run is replayable from its
	// journal.
	Steering hub.Source
}

// StepResult instruments one rendered time step.
type StepResult struct {
	Step     int
	Elements int
	Images   int
	// Render is the image-rendering time for the step (analysis
	// operations are timed separately in Analysis).
	Render time.Duration
	// Analysis is the time spent in configured analysis operations.
	Analysis   time.Duration
	LastFrame  *fb.Frame
	Primitives int
	// Ops holds the results of the configured analysis operations.
	Ops []OpResult
}

// VizProxy is one visualization-proxy rank.
type VizProxy struct {
	cfg      VizConfig
	renderer render.Renderer
	// scratch is the persistent render target: every image of every step
	// renders into it (cleared between images), so the per-image path
	// allocates no framebuffers at steady state.
	scratch *fb.Frame
	// next is the first step not yet rendered+acked; it persists across
	// Receive calls so a reconnected sender resuming at an earlier step is
	// recognized (the duplicate is re-acked without rendering). Atomic
	// because a supervisor's stall watchdog probes it from outside the
	// serving goroutine.
	next atomic.Int64
	// allowGaps permits the wire step to jump past next (a step the
	// degradation policy skipped on the sender side).
	allowGaps bool
	// imgHist and opSpans are the per-algorithm/per-operation metric
	// series, resolved once at construction: both domains are closed
	// (render registry, compiled-in operations), and resolving here keeps
	// the per-step path off the registry's name-lookup lock.
	imgHist *telemetry.Histogram
	opSpans []*telemetry.SpanMetric
	// Steering cursors: steerSeq gates local (camera/isovalue)
	// application, fwdSeq gates upstream forwarding, so each steering
	// update is applied and forwarded exactly once.
	steerSeq uint64
	fwdSeq   uint64
	hasCam   bool
	camOv    hub.View
	hasIso   bool
	isoOv    float32
	// ctrl is the reusable control-frame encode buffer.
	ctrl []byte
	// Results accumulates per-step instrumentation.
	Results []StepResult
}

// NewVizProxy creates a visualization proxy.
func NewVizProxy(cfg VizConfig) (*VizProxy, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("proxy: bad frame size %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.ImagesPerStep <= 0 {
		cfg.ImagesPerStep = 1
	}
	if cfg.Algorithm == "" {
		return nil, fmt.Errorf("proxy: no rendering algorithm configured")
	}
	r, err := render.New(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	v := &VizProxy{cfg: cfg, renderer: r}
	// The algorithm name was just validated by the render registry and
	// the operation set is compiled in, so these dynamic names are drawn
	// from closed, snake_case domains.
	//lint:ignore metricname algorithm names come from the closed render registry
	v.imgHist = telemetry.Default.Histogram("viz.render." + cfg.Algorithm)
	for _, op := range cfg.Operations {
		//lint:ignore metricname operation names are the compiled-in halos/stats/save set
		v.opSpans = append(v.opSpans, telemetry.Default.Span("viz.op."+op.Name()))
	}
	if cfg.CursorPath != "" {
		cp, err := journal.ReadCheckpoint(cfg.CursorPath)
		switch {
		case err == nil:
			if cp.Step > 0 {
				v.next.Store(int64(cp.Step))
			}
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet: fresh start.
		default:
			return nil, fmt.Errorf("proxy: loading step cursor: %w", err)
		}
	}
	return v, nil
}

// RenderStep renders one received dataset: ImagesPerStep frames with the
// camera orbiting the data (matching the paper's many-images-per-step
// protocol) and, for isosurface algorithms, a sliding isovalue.
func (v *VizProxy) RenderStep(step int, ds data.Dataset) (res StepResult, err error) {
	defer containPanic(v.cfg.Journal, v.cfg.Rank, step, "viz", &err)
	v.applySteering(step)
	t0 := time.Now()
	res = StepResult{Step: step, Elements: ds.Count(), Images: v.cfg.ImagesPerStep}
	bounds := ds.Bounds()
	frame := v.scratch
	if frame == nil || frame.W != v.cfg.Width || frame.H != v.cfg.Height {
		frame = fb.New(v.cfg.Width, v.cfg.Height)
		v.scratch = frame
	}
	for img := 0; img < v.cfg.ImagesPerStep; img++ {
		it0 := time.Now()
		cam := orbitCamera(bounds, img, v.cfg.ImagesPerStep)
		if v.hasCam {
			cam = steerCamera(bounds, v.camOv, img, v.cfg.ImagesPerStep)
		}
		opt := v.cfg.Options
		if v.hasIso {
			// Steered isovalue replaces both the configured value and the
			// sliding default for every image of the step.
			opt.IsoValue = v.isoOv
		}
		if opt.IsoValue == 0 && isoAlgorithms[v.cfg.Algorithm] {
			// Sliding isovalue over the sweep (§IV-A: "a varying
			// isovalue for 1000 images").
			opt.IsoValue = 0.25 + 0.5*float32(img)/float32(v.cfg.ImagesPerStep)
		}
		frame.Clear(vec.V3{})
		stats, err := v.renderer.Render(frame, ds, &cam, opt)
		if err != nil {
			err = fmt.Errorf("proxy: rendering step %d image %d: %w", step, img, err)
			v.cfg.Journal.Error(v.cfg.Rank, step, err)
			return res, err
		}
		res.Primitives += stats.Primitives
		if v.cfg.OutDir != "" {
			name := fmt.Sprintf("step%03d_img%03d_rank%d.png", step, img, v.cfg.Rank)
			if err := frame.SavePNG(filepath.Join(v.cfg.OutDir, name)); err != nil {
				v.cfg.Journal.Error(v.cfg.Rank, step, err)
				return res, err
			}
		}
		v.imgHist.ObserveDuration(time.Since(it0))
	}
	res.Render = time.Since(t0)
	telemetry.Default.ObserveSpan("viz.render", res.Render)
	v.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeRender, Phase: journal.PhaseRender,
		Rank: v.cfg.Rank, Step: step, DurNS: int64(res.Render),
		Elements: res.Elements,
		Detail:   fmt.Sprintf("algorithm=%s images=%d", v.cfg.Algorithm, res.Images),
	})

	// Run the configured analysis operations on the step's data, each
	// under its own analysis span.
	for i, op := range v.cfg.Operations {
		ot0 := time.Now()
		opRes, err := op.Apply(OpContext{Step: step, Rank: v.cfg.Rank, OutDir: v.cfg.OutDir}, ds)
		if err != nil {
			err = fmt.Errorf("proxy: operation %s on step %d: %w", op.Name(), step, err)
			v.cfg.Journal.Error(v.cfg.Rank, step, err)
			return res, err
		}
		opDur := time.Since(ot0)
		res.Analysis += opDur
		v.opSpans[i].Observe(opDur)
		v.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeAnalysis, Phase: journal.PhaseAnalysis,
			Rank: v.cfg.Rank, Step: step, DurNS: int64(opDur),
			Bytes:  opRes.ExtractBytes,
			Detail: op.Name() + ": " + opRes.Summary,
		})
		res.Ops = append(res.Ops, opRes)
	}
	// Results retains LastFrame beyond this step while the scratch frame
	// is overwritten by the next image, so snapshot it (one per-step copy
	// instead of the old one-allocation-per-image).
	last := fb.New(v.cfg.Width, v.cfg.Height)
	if err := last.CopyFrom(frame); err != nil {
		return res, err
	}
	res.LastFrame = last
	if v.cfg.Publisher != nil {
		v.cfg.Publisher.PublishFrame(step, last)
	}
	v.Results = append(v.Results, res)
	ctrSteps.Inc()
	ctrImages.Add(int64(res.Images))
	// The step is complete: advance the cursor (RenderStep is also called
	// directly by the tight-coupling driver, which resumes from NextStep)
	// and persist it so a restarted incarnation skips this step. The
	// journal is fsynced at the same boundary — the crash-safety contract
	// is "at most the in-flight step is lost".
	if int64(step+1) > v.next.Load() {
		v.next.Store(int64(step + 1))
	}
	if v.cfg.CursorPath != "" {
		cp := journal.Checkpoint{Step: v.NextStep(), Detail: fmt.Sprintf("rank=%d", v.cfg.Rank)}
		if cerr := journal.WriteCheckpoint(v.cfg.CursorPath, cp); cerr != nil {
			v.cfg.Journal.Error(v.cfg.Rank, step, cerr)
			return res, cerr
		}
		v.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeCheckpoint, Rank: v.cfg.Rank, Step: step,
			Detail: fmt.Sprintf("cursor=%d path=%s", v.NextStep(), filepath.Base(v.cfg.CursorPath)),
		})
		v.cfg.Journal.Sync()
	}
	return res, nil
}

// isoAlgorithms lists the renderers whose IsoValue slides across a
// multi-image step when unset (§IV-A: "a varying isovalue for 1000
// images").
var isoAlgorithms = map[string]bool{
	"vtk-iso": true,
	"ray-iso": true,
	"uns-iso": true,
}

// orbitCamera frames bounds from an azimuth that advances with the image
// index, so multi-image steps exercise distinct views deterministically.
func orbitCamera(bounds vec.AABB, img, total int) camera.Camera {
	c := bounds.Center()
	d := bounds.Diagonal()
	if d == 0 {
		d = 1
	}
	angle := 2 * math.Pi * float64(img) / float64(maxInt(total, 1))
	dir := vec.New(math.Cos(angle), 0.5, math.Sin(angle)).Norm()
	cam := camera.LookAt(c.Add(dir.Scale(d*1.2)), c, vec.New(0, 1, 0))
	cam.FitClip(bounds)
	return cam
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// applySteering folds any new steering state into the proxy's local
// overrides at a step boundary. Last writer wins; each update is
// applied exactly once (seq-gated) and journaled so the run can be
// replayed deterministically from its journal.
func (v *VizProxy) applySteering(step int) {
	if v.cfg.Steering == nil {
		return
	}
	st := v.cfg.Steering.Current(step)
	if st.Seq <= v.steerSeq {
		return
	}
	v.steerSeq = st.Seq
	v.hasCam, v.camOv = st.HasCam, st.Cam
	v.hasIso, v.isoOv = st.HasIso, st.Iso
	if !st.HasCam && !st.HasIso {
		return
	}
	detail := fmt.Sprintf("viz applied seq=%d", st.Seq)
	if st.HasCam {
		detail += fmt.Sprintf(" cam=%g,%g,%g", st.Cam.Az, st.Cam.El, st.Cam.Dist)
	}
	if st.HasIso {
		detail += fmt.Sprintf(" iso=%g", st.Iso)
	}
	v.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeSteer, Rank: v.cfg.Rank, Step: step, Detail: detail,
	})
}

// forwardSteering sends any new simulation-side steering (sampling
// ratio, wire codec) upstream as a control frame. Called from the
// Receive loop between steps, so FIFO ordering pins the step at which
// the simulation proxy observes the change.
func (v *VizProxy) forwardSteering(conn *transport.Conn, step int) error {
	if v.cfg.Steering == nil {
		return nil
	}
	st := v.cfg.Steering.Current(step)
	if st.Seq <= v.fwdSeq {
		return nil
	}
	v.fwdSeq = st.Seq
	if !st.HasRatio && !st.HasCodec {
		return nil
	}
	m := hub.Msg{Kind: hub.KindSteer}
	if st.HasRatio {
		m.Axes |= hub.AxisRatio
		m.Ratio = st.Ratio
	}
	if st.HasCodec {
		m.Axes |= hub.AxisCodec
		m.Codec = st.Codec
	}
	p, err := hub.EncodeMsg(v.ctrl[:0], m)
	if err != nil {
		return fmt.Errorf("proxy: encoding steering forward: %w", err)
	}
	v.ctrl = p
	v.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeSteer, Phase: journal.PhaseTransport,
		Rank: v.cfg.Rank, Step: step,
		Detail: fmt.Sprintf("forward seq=%d %s", st.Seq, m),
	})
	return conn.SendControl(p)
}

// steerCamera frames bounds from a steered view: the subscriber's
// azimuth/elevation anchor the orbit (the per-image sweep still
// advances from that anchor) and Dist scales the bounds-diagonal
// standoff.
func steerCamera(bounds vec.AABB, view hub.View, img, total int) camera.Camera {
	c := bounds.Center()
	d := bounds.Diagonal()
	if d == 0 {
		d = 1
	}
	az := view.Az + 2*math.Pi*float64(img)/float64(maxInt(total, 1))
	el := view.El
	dir := vec.New(math.Cos(az)*math.Cos(el), math.Sin(el), math.Sin(az)*math.Cos(el)).Norm()
	dist := view.Dist
	if dist <= 0 {
		dist = 1.2
	}
	cam := camera.LookAt(c.Add(dir.Scale(d*dist)), c, vec.New(0, 1, 0))
	cam.FitClip(bounds)
	return cam
}

// SetAllowGaps controls whether Receive tolerates the wire step jumping
// past the next expected step. The coupling degradation policy enables
// it when skipped steps are permitted; the default (false) treats a gap
// as a protocol error, guaranteeing no step is silently lost.
func (v *VizProxy) SetAllowGaps(on bool) { v.allowGaps = on }

// NextStep returns the first step not yet rendered and acknowledged.
// Safe to call from a watchdog goroutine while the proxy is serving.
func (v *VizProxy) NextStep() int { return int(v.next.Load()) }

// Receive runs the §III-C visualization-proxy protocol over an
// established connection: receive datasets, render, ack, until done. The
// step counter persists across calls, so after a reconnect the same
// proxy resumes where it stopped: a re-sent step it already rendered
// (wire step behind the counter) is re-acked without rendering — the ack
// was lost, not the work — and a step ahead of the counter is either a
// policy-sanctioned skip (SetAllowGaps) or a protocol error.
func (v *VizProxy) Receive(conn *transport.Conn) error {
	conn.Journal = v.cfg.Journal
	conn.Rank = v.cfg.Rank
	// Each step is rendered and analyzed before the next Recv, and neither
	// the renderers nor the analysis operations retain the dataset, so the
	// connection can decode every step into the previous step's arrays.
	conn.SetDatasetReuse(true)
	for {
		next := v.NextStep()
		if err := v.forwardSteering(conn, next); err != nil {
			v.cfg.Journal.Error(v.cfg.Rank, next, err)
			return err
		}
		conn.Step = next
		typ, ds, wireStep, err := conn.Recv()
		if err != nil {
			v.cfg.Journal.Error(v.cfg.Rank, next, err)
			return fmt.Errorf("proxy: receiving step %d: %w", next, err)
		}
		switch typ {
		case transport.MsgDone:
			return nil
		case transport.MsgDataset:
			step := int(wireStep)
			if step < next {
				// Duplicate of a step already rendered: the sender never saw
				// our ack (connection died in between). Re-ack, don't re-render.
				v.cfg.Journal.Emit(journal.Event{
					Type: journal.TypeResume, Phase: journal.PhaseTransport,
					Rank: v.cfg.Rank, Step: step,
					Detail: fmt.Sprintf("duplicate step %d re-acked, next=%d", step, next),
				})
				if err := conn.SendAck(wireStep); err != nil {
					return err
				}
				continue
			}
			if step > next {
				if !v.allowGaps {
					return fmt.Errorf("proxy: step gap: received %d, expected %d", step, next)
				}
				v.cfg.Journal.Emit(journal.Event{
					Type: journal.TypeResume, Phase: journal.PhaseTransport,
					Rank: v.cfg.Rank, Step: step,
					Detail: fmt.Sprintf("gap accepted: %d..%d skipped", next, step-1),
				})
			}
			// RenderStep advances the cursor on success.
			if _, err := v.RenderStep(step, ds); err != nil {
				return err
			}
			if err := conn.SendAck(wireStep); err != nil {
				return err
			}
		default:
			return fmt.Errorf("proxy: unexpected message type %d at step %d", typ, next)
		}
	}
}

// EnsureOutDir creates the artifact directory if configured.
func (v *VizProxy) EnsureOutDir() error {
	if v.cfg.OutDir == "" {
		return nil
	}
	return os.MkdirAll(v.cfg.OutDir, 0o755)
}

// TotalRenderTime sums render time across completed steps.
func (v *VizProxy) TotalRenderTime() time.Duration {
	var total time.Duration
	for _, r := range v.Results {
		total += r.Render
	}
	return total
}
