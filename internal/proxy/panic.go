package proxy

import (
	"errors"
	"fmt"
	"runtime/debug"

	"github.com/ascr-ecx/eth/internal/journal"
)

// ErrPanic is wrapped when a proxy worker panicked and the panic was
// contained: journaled with its stack and converted into an error the
// supervisor treats as a restartable failure instead of a process
// crash.
var ErrPanic = errors.New("proxy: worker panicked")

// ErrStopped is wrapped when a serve loop drained at a step boundary
// because its stop channel fired (graceful shutdown). The in-flight
// step completes; the next one is never started.
var ErrStopped = errors.New("proxy: serve stopped")

// containPanic is the deferred panic barrier for proxy workers: a panic
// in a render, analysis, or data-preparation path is recovered,
// journaled as an error event carrying the stack, fsynced (the panic
// may be the last thing this incarnation does), and surfaced through
// *errp as an ErrPanic-wrapped error.
func containPanic(jw *journal.Writer, rank, step int, role string, errp *error) {
	v := recover()
	if v == nil {
		return
	}
	stack := debug.Stack()
	jw.Emit(journal.Event{
		Type: journal.TypeError, Rank: rank, Step: step,
		Detail: fmt.Sprintf("role=%s panic contained", role),
		Err:    fmt.Sprintf("panic: %v\n%s", v, stack),
	})
	jw.Sync()
	*errp = fmt.Errorf("proxy: %s step %d: panic: %v: %w", role, step, v, ErrPanic)
}
