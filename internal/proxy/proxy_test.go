package proxy

import (
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/sampling"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

func testCloud(n int, seed int64) *data.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i)
		p.SetPos(i, vec.New(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		p.SetVel(i, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	p.SpeedField()
	return p
}

func TestDiskSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for step := 0; step < 3; step++ {
		p := filepath.Join(dir, "step"+string(rune('0'+step))+".ethd")
		if err := vtkio.WriteFile(p, testCloud(50+step, int64(step))); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	src, err := NewDiskSource(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if src.Steps() != 3 {
		t.Fatalf("steps = %d", src.Steps())
	}
	ds, err := src.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 51 {
		t.Errorf("step 1 count = %d", ds.Count())
	}
	if _, err := src.Step(5); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := NewDiskSource(); err == nil {
		t.Error("empty source accepted")
	}
	// Glob variant.
	gsrc, err := NewDiskSourceGlob(filepath.Join(dir, "*.ethd"))
	if err != nil {
		t.Fatal(err)
	}
	if gsrc.Steps() != 3 {
		t.Errorf("glob steps = %d", gsrc.Steps())
	}
}

func TestSimProxyPartitionAndSampling(t *testing.T) {
	whole := testCloud(1000, 1)
	src := &MemSource{Data: []data.Dataset{whole}}

	// Rank 1 of 4 with 50% sampling.
	sp, err := NewSimProxy(SimConfig{
		Rank: 1, Ranks: 4,
		SamplingRatio:  0.5,
		SamplingMethod: sampling.Stride,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sp.StepData(0)
	if err != nil {
		t.Fatal(err)
	}
	// 1000/4 = 250 per rank, x0.5 = ~125.
	if ds.Count() < 100 || ds.Count() > 150 {
		t.Errorf("rank piece count = %d, want ~125", ds.Count())
	}
}

func TestSimProxyValidation(t *testing.T) {
	src := &MemSource{Data: []data.Dataset{testCloud(10, 1)}}
	if _, err := NewSimProxy(SimConfig{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewSimProxy(SimConfig{Rank: 5, Ranks: 2}, src); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := NewSimProxy(SimConfig{SamplingRatio: -1}, src); err == nil {
		t.Error("negative sampling accepted")
	}
	// Default ratio = 1.
	sp, err := NewSimProxy(SimConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := sp.StepData(0)
	if ds.Count() != 10 {
		t.Errorf("default config altered data: %d", ds.Count())
	}
}

func TestFuncSource(t *testing.T) {
	src := &FuncSource{N: 2, Fn: func(step int) (data.Dataset, error) {
		return testCloud(10*(step+1), int64(step)), nil
	}}
	if src.Steps() != 2 {
		t.Error("steps wrong")
	}
	ds, err := src.Step(1)
	if err != nil || ds.Count() != 20 {
		t.Errorf("func source step: %v %d", err, ds.Count())
	}
}

func TestVizProxyRendersSteps(t *testing.T) {
	vp, err := NewVizProxy(VizConfig{
		Width: 64, Height: 64,
		Algorithm:     "points",
		ImagesPerStep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vp.RenderStep(0, testCloud(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 3 || res.Elements != 200 {
		t.Errorf("result = %+v", res)
	}
	if res.LastFrame == nil || res.LastFrame.CoveredPixels() == 0 {
		t.Error("no pixels rendered")
	}
	if vp.TotalRenderTime() <= 0 {
		t.Error("no render time recorded")
	}
}

func TestVizProxyWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	vp, err := NewVizProxy(VizConfig{
		Width: 32, Height: 32,
		Algorithm:     "gsplat",
		ImagesPerStep: 2,
		OutDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vp.EnsureOutDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := vp.RenderStep(0, testCloud(100, 3)); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("artifacts = %d, want 2", len(files))
	}
}

func TestVizProxyValidation(t *testing.T) {
	if _, err := NewVizProxy(VizConfig{Width: 0, Height: 10, Algorithm: "points"}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewVizProxy(VizConfig{Width: 8, Height: 8}); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := NewVizProxy(VizConfig{Width: 8, Height: 8, Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestServeReceiveProtocol(t *testing.T) {
	// Full protocol over a real socket: 3 steps, ack each, then done.
	src := &MemSource{Data: []data.Dataset{
		testCloud(100, 1), testCloud(120, 2), testCloud(90, 3),
	}}
	sp, err := NewSimProxy(SimConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewVizProxy(VizConfig{Width: 32, Height: 32, Algorithm: "points"})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	simErr := make(chan error, 1)
	var bytesSent int64
	go func() {
		c, err := ln.Accept()
		if err != nil {
			simErr <- err
			return
		}
		conn := transport.NewConn(c)
		defer conn.Close()
		n, err := sp.Serve(conn)
		bytesSent = n
		simErr <- err
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(c)
	defer conn.Close()
	if err := vp.Receive(conn); err != nil {
		t.Fatal(err)
	}
	if err := <-simErr; err != nil {
		t.Fatal(err)
	}
	if len(vp.Results) != 3 {
		t.Fatalf("rendered %d steps, want 3", len(vp.Results))
	}
	if vp.Results[1].Elements != 120 {
		t.Errorf("step 1 elements = %d", vp.Results[1].Elements)
	}
	if bytesSent == 0 {
		t.Error("no bytes accounted")
	}
}

func TestSimProxyGridSampling(t *testing.T) {
	g := data.NewStructuredGrid(16, 16, 16)
	g.FillField("temperature", func(p vec.V3) float32 { return float32(p.X) })
	src := &MemSource{Data: []data.Dataset{g}}
	sp, err := NewSimProxy(SimConfig{SamplingRatio: 0.1}, src)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sp.StepData(0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() >= g.Count() {
		t.Errorf("grid sampling kept %d of %d", ds.Count(), g.Count())
	}
}

// Protocol failure injection: the proxies must detect peers that violate
// the dataset/ack protocol rather than hang or mis-render.

func protoPair(t *testing.T) (*transport.Conn, *transport.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	a, b := transport.NewConn(client), transport.NewConn(server)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestVizRejectsUnexpectedMessage(t *testing.T) {
	a, b := protoPair(t)
	vp, err := NewVizProxy(VizConfig{Width: 16, Height: 16, Algorithm: "points"})
	if err != nil {
		t.Fatal(err)
	}
	go a.SendAck(0) // protocol violation: ack before any dataset
	if err := vp.Receive(b); err == nil {
		t.Error("viz accepted an unexpected ack")
	}
}

func TestSimRejectsWrongAck(t *testing.T) {
	a, b := protoPair(t)
	sp, err := NewSimProxy(SimConfig{}, &MemSource{Data: []data.Dataset{testCloud(10, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Consume the dataset, then ack the wrong step.
		b.Recv()
		b.SendAck(99)
	}()
	if _, err := sp.Serve(a); err == nil {
		t.Error("sim accepted a wrong-step ack")
	}
}

func TestSimDetectsPeerDeath(t *testing.T) {
	a, b := protoPair(t)
	sp, err := NewSimProxy(SimConfig{}, &MemSource{Data: []data.Dataset{testCloud(10, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		b.Recv()
		b.Close() // die instead of acking
	}()
	if _, err := sp.Serve(a); err == nil {
		t.Error("sim did not detect peer death")
	}
}

func TestVizDetectsPeerDeathMidStream(t *testing.T) {
	a, b := protoPair(t)
	vp, err := NewVizProxy(VizConfig{Width: 16, Height: 16, Algorithm: "points"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		a.SendDataset(testCloud(20, 1))
		// Read the ack, then vanish without Done.
		a.Recv()
		a.Close()
	}()
	if err := vp.Receive(b); err == nil {
		t.Error("viz did not detect missing Done")
	}
	if len(vp.Results) != 1 {
		t.Errorf("viz rendered %d steps before the failure", len(vp.Results))
	}
}
