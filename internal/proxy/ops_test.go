package proxy

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/ascr-ecx/eth/internal/analysis"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

func clusteredCloud() *data.PointCloud {
	// Two tight clusters of 60 particles each plus 30 background.
	p := data.NewPointCloud(150)
	idx := 0
	put := func(c vec.V3, n int, spread float64) {
		for i := 0; i < n; i++ {
			p.IDs[idx] = int64(idx)
			off := vec.New(
				float64(i%4)*spread, float64((i/4)%4)*spread, float64(i/16)*spread,
			)
			p.SetPos(idx, c.Add(off))
			idx++
		}
	}
	put(vec.New(5, 5, 5), 60, 0.1)
	put(vec.New(25, 25, 25), 60, 0.1)
	put(vec.New(15, 15, 15), 30, 3.0)
	p.SpeedField()
	return p
}

func TestHaloOperation(t *testing.T) {
	dir := t.TempDir()
	op := &HaloOperation{Options: analysis.FOFOptions{LinkLength: 0.5, MinMembers: 20}}
	if op.Name() != "halos" {
		t.Error("name wrong")
	}
	res, err := op.Apply(OpContext{Step: 1, Rank: 0, OutDir: dir}, clusteredCloud())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractBytes == 0 {
		t.Error("no extract written")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "halos_step001_rank0.json"))
	if err != nil {
		t.Fatal(err)
	}
	var halos []analysis.Halo
	if err := json.Unmarshal(raw, &halos); err != nil {
		t.Fatal(err)
	}
	if len(halos) != 2 {
		t.Errorf("catalog has %d halos, want 2", len(halos))
	}
	// Wrong kind rejected.
	if _, err := op.Apply(OpContext{}, data.NewStructuredGrid(2, 2, 2)); err == nil {
		t.Error("grid accepted by halo operation")
	}
	// No OutDir: computes but writes nothing.
	res, err = op.Apply(OpContext{}, clusteredCloud())
	if err != nil || res.ExtractBytes != 0 {
		t.Errorf("dry apply: %v, %d bytes", err, res.ExtractBytes)
	}
}

func TestStatsOperationAllKinds(t *testing.T) {
	dir := t.TempDir()
	op := &StatsOperation{Bins: 8}

	grid := data.NewStructuredGrid(4, 4, 4)
	grid.FillField("temperature", func(p vec.V3) float32 { return float32(p.X) })

	datasets := []data.Dataset{
		clusteredCloud(),
		grid,
		data.Tetrahedralize(grid),
	}
	for i, ds := range datasets {
		res, err := op.Apply(OpContext{Step: i, OutDir: dir}, ds)
		if err != nil {
			t.Fatalf("kind %v: %v", ds.Kind(), err)
		}
		if res.Summary == "" || res.ExtractBytes == 0 {
			t.Errorf("kind %v: empty result", ds.Kind())
		}
	}
	// Extract is valid JSON with consistent histogram totals.
	raw, err := os.ReadFile(filepath.Join(dir, "stats_step001_rank0.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Field     string `json:"field"`
		BinCounts []int  `json:"binCounts"`
		Stats     struct {
			Count int `json:"Count"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range ex.BinCounts {
		total += c
	}
	if total != ex.Stats.Count {
		t.Errorf("histogram counts %d != field count %d", total, ex.Stats.Count)
	}
	// Missing field errors.
	if _, err := op.Apply(OpContext{}, data.NewPointCloud(3)); err == nil {
		t.Error("missing speed field accepted")
	}
}

func TestSaveOperationRoundTrips(t *testing.T) {
	dir := t.TempDir()
	op := &SaveOperation{}
	cloud := clusteredCloud()
	res, err := op.Apply(OpContext{Step: 2, Rank: 1, OutDir: dir}, cloud)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractBytes == 0 {
		t.Error("nothing written")
	}
	got, err := vtkio.ReadFile(filepath.Join(dir, "data_step002_rank1.ethd"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != cloud.Count() {
		t.Errorf("round trip count = %d", got.Count())
	}
	// Without OutDir: no-op.
	res, err = op.Apply(OpContext{}, cloud)
	if err != nil || res.ExtractBytes != 0 {
		t.Errorf("dry save: %v, %d", err, res.ExtractBytes)
	}
}

func TestVizProxyRunsOperations(t *testing.T) {
	dir := t.TempDir()
	vp, err := NewVizProxy(VizConfig{
		Width: 48, Height: 48,
		Algorithm:     "points",
		ImagesPerStep: 1,
		OutDir:        dir,
		Operations: []Operation{
			&HaloOperation{Options: analysis.FOFOptions{LinkLength: 0.5, MinMembers: 20}},
			&StatsOperation{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vp.EnsureOutDir(); err != nil {
		t.Fatal(err)
	}
	res, err := vp.RenderStep(0, clusteredCloud())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 2 {
		t.Fatalf("ops = %d", len(res.Ops))
	}
	if res.Ops[0].Op != "halos" || res.Ops[1].Op != "stats" {
		t.Errorf("op order: %+v", res.Ops)
	}
	// Artifacts: 1 png + halos json + stats json.
	files, _ := os.ReadDir(dir)
	if len(files) != 3 {
		t.Errorf("artifacts = %d, want 3", len(files))
	}
}

func TestStatsWelfordAccuracy(t *testing.T) {
	vals := []float32{2, 4, 4, 4, 5, 5, 7, 9}
	st := analysis.Stats(vals)
	if st.Count != 8 || st.Min != 2 || st.Max != 9 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.Mean-5) > 1e-12 {
		t.Errorf("mean = %v", st.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(st.Std-math.Sqrt(32.0/7)) > 1e-9 {
		t.Errorf("std = %v", st.Std)
	}
	if analysis.Stats(nil).Count != 0 {
		t.Error("empty stats")
	}
}
