// Package par is ETH's intra-node threading substrate — the stand-in for the
// Intel TBB layer the paper uses inside each MPI rank. It provides grained
// parallel-for loops, parallel reductions, and a reusable worker pool whose
// concurrency can be pinned per pipeline so that experiments can model
// "cores assigned to visualization" separately from "cores on the node".
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the process-wide default worker count
// (GOMAXPROCS), the equivalent of TBB's automatic task-arena size.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// panicBox captures the first panic raised by a set of worker goroutines
// so the coordinator can rethrow it after the workers are joined. Without
// it, a panic inside a worker kills the whole process from a goroutine
// with no caller context — and, worse for the harness, can deadlock a
// WaitGroup mid-sweep so the run wedges instead of failing loudly.
type panicBox struct {
	once sync.Once
	val  any
	set  bool
}

// capture is used as `defer pb.capture()` inside a worker; it records the
// first in-flight panic value and swallows it so sibling workers finish.
func (b *panicBox) capture() {
	if v := recover(); v != nil {
		b.once.Do(func() { b.val = v; b.set = true })
	}
}

// rethrow re-raises the captured panic (if any) on the calling goroutine.
// It must be called after the workers have been joined.
func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// For runs body(i) for every i in [0, n) using up to workers goroutines.
// Iterations are dealt in contiguous grains to keep cache behaviour close
// to a static OpenMP/TBB schedule while still load balancing via work
// stealing from a shared atomic cursor. workers <= 0 selects
// DefaultWorkers(). The call returns only after every iteration completed.
func For(n, workers int, body func(i int)) {
	ForGrained(n, workers, grainFor(n, workers), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForGrained runs body(lo, hi) over disjoint half-open ranges that cover
// [0, n), each at most grain long. It is the building block for loops that
// want to amortize per-iteration setup (e.g. scanline renderers keeping a
// local span buffer). grain <= 0 selects a heuristic grain.
func ForGrained(n, workers, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if grain <= 0 {
		grain = grainFor(n, workers)
	}
	if workers == 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// grainFor picks a grain that gives each worker several grains for load
// balance without making the atomic cursor a bottleneck.
func grainFor(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	return g
}

// ReduceFloat64 computes a parallel reduction over [0, n): each worker
// folds its iterations into a private accumulator seeded with identity
// using body, and the per-worker partials are combined with merge in
// worker order. merge must be associative; it need not be commutative.
func ReduceFloat64(n, workers int, identity float64,
	body func(i int, acc float64) float64,
	merge func(a, b float64) float64,
) float64 {
	if n <= 0 {
		return identity
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer pb.capture()
			acc := identity
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for i := lo; i < hi; i++ {
				acc = body(i, acc)
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	pb.rethrow()
	acc := identity
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}

// Pool is a fixed-size worker pool that executes submitted tasks. Unlike
// ad hoc goroutine spawning, a Pool bounds the concurrency of a whole
// pipeline stage, which is how ETH models "this proxy owns K cores" in
// the intercore coupling experiments.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	size  int
	pb    panicBox // first panicked task; rethrown by Wait and ForPool

	mu     sync.Mutex
	closed bool // guarded by mu
}

// NewPool starts a pool with the given number of workers
// (<= 0 selects DefaultWorkers()).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		tasks: make(chan func(), workers*2),
		size:  workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				func() {
					defer p.wg.Done()
					defer p.pb.capture()
					task()
				}()
			}
		}()
	}
	return p
}

// Size returns the number of workers in the pool.
func (p *Pool) Size() int { return p.size }

// Submit schedules task for execution. It panics if the pool is closed,
// mirroring send-on-closed-channel semantics deliberately: submitting work
// to a torn-down pipeline is a programming error the harness wants loud.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed. If any task
// panicked, Wait rethrows the first such panic on the caller.
func (p *Pool) Wait() {
	p.wg.Wait()
	p.pb.rethrow()
}

// Close waits for outstanding tasks and stops the workers. The pool cannot
// be reused afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.wg.Wait()
	close(p.tasks)
}

// ForPool is like For but borrows concurrency from an existing pool,
// so several pipeline stages can share one core budget.
func (p *Pool) ForPool(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	grain := grainFor(n, p.size)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	slots := p.size
	if slots > n {
		slots = n
	}
	wg.Add(slots)
	for w := 0; w < slots; w++ {
		p.Submit(func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		})
	}
	wg.Wait()
	p.pb.rethrow()
}
