package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIterations(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		for _, workers := range []int{0, 1, 3, 16} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForGrainedRangesAreDisjointAndComplete(t *testing.T) {
	n := 1003
	hits := make([]int32, n)
	ForGrained(n, 4, 17, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForGrainedSingleWorkerSequential(t *testing.T) {
	n := 50
	var order []int
	ForGrained(n, 1, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("single worker should be in order; got order[%d]=%d", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 10000
	got := ReduceFloat64(n, 8, 0,
		func(i int, acc float64) float64 { return acc + float64(i) },
		func(a, b float64) float64 { return a + b },
	)
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestReduceMax(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := ReduceFloat64(len(vals), 3, vals[0],
		func(i int, acc float64) float64 {
			if vals[i] > acc {
				return vals[i]
			}
			return acc
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
	)
	if got != 9 {
		t.Errorf("max = %v", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := ReduceFloat64(0, 4, -1,
		func(i int, acc float64) float64 { return 0 },
		func(a, b float64) float64 { return a + b },
	)
	if got != -1 {
		t.Errorf("empty reduce = %v, want identity", got)
	}
}

// Property: parallel sum equals sequential sum regardless of worker count.
func TestReduceMatchesSequentialProperty(t *testing.T) {
	f := func(raw []float64, workers uint8) bool {
		w := int(workers%8) + 1
		seq := 0.0
		for _, v := range raw {
			if v != v || v > 1e100 || v < -1e100 { // skip NaN/huge to avoid fp-order issues
				return true
			}
			seq += v
		}
		got := ReduceFloat64(len(raw), w, 0,
			func(i int, acc float64) float64 { return acc + raw[i] },
			func(a, b float64) float64 { return a + b },
		)
		diff := got - seq
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		for _, v := range raw {
			if v > 0 {
				scale += v
			} else {
				scale -= v
			}
		}
		return diff <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", count.Load())
	}
}

func TestPoolForPool(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 500
	hits := make([]int32, n)
	p.ForPool(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Pool remains usable for a second round.
	p.ForPool(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 2 {
			t.Fatalf("round 2: index %d visited %d times", i, h)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic
}

func TestPoolSize(t *testing.T) {
	if got := NewPool(5).Size(); got != 5 {
		t.Errorf("Size = %d", got)
	}
	if got := NewPool(0).Size(); got != DefaultWorkers() {
		t.Errorf("default Size = %d, want %d", got, DefaultWorkers())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	data := make([]float64, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(len(data), 0, func(j int) { data[j] = float64(j) * 1.5 })
	}
}
