package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint is the crash-safe progress sidecar written next to a run
// journal. It records how far a run or sweep actually got — the first
// step not yet completed, the experiment IDs already finished — so a
// restarted harness resumes instead of replaying. Checkpoints are
// written with WriteCheckpoint's write-temp/fsync/rename protocol, so a
// crash at any instant leaves either the previous checkpoint or the new
// one, never a torn file.
type Checkpoint struct {
	// T is the write time (stamped by WriteCheckpoint when zero).
	T time.Time `json:"t"`
	// Step is the first step not yet completed (a viz cursor, a run's
	// progress watermark). -1 when the checkpoint is not step-scoped.
	Step int `json:"step"`
	// Done lists completed work-unit IDs (ethbench experiment names).
	Done []string `json:"done,omitempty"`
	// Detail is a short human-readable qualifier ("complete", the run
	// configuration, ...).
	Detail string `json:"detail,omitempty"`
}

// Has reports whether id is recorded as completed.
func (c Checkpoint) Has(id string) bool {
	for _, d := range c.Done {
		if d == id {
			return true
		}
	}
	return false
}

// WriteCheckpoint atomically replaces the checkpoint at path: the record
// is written to a temporary file in the same directory, fsynced, and
// renamed over path. Readers (and crashes) therefore always observe a
// complete checkpoint.
func WriteCheckpoint(path string, cp Checkpoint) error {
	if cp.T.IsZero() {
		cp.T = time.Now()
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("journal: encoding checkpoint: %w", err)
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: writing checkpoint %s: %w", path, err)
	}
	return nil
}

// ReadCheckpoint loads the checkpoint at path. A missing file is an
// os.ErrNotExist-wrapped error, so resumable callers can treat "no
// checkpoint yet" as a fresh start with errors.Is.
func ReadCheckpoint(path string) (Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("journal: reading checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("journal: decoding checkpoint %s: %w", path, err)
	}
	return cp, nil
}
