//go:build !unix

package journal

import "os"

// lockFile is a no-op on platforms without flock semantics: the
// one-writer-per-journal-file contract is enforced only where the
// kernel can release the lock on process death. All supported fleet
// deployments are unix.
func lockFile(f *os.File) error { return nil }
