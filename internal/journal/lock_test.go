//go:build unix

package journal

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestOneWriterPerJournalFile pins the concurrency contract Create and
// Append enforce with an exclusive flock: one live writer per journal
// file. A second open — from this process or another — fails with
// ErrLocked instead of interleaving two event streams in one file.
// Many-writer fan-in goes through internal/ingest's batcher, where each
// producer owns its own file and the batcher serializes the merge.
func TestOneWriterPerJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")

	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw.Emit(Event{Type: TypeRender, Rank: 0, Step: 0})

	if _, err := Append(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("Append over a live writer = %v, want ErrLocked", err)
	}
	if _, err := Create(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("Create over a live writer = %v, want ErrLocked", err)
	}

	// Close releases the lock; the next writer takes over and the first
	// writer's events are still there (Append does not truncate).
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jw2, err := Append(path)
	if err != nil {
		t.Fatalf("Append after Close = %v, want success", err)
	}
	jw2.Emit(Event{Type: TypeRender, Rank: 0, Step: 1})
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("journal has %d events after writer handoff, want 2", len(events))
	}
}

// TestCreateTruncatesUnderLock proves Create only truncates after the
// lock is held: a failed Create against a live writer leaves the
// existing journal intact.
func TestCreateTruncatesUnderLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw.Emit(Event{Type: TypeRender, Rank: 0, Step: 0})
	if err := jw.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Create = %v, want ErrLocked", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("rejected Create clobbered the journal: %d events, want 1", len(events))
	}
}
