//go:build unix

package journal

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a kernel-advisory exclusive lock (flock) on the open
// journal file, enforcing the one-writer-per-journal-file contract. The
// lock belongs to the open file description: it conflicts with any
// other open of the same file — a second writer in this process or
// another — and is released when the descriptor closes, including by
// process death, so a SIGKILLed writer frees its journal for the
// restarted incarnation automatically.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return fmt.Errorf("one writer per journal file: %w", ErrLocked)
	}
	if err != nil {
		return fmt.Errorf("locking: %w", err)
	}
	return nil
}
