package journal

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilWriterIsSafe(t *testing.T) {
	var j *Writer
	j.Emit(Event{Type: TypeRender})
	j.Error(0, 0, errors.New("boom"))
	if j.Events() != nil || j.Len() != 0 || j.Err() != nil || j.Close() != nil {
		t.Error("nil writer misbehaved")
	}
}

func TestEmitStampsTime(t *testing.T) {
	j := New()
	before := time.Now()
	j.Emit(Event{Type: TypeRunStart, Rank: -1, Step: -1})
	evs := j.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].T.Before(before) {
		t.Error("T not stamped")
	}
	// An explicit timestamp is preserved.
	at := time.Date(2020, 5, 18, 0, 0, 0, 0, time.UTC)
	j.Emit(Event{Type: TypeRunEnd, T: at})
	if got := j.Events()[1].T; !got.Equal(at) {
		t.Errorf("T = %v, want %v", got, at)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: TypeRunStart, Rank: -1, Step: -1, Detail: "algorithm=raycast"},
		{Type: TypeDataset, Phase: PhaseGenerate, Rank: -1, Step: 0, DurNS: 1e6, Elements: 500, Bytes: 12000},
		{Type: TypeSample, Phase: PhaseSample, Rank: 0, Step: 0, DurNS: 2e5, Elements: 250, Detail: "method=random ratio=0.5"},
		{Type: TypeTransfer, Phase: PhaseTransport, Rank: 0, Step: 0, DurNS: 3e5, Bytes: 6000, Detail: "send"},
		{Type: TypeRender, Phase: PhaseRender, Rank: 0, Step: 0, DurNS: 4e6, Elements: 250},
		{Type: TypeError, Rank: 1, Step: 0, Err: "synthetic failure"},
		{Type: TypeRunEnd, Rank: -1, Step: -1, DurNS: 6e6},
	}
	for _, ev := range want {
		j.Emit(ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.Phase != w.Phase || g.Rank != w.Rank ||
			g.Step != w.Step || g.DurNS != w.DurNS || g.Bytes != w.Bytes ||
			g.Elements != w.Elements || g.Detail != w.Detail || g.Err != w.Err {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
	}

	// The in-memory record and the file replay agree.
	mem := j.Events()
	for i := range mem {
		if mem[i].Type != got[i].Type || mem[i].DurNS != got[i].DurNS {
			t.Errorf("memory/file divergence at %d", i)
		}
	}
}

func TestBreakdownAndHelpers(t *testing.T) {
	events := []Event{
		{Type: TypeRunStart},
		{Type: TypeDataset, Phase: PhaseGenerate, DurNS: int64(10 * time.Millisecond)},
		{Type: TypeDataset, Phase: PhaseGenerate, DurNS: int64(5 * time.Millisecond)},
		{Type: TypeRender, Phase: PhaseRender, DurNS: int64(40 * time.Millisecond)},
		{Type: TypeComposite, Phase: PhaseComposite, DurNS: int64(2 * time.Millisecond)},
		{Type: TypePhase, Detail: "pair_end", DurNS: int64(time.Hour)}, // no phase: excluded
		{Type: TypeError, Err: "x"},
		{Type: TypeRunEnd, DurNS: int64(60 * time.Millisecond)},
	}
	b := Breakdown(events)
	if b[PhaseGenerate] != 15*time.Millisecond {
		t.Errorf("generate = %v", b[PhaseGenerate])
	}
	if b[PhaseRender] != 40*time.Millisecond {
		t.Errorf("render = %v", b[PhaseRender])
	}
	if len(b) != 3 {
		t.Errorf("phases = %v", b)
	}
	if Wall(events) != 60*time.Millisecond {
		t.Errorf("wall = %v", Wall(events))
	}
	if n := CountByType(events)[TypeDataset]; n != 2 {
		t.Errorf("dataset count = %d", n)
	}
	if errs := Errors(events); len(errs) != 1 || errs[0].Err != "x" {
		t.Errorf("errors = %v", errs)
	}
	if names := PhaseNames(events); len(names) != 3 || names[0] != PhaseGenerate || names[2] != PhaseComposite {
		t.Errorf("phase names = %v", names)
	}
}

func TestWallWithoutRunEnd(t *testing.T) {
	t0 := time.Now()
	events := []Event{
		{Type: TypeRunStart, T: t0},
		{Type: TypeRender, T: t0.Add(30 * time.Millisecond)},
	}
	if Wall(events) != 30*time.Millisecond {
		t.Errorf("wall = %v", Wall(events))
	}
	if Wall(nil) != 0 {
		t.Error("empty wall nonzero")
	}
}

func TestReadSkipsBlankAndFlagsMalformed(t *testing.T) {
	good := `{"t":"2020-05-18T00:00:00Z","type":"run_start","rank":-1,"step":-1}

{"t":"2020-05-18T00:00:01Z","type":"run_end","rank":-1,"step":-1}
`
	events, err := Read(strings.NewReader(good))
	if err != nil || len(events) != 2 {
		t.Fatalf("events = %d, err = %v", len(events), err)
	}
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(Event{Type: TypeRender, Phase: PhaseRender, Rank: w, Step: i, DurNS: 1})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*per {
		t.Errorf("replayed %d events, want %d", len(events), workers*per)
	}
	if Breakdown(events)[PhaseRender] != time.Duration(workers*per) {
		t.Error("concurrent events lost duration")
	}
}
