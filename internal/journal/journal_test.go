package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilWriterIsSafe(t *testing.T) {
	var j *Writer
	j.Emit(Event{Type: TypeRender})
	j.Error(0, 0, errors.New("boom"))
	if j.Events() != nil || j.Len() != 0 || j.Err() != nil || j.Close() != nil {
		t.Error("nil writer misbehaved")
	}
}

func TestEmitStampsTime(t *testing.T) {
	j := New()
	before := time.Now()
	j.Emit(Event{Type: TypeRunStart, Rank: -1, Step: -1})
	evs := j.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].T.Before(before) {
		t.Error("T not stamped")
	}
	// An explicit timestamp is preserved.
	at := time.Date(2020, 5, 18, 0, 0, 0, 0, time.UTC)
	j.Emit(Event{Type: TypeRunEnd, T: at})
	if got := j.Events()[1].T; !got.Equal(at) {
		t.Errorf("T = %v, want %v", got, at)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: TypeRunStart, Rank: -1, Step: -1, Detail: "algorithm=raycast"},
		{Type: TypeDataset, Phase: PhaseGenerate, Rank: -1, Step: 0, DurNS: 1e6, Elements: 500, Bytes: 12000},
		{Type: TypeSample, Phase: PhaseSample, Rank: 0, Step: 0, DurNS: 2e5, Elements: 250, Detail: "method=random ratio=0.5"},
		{Type: TypeTransfer, Phase: PhaseTransport, Rank: 0, Step: 0, DurNS: 3e5, Bytes: 6000, Detail: "send"},
		{Type: TypeRender, Phase: PhaseRender, Rank: 0, Step: 0, DurNS: 4e6, Elements: 250},
		{Type: TypeError, Rank: 1, Step: 0, Err: "synthetic failure"},
		{Type: TypeRunEnd, Rank: -1, Step: -1, DurNS: 6e6},
	}
	for _, ev := range want {
		j.Emit(ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.Phase != w.Phase || g.Rank != w.Rank ||
			g.Step != w.Step || g.DurNS != w.DurNS || g.Bytes != w.Bytes ||
			g.Elements != w.Elements || g.Detail != w.Detail || g.Err != w.Err {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
	}

	// The in-memory record and the file replay agree.
	mem := j.Events()
	for i := range mem {
		if mem[i].Type != got[i].Type || mem[i].DurNS != got[i].DurNS {
			t.Errorf("memory/file divergence at %d", i)
		}
	}
}

func TestBreakdownAndHelpers(t *testing.T) {
	events := []Event{
		{Type: TypeRunStart},
		{Type: TypeDataset, Phase: PhaseGenerate, DurNS: int64(10 * time.Millisecond)},
		{Type: TypeDataset, Phase: PhaseGenerate, DurNS: int64(5 * time.Millisecond)},
		{Type: TypeRender, Phase: PhaseRender, DurNS: int64(40 * time.Millisecond)},
		{Type: TypeComposite, Phase: PhaseComposite, DurNS: int64(2 * time.Millisecond)},
		{Type: TypePhase, Detail: "pair_end", DurNS: int64(time.Hour)}, // no phase: excluded
		{Type: TypeError, Err: "x"},
		{Type: TypeRunEnd, DurNS: int64(60 * time.Millisecond)},
	}
	b := Breakdown(events)
	if b[PhaseGenerate] != 15*time.Millisecond {
		t.Errorf("generate = %v", b[PhaseGenerate])
	}
	if b[PhaseRender] != 40*time.Millisecond {
		t.Errorf("render = %v", b[PhaseRender])
	}
	if len(b) != 3 {
		t.Errorf("phases = %v", b)
	}
	if Wall(events) != 60*time.Millisecond {
		t.Errorf("wall = %v", Wall(events))
	}
	if n := CountByType(events)[TypeDataset]; n != 2 {
		t.Errorf("dataset count = %d", n)
	}
	if errs := Errors(events); len(errs) != 1 || errs[0].Err != "x" {
		t.Errorf("errors = %v", errs)
	}
	if names := PhaseNames(events); len(names) != 3 || names[0] != PhaseGenerate || names[2] != PhaseComposite {
		t.Errorf("phase names = %v", names)
	}
}

func TestWallWithoutRunEnd(t *testing.T) {
	t0 := time.Now()
	events := []Event{
		{Type: TypeRunStart, T: t0},
		{Type: TypeRender, T: t0.Add(30 * time.Millisecond)},
	}
	if Wall(events) != 30*time.Millisecond {
		t.Errorf("wall = %v", Wall(events))
	}
	if Wall(nil) != 0 {
		t.Error("empty wall nonzero")
	}
}

func TestReadSkipsBlankAndFlagsMalformed(t *testing.T) {
	good := `{"t":"2020-05-18T00:00:00Z","type":"run_start","rank":-1,"step":-1}

{"t":"2020-05-18T00:00:01Z","type":"run_end","rank":-1,"step":-1}
`
	events, err := Read(strings.NewReader(good))
	if err != nil || len(events) != 2 {
		t.Fatalf("events = %d, err = %v", len(events), err)
	}
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lacks line number: %v", err)
	}
}

// TestTornTailTolerated byte-truncates a journal mid final line — the
// exact artifact a kill -9 during a write leaves — and demands every
// complete event back plus the ErrTornTail sentinel.
func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.Emit(Event{Type: TypeRender, Phase: PhaseRender, Rank: 0, Step: i, DurNS: 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Losing only the trailing newline leaves a complete, parseable
	// event: not torn, all 5 events intact.
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if events, err := ReadFile(path); err != nil || len(events) != 5 {
		t.Fatalf("newline-only truncation: %d events, err = %v", len(events), err)
	}
	// Tear the final line at every truncation point that leaves a partial
	// write: from "two bytes of line 5 missing" down to "line 5 barely
	// started". All must yield the 4 complete events plus the sentinel.
	last := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n') + 1
	for cut := len(raw) - 2; cut > last; cut-- {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		events, err := ReadFile(path)
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut=%d: err = %v, want wrapped ErrTornTail", cut, err)
		}
		if len(events) != 4 {
			t.Fatalf("cut=%d: recovered %d events, want 4", cut, len(events))
		}
		for i, ev := range events {
			if ev.Step != i {
				t.Fatalf("cut=%d: event %d has step %d", cut, i, ev.Step)
			}
		}
	}
	// A clean truncation at the line boundary is not torn: 4 events, nil.
	if err := os.WriteFile(path, raw[:last], 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil || len(events) != 4 {
		t.Fatalf("boundary truncation: %d events, err = %v", len(events), err)
	}
	// A malformed line in the middle (newline-terminated) is still a hard
	// error: torn-tail tolerance must not mask real corruption.
	bad := append(append([]byte{}, raw[:last]...), []byte("{corrupt}\n")...)
	bad = append(bad, raw[last:]...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || errors.Is(err, ErrTornTail) {
		t.Errorf("mid-file corruption: err = %v, want a hard parse error", err)
	}
}

// TestAppendContinuesStream proves the restart path: a second writer
// opened with Append extends the first incarnation's journal instead of
// truncating it.
func TestAppendContinuesStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j1, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Emit(Event{Type: TypeRender, Step: 0})
	j1.Emit(Event{Type: TypeRender, Step: 1})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Emit(Event{Type: TypeRestart, Step: -1, Detail: "role=viz attempt=1/3 cause=kill"})
	j2.Emit(Event{Type: TypeRender, Step: 2})
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	if events[2].Type != TypeRestart || events[3].Step != 2 {
		t.Errorf("appended events wrong: %+v", events[2:])
	}
}

// TestAppendRepairsTornTail pins the restart-after-kill path: reopening
// a journal whose final line was torn by a crash truncates the partial
// line, so the resumed stream stays parseable end to end.
func TestAppendRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j1, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Emit(Event{Type: TypeRender, Step: 0})
	j1.Emit(Event{Type: TypeRender, Step: 1})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line mid-record, as a kill -9 mid-write would.
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Emit(Event{Type: TypeRender, Step: 1})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatalf("resumed journal unreadable: %v", err)
	}
	if len(events) != 2 || events[1].Step != 1 {
		t.Fatalf("events = %+v, want torn step-1 line replaced by appended one", events)
	}
}

func TestCheckpointRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if _, err := ReadCheckpoint(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint: err = %v, want wrapped os.ErrNotExist", err)
	}
	cp := Checkpoint{Step: 7, Done: []string{"table1", "fig8"}, Detail: "sweep"}
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || !got.Has("fig8") || got.Has("fig9") || got.T.IsZero() {
		t.Errorf("checkpoint = %+v", got)
	}
	// Overwrite must go through the temp+rename protocol: no temp residue
	// and the new record fully replaces the old.
	if err := WriteCheckpoint(path, Checkpoint{Step: 9}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCheckpoint(path)
	if err != nil || got.Step != 9 || len(got.Done) != 0 {
		t.Errorf("rewritten checkpoint = %+v, err = %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries (temp residue?), want 1", len(entries))
	}
}

func TestConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(Event{Type: TypeRender, Phase: PhaseRender, Rank: w, Step: i, DurNS: 1})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*per {
		t.Errorf("replayed %d events, want %d", len(events), workers*per)
	}
	if Breakdown(events)[PhaseRender] != time.Duration(workers*per) {
		t.Error("concurrent events lost duration")
	}
}
