package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Follower tails a journal file while it is being written — the live
// half of the replay API. Each Drain call parses every complete
// (newline-terminated) event appended since the follower's byte offset;
// an unterminated final line is the writer's in-flight event and simply
// stays pending until its newline lands, so following a live journal
// never reports a torn tail for an event that is still being written.
//
// The offset is the resume point: persist Offset() and a later follower
// constructed with NewFollowerAt picks up exactly where this one
// stopped, across process restarts.
//
// The one genuinely exceptional shape is a torn-tail repair:
// journal.Append truncated a torn final line away (the writer crashed
// mid-event and restarted). The follower detects it three ways — the
// file shrinking below its consumed offset, an unterminated fragment
// it was holding as pending shrinking out from under it, or the bytes
// where that fragment sat changing (the repair already overwritten by
// the restarted writer's new events) — and in every case resumes at
// the repaired tail and reports ErrTornTail exactly once, so
// subscribers can surface the discontinuity; no complete event is
// lost.
type Follower struct {
	path string
	off  int64
	// frag is the unterminated trailing fragment observed by the
	// previous Drain — the writer's in-flight event, or a crash's torn
	// tail. A later Drain finding the file shorter than off+len(frag),
	// or different bytes where the fragment was, knows the fragment was
	// repaired away (an in-flight write only ever extends it).
	frag []byte
}

// NewFollower tails the journal at path from the beginning. The file
// may not exist yet — Drain reports no events until it appears.
func NewFollower(path string) *Follower { return &Follower{path: path} }

// NewFollowerAt tails the journal at path from a byte offset previously
// reported by Offset.
func NewFollowerAt(path string, offset int64) *Follower {
	if offset < 0 {
		offset = 0
	}
	return &Follower{path: path, off: offset}
}

// Offset returns the byte offset after the last complete event Drain
// consumed — the durable resume point.
func (f *Follower) Offset() int64 { return f.off }

// Drain parses every complete event appended since the last call (or
// the construction offset) and advances the offset past them. A missing
// file yields no events and no error; an unterminated final line stays
// pending for the next call. A shrunken file (torn-tail repair by a
// restarted writer) resets the offset to the new end and returns the
// complete events read so far along with an ErrTornTail-wrapped error.
func (f *Follower) Drain() ([]Event, error) {
	file, err := os.Open(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	defer file.Close()

	size, err := file.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	if size < f.off {
		// The writer's restart repaired a torn tail we were waiting on.
		f.off, f.frag = size, nil
		return nil, fmt.Errorf("journal: %s shrank below offset (torn-tail repair): %w", f.path, ErrTornTail)
	}
	if pend := int64(len(f.frag)); pend > 0 && size < f.off+pend {
		// The unterminated fragment we were holding as a pending event
		// shrank away: the restarted writer's tail repair truncated it.
		// Only complete lines were ever consumed, so nothing is lost —
		// but the discontinuity is reported exactly once.
		f.frag = nil
		return nil, fmt.Errorf("journal: %s torn tail repaired under follow: %w", f.path, ErrTornTail)
	}
	if size == f.off {
		f.frag = nil
		return nil, nil
	}
	raw := make([]byte, size-f.off)
	if _, err := file.ReadAt(raw, f.off); err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	if pend := len(f.frag); pend > 0 && !bytes.Equal(raw[:pend], f.frag) {
		// The bytes where the fragment sat have changed. A live writer
		// only ever appends, so this is a tail repair that was already
		// overwritten by the restarted incarnation's new events — the
		// race where the file regrows past the old fragment before the
		// next poll. Report the discontinuity once; the events now at
		// the offset are the new incarnation's and parse below as usual.
		f.frag = nil
		return f.drainRaw(raw, fmt.Errorf("journal: %s torn tail repaired and overwritten under follow: %w", f.path, ErrTornTail))
	}
	return f.drainRaw(raw, nil)
}

// drainRaw parses the complete lines of raw (the bytes from f.off to
// the file end), advances the offset past them, and remembers the
// unterminated remainder as the pending fragment. tornErr, when set,
// is a torn-tail discontinuity detected by the caller and is returned
// alongside the successfully parsed events.
func (f *Follower) drainRaw(raw []byte, tornErr error) ([]Event, error) {
	// Only complete lines are consumable; the remainder is the writer's
	// in-flight event (or a crash's torn tail — indistinguishable until
	// the writer either finishes the line or repairs it on restart).
	keep := bytes.LastIndexByte(raw, '\n') + 1
	pending := raw[keep:]
	raw = raw[:keep]

	var events []Event
	consumed := int64(0)
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		line := bytes.TrimRight(raw[:nl], "\r")
		lineLen := int64(nl + 1)
		raw = raw[nl+1:]
		if len(line) == 0 {
			consumed += lineLen
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A malformed *terminated* line is real corruption, not a torn
			// tail; stop before it so the caller sees a stable offset.
			f.off += consumed
			f.frag = nil
			return events, fmt.Errorf("journal: following %s at offset %d: %w", f.path, f.off, err)
		}
		events = append(events, ev)
		consumed += lineLen
	}
	f.off += consumed
	f.frag = append([]byte(nil), pending...)
	return events, tornErr
}

// Follow polls the journal every poll interval (default 50ms) and
// delivers events to fn in order until ctx is canceled or fn returns an
// error. ErrTornTail from a mid-follow tail repair is delivered to fn
// as a synthesized TypeError event (the stream stays alive); any other
// read error ends the follow. Returns nil on context cancellation.
func (f *Follower) Follow(ctx context.Context, poll time.Duration, fn func(Event) error) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		events, err := f.Drain()
		if errors.Is(err, ErrTornTail) {
			events = append(events, Event{
				Type: TypeError, Rank: -1, Step: -1, Err: err.Error(),
			})
		} else if err != nil {
			return err
		}
		for _, ev := range events {
			if err := fn(ev); err != nil {
				return err
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}
