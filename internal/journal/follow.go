package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Follower tails a journal file while it is being written — the live
// half of the replay API. Each Drain call parses every complete
// (newline-terminated) event appended since the follower's byte offset;
// an unterminated final line is the writer's in-flight event and simply
// stays pending until its newline lands, so following a live journal
// never reports a torn tail for an event that is still being written.
//
// The offset is the resume point: persist Offset() and a later follower
// constructed with NewFollowerAt picks up exactly where this one
// stopped, across process restarts.
//
// The one genuinely exceptional shape is the file shrinking below the
// offset: journal.Append's tail repair truncated a torn final line away
// (the writer crashed mid-event and restarted). Drain then resets to
// the new end of file and reports ErrTornTail once, so subscribers can
// surface the discontinuity; the next Drain resumes cleanly.
type Follower struct {
	path string
	off  int64
}

// NewFollower tails the journal at path from the beginning. The file
// may not exist yet — Drain reports no events until it appears.
func NewFollower(path string) *Follower { return &Follower{path: path} }

// NewFollowerAt tails the journal at path from a byte offset previously
// reported by Offset.
func NewFollowerAt(path string, offset int64) *Follower {
	if offset < 0 {
		offset = 0
	}
	return &Follower{path: path, off: offset}
}

// Offset returns the byte offset after the last complete event Drain
// consumed — the durable resume point.
func (f *Follower) Offset() int64 { return f.off }

// Drain parses every complete event appended since the last call (or
// the construction offset) and advances the offset past them. A missing
// file yields no events and no error; an unterminated final line stays
// pending for the next call. A shrunken file (torn-tail repair by a
// restarted writer) resets the offset to the new end and returns the
// complete events read so far along with an ErrTornTail-wrapped error.
func (f *Follower) Drain() ([]Event, error) {
	file, err := os.Open(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	defer file.Close()

	size, err := file.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	if size < f.off {
		// The writer's restart repaired a torn tail we were waiting on.
		f.off = size
		return nil, fmt.Errorf("journal: %s shrank below offset (torn-tail repair): %w", f.path, ErrTornTail)
	}
	if size == f.off {
		return nil, nil
	}
	raw := make([]byte, size-f.off)
	if _, err := file.ReadAt(raw, f.off); err != nil {
		return nil, fmt.Errorf("journal: following %s: %w", f.path, err)
	}
	// Only complete lines are consumable; the remainder is the writer's
	// in-flight event (or a crash's torn tail — indistinguishable until
	// the writer either finishes the line or repairs it on restart).
	keep := bytes.LastIndexByte(raw, '\n') + 1
	raw = raw[:keep]

	var events []Event
	consumed := int64(0)
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		line := bytes.TrimRight(raw[:nl], "\r")
		lineLen := int64(nl + 1)
		raw = raw[nl+1:]
		if len(line) == 0 {
			consumed += lineLen
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A malformed *terminated* line is real corruption, not a torn
			// tail; stop before it so the caller sees a stable offset.
			f.off += consumed
			return events, fmt.Errorf("journal: following %s at offset %d: %w", f.path, f.off, err)
		}
		events = append(events, ev)
		consumed += lineLen
	}
	f.off += consumed
	return events, nil
}

// Follow polls the journal every poll interval (default 50ms) and
// delivers events to fn in order until ctx is canceled or fn returns an
// error. ErrTornTail from a mid-follow tail repair is delivered to fn
// as a synthesized TypeError event (the stream stays alive); any other
// read error ends the follow. Returns nil on context cancellation.
func (f *Follower) Follow(ctx context.Context, poll time.Duration, fn func(Event) error) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		events, err := f.Drain()
		if errors.Is(err, ErrTornTail) {
			events = append(events, Event{
				Type: TypeError, Rank: -1, Step: -1, Err: err.Error(),
			})
		} else if err != nil {
			return err
		}
		for _, ev := range events {
			if err := fn(ev); err != nil {
				return err
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}
