package journal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFollowerDrain checks the basic tail contract: complete lines are
// consumed in order, an unterminated final line stays pending until its
// newline lands, and a missing file is silent.
func TestFollowerDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f := NewFollower(path)

	events, err := f.Drain()
	if err != nil || len(events) != 0 {
		t.Fatalf("missing file: events=%v err=%v, want none", events, err)
	}

	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw.Emit(Event{Type: TypeRunStart, Rank: -1, Step: -1})
	jw.Emit(Event{Type: TypeRender, Rank: 0, Step: 0})

	events, err = f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != TypeRunStart || events[1].Type != TypeRender {
		t.Fatalf("drained %v, want run_start+render", events)
	}

	// An in-flight (unterminated) event must stay pending...
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.WriteString(`{"type":"render","rank":0,`); err != nil {
		t.Fatal(err)
	}
	events, err = f.Drain()
	if err != nil || len(events) != 0 {
		t.Fatalf("partial line: events=%v err=%v, want none pending", events, err)
	}
	// ...and be delivered once the writer finishes the line.
	if _, err := file.WriteString("\"step\":1}\n"); err != nil {
		t.Fatal(err)
	}
	file.Close()
	events, err = f.Drain()
	if err != nil || len(events) != 1 || events[0].Step != 1 {
		t.Fatalf("completed line: events=%v err=%v, want the step-1 render", events, err)
	}
	jw.Close()
}

// TestFollowerOffsetResume checks that a follower rebuilt from a saved
// offset continues exactly where the previous one stopped.
func TestFollowerOffsetResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		jw.Emit(Event{Type: TypeRender, Rank: 0, Step: s})
	}

	f := NewFollower(path)
	events, err := f.Drain()
	if err != nil || len(events) != 5 {
		t.Fatalf("first drain: %d events err=%v, want 5", len(events), err)
	}
	saved := f.Offset()

	for s := 5; s < 8; s++ {
		jw.Emit(Event{Type: TypeRender, Rank: 0, Step: s})
	}
	jw.Close()

	resumed := NewFollowerAt(path, saved)
	events, err = resumed.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Step != 5 || events[2].Step != 7 {
		t.Fatalf("resumed drain = %v, want steps 5..7", events)
	}
}

// TestFollowerConcurrentWriter tails a journal while a goroutine is
// appending and must see every event exactly once, in order.
func TestFollowerConcurrentWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := 0; s < total; s++ {
			jw.Emit(Event{Type: TypeRender, Rank: 0, Step: s})
		}
	}()

	f := NewFollower(path)
	var got []Event
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < total {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d events", len(got), total)
		}
		events, err := f.Drain()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, events...)
	}
	<-done
	jw.Close()
	for i, ev := range got {
		if ev.Step != i {
			t.Fatalf("event %d has step %d, want %d (reordered or duplicated)", i, ev.Step, i)
		}
	}
}

// TestFollowerTornTailMidFollow simulates the crash-and-restart shape:
// the writer dies mid-event leaving a torn tail the follower is waiting
// on, then a restarted writer's Append repairs (truncates) it. The
// follower must notice the shrink, report ErrTornTail once, and resume
// cleanly with the restarted writer's events.
func TestFollowerTornTailMidFollow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw.Emit(Event{Type: TypeRender, Rank: 0, Step: 0})
	jw.Close()

	// Crash signature: a torn, unterminated final line.
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.WriteString(`{"type":"render","rank":0,"st`); err != nil {
		t.Fatal(err)
	}
	file.Close()

	f := NewFollower(path)
	events, err := f.Drain()
	if err != nil || len(events) != 1 {
		t.Fatalf("pre-repair drain: events=%v err=%v, want just step 0", events, err)
	}

	// Manually advance into the torn region, as a follower that polled
	// mid-write and is now waiting for the newline effectively has.
	waiting := NewFollowerAt(path, f.Offset())

	// The restarted writer repairs the tail (truncating below the torn
	// bytes) and appends a fresh event.
	jw2, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	jw2.Emit(Event{Type: TypeRender, Rank: 0, Step: 1})

	// A follower whose offset points into the (now truncated) torn line
	// is unaffected — the repair cut exactly the bytes after its offset,
	// so it just sees the new event.
	events, err = waiting.Drain()
	if err != nil || len(events) != 1 || events[0].Step != 1 {
		t.Fatalf("post-repair drain: events=%v err=%v, want step 1", events, err)
	}

	// But a follower that had read INTO the torn bytes (offset past the
	// repaired size) must surface ErrTornTail and reset.
	ahead := NewFollowerAt(path, waiting.Offset()+1000)
	if _, err := ahead.Drain(); !errors.Is(err, ErrTornTail) {
		t.Fatalf("shrunken-file drain err = %v, want ErrTornTail", err)
	}
	jw2.Emit(Event{Type: TypeRender, Rank: 0, Step: 2})
	events, err = ahead.Drain()
	if err != nil || len(events) != 1 || events[0].Step != 2 {
		t.Fatalf("post-torn-tail drain: events=%v err=%v, want step 2", events, err)
	}
	jw2.Close()
}

// TestFollowBlocking checks the ctx-driven Follow loop delivers events
// appended after the follow started and stops on cancellation.
func TestFollowBlocking(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan Event, 16)
	errc := make(chan error, 1)
	go func() {
		errc <- NewFollower(path).Follow(ctx, time.Millisecond, func(ev Event) error {
			got <- ev
			return nil
		})
	}()

	jw.Emit(Event{Type: TypeRender, Rank: 0, Step: 0})
	select {
	case ev := <-got:
		if ev.Step != 0 {
			t.Fatalf("followed step %d, want 0", ev.Step)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow never delivered the event")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("follow returned %v, want nil on cancel", err)
	}
	jw.Close()
}

// TestEventsSince checks the in-process tail primitive.
func TestEventsSince(t *testing.T) {
	jw := New()
	for s := 0; s < 4; s++ {
		jw.Emit(Event{Type: TypeRender, Rank: 0, Step: s})
	}
	if got := jw.EventsSince(2); len(got) != 2 || got[0].Step != 2 {
		t.Fatalf("EventsSince(2) = %v, want steps 2..3", got)
	}
	if got := jw.EventsSince(4); got != nil {
		t.Fatalf("EventsSince(len) = %v, want nil", got)
	}
	if got := jw.EventsSince(-1); len(got) != 4 {
		t.Fatalf("EventsSince(-1) = %d events, want all 4", len(got))
	}
	var nilW *Writer
	if got := nilW.EventsSince(0); got != nil {
		t.Fatalf("nil writer EventsSince = %v, want nil", got)
	}
}
