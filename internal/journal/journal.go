// Package journal is ETH's structured run journal: an append-only JSONL
// record of what a run actually did — one event per phase transition,
// dataset generation, sampling decision, wire transfer, render, composite,
// and error. The harness always records into an in-memory journal; with a
// trace file configured the same events stream to disk as they happen, one
// JSON object per line, so a crashed run still leaves an audit trail up to
// the failure. The Reader half replays a journal after the fact, and
// Breakdown reconstructs the per-phase wall-clock split the harness
// reports — the instrumentation analog of the paper's TACC Stats + power
// meter collection (§V-A), and the visibility SIM-SITU and ISAAC argue
// in-situ exploration needs.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Event types. A journal line's "type" field says what happened; timed
// events additionally carry a "phase" so Breakdown can aggregate them.
const (
	// TypeRunStart opens a run; Detail describes the configuration.
	TypeRunStart = "run_start"
	// TypeRunEnd closes a run; DurNS is the run's wall-clock time.
	TypeRunEnd = "run_end"
	// TypePhase marks a phase transition (pair start/end, mode switches).
	TypePhase = "phase"
	// TypeDataset records a dataset generation or fetch.
	TypeDataset = "dataset"
	// TypeSample records a sampling decision (method, ratio, kept count).
	TypeSample = "sample"
	// TypeSerialize records dataset encoding for the wire.
	TypeSerialize = "serialize"
	// TypeTransfer records one wire transfer (Detail: "send" or "recv").
	TypeTransfer = "transfer"
	// TypeRender records one rendered time step.
	TypeRender = "render"
	// TypeAnalysis records one in-situ analysis operation.
	TypeAnalysis = "analysis"
	// TypeComposite records an image composite across ranks.
	TypeComposite = "composite"
	// TypeError records a failure; Err carries the message.
	TypeError = "error"
	// TypeRetry records a recoverable transport failure being retried
	// (reconnect + resume); Detail carries the classified cause.
	TypeRetry = "retry"
	// TypeSkip records a step abandoned under the degradation policy.
	TypeSkip = "skip"
	// TypeResume records a connection resuming at a step after reconnect,
	// including a duplicate re-sent step being re-acked without rendering.
	TypeResume = "resume"
	// TypeRestart records a supervised proxy being torn down and
	// restarted; Detail carries "role=<role> attempt=<n>/<max> cause=<c>".
	TypeRestart = "restart"
	// TypeShutdown records a graceful shutdown decision (signal received,
	// drain started, or a supervisor declining to restart after one).
	TypeShutdown = "shutdown"
	// TypeCheckpoint records durable progress being persisted: a viz
	// cursor advancing, a sweep experiment completing, a run finishing.
	TypeCheckpoint = "checkpoint"
	// TypeOverflow records a bounded live-tail subscriber dropping its
	// oldest queued events (drop-oldest backpressure); Elements carries
	// the dropped count and Detail identifies the subscriber.
	TypeOverflow = "overflow"
	// TypeSteer records steering state moving through the system: a hub
	// receiving a control message from a subscriber ("recv ..."), a viz
	// proxy applying camera/isovalue axes at a step boundary ("viz
	// applied ..."), a viz proxy forwarding simulation axes over the
	// control channel ("forward ..."), or a sim proxy applying
	// sampling-ratio/codec axes ("sim applied ..."). The applied events
	// carry the step the change took effect at, which is what makes a
	// steered run replayable.
	TypeSteer = "steer"
	// TypeSubscribe records hub subscriber membership: Detail starts
	// with "join", "leave", or "reject" and identifies the subscriber
	// and its starting cursor.
	TypeSubscribe = "subscribe"
	// TypeSubmit records an experiment spec entering a fleet queue;
	// Detail identifies the spec and its source (API, sweep file, resume).
	TypeSubmit = "submit"
	// TypeLease records a fleet spec being leased to a worker slot for
	// one attempt; Detail carries "spec=<id> worker=<n> attempt=<k>".
	TypeLease = "lease"
	// TypeRequeue records a lease being revoked — the worker crashed,
	// stalled, or exited nonzero — and the spec going back on the queue
	// with its retry budget decremented.
	TypeRequeue = "requeue"
	// TypeQuarantine records a spec exhausting its retry budget and
	// leaving the queue permanently; Err carries the final failure and
	// Detail points at the preserved journal tail.
	TypeQuarantine = "quarantine"
	// TypeComplete records a fleet spec finishing successfully and
	// entering the durable done-set.
	TypeComplete = "complete"
)

// Phase names used by timed events. Breakdown sums event durations by
// these keys to reconstruct where a run's time went.
const (
	PhaseGenerate  = "generate"
	PhaseSample    = "sample"
	PhaseSerialize = "serialize"
	PhaseTransport = "transport"
	PhaseRender    = "render"
	PhaseAnalysis  = "analysis"
	PhaseComposite = "composite"
)

// Phases lists the phase names in pipeline order (for stable reporting).
var Phases = []string{
	PhaseGenerate, PhaseSample, PhaseSerialize,
	PhaseTransport, PhaseRender, PhaseAnalysis, PhaseComposite,
}

// Event is one journal line. Rank -1 identifies the harness itself (as
// opposed to a proxy-pair rank); Step -1 means "not step-scoped".
type Event struct {
	// T is the wall-clock emission time (stamped by Emit when zero).
	T time.Time `json:"t"`
	// Type says what happened (Type* constants).
	Type string `json:"type"`
	// Phase attributes the event's duration to a pipeline phase; empty
	// for untimed bookkeeping events.
	Phase string `json:"phase,omitempty"`
	// Rank is the proxy-pair rank, or -1 for the harness.
	Rank int `json:"rank"`
	// Step is the simulation time step, or -1 when not step-scoped.
	Step int `json:"step"`
	// DurNS is the event's duration in nanoseconds (0 = instantaneous).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Bytes counts payload bytes (dataset size, wire bytes, ...).
	Bytes int64 `json:"bytes,omitempty"`
	// Elements counts dataset elements after the event.
	Elements int `json:"elements,omitempty"`
	// Detail is a short human-readable qualifier.
	Detail string `json:"detail,omitempty"`
	// Err is the error message for TypeError events.
	Err string `json:"err,omitempty"`
	// Src identifies the originating journal when events from many
	// writers are merged into one stream (fleet ingestion tags each
	// worker's events with its spec ID). Empty for single-writer runs.
	Src string `json:"src,omitempty"`
}

// Dur returns the event duration.
func (e Event) Dur() time.Duration { return time.Duration(e.DurNS) }

// Writer is a concurrent-safe journal recorder. Every event is kept in
// memory (for same-process replay); when backed by an io.Writer the event
// also streams out as one JSON line. A nil *Writer is a valid no-op sink,
// so instrumented code journals unconditionally.
type Writer struct {
	mu     sync.Mutex
	out    io.Writer // guarded by mu
	file   *os.File  // guarded by mu
	events []Event   // guarded by mu
	err    error     // guarded by mu
}

// New returns a memory-only journal.
func New() *Writer { return &Writer{} }

// NewWriter returns a journal that mirrors events to w as JSONL.
func NewWriter(w io.Writer) *Writer { return &Writer{out: w} }

// ErrLocked is wrapped by Create/Append when the journal file is
// already open for writing by another process. A journal file has
// exactly one writer at a time — the one-writer-per-journal-file
// contract: interleaved appends from two processes would shred the
// JSONL framing in ways torn-tail repair cannot undo. Fan-in from many
// producers goes through an ingestion batcher (internal/ingest) that
// owns the merged journal's single writer. The lock is advisory,
// attached to the open file, and released by the kernel when the
// holder exits — so a kill -9'd incarnation never leaves a stale lock
// behind for its replacement to trip over.
var ErrLocked = errors.New("journal: file already open by another writer")

// Create returns a journal that mirrors events to a new file at path.
// File-backed journals are deliberately unbuffered: each event is one
// write syscall, so a crash — even kill -9 — loses at most the torn tail
// of the final line, which Read tolerates. The file is exclusively
// locked until Close: a second concurrent writer gets ErrLocked.
func Create(path string) (*Writer, error) {
	// Open without O_TRUNC: truncation must happen under the lock, or a
	// second Create racing a live writer would destroy its events before
	// losing the lock race.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: creating %s: %w", path, err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating %s: %w", path, err)
	}
	return &Writer{out: f, file: f}, nil
}

// Append returns a journal that appends events to the file at path,
// creating it if absent — the restart entry point: a supervised proxy
// reopens its journal after a crash and the event stream continues where
// the previous incarnation tore off. A torn final line (the previous
// incarnation died mid-write) is truncated away first; appending after
// it would otherwise glue the new event onto the partial line and turn
// a tolerable torn tail into a hard parse error. Like Create, the file
// is exclusively locked until Close (ErrLocked if another process
// already writes it); the tail repair happens under the lock.
func Append(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: appending to %s: %w", path, err)
	}
	if err := repairTornTail(path, f); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{out: f, file: f}, nil
}

// repairTornTail truncates the file after its last complete
// (newline-terminated) line, through the already-locked descriptor f.
func repairTornTail(path string, f *os.File) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: inspecting %s: %w", path, err)
	}
	keep := bytes.LastIndexByte(raw, '\n') + 1
	if keep == len(raw) {
		return nil
	}
	if err := f.Truncate(int64(keep)); err != nil {
		return fmt.Errorf("journal: repairing torn tail of %s: %w", path, err)
	}
	return nil
}

// Emit appends one event, stamping T if unset. Safe for concurrent use
// and on a nil receiver.
func (j *Writer) Emit(ev Event) {
	if j == nil {
		return
	}
	if ev.T.IsZero() {
		ev.T = time.Now()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	if j.out != nil && j.err == nil {
		raw, err := json.Marshal(ev)
		if err == nil {
			raw = append(raw, '\n')
			_, err = j.out.Write(raw)
		}
		if err != nil {
			j.err = fmt.Errorf("journal: writing event: %w", err)
		}
	}
}

// Error emits a TypeError event for err (no-op when err is nil).
func (j *Writer) Error(rank, step int, err error) {
	if j == nil || err == nil {
		return
	}
	j.Emit(Event{Type: TypeError, Rank: rank, Step: step, Err: err.Error()})
}

// Events returns a copy of everything emitted so far.
func (j *Writer) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// EventsSince returns a copy of the events emitted at index n and later
// — the in-process live-tail primitive: a subscriber remembers how many
// events it has consumed and drains the rest on each poll. An n at or
// past the end returns nil.
func (j *Writer) EventsSince(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(j.events) {
		return nil
	}
	out := make([]Event, len(j.events)-n)
	copy(out, j.events[n:])
	return out
}

// Len returns the number of events emitted so far.
func (j *Writer) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Err returns the first write error, if any.
func (j *Writer) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync flushes buffered output and fsyncs the backing file, making every
// event emitted so far durable. Callers invoke it at step boundaries —
// after an acked render, a checkpoint write, a restart decision — so the
// on-disk journal is never more than one in-flight step behind. No-op
// for memory journals and nil writers.
func (j *Writer) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if bw, ok := j.out.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil && j.err == nil {
			j.err = fmt.Errorf("journal: flushing: %w", err)
		}
	}
	if j.file != nil {
		if err := j.file.Sync(); err != nil && j.err == nil {
			j.err = fmt.Errorf("journal: syncing: %w", err)
		}
	}
	return j.err
}

// Close flushes and closes the backing file (no-op for memory journals).
func (j *Writer) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if bw, ok := j.out.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil && j.err == nil {
			j.err = err
		}
	}
	if j.file != nil {
		if err := j.file.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.file = nil
	}
	return j.err
}

// ErrTornTail is wrapped by Read/ReadFile when the final journal line is
// a partial write — the signature a kill -9 leaves mid-event. Every
// complete event is still returned, so crash-recovery tooling can do
//
//	events, err := journal.ReadFile(path)
//	if err != nil && !errors.Is(err, journal.ErrTornTail) { ... }
//
// and treat a torn tail as a recoverable artifact of the crash rather
// than a corrupt journal.
var ErrTornTail = errors.New("journal: torn final line (partial write)")

// Read parses a JSONL journal stream. Blank lines are skipped; a
// malformed line fails with its line number so corrupt journals are
// diagnosable — except a malformed *final* line with no trailing
// newline, which is the torn tail of a crashed writer: every complete
// event is returned along with an ErrTornTail-wrapped error.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var events []Event
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return events, fmt.Errorf("journal: reading: %w", err)
		}
		atEOF := err != nil
		terminated := len(raw) > 0 && raw[len(raw)-1] == '\n'
		raw = bytes.TrimRight(raw, "\r\n")
		if len(raw) > 0 {
			line++
			var ev Event
			if uerr := json.Unmarshal(raw, &ev); uerr != nil {
				if atEOF && !terminated {
					// The writer emits each event as one json+newline write,
					// so an unterminated, unparseable last line can only be a
					// write cut short by a crash.
					return events, fmt.Errorf("journal: line %d: %w", line, ErrTornTail)
				}
				return events, fmt.Errorf("journal: line %d: %w", line, uerr)
			}
			events = append(events, ev)
		}
		if atEOF {
			return events, nil
		}
	}
}

// ReadFile replays the journal at path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Breakdown reconstructs the per-phase wall-clock split: the summed
// duration of every phase-attributed event, keyed by phase name.
func Breakdown(events []Event) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, ev := range events {
		if ev.Phase != "" {
			out[ev.Phase] += ev.Dur()
		}
	}
	return out
}

// CountByType tallies events per type.
func CountByType(events []Event) map[string]int {
	out := map[string]int{}
	for _, ev := range events {
		out[ev.Type]++
	}
	return out
}

// Errors returns every error event.
func Errors(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Type == TypeError || ev.Err != "" {
			out = append(out, ev)
		}
	}
	return out
}

// Wall returns the run's reported wall time: the duration on the last
// run_end event, or the span between the first and last event timestamps
// when the journal has no run_end (e.g. a crashed run).
func Wall(events []Event) time.Duration {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Type == TypeRunEnd {
			return events[i].Dur()
		}
	}
	if len(events) < 2 {
		return 0
	}
	return events[len(events)-1].T.Sub(events[0].T)
}

// PhaseNames returns every phase present in events: known phases first in
// pipeline order, then any others sorted by name.
func PhaseNames(events []Event) []string {
	present := map[string]bool{}
	for _, ev := range events {
		if ev.Phase != "" {
			present[ev.Phase] = true
		}
	}
	var out []string
	for _, p := range Phases {
		if present[p] {
			out = append(out, p)
			delete(present, p)
		}
	}
	var rest []string
	for p := range present {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	return append(out, rest...)
}
