package raster

import (
	"math"
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

// approxColor reports whether two colors match within rasterization
// rounding (barycentric weights sum to 1 only approximately).
func approxColor(a, b vec.V3) bool { return a.Sub(b).Len() < 1e-9 }

func fullscreenTriangle(depth float64, c vec.V3) Triangle {
	// Covers a 64x64 frame entirely.
	return Triangle{V: [3]Vertex{
		{X: -70, Y: -70, Depth: depth, Color: c},
		{X: 200, Y: -70, Depth: depth, Color: c},
		{X: -70, Y: 200, Depth: depth, Color: c},
	}}
}

func TestTriangleCoversInterior(t *testing.T) {
	f := fb.New(64, 64)
	red := vec.New(1, 0, 0)
	tri := Triangle{V: [3]Vertex{
		{X: 8, Y: 8, Depth: 1, Color: red},
		{X: 56, Y: 8, Depth: 1, Color: red},
		{X: 32, Y: 56, Depth: 1, Color: red},
	}}
	DrawTriangles(f, []Triangle{tri}, 1)
	if !approxColor(f.At(32, 20), red) {
		t.Error("interior pixel not filled")
	}
	if f.At(2, 2) != (vec.V3{}) {
		t.Error("exterior pixel filled")
	}
	if f.CoveredPixels() == 0 {
		t.Error("nothing rasterized")
	}
}

func TestTriangleBothWindings(t *testing.T) {
	f := fb.New(64, 64)
	c := vec.New(0, 1, 0)
	// Clockwise winding (negative area) must still fill.
	tri := Triangle{V: [3]Vertex{
		{X: 8, Y: 8, Depth: 1, Color: c},
		{X: 32, Y: 56, Depth: 1, Color: c},
		{X: 56, Y: 8, Depth: 1, Color: c},
	}}
	DrawTriangles(f, []Triangle{tri}, 1)
	if !approxColor(f.At(32, 20), c) {
		t.Error("clockwise triangle not rasterized")
	}
}

func TestTriangleDepthOrdering(t *testing.T) {
	f := fb.New(64, 64)
	red := vec.New(1, 0, 0)
	blue := vec.New(0, 0, 1)
	// Draw far first, then near: near must win. Then redraw far: near stays.
	DrawTriangles(f, []Triangle{fullscreenTriangle(10, red)}, 2)
	DrawTriangles(f, []Triangle{fullscreenTriangle(5, blue)}, 2)
	DrawTriangles(f, []Triangle{fullscreenTriangle(8, red)}, 2)
	if !approxColor(f.At(32, 32), blue) {
		t.Errorf("depth test failed: got %v", f.At(32, 32))
	}
}

func TestTriangleGouraudInterpolation(t *testing.T) {
	f := fb.New(64, 64)
	tri := Triangle{V: [3]Vertex{
		{X: 0, Y: 0, Depth: 1, Color: vec.New(1, 0, 0)},
		{X: 63, Y: 0, Depth: 1, Color: vec.New(0, 1, 0)},
		{X: 0, Y: 63, Depth: 1, Color: vec.New(0, 0, 1)},
	}}
	DrawTriangles(f, []Triangle{tri}, 1)
	// Near vertex 0 the color should be mostly red.
	c := f.At(2, 2)
	if c.X < 0.8 {
		t.Errorf("corner color = %v, want mostly red", c)
	}
	// Centroid-ish pixel should be a genuine mix.
	m := f.At(20, 20)
	if m.X == 0 || m.Y == 0 || m.Z == 0 {
		t.Errorf("interior color = %v, want mixed", m)
	}
	// Channel sum stays ~1 anywhere inside (barycentric partition of unity).
	if s := m.X + m.Y + m.Z; math.Abs(s-1) > 1e-9 {
		t.Errorf("color sum = %v, want 1", s)
	}
}

func TestDegenerateTriangleIgnored(t *testing.T) {
	f := fb.New(32, 32)
	tri := Triangle{V: [3]Vertex{
		{X: 1, Y: 1, Depth: 1},
		{X: 10, Y: 10, Depth: 1},
		{X: 20, Y: 20, Depth: 1}, // collinear
	}}
	DrawTriangles(f, []Triangle{tri}, 1)
	if f.CoveredPixels() != 0 {
		t.Error("degenerate triangle rasterized pixels")
	}
}

func TestOffscreenTriangleIgnored(t *testing.T) {
	f := fb.New(32, 32)
	tris := []Triangle{
		{V: [3]Vertex{{X: -100, Y: -100, Depth: 1}, {X: -50, Y: -100, Depth: 1}, {X: -75, Y: -50, Depth: 1}}},
		{V: [3]Vertex{{X: 10, Y: 500, Depth: 1}, {X: 20, Y: 500, Depth: 1}, {X: 15, Y: 600, Depth: 1}}},
	}
	DrawTriangles(f, tris, 2)
	if f.CoveredPixels() != 0 {
		t.Error("offscreen triangles rasterized pixels")
	}
}

func TestNegativeDepthRejected(t *testing.T) {
	f := fb.New(32, 32)
	DrawTriangles(f, []Triangle{fullscreenTriangle(-5, vec.New(1, 1, 1))}, 1)
	if f.CoveredPixels() != 0 {
		t.Error("behind-camera depth rasterized")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// Same triangle set with 1 worker and 8 workers must produce the
	// identical image (bands are deterministic and disjoint).
	mk := func(workers int) *fb.Frame {
		f := fb.New(128, 128)
		var tris []Triangle
		for i := 0; i < 50; i++ {
			fi := float64(i)
			tris = append(tris, Triangle{V: [3]Vertex{
				{X: 10 + fi, Y: 5 + fi*2, Depth: 1 + fi, Color: vec.New(1, 0, 0)},
				{X: 60 + fi, Y: 15 + fi, Depth: 2 + fi, Color: vec.New(0, 1, 0)},
				{X: 30, Y: 100 - fi, Depth: 3, Color: vec.New(0, 0, 1)},
			}})
		}
		DrawTriangles(f, tris, workers)
		return f
	}
	a, b := mk(1), mk(8)
	for i := range a.Color {
		if a.Color[i] != b.Color[i] || a.Depth[i] != b.Depth[i] {
			t.Fatalf("parallel mismatch at pixel %d", i)
		}
	}
}

func TestSpritesBasic(t *testing.T) {
	f := fb.New(32, 32)
	c := vec.New(1, 1, 0)
	DrawSprites(f, []Sprite{{X: 16, Y: 16, Depth: 1, Size: 3, Color: c}}, 1)
	if f.At(16, 16) != c {
		t.Error("sprite center not drawn")
	}
	if got := f.CoveredPixels(); got != 9 {
		t.Errorf("3x3 sprite covered %d pixels", got)
	}
}

func TestSpriteSize1(t *testing.T) {
	f := fb.New(16, 16)
	DrawSprites(f, []Sprite{{X: 8, Y: 8, Depth: 1, Size: 0, Color: vec.New(1, 0, 0)}}, 1)
	if f.CoveredPixels() != 1 {
		t.Errorf("size<=1 sprite covered %d pixels", f.CoveredPixels())
	}
}

func TestSpriteDepthTest(t *testing.T) {
	f := fb.New(16, 16)
	near := vec.New(0, 1, 0)
	far := vec.New(1, 0, 0)
	DrawSprites(f, []Sprite{
		{X: 8, Y: 8, Depth: 2, Size: 1, Color: near},
		{X: 8, Y: 8, Depth: 5, Size: 1, Color: far},
	}, 1)
	if f.At(8, 8) != near {
		t.Error("sprite depth test failed")
	}
}

func TestSpriteClipping(t *testing.T) {
	f := fb.New(16, 16)
	// Sprites straddling the border and fully outside must not panic.
	DrawSprites(f, []Sprite{
		{X: 0, Y: 0, Depth: 1, Size: 5, Color: vec.New(1, 1, 1)},
		{X: -100, Y: -100, Depth: 1, Size: 3, Color: vec.New(1, 1, 1)},
		{X: 15.9, Y: 15.9, Depth: 1, Size: 5, Color: vec.New(1, 1, 1)},
	}, 2)
	if f.CoveredPixels() == 0 {
		t.Error("border sprites drew nothing")
	}
}

func TestImpostorShading(t *testing.T) {
	f := fb.New(64, 64)
	white := vec.New(1, 1, 1)
	DrawImpostors(f, []Impostor{
		{X: 32, Y: 32, Depth: 10, Radius: 20, WorldRadius: 1, Color: white},
	}, vec.New(0, 0, 1), 1)
	// Center faces the light directly: brightest.
	center := f.At(32, 32)
	edgePix := f.At(32+17, 32)
	if center.X <= edgePix.X {
		t.Errorf("center %v not brighter than edge %v", center, edgePix)
	}
	// The disk must be round: corners of the bounding square are empty.
	if f.At(32+19, 32+19) != (vec.V3{}) {
		t.Error("impostor filled its bounding-square corner")
	}
	// Depth bulge: center depth < rim depth (closer to viewer).
	ci := f.Index(32, 32)
	ri := f.Index(32+17, 32)
	if f.Depth[ci] >= f.Depth[ri] {
		t.Errorf("sphere depth not bulged: center %v rim %v", f.Depth[ci], f.Depth[ri])
	}
}

func TestImpostorOcclusion(t *testing.T) {
	f := fb.New(64, 64)
	red := vec.New(1, 0, 0)
	blue := vec.New(0, 0, 1)
	DrawImpostors(f, []Impostor{
		{X: 32, Y: 32, Depth: 10, Radius: 10, WorldRadius: 0.5, Color: red},
		{X: 32, Y: 32, Depth: 5, Radius: 10, WorldRadius: 0.5, Color: blue},
	}, vec.New(0, 0, 1), 1)
	c := f.At(32, 32)
	// The nearer (blue) sphere must win; shading scales it but hue remains.
	if c.Z == 0 || c.X != 0 {
		t.Errorf("occlusion failed: center = %v", c)
	}
}

func TestEmptyInputsNoop(t *testing.T) {
	f := fb.New(8, 8)
	DrawTriangles(f, nil, 0)
	DrawSprites(f, nil, 0)
	DrawImpostors(f, nil, vec.New(0, 0, 1), 0)
	if f.CoveredPixels() != 0 {
		t.Error("empty draws covered pixels")
	}
}

func BenchmarkTriangles(b *testing.B) {
	f := fb.New(512, 512)
	var tris []Triangle
	for i := 0; i < 2000; i++ {
		x := float64(i%50) * 10
		y := float64(i/50) * 12
		tris = append(tris, Triangle{V: [3]Vertex{
			{X: x, Y: y, Depth: 1, Color: vec.New(1, 0, 0)},
			{X: x + 9, Y: y, Depth: 1, Color: vec.New(0, 1, 0)},
			{X: x, Y: y + 11, Depth: 1, Color: vec.New(0, 0, 1)},
		}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DrawTriangles(f, tris, 0)
	}
}

func BenchmarkSprites(b *testing.B) {
	f := fb.New(512, 512)
	sprites := make([]Sprite, 100_000)
	for i := range sprites {
		sprites[i] = Sprite{
			X: float64(i % 512), Y: float64((i / 512) % 512),
			Depth: 1, Size: 2, Color: vec.New(1, 1, 1),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DrawSprites(f, sprites, 0)
	}
}
