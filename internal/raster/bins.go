package raster

import "sync"

// parallelBinMin is the primitive count below which binning stays serial:
// under it the per-goroutine fan-out costs more than the scan it splits.
const parallelBinMin = 1 << 13

// binScratch is the reusable per-frame binning state. bins is a flattened
// [worker][band] table (index w*bands+b); each inner slice keeps its
// capacity across frames, so a steady sequence of similar frames bins
// with zero allocation. Primitives are binned by contiguous index chunk
// per worker, and each band drains its workers in order, so the rasterize
// order per band is identical to a single serial binning pass regardless
// of worker count.
type binScratch struct {
	bins [][]int32
}

var binPool sync.Pool

// getBins returns a scratch with n empty bin lists, reusing both the
// outer table and the inner lists' capacity from previous frames.
func getBins(n int) *binScratch {
	s, _ := binPool.Get().(*binScratch)
	if s == nil {
		s = &binScratch{}
	}
	if cap(s.bins) < n {
		s.bins = append(s.bins[:cap(s.bins)], make([][]int32, n-cap(s.bins))...)
	}
	s.bins = s.bins[:n]
	for i := range s.bins {
		s.bins[i] = s.bins[i][:0]
	}
	return s
}

// putBins returns the scratch for reuse by a later frame.
func putBins(s *binScratch) { binPool.Put(s) }
