// Package raster is ETH's software rasterizer — the stand-in for the
// OpenGL back-end that VTK's geometry pipeline hands its triangles to.
// It supports depth-tested triangles with Gouraud-interpolated colors,
// fixed-size point sprites (the paper's "VTK points" primitive), and
// shaded sphere impostors (the primitive behind Gaussian splatting).
//
// Parallelism: the frame is divided into horizontal bands; primitives are
// binned to the bands their bounding boxes overlap and each band is
// rasterized by one worker. Bands never share pixels, so no locks are
// needed in the inner loop — the same strategy tile-based GPU and software
// rasterizers (e.g. Mesa's llvmpipe) use.
package raster

import (
	"math"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Vertex is a screen-space vertex: X, Y in pixels, Depth in camera units
// (smaller = closer), and a linear RGB color.
type Vertex struct {
	X, Y  float64
	Depth float64
	Color vec.V3
}

// Triangle is a screen-space triangle with per-vertex attributes.
type Triangle struct {
	V [3]Vertex
}

// Sprite is a screen-space point: a square of Size pixels on a side
// (Size <= 1 renders one pixel), depth tested at a single depth.
type Sprite struct {
	X, Y  float64
	Depth float64
	Size  int
	Color vec.V3
}

// Impostor is a screen-space sphere impostor: a disk of Radius pixels
// shaded as a sphere lit by the light direction passed to DrawImpostors.
// WorldRadius carries the sphere radius in camera units so the depth
// buffer gets true sphere depths.
type Impostor struct {
	X, Y        float64
	Depth       float64
	Radius      float64 // pixels
	WorldRadius float64 // camera units
	Color       vec.V3
}

// DefaultBandHeight is the scanline-band granularity for parallel
// rasterization. DESIGN.md lists this as an ablation knob
// (BenchmarkAblationRasterTiling); DrawTrianglesBanded exposes it.
const DefaultBandHeight = 16

// DrawTriangles rasterizes tris into f with depth testing and Gouraud
// color interpolation. workers <= 0 selects the default pool size.
func DrawTriangles(f *fb.Frame, tris []Triangle, workers int) {
	DrawTrianglesBanded(f, tris, workers, DefaultBandHeight)
}

// DrawTrianglesBanded is DrawTriangles with an explicit scanline-band
// height — smaller bands balance load better, larger bands amortize
// binning; the ablation bench sweeps this trade-off.
func DrawTrianglesBanded(f *fb.Frame, tris []Triangle, workers, bandHeight int) {
	if len(tris) == 0 {
		return
	}
	if bandHeight < 1 {
		bandHeight = 1
	}
	bands := (f.H + bandHeight - 1) / bandHeight
	bins := make([][]int32, bands)
	for i, t := range tris {
		minY := math.Min(t.V[0].Y, math.Min(t.V[1].Y, t.V[2].Y))
		maxY := math.Max(t.V[0].Y, math.Max(t.V[1].Y, t.V[2].Y))
		b0 := clampInt(int(minY)/bandHeight, 0, bands-1)
		b1 := clampInt(int(maxY)/bandHeight, 0, bands-1)
		if maxY < 0 || minY >= float64(f.H) {
			continue
		}
		for b := b0; b <= b1; b++ {
			bins[b] = append(bins[b], int32(i))
		}
	}
	par.For(bands, workers, func(b int) {
		y0 := b * bandHeight
		y1 := minInt(y0+bandHeight, f.H)
		for _, ti := range bins[b] {
			rasterizeTriangle(f, &tris[ti], y0, y1)
		}
	})
}

// rasterizeTriangle scan-converts t restricted to scanlines [y0, y1).
func rasterizeTriangle(f *fb.Frame, t *Triangle, y0, y1 int) {
	v := &t.V
	// Signed doubled area; degenerate triangles are skipped. A negative
	// area means opposite winding — rasterize both windings (no culling),
	// since extraction algorithms do not guarantee orientation.
	area := edge(v[0].X, v[0].Y, v[1].X, v[1].Y, v[2].X, v[2].Y)
	//lint:ignore floateq exact degenerate-triangle guard before 1/area; an epsilon would cull thin slivers that still rasterize correctly (area only normalizes interpolation)
	if area == 0 {
		return
	}
	inv := 1 / area

	minX := clampInt(int(math.Floor(min3(v[0].X, v[1].X, v[2].X))), 0, f.W-1)
	maxX := clampInt(int(math.Ceil(max3(v[0].X, v[1].X, v[2].X))), 0, f.W-1)
	minY := clampInt(int(math.Floor(min3(v[0].Y, v[1].Y, v[2].Y))), y0, y1-1)
	maxY := clampInt(int(math.Ceil(max3(v[0].Y, v[1].Y, v[2].Y))), y0, y1-1)

	for py := minY; py <= maxY; py++ {
		cy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			cx := float64(px) + 0.5
			w0 := edge(v[1].X, v[1].Y, v[2].X, v[2].Y, cx, cy) * inv
			w1 := edge(v[2].X, v[2].Y, v[0].X, v[0].Y, cx, cy) * inv
			w2 := edge(v[0].X, v[0].Y, v[1].X, v[1].Y, cx, cy) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := w0*v[0].Depth + w1*v[1].Depth + w2*v[2].Depth
			if depth <= 0 {
				continue
			}
			color := v[0].Color.Scale(w0).
				Add(v[1].Color.Scale(w1)).
				Add(v[2].Color.Scale(w2))
			f.DepthSet(px, py, depth, color)
		}
	}
}

// edge is the 2D cross product (b-a) x (c-a): positive when c is left of
// the directed edge a->b.
func edge(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// DrawSprites renders fixed-size square point sprites — the "VTK points"
// technique: every particle maps to a fixed-size, fixed-color block
// (usually 1-3 pixels on a side, §IV-C).
func DrawSprites(f *fb.Frame, sprites []Sprite, workers int) {
	if len(sprites) == 0 {
		return
	}
	const bandHeight = DefaultBandHeight
	bands := (f.H + bandHeight - 1) / bandHeight
	bins := make([][]int32, bands)
	for i := range sprites {
		s := &sprites[i]
		half := float64(maxInt(s.Size, 1)) / 2
		if s.Y+half < 0 || s.Y-half >= float64(f.H) {
			continue
		}
		b0 := clampInt(int(s.Y-half)/bandHeight, 0, bands-1)
		b1 := clampInt(int(s.Y+half)/bandHeight, 0, bands-1)
		for b := b0; b <= b1; b++ {
			bins[b] = append(bins[b], int32(i))
		}
	}
	par.For(bands, workers, func(b int) {
		y0 := b * bandHeight
		y1 := minInt(y0+bandHeight, f.H)
		for _, si := range bins[b] {
			s := &sprites[si]
			size := maxInt(s.Size, 1)
			px0 := int(s.X - float64(size)/2 + 0.5)
			py0 := int(s.Y - float64(size)/2 + 0.5)
			for dy := 0; dy < size; dy++ {
				py := py0 + dy
				if py < y0 || py >= y1 {
					continue
				}
				for dx := 0; dx < size; dx++ {
					f.DepthSet(px0+dx, py, s.Depth, s.Color)
				}
			}
		}
	})
}

// DrawImpostors renders shaded sphere impostors: each point becomes a
// screen-space disk whose per-pixel normal reconstructs a sphere, shaded
// with a Lambertian term plus ambient — the paper's Gaussian splatter,
// which "manipulates the triangle normal at each pixel to model a
// sphere" (§IV-C). light is the direction toward the light in camera
// space (+Z toward the viewer).
func DrawImpostors(f *fb.Frame, imps []Impostor, light vec.V3, workers int) {
	if len(imps) == 0 {
		return
	}
	l := light.Norm()
	const bandHeight = DefaultBandHeight
	bands := (f.H + bandHeight - 1) / bandHeight
	bins := make([][]int32, bands)
	for i := range imps {
		s := &imps[i]
		r := math.Max(s.Radius, 0.5)
		if s.Y+r < 0 || s.Y-r >= float64(f.H) {
			continue
		}
		b0 := clampInt(int(s.Y-r)/bandHeight, 0, bands-1)
		b1 := clampInt(int(s.Y+r)/bandHeight, 0, bands-1)
		for b := b0; b <= b1; b++ {
			bins[b] = append(bins[b], int32(i))
		}
	}
	par.For(bands, workers, func(b int) {
		y0 := b * bandHeight
		y1 := minInt(y0+bandHeight, f.H)
		for _, si := range bins[b] {
			s := &imps[si]
			r := math.Max(s.Radius, 0.5)
			px0 := clampInt(int(s.X-r), 0, f.W-1)
			px1 := clampInt(int(s.X+r)+1, 0, f.W-1)
			py0 := clampInt(int(s.Y-r), y0, y1-1)
			py1 := clampInt(int(s.Y+r)+1, y0, y1-1)
			invR := 1 / r
			for py := py0; py <= py1; py++ {
				dy := (float64(py) + 0.5 - s.Y) * invR
				for px := px0; px <= px1; px++ {
					dx := (float64(px) + 0.5 - s.X) * invR
					d2 := dx*dx + dy*dy
					if d2 > 1 {
						continue
					}
					// Reconstruct the sphere normal at this pixel.
					nz := math.Sqrt(1 - d2)
					n := vec.V3{X: dx, Y: -dy, Z: nz}
					lambert := n.Dot(l)
					if lambert < 0 {
						lambert = 0
					}
					shade := 0.25 + 0.75*lambert
					// True sphere depth: front surface bulges toward the
					// viewer by nz * worldRadius.
					depth := s.Depth - nz*s.WorldRadius
					f.DepthSet(px, py, depth, s.Color.Scale(shade))
				}
			}
		}
	})
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
