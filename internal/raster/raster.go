// Package raster is ETH's software rasterizer — the stand-in for the
// OpenGL back-end that VTK's geometry pipeline hands its triangles to.
// It supports depth-tested triangles with Gouraud-interpolated colors,
// fixed-size point sprites (the paper's "VTK points" primitive), and
// shaded sphere impostors (the primitive behind Gaussian splatting).
//
// Parallelism: the frame is divided into horizontal bands; primitives are
// binned to the bands their bounding boxes overlap and each band is
// rasterized by one worker. Bands never share pixels, so no locks are
// needed in the inner loop — the same strategy tile-based GPU and software
// rasterizers (e.g. Mesa's llvmpipe) use.
package raster

import (
	"math"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Vertex is a screen-space vertex: X, Y in pixels, Depth in camera units
// (smaller = closer), and a linear RGB color.
type Vertex struct {
	X, Y  float64
	Depth float64
	Color vec.V3
}

// Triangle is a screen-space triangle with per-vertex attributes.
type Triangle struct {
	V [3]Vertex
}

// Sprite is a screen-space point: a square of Size pixels on a side
// (Size <= 1 renders one pixel), depth tested at a single depth.
type Sprite struct {
	X, Y  float64
	Depth float64
	Size  int
	Color vec.V3
}

// Impostor is a screen-space sphere impostor: a disk of Radius pixels
// shaded as a sphere lit by the light direction passed to DrawImpostors.
// WorldRadius carries the sphere radius in camera units so the depth
// buffer gets true sphere depths.
type Impostor struct {
	X, Y        float64
	Depth       float64
	Radius      float64 // pixels
	WorldRadius float64 // camera units
	Color       vec.V3
}

// DefaultBandHeight is the scanline-band granularity for parallel
// rasterization. DESIGN.md lists this as an ablation knob
// (BenchmarkAblationRasterTiling); DrawTrianglesBanded exposes it.
const DefaultBandHeight = 16

// DrawTriangles rasterizes tris into f with depth testing and Gouraud
// color interpolation. workers <= 0 selects the default pool size.
func DrawTriangles(f *fb.Frame, tris []Triangle, workers int) {
	DrawTrianglesBanded(f, tris, workers, DefaultBandHeight)
}

// DrawTrianglesBanded is DrawTriangles with an explicit scanline-band
// height — smaller bands balance load better, larger bands amortize
// binning; the ablation bench sweeps this trade-off.
//
// Binning runs on pooled scratch (zero steady-state allocation) and, for
// large triangle counts, in parallel: each worker bins a contiguous index
// chunk into private per-band lists, and each band drains its workers in
// chunk order, so the per-band rasterize order matches a serial pass.
func DrawTrianglesBanded(f *fb.Frame, tris []Triangle, workers, bandHeight int) {
	if len(tris) == 0 {
		return
	}
	if bandHeight < 1 {
		bandHeight = 1
	}
	bands := (f.H + bandHeight - 1) / bandHeight
	wk := workers
	if wk <= 0 {
		wk = par.DefaultWorkers()
	}
	if wk > bands {
		wk = bands
	}
	binW := wk
	if len(tris) < parallelBinMin {
		binW = 1
	}
	s := getBins(binW * bands)
	if binW == 1 {
		binTriChunk(f, tris, s, binW, bands, bandHeight, 0)
	} else {
		par.For(binW, binW, func(w int) {
			binTriChunk(f, tris, s, binW, bands, bandHeight, w)
		})
	}
	if wk == 1 {
		// Serial fast path: calling par.For would heap-allocate its body
		// closure even for one worker; this branch keeps a 1-worker
		// re-render allocation-free.
		for b := 0; b < bands; b++ {
			rasterizeBand(f, tris, s, binW, bands, b, bandHeight)
		}
	} else {
		par.For(bands, wk, func(b int) {
			rasterizeBand(f, tris, s, binW, bands, b, bandHeight)
		})
	}
	putBins(s)
}

// binTriChunk bins worker w's contiguous triangle chunk into its private
// per-band lists.
func binTriChunk(f *fb.Frame, tris []Triangle, s *binScratch, binW, bands, bandHeight, w int) {
	lo := w * len(tris) / binW
	hi := (w + 1) * len(tris) / binW
	row := s.bins[w*bands : (w+1)*bands]
	for i := lo; i < hi; i++ {
		t := &tris[i]
		minY := math.Min(t.V[0].Y, math.Min(t.V[1].Y, t.V[2].Y))
		maxY := math.Max(t.V[0].Y, math.Max(t.V[1].Y, t.V[2].Y))
		if maxY < 0 || minY >= float64(f.H) {
			continue
		}
		b0 := clampInt(int(minY)/bandHeight, 0, bands-1)
		b1 := clampInt(int(maxY)/bandHeight, 0, bands-1)
		for b := b0; b <= b1; b++ {
			//lint:ignore hotalloc bin capacity is amortized across frames by the binScratch pool
			row[b] = append(row[b], int32(i))
		}
	}
}

// rasterizeBand draws every triangle binned to band b, draining the
// workers' lists in chunk order to preserve the serial rasterize order.
func rasterizeBand(f *fb.Frame, tris []Triangle, s *binScratch, binW, bands, b, bandHeight int) {
	y0 := b * bandHeight
	y1 := minInt(y0+bandHeight, f.H)
	for w := 0; w < binW; w++ {
		for _, ti := range s.bins[w*bands+b] {
			rasterizeTriangle(f, &tris[ti], y0, y1)
		}
	}
}

// rasterizeTriangle scan-converts t restricted to scanlines [y0, y1).
func rasterizeTriangle(f *fb.Frame, t *Triangle, y0, y1 int) {
	v := &t.V
	// Signed doubled area; degenerate triangles are skipped. A negative
	// area means opposite winding — rasterize both windings (no culling),
	// since extraction algorithms do not guarantee orientation.
	area := edge(v[0].X, v[0].Y, v[1].X, v[1].Y, v[2].X, v[2].Y)
	//lint:ignore floateq exact degenerate-triangle guard before 1/area; an epsilon would cull thin slivers that still rasterize correctly (area only normalizes interpolation)
	if area == 0 {
		return
	}
	inv := 1 / area

	minX := clampInt(int(math.Floor(min3(v[0].X, v[1].X, v[2].X))), 0, f.W-1)
	maxX := clampInt(int(math.Ceil(max3(v[0].X, v[1].X, v[2].X))), 0, f.W-1)
	minY := clampInt(int(math.Floor(min3(v[0].Y, v[1].Y, v[2].Y))), y0, y1-1)
	maxY := clampInt(int(math.Ceil(max3(v[0].Y, v[1].Y, v[2].Y))), y0, y1-1)

	for py := minY; py <= maxY; py++ {
		cy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			cx := float64(px) + 0.5
			w0 := edge(v[1].X, v[1].Y, v[2].X, v[2].Y, cx, cy) * inv
			w1 := edge(v[2].X, v[2].Y, v[0].X, v[0].Y, cx, cy) * inv
			w2 := edge(v[0].X, v[0].Y, v[1].X, v[1].Y, cx, cy) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := w0*v[0].Depth + w1*v[1].Depth + w2*v[2].Depth
			if depth <= 0 {
				continue
			}
			color := v[0].Color.Scale(w0).
				Add(v[1].Color.Scale(w1)).
				Add(v[2].Color.Scale(w2))
			f.DepthSet(px, py, depth, color)
		}
	}
}

// edge is the 2D cross product (b-a) x (c-a): positive when c is left of
// the directed edge a->b.
func edge(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// DrawSprites renders fixed-size square point sprites — the "VTK points"
// technique: every particle maps to a fixed-size, fixed-color block
// (usually 1-3 pixels on a side, §IV-C).
func DrawSprites(f *fb.Frame, sprites []Sprite, workers int) {
	if len(sprites) == 0 {
		return
	}
	const bandHeight = DefaultBandHeight
	bands := (f.H + bandHeight - 1) / bandHeight
	wk := workers
	if wk <= 0 {
		wk = par.DefaultWorkers()
	}
	if wk > bands {
		wk = bands
	}
	binW := wk
	if len(sprites) < parallelBinMin {
		binW = 1
	}
	s := getBins(binW * bands)
	if binW == 1 {
		binSpriteChunk(f, sprites, s, binW, bands, 0)
	} else {
		par.For(binW, binW, func(w int) {
			binSpriteChunk(f, sprites, s, binW, bands, w)
		})
	}
	if wk == 1 {
		for b := 0; b < bands; b++ {
			drawSpriteBand(f, sprites, s, binW, bands, b)
		}
	} else {
		par.For(bands, wk, func(b int) {
			drawSpriteBand(f, sprites, s, binW, bands, b)
		})
	}
	putBins(s)
}

// binSpriteChunk bins worker w's contiguous sprite chunk into its private
// per-band lists.
func binSpriteChunk(f *fb.Frame, sprites []Sprite, s *binScratch, binW, bands, w int) {
	const bandHeight = DefaultBandHeight
	lo := w * len(sprites) / binW
	hi := (w + 1) * len(sprites) / binW
	row := s.bins[w*bands : (w+1)*bands]
	for i := lo; i < hi; i++ {
		sp := &sprites[i]
		half := float64(maxInt(sp.Size, 1)) / 2
		if sp.Y+half < 0 || sp.Y-half >= float64(f.H) {
			continue
		}
		b0 := clampInt(int(sp.Y-half)/bandHeight, 0, bands-1)
		b1 := clampInt(int(sp.Y+half)/bandHeight, 0, bands-1)
		for b := b0; b <= b1; b++ {
			//lint:ignore hotalloc bin capacity is amortized across frames by the binScratch pool
			row[b] = append(row[b], int32(i))
		}
	}
}

func drawSpriteBand(f *fb.Frame, sprites []Sprite, s *binScratch, binW, bands, b int) {
	const bandHeight = DefaultBandHeight
	y0 := b * bandHeight
	y1 := minInt(y0+bandHeight, f.H)
	for w := 0; w < binW; w++ {
		for _, si := range s.bins[w*bands+b] {
			sp := &sprites[si]
			size := maxInt(sp.Size, 1)
			px0 := int(sp.X - float64(size)/2 + 0.5)
			py0 := int(sp.Y - float64(size)/2 + 0.5)
			for dy := 0; dy < size; dy++ {
				py := py0 + dy
				if py < y0 || py >= y1 {
					continue
				}
				for dx := 0; dx < size; dx++ {
					f.DepthSet(px0+dx, py, sp.Depth, sp.Color)
				}
			}
		}
	}
}

// DrawImpostors renders shaded sphere impostors: each point becomes a
// screen-space disk whose per-pixel normal reconstructs a sphere, shaded
// with a Lambertian term plus ambient — the paper's Gaussian splatter,
// which "manipulates the triangle normal at each pixel to model a
// sphere" (§IV-C). light is the direction toward the light in camera
// space (+Z toward the viewer).
func DrawImpostors(f *fb.Frame, imps []Impostor, light vec.V3, workers int) {
	if len(imps) == 0 {
		return
	}
	l := light.Norm()
	const bandHeight = DefaultBandHeight
	bands := (f.H + bandHeight - 1) / bandHeight
	wk := workers
	if wk <= 0 {
		wk = par.DefaultWorkers()
	}
	if wk > bands {
		wk = bands
	}
	binW := wk
	if len(imps) < parallelBinMin {
		binW = 1
	}
	s := getBins(binW * bands)
	if binW == 1 {
		binImpostorChunk(f, imps, s, binW, bands, 0)
	} else {
		par.For(binW, binW, func(w int) {
			binImpostorChunk(f, imps, s, binW, bands, w)
		})
	}
	if wk == 1 {
		for b := 0; b < bands; b++ {
			drawImpostorBand(f, imps, l, s, binW, bands, b)
		}
	} else {
		par.For(bands, wk, func(b int) {
			drawImpostorBand(f, imps, l, s, binW, bands, b)
		})
	}
	putBins(s)
}

// binImpostorChunk bins worker w's contiguous impostor chunk into its
// private per-band lists.
func binImpostorChunk(f *fb.Frame, imps []Impostor, s *binScratch, binW, bands, w int) {
	const bandHeight = DefaultBandHeight
	lo := w * len(imps) / binW
	hi := (w + 1) * len(imps) / binW
	row := s.bins[w*bands : (w+1)*bands]
	for i := lo; i < hi; i++ {
		im := &imps[i]
		r := math.Max(im.Radius, 0.5)
		if im.Y+r < 0 || im.Y-r >= float64(f.H) {
			continue
		}
		b0 := clampInt(int(im.Y-r)/bandHeight, 0, bands-1)
		b1 := clampInt(int(im.Y+r)/bandHeight, 0, bands-1)
		for b := b0; b <= b1; b++ {
			//lint:ignore hotalloc bin capacity is amortized across frames by the binScratch pool
			row[b] = append(row[b], int32(i))
		}
	}
}

func drawImpostorBand(f *fb.Frame, imps []Impostor, l vec.V3, s *binScratch, binW, bands, b int) {
	const bandHeight = DefaultBandHeight
	y0 := b * bandHeight
	y1 := minInt(y0+bandHeight, f.H)
	for w := 0; w < binW; w++ {
		for _, si := range s.bins[w*bands+b] {
			im := &imps[si]
			r := math.Max(im.Radius, 0.5)
			px0 := clampInt(int(im.X-r), 0, f.W-1)
			px1 := clampInt(int(im.X+r)+1, 0, f.W-1)
			py0 := clampInt(int(im.Y-r), y0, y1-1)
			py1 := clampInt(int(im.Y+r)+1, y0, y1-1)
			invR := 1 / r
			for py := py0; py <= py1; py++ {
				dy := (float64(py) + 0.5 - im.Y) * invR
				for px := px0; px <= px1; px++ {
					dx := (float64(px) + 0.5 - im.X) * invR
					d2 := dx*dx + dy*dy
					if d2 > 1 {
						continue
					}
					// Reconstruct the sphere normal at this pixel.
					nz := math.Sqrt(1 - d2)
					n := vec.V3{X: dx, Y: -dy, Z: nz}
					lambert := n.Dot(l)
					if lambert < 0 {
						lambert = 0
					}
					shade := 0.25 + 0.75*lambert
					// True sphere depth: front surface bulges toward the
					// viewer by nz * worldRadius.
					depth := im.Depth - nz*im.WorldRadius
					f.DepthSet(px, py, depth, im.Color.Scale(shade))
				}
			}
		}
	}
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
