package raster

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/raceflag"
	"github.com/ascr-ecx/eth/internal/vec"
)

func allocTriangles(n int) []Triangle {
	tris := make([]Triangle, n)
	for i := range tris {
		x := float64(8 + (i*13)%100)
		y := float64(8 + (i*7)%100)
		tris[i] = Triangle{V: [3]Vertex{
			{X: x, Y: y, Depth: 1 + float64(i)*0.01, Color: vec.New(1, 0.5, 0.2)},
			{X: x + 10, Y: y + 2, Depth: 1.1, Color: vec.New(0.2, 0.5, 1)},
			{X: x + 4, Y: y + 9, Depth: 1.2, Color: vec.New(0.5, 1, 0.2)},
		}}
	}
	return tris
}

// TestDrawSteadyStateAllocs locks in the zero-allocation steady state of
// the serial rasterizers: once the band-bin scratch pool is warm, a
// re-render into an existing frame must not allocate. (Parallel draws
// allocate the par.For closure and goroutine bookkeeping by design; the
// serial path is the floor the pool guarantees.)
func TestDrawSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	frame := fb.New(128, 128)
	tris := allocTriangles(500)
	sprites := make([]Sprite, 500)
	for i := range sprites {
		sprites[i] = Sprite{X: float64(i % 120), Y: float64((i * 7) % 120), Depth: 1, Size: 2, Color: vec.New(1, 1, 1)}
	}
	imps := make([]Impostor, 500)
	for i := range imps {
		imps[i] = Impostor{X: float64(i % 120), Y: float64((i * 7) % 120), Depth: 1, Radius: 2, WorldRadius: 0.1, Color: vec.New(1, 1, 1)}
	}

	cases := []struct {
		name string
		draw func()
	}{
		{"triangles", func() { DrawTriangles(frame, tris, 1) }},
		{"sprites", func() { DrawSprites(frame, sprites, 1) }},
		{"impostors", func() { DrawImpostors(frame, imps, vec.New(0, 0, 1), 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			redraw := func() {
				frame.Clear(vec.V3{})
				tc.draw()
			}
			redraw() // warm the bin scratch pool
			if allocs := testing.AllocsPerRun(20, redraw); allocs > 0 {
				t.Errorf("steady-state redraw allocates %.1f times per op, want 0", allocs)
			}
		})
	}
}
