package core

import (
	"fmt"
	"sort"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/metrics"
	"github.com/ascr-ecx/eth/internal/transport"
)

// Sweep runs the cartesian product of design-space choices over a base
// measured spec and tabulates the results — the "rapid design-space
// exploration" loop of the paper packaged as one call. Each variant
// renders with the real pipelines; image quality is compared against the
// unsampled render of the same algorithm (pinning the same camera by
// pinning the same workload).
type Sweep struct {
	// Base supplies the workload and fixed parameters.
	Base MeasuredSpec
	// Algorithms to sweep (must accept the workload's data kind).
	Algorithms []string
	// SamplingRatios to sweep; empty means {1.0}.
	SamplingRatios []float64
	// RankCounts to sweep; empty means {Base.Ranks or 1}.
	RankCounts []int
	// Codecs to sweep over the socket transport ("raw", "flate", "delta",
	// "delta+flate"); empty means {Base.Codec}. Only socket-mode sweeps
	// move bytes, but the axis is accepted everywhere so a layout file can
	// flip coupling without editing the sweep.
	Codecs []string
}

// SweepPoint is one evaluated variant.
type SweepPoint struct {
	Algorithm string
	Ratio     float64
	Ranks     int
	Codec     string
	Result    MeasuredResult
	// RMSE and SSIM compare this variant's frame against the same
	// algorithm's unsampled single-set reference (0 and 1 for the
	// reference itself). They are computed only when the sweep includes
	// ratio 1.0 for the algorithm at the same rank count.
	RMSE, SSIM float64
	HasQuality bool
}

// RunSweep executes every variant and returns the points plus a
// presentation table.
func RunSweep(sw Sweep) ([]SweepPoint, *metrics.Table, error) {
	if len(sw.Algorithms) == 0 {
		return nil, nil, fmt.Errorf("core: sweep needs algorithms")
	}
	ratios := append([]float64(nil), sw.SamplingRatios...)
	if len(ratios) == 0 {
		ratios = []float64{1.0}
	}
	// Evaluate full-resolution variants first so every sampled variant
	// has its quality reference regardless of the order given.
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	rankCounts := sw.RankCounts
	if len(rankCounts) == 0 {
		r := sw.Base.Ranks
		if r <= 0 {
			r = 1
		}
		rankCounts = []int{r}
	}
	codecs := sw.Codecs
	if len(codecs) == 0 {
		codecs = []string{sw.Base.Codec}
	}
	for _, name := range codecs {
		if _, err := transport.ParseCodec(name); err != nil {
			return nil, nil, err
		}
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Design-space sweep over %s", sw.Base.Workload.Name),
		"Algorithm", "Ranks", "Ratio", "Codec", "Wall (s)", "Render (s)", "Elements", "Wire MB", "RMSE", "SSIM")

	var points []SweepPoint
	// references[alg][ranks] holds the unsampled frame for quality
	// comparison.
	references := map[string]map[int]*fb.Frame{}

	for _, alg := range sw.Algorithms {
		references[alg] = map[int]*fb.Frame{}
		for _, ranks := range rankCounts {
			for _, ratio := range ratios {
				for _, codec := range codecs {
					spec := sw.Base
					spec.Algorithm = alg
					spec.Ranks = ranks
					spec.SamplingRatio = ratio
					spec.Codec = codec
					res, err := RunMeasured(spec)
					if err != nil {
						return nil, nil, fmt.Errorf("core: sweep %s/%d/%.2f/%s: %w", alg, ranks, ratio, codecName(codec), err)
					}
					pt := SweepPoint{Algorithm: alg, Ratio: ratio, Ranks: ranks, Codec: codecName(codec), Result: res}
					// Codecs are lossless, so the first ratio-1 variant of
					// an algorithm/rank pair serves as the quality reference
					// for every codec.
					if ratio >= 1 && len(res.Frames) > 0 && references[alg][ranks] == nil {
						references[alg][ranks] = res.Frames[0]
					}
					if ref := references[alg][ranks]; ref != nil && len(res.Frames) > 0 {
						rmse, err := fb.RMSE(ref, res.Frames[0])
						if err == nil {
							ssim, serr := fb.SSIM(ref, res.Frames[0])
							if serr == nil {
								pt.RMSE, pt.SSIM, pt.HasQuality = rmse, ssim, true
							}
						}
					}
					points = append(points, pt)
					rmseCell, ssimCell := "-", "-"
					if pt.HasQuality {
						rmseCell = fmt.Sprintf("%.4f", pt.RMSE)
						ssimCell = fmt.Sprintf("%.4f", pt.SSIM)
					}
					tab.AddRow(alg, ranks, ratio, pt.Codec,
						res.Wall.Seconds(), res.RenderTime.Seconds(), res.Elements,
						float64(res.BytesMoved)/1e6, rmseCell, ssimCell)
				}
			}
		}
	}
	return points, tab, nil
}

// codecName maps the empty sweep value to its effective codec for display.
func codecName(c string) string {
	if c == "" {
		return "raw"
	}
	return c
}
