package core

import (
	"fmt"
	"sort"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/metrics"
)

// Sweep runs the cartesian product of design-space choices over a base
// measured spec and tabulates the results — the "rapid design-space
// exploration" loop of the paper packaged as one call. Each variant
// renders with the real pipelines; image quality is compared against the
// unsampled render of the same algorithm (pinning the same camera by
// pinning the same workload).
type Sweep struct {
	// Base supplies the workload and fixed parameters.
	Base MeasuredSpec
	// Algorithms to sweep (must accept the workload's data kind).
	Algorithms []string
	// SamplingRatios to sweep; empty means {1.0}.
	SamplingRatios []float64
	// RankCounts to sweep; empty means {Base.Ranks or 1}.
	RankCounts []int
}

// SweepPoint is one evaluated variant.
type SweepPoint struct {
	Algorithm string
	Ratio     float64
	Ranks     int
	Result    MeasuredResult
	// RMSE and SSIM compare this variant's frame against the same
	// algorithm's unsampled single-set reference (0 and 1 for the
	// reference itself). They are computed only when the sweep includes
	// ratio 1.0 for the algorithm at the same rank count.
	RMSE, SSIM float64
	HasQuality bool
}

// RunSweep executes every variant and returns the points plus a
// presentation table.
func RunSweep(sw Sweep) ([]SweepPoint, *metrics.Table, error) {
	if len(sw.Algorithms) == 0 {
		return nil, nil, fmt.Errorf("core: sweep needs algorithms")
	}
	ratios := append([]float64(nil), sw.SamplingRatios...)
	if len(ratios) == 0 {
		ratios = []float64{1.0}
	}
	// Evaluate full-resolution variants first so every sampled variant
	// has its quality reference regardless of the order given.
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	rankCounts := sw.RankCounts
	if len(rankCounts) == 0 {
		r := sw.Base.Ranks
		if r <= 0 {
			r = 1
		}
		rankCounts = []int{r}
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Design-space sweep over %s", sw.Base.Workload.Name),
		"Algorithm", "Ranks", "Ratio", "Wall (s)", "Render (s)", "Elements", "RMSE", "SSIM")

	var points []SweepPoint
	// references[alg][ranks] holds the unsampled frame for quality
	// comparison.
	references := map[string]map[int]*fb.Frame{}

	for _, alg := range sw.Algorithms {
		references[alg] = map[int]*fb.Frame{}
		for _, ranks := range rankCounts {
			for _, ratio := range ratios {
				spec := sw.Base
				spec.Algorithm = alg
				spec.Ranks = ranks
				spec.SamplingRatio = ratio
				res, err := RunMeasured(spec)
				if err != nil {
					return nil, nil, fmt.Errorf("core: sweep %s/%d/%.2f: %w", alg, ranks, ratio, err)
				}
				pt := SweepPoint{Algorithm: alg, Ratio: ratio, Ranks: ranks, Result: res}
				if ratio >= 1 && len(res.Frames) > 0 {
					references[alg][ranks] = res.Frames[0]
				}
				if ref := references[alg][ranks]; ref != nil && len(res.Frames) > 0 {
					rmse, err := fb.RMSE(ref, res.Frames[0])
					if err == nil {
						ssim, serr := fb.SSIM(ref, res.Frames[0])
						if serr == nil {
							pt.RMSE, pt.SSIM, pt.HasQuality = rmse, ssim, true
						}
					}
				}
				points = append(points, pt)
				rmseCell, ssimCell := "-", "-"
				if pt.HasQuality {
					rmseCell = fmt.Sprintf("%.4f", pt.RMSE)
					ssimCell = fmt.Sprintf("%.4f", pt.SSIM)
				}
				tab.AddRow(alg, ranks, ratio,
					res.Wall.Seconds(), res.RenderTime.Seconds(), res.Elements,
					rmseCell, ssimCell)
			}
		}
	}
	return points, tab, nil
}
