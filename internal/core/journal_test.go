package core

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/coupling"
	"github.com/ascr-ecx/eth/internal/journal"
)

// The acceptance criterion for the run journal: on a single-pair unified
// run, the per-phase span totals reconstructed from the trace file must
// sum to within 10% of the measured wall time, and replaying the file
// must reproduce exactly the breakdown the harness computed in memory.
func TestJournalPhaseBreakdownCoversWall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMeasured(MeasuredSpec{
		// Enough particles that generate+sample+render dwarf the harness's
		// own bookkeeping, keeping the timing stable across machines.
		Workload:      HACCWorkload(60_000, 2, 3),
		Algorithm:     "raycast",
		Width:         96,
		Height:        96,
		ImagesPerStep: 2,
		Ranks:         1,
		Journal:       jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	var phaseSum time.Duration
	for _, d := range res.Phases {
		phaseSum += d
	}
	if res.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
	cover := float64(phaseSum) / float64(res.Wall)
	if math.Abs(1-cover) > 0.10 {
		t.Errorf("phase totals cover %.1f%% of wall (%v of %v), want within 10%%",
			100*cover, phaseSum, res.Wall)
	}
	for _, phase := range []string{journal.PhaseGenerate, journal.PhaseSample, journal.PhaseRender} {
		if res.Phases[phase] <= 0 {
			t.Errorf("phase %q recorded no time", phase)
		}
	}

	// Replay: reading the trace file back must reconstruct the same
	// breakdown the harness reported.
	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Events) {
		t.Fatalf("replayed %d events, run recorded %d", len(events), len(res.Events))
	}
	replayed := journal.Breakdown(events)
	if len(replayed) != len(res.Phases) {
		t.Fatalf("replayed %d phases, run recorded %d", len(replayed), len(res.Phases))
	}
	for name, d := range res.Phases {
		if replayed[name] != d {
			t.Errorf("phase %s: replayed %v, run recorded %v", name, replayed[name], d)
		}
	}
	if w := journal.Wall(events); w != res.Wall {
		t.Errorf("replayed wall %v, run recorded %v", w, res.Wall)
	}
}

// Socket-mode runs must additionally journal the serialize and transport
// phases, since the payload crosses the real wire path.
func TestJournalSocketModePhases(t *testing.T) {
	spec := haccSpec()
	spec.Mode = coupling.Socket
	spec.LayoutPath = filepath.Join(t.TempDir(), "layout")
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{journal.PhaseSerialize, journal.PhaseTransport} {
		if res.Phases[phase] <= 0 {
			t.Errorf("socket run recorded no %s time", phase)
		}
	}
	counts := journal.CountByType(res.Events)
	// Each of 2 ranks x 2 steps serializes once and transfers twice (a
	// send event on the sim side, a recv event on the viz side).
	if counts[journal.TypeSerialize] != 4 {
		t.Errorf("serialize events = %d, want 4", counts[journal.TypeSerialize])
	}
	if counts[journal.TypeTransfer] != 8 {
		t.Errorf("transfer events = %d, want 8", counts[journal.TypeTransfer])
	}
}

// Multi-rank runs must aggregate the per-pair coupling reports into the
// result: interface traffic and render time sum across ranks, elements
// sum across the last step's per-rank partitions, and every rank
// contributes a frame.
func TestRunMeasuredAggregatesReports(t *testing.T) {
	const ranks = 3
	spec := MeasuredSpec{
		Workload:      HACCWorkload(6000, 2, 11),
		Algorithm:     "points",
		Width:         48,
		Height:        48,
		ImagesPerStep: 2,
		Ranks:         ranks,
		Mode:          coupling.Socket,
		LayoutPath:    filepath.Join(t.TempDir(), "layout"),
	}
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != ranks {
		t.Fatalf("reports = %d, want %d", len(res.Reports), ranks)
	}
	if len(res.Frames) != ranks {
		t.Errorf("frames = %d, want %d", len(res.Frames), ranks)
	}

	var bytesMoved int64
	var renderTime time.Duration
	elements := 0
	for _, rep := range res.Reports {
		if rep.BytesMoved <= 0 {
			t.Error("a socket pair moved no bytes")
		}
		if rep.Steps != spec.Workload.Steps {
			t.Errorf("pair ran %d steps, want %d", rep.Steps, spec.Workload.Steps)
		}
		bytesMoved += rep.BytesMoved
		renderTime += rep.Viz.TotalRenderTime()
		n := len(rep.Viz.Results)
		elements += rep.Viz.Results[n-1].Elements
	}
	if res.BytesMoved != bytesMoved {
		t.Errorf("BytesMoved = %d, per-pair sum = %d", res.BytesMoved, bytesMoved)
	}
	if res.RenderTime != renderTime {
		t.Errorf("RenderTime = %v, per-pair sum = %v", res.RenderTime, renderTime)
	}
	if res.Elements != elements {
		t.Errorf("Elements = %d, per-pair sum = %d", res.Elements, elements)
	}
	// The ranks partition the particles, so the last step's elements must
	// equal the full particle count (no sampling configured).
	if elements != 6000 {
		t.Errorf("per-rank elements sum to %d, want 6000", elements)
	}

	// Multi-rank runs composite; the final frame is present and the
	// schedule reports its communication.
	if res.Composited == nil {
		t.Fatal("no composited frame")
	}
	if res.CompositeStats.MessagesMoved == 0 {
		t.Error("composite reported no messages")
	}
	if res.Phases[journal.PhaseComposite] <= 0 {
		t.Error("no composite time journaled")
	}
}
