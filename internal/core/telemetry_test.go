package core

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/telemetry"
)

// The TACC-Stats analog must observe a measured run: counters for rays,
// sprites/impostors, triangles, steps, and images all advance.
func TestTelemetryCountersAdvanceDuringRuns(t *testing.T) {
	before := telemetry.Default.Snapshot()

	// Particle run with raycasting (rays + hits) ...
	if _, err := RunMeasured(MeasuredSpec{
		Workload:      HACCWorkload(3000, 1, 5),
		Algorithm:     "raycast",
		Width:         48,
		Height:        48,
		ImagesPerStep: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// ... a points run (sprites), a splat run (impostors) ...
	for _, alg := range []string{"points", "gsplat"} {
		if _, err := RunMeasured(MeasuredSpec{
			Workload:      HACCWorkload(3000, 1, 5),
			Algorithm:     alg,
			Width:         48,
			Height:        48,
			ImagesPerStep: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// ... and a volume run with both pipelines (triangles, march steps).
	for _, alg := range []string{"vtk-iso", "ray-iso"} {
		if _, err := RunMeasured(MeasuredSpec{
			Workload:      XRAGEWorkload(24, 16, 14, 1, 5),
			Algorithm:     alg,
			Width:         48,
			Height:        48,
			ImagesPerStep: 1,
			Options:       render.Options{IsoValue: 0.35},
		}); err != nil {
			t.Fatal(err)
		}
	}

	delta := telemetry.Default.Snapshot().Delta(before)
	for _, name := range []string{
		"rt.rays", "rt.hits", "rt.march_steps",
		"geom.sprites", "geom.impostors", "geom.triangles",
		"proxy.steps", "proxy.images",
	} {
		if delta[name] <= 0 {
			t.Errorf("counter %s did not advance (delta %d)", name, delta[name])
		}
	}
	// Structural cross-checks: images >= steps; rays >= hits.
	if delta["proxy.images"] < delta["proxy.steps"] {
		t.Error("images < steps")
	}
	if delta["rt.rays"] < delta["rt.hits"] {
		t.Error("more hits than rays")
	}
}
