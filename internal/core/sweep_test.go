package core

import (
	"strings"
	"testing"
)

func sweepBase() MeasuredSpec {
	return MeasuredSpec{
		Workload:      HACCWorkload(8000, 1, 5),
		Width:         64,
		Height:        64,
		ImagesPerStep: 1,
	}
}

func TestRunSweepCoversProduct(t *testing.T) {
	points, tab, err := RunSweep(Sweep{
		Base:           sweepBase(),
		Algorithms:     []string{"points", "gsplat"},
		SamplingRatios: []float64{0.25, 1.0}, // deliberately unsorted
		RankCounts:     []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	if len(tab.Rows()) != 8 {
		t.Fatalf("table rows = %d", len(tab.Rows()))
	}
	// Every sampled point has quality metrics against its full reference.
	for _, pt := range points {
		if !pt.HasQuality {
			t.Errorf("%s/%d/%.2f has no quality metrics", pt.Algorithm, pt.Ranks, pt.Ratio)
			continue
		}
		if pt.Ratio >= 1 {
			if pt.RMSE != 0 || pt.SSIM < 0.999 {
				t.Errorf("reference point has RMSE %v SSIM %v", pt.RMSE, pt.SSIM)
			}
		} else {
			if pt.RMSE <= 0 {
				t.Errorf("sampled point %s/%d RMSE = %v", pt.Algorithm, pt.Ranks, pt.RMSE)
			}
			if pt.SSIM >= 1 {
				t.Errorf("sampled point SSIM = %v", pt.SSIM)
			}
		}
	}
	if !strings.Contains(tab.String(), "Design-space sweep") {
		t.Error("table title missing")
	}
}

func TestRunSweepDefaults(t *testing.T) {
	points, _, err := RunSweep(Sweep{
		Base:       sweepBase(),
		Algorithms: []string{"raycast"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Ratio != 1 || points[0].Ranks != 1 {
		t.Errorf("defaults = %+v", points)
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, _, err := RunSweep(Sweep{Base: sweepBase()}); err == nil {
		t.Error("empty algorithm list accepted")
	}
	if _, _, err := RunSweep(Sweep{
		Base:       sweepBase(),
		Algorithms: []string{"vtk-iso"}, // wrong kind for particle workload
	}); err == nil {
		t.Error("kind mismatch not surfaced")
	}
}
