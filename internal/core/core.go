// Package core is the Exploration Test Harness itself — the paper's
// primary contribution. An experiment names a workload (synthetic HACC or
// xRAGE data, or exported dumps on disk), a rendering algorithm, a
// coupling mode, and sampling parameters; the harness executes it in one
// of two modes:
//
//   - Measured: the real pipelines run at laptop scale through the proxy
//     pair, producing wall-clock times, images, and data-movement counts.
//   - Modeled: the calibrated cluster model (internal/cluster)
//     extrapolates the same cost structure to paper-scale node counts,
//     producing time/power/energy.
//
// Parameter sweeps run lists of experiment variants and collect results
// into metrics tables, which is how cmd/ethbench regenerates every table
// and figure of the paper.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ascr-ecx/eth/internal/blast"
	"github.com/ascr-ecx/eth/internal/cluster"
	"github.com/ascr-ecx/eth/internal/compositing"
	"github.com/ascr-ecx/eth/internal/cosmo"
	"github.com/ascr-ecx/eth/internal/coupling"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/metrics"
	"github.com/ascr-ecx/eth/internal/proxy"
	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/sampling"
	"github.com/ascr-ecx/eth/internal/supervise"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/transport"
)

// Workload produces the datasets an experiment replays.
type Workload struct {
	// Name labels the workload ("hacc", "xrage", or user-defined).
	Name string
	// Steps is the number of time steps.
	Steps int
	// Generate produces the dataset for one step.
	Generate func(step int) (data.Dataset, error)
}

// Validate reports specification errors.
func (w Workload) Validate() error {
	if w.Steps <= 0 {
		return fmt.Errorf("core: workload %q has no steps", w.Name)
	}
	if w.Generate == nil {
		return fmt.Errorf("core: workload %q has no generator", w.Name)
	}
	return nil
}

// HACCWorkload returns a synthetic cosmology workload with the given
// particle count (the paper's runs use 0.25-1 billion; laptop-scale
// experiments use millions).
func HACCWorkload(particles, steps int, seed int64) Workload {
	return Workload{
		Name:  "hacc",
		Steps: steps,
		Generate: func(step int) (data.Dataset, error) {
			p := cosmo.DefaultParams()
			p.Particles = particles
			p.Seed = seed
			p.TimeStep = step
			return cosmo.Generate(p)
		},
	}
}

// XRAGEWorkload returns a synthetic asteroid-impact volume workload with
// the given grid dimensions.
func XRAGEWorkload(nx, ny, nz, steps int, seed int64) Workload {
	return Workload{
		Name:  "xrage",
		Steps: steps,
		Generate: func(step int) (data.Dataset, error) {
			p := blast.Params{NX: nx, NY: ny, NZ: nz, BoxSize: 10, Seed: seed, TimeStep: step}
			return blast.Generate(p)
		},
	}
}

// DiskWorkload replays exported dumps, one file per step — the paper's
// primary data path (§III-B).
func DiskWorkload(name string, paths ...string) (Workload, error) {
	src, err := proxy.NewDiskSource(paths...)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:     name,
		Steps:    src.Steps(),
		Generate: src.Step,
	}, nil
}

// MeasuredSpec describes a laptop-scale measured experiment.
type MeasuredSpec struct {
	// Workload supplies the data.
	Workload Workload
	// Algorithm names the rendering back-end.
	Algorithm string
	// Width, Height and ImagesPerStep shape the render load.
	Width, Height, ImagesPerStep int
	// Ranks is the proxy-pair count (spatial pieces).
	Ranks int
	// Mode selects unified or socket coupling.
	Mode coupling.Mode
	// LayoutPath is required for socket mode.
	LayoutPath string
	// SamplingRatio in (0, 1]; 0 means 1.
	SamplingRatio float64
	// SamplingMethod selects the point-sampling strategy.
	SamplingMethod sampling.Method
	// Compress enables wire compression in socket mode (legacy sugar for
	// Codec: "flate"; ignored when Codec is set).
	Compress bool
	// Codec names the socket-mode wire codec ("raw", "flate", "delta",
	// "delta+flate"; "" defers to Compress) — the transport axis of the
	// design space, sweepable like sampling or the algorithm.
	Codec string
	// Operations are in-situ analysis steps run by every viz proxy.
	Operations []proxy.Operation
	// Options carries rendering parameters.
	Options render.Options
	// OutDir, when set, receives PNG artifacts.
	OutDir string
	// CompositeAlg selects how multi-rank frames merge into the final
	// image (direct-send by default).
	CompositeAlg compositing.Algorithm
	// Journal, when set, receives the run's structured event stream (a
	// trace file via journal.Create, or any journal.Writer). When nil the
	// run still records into a private in-memory journal so the result
	// carries a per-phase breakdown either way.
	Journal *journal.Writer
	// Policy is the socket-mode degradation policy (retry/skip budgets,
	// deadlines, optional fault injection). Zero = fail on first error.
	Policy coupling.Policy
	// Ctx, when set, bounds a supervised run: cancellation drains the
	// in-flight step and the run returns a shutdown-classified error.
	// Nil means context.Background(). Unsupervised runs (Supervise nil)
	// ignore it.
	Ctx context.Context
	// Supervise, when set, runs every proxy pair under a watchdog with
	// this restart policy: a stalled, panicked, or crashed pair is torn
	// down and restarted under the budget, resuming from its step cursor.
	// Nil runs unsupervised (failures end the run).
	Supervise *supervise.Config
	// CursorDir, when set, persists each rank's visualization step cursor
	// to CursorDir/rank<r>.ckpt. A fresh process pointed at the same
	// directory resumes each pair after its last completed step instead
	// of re-rendering from step 0.
	CursorDir string
}

// Validate reports errors.
func (s MeasuredSpec) Validate() error {
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if s.Algorithm == "" {
		return fmt.Errorf("core: no algorithm")
	}
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("core: bad frame size %dx%d", s.Width, s.Height)
	}
	if s.Ranks < 0 {
		return fmt.Errorf("core: negative rank count")
	}
	if s.Mode == coupling.Socket && s.LayoutPath == "" {
		return fmt.Errorf("core: socket mode needs a layout path")
	}
	if _, err := transport.ParseCodec(s.Codec); err != nil {
		return err
	}
	return nil
}

// MeasuredResult reports a measured run.
type MeasuredResult struct {
	// Wall is end-to-end time, including dataset generation and the
	// final composite.
	Wall time.Duration
	// RenderTime sums the visualization proxies' render time.
	RenderTime time.Duration
	// BytesMoved is the total in-situ interface traffic.
	BytesMoved int64
	// Elements is the total element count processed in the last step.
	Elements int
	// Frames holds each rank's final frame (rank order).
	Frames []*fb.Frame
	// Composited is the final cross-rank composited frame (== Frames[0]
	// for single-rank runs).
	Composited *fb.Frame
	// CompositeStats reports the composite's modeled communication.
	CompositeStats compositing.Stats
	// Phases is the per-phase wall-clock breakdown reconstructed from the
	// run journal (generate/sample/serialize/transport/render/analysis/
	// composite). With concurrent ranks the phase totals sum CPU time
	// across ranks, so they may exceed Wall; for a single pair they
	// account for nearly all of it.
	Phases map[string]time.Duration
	// Events is the run's full journal (also streamed to Spec.Journal's
	// backing file, when one was configured).
	Events []journal.Event
	// Reports are the raw per-pair reports.
	Reports []coupling.Report
}

// PhaseTable renders the per-phase breakdown as a metrics table, phases
// in pipeline order, with each phase's share of wall time.
func (r MeasuredResult) PhaseTable() *metrics.Table {
	t := metrics.NewTable("Per-phase breakdown", "phase", "seconds", "% of wall")
	var total time.Duration
	for _, name := range journal.PhaseNames(r.Events) {
		d := r.Phases[name]
		total += d
		t.AddRow(name, d.Seconds(), pctOf(d, r.Wall))
	}
	t.AddRow("total", total.Seconds(), pctOf(total, r.Wall))
	return t
}

func pctOf(d, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(wall)
}

// RunMeasured executes the spec with real pipelines. Every run records a
// structured journal (streamed to spec.Journal when set) and returns the
// per-phase wall-clock breakdown reconstructed from it.
func RunMeasured(spec MeasuredSpec) (MeasuredResult, error) {
	if err := spec.Validate(); err != nil {
		return MeasuredResult{}, err
	}
	ranks := spec.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	jw := spec.Journal
	if jw == nil {
		jw = journal.New()
	}

	t0 := time.Now()
	jw.Emit(journal.Event{
		Type: journal.TypeRunStart, Rank: -1, Step: -1,
		Detail: fmt.Sprintf("workload=%s algorithm=%s mode=%s ranks=%d steps=%d images=%d sampling=%g",
			spec.Workload.Name, spec.Algorithm, spec.Mode, ranks,
			spec.Workload.Steps, spec.ImagesPerStep, effectiveRatio(spec.SamplingRatio)),
	})

	// Pre-generate steps once and share across rank proxies (the disk
	// data is the same file for every rank in the paper's design). Each
	// generation is journaled under the generate phase with rank -1, the
	// harness's own identity.
	datasets := make([]data.Dataset, spec.Workload.Steps)
	for s := range datasets {
		g0 := time.Now()
		ds, err := spec.Workload.Generate(s)
		if err != nil {
			err = fmt.Errorf("core: generating step %d: %w", s, err)
			jw.Error(-1, s, err)
			return MeasuredResult{}, err
		}
		genDur := time.Since(g0)
		telemetry.Default.ObserveSpan("core.generate", genDur)
		jw.Emit(journal.Event{
			Type: journal.TypeDataset, Phase: journal.PhaseGenerate,
			Rank: -1, Step: s, DurNS: int64(genDur),
			Elements: ds.Count(), Bytes: ds.Bytes(),
			Detail: "workload=" + spec.Workload.Name,
		})
		datasets[s] = ds
	}

	if spec.CursorDir != "" {
		if err := os.MkdirAll(spec.CursorDir, 0o755); err != nil {
			return MeasuredResult{}, fmt.Errorf("core: creating cursor dir: %w", err)
		}
	}
	pairs := make([]coupling.PairSpec, ranks)
	for r := 0; r < ranks; r++ {
		sim, err := proxy.NewSimProxy(proxy.SimConfig{
			Rank: r, Ranks: ranks,
			SamplingRatio:  spec.SamplingRatio,
			SamplingMethod: spec.SamplingMethod,
			Seed:           int64(r) + 1,
			Compress:       spec.Compress,
			Codec:          spec.Codec,
			Journal:        jw,
		}, &proxy.MemSource{Data: datasets})
		if err != nil {
			return MeasuredResult{}, err
		}
		cursorPath := ""
		if spec.CursorDir != "" {
			cursorPath = filepath.Join(spec.CursorDir, fmt.Sprintf("rank%d.ckpt", r))
		}
		viz, err := proxy.NewVizProxy(proxy.VizConfig{
			Rank: r, Width: spec.Width, Height: spec.Height,
			Algorithm:     spec.Algorithm,
			Options:       spec.Options,
			ImagesPerStep: spec.ImagesPerStep,
			OutDir:        spec.OutDir,
			Operations:    spec.Operations,
			Journal:       jw,
			CursorPath:    cursorPath,
		})
		if err != nil {
			return MeasuredResult{}, err
		}
		pairs[r] = coupling.PairSpec{Sim: sim, Viz: viz}
	}

	ctx := spec.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	reports, err := coupling.RunPairsSupervised(ctx, pairs, spec.Mode, spec.LayoutPath, spec.Policy, spec.Supervise, jw)
	if err != nil {
		return MeasuredResult{}, err
	}
	res := MeasuredResult{Reports: reports}
	for _, rep := range reports {
		res.BytesMoved += rep.BytesMoved
		res.RenderTime += rep.Viz.TotalRenderTime()
		if n := len(rep.Viz.Results); n > 0 {
			res.Elements += rep.Viz.Results[n-1].Elements
			res.Frames = append(res.Frames, rep.Viz.Results[n-1].LastFrame)
		}
	}

	// Merge the per-rank frames of the last step into the final image —
	// the sort-last composite every distributed in-situ run ends with.
	if len(res.Frames) > 1 {
		c0 := time.Now()
		comp, cstats, err := compositing.Composite(res.Frames, spec.CompositeAlg)
		if err != nil {
			jw.Error(-1, -1, err)
			return MeasuredResult{}, err
		}
		compDur := time.Since(c0)
		res.Composited = comp
		res.CompositeStats = cstats
		jw.Emit(journal.Event{
			Type: journal.TypeComposite, Phase: journal.PhaseComposite,
			Rank: -1, Step: -1, DurNS: int64(compDur),
			Bytes: cstats.BytesMoved,
			Detail: fmt.Sprintf("algorithm=%s frames=%d rounds=%d",
				spec.CompositeAlg, len(res.Frames), cstats.Rounds),
		})
	} else if len(res.Frames) == 1 {
		res.Composited = res.Frames[0]
	}

	res.Wall = time.Since(t0)
	jw.Emit(journal.Event{
		Type: journal.TypeRunEnd, Rank: -1, Step: -1, DurNS: int64(res.Wall),
	})
	res.Events = jw.Events()
	res.Phases = journal.Breakdown(res.Events)
	return res, nil
}

// effectiveRatio reports the sampling ratio with 0 meaning disabled (1).
func effectiveRatio(r float64) float64 {
	if r == 0 {
		return 1
	}
	return r
}

// ModeledSpec describes a paper-scale modeled experiment.
type ModeledSpec struct {
	// Nodes is the allocation size.
	Nodes int
	// Algorithm names the cost model (render registry name).
	Algorithm string
	// Costs supplies cost models; nil selects cluster.DefaultCosts().
	Costs cluster.CostTable
	// Elements is the dataset size (particles or cells).
	Elements float64
	// SamplingRatio in (0, 1]; 0 means 1.
	SamplingRatio float64
	// PixelsPerImage, ImagesPerStep, TimeSteps shape the render load.
	PixelsPerImage, ImagesPerStep, TimeSteps int
	// Coupling, when CoupledSim is non-nil, models the full pipeline.
	Coupling   cluster.Coupling
	CoupledSim *cluster.SimSpec
}

// RunModeled executes the spec on the cluster model.
func RunModeled(spec ModeledSpec) (cluster.Result, error) {
	costs := spec.Costs
	if costs == nil {
		costs = cluster.DefaultCosts()
	}
	alg, err := costs.Get(spec.Algorithm)
	if err != nil {
		return cluster.Result{}, err
	}
	job := cluster.Job{
		Algorithm:      alg,
		Elements:       spec.Elements,
		SamplingRatio:  spec.SamplingRatio,
		PixelsPerImage: spec.PixelsPerImage,
		ImagesPerStep:  spec.ImagesPerStep,
		TimeSteps:      spec.TimeSteps,
	}
	cfg := cluster.Hikari(spec.Nodes)
	if spec.CoupledSim != nil {
		r, err := cluster.SimulateCoupled(cfg, job, *spec.CoupledSim, spec.Coupling)
		if err != nil {
			return cluster.Result{}, err
		}
		return r.Result, nil
	}
	return cluster.Simulate(cfg, job)
}
