package core

import (
	"path/filepath"
	"testing"

	"github.com/ascr-ecx/eth/internal/cluster"
	"github.com/ascr-ecx/eth/internal/coupling"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

func haccSpec() MeasuredSpec {
	return MeasuredSpec{
		Workload:      HACCWorkload(5000, 2, 7),
		Algorithm:     "points",
		Width:         48,
		Height:        48,
		ImagesPerStep: 2,
		Ranks:         2,
	}
}

func TestRunMeasuredHACC(t *testing.T) {
	res, err := RunMeasured(haccSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 || res.RenderTime <= 0 {
		t.Error("no time recorded")
	}
	if res.Elements == 0 {
		t.Error("no elements recorded")
	}
	if len(res.Frames) != 2 {
		t.Errorf("frames = %d", len(res.Frames))
	}
	if res.BytesMoved != 0 {
		t.Error("unified mode moved bytes")
	}
}

func TestRunMeasuredSocketMode(t *testing.T) {
	spec := haccSpec()
	spec.Mode = coupling.Socket
	spec.LayoutPath = filepath.Join(t.TempDir(), "layout")
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved == 0 {
		t.Error("socket mode moved no bytes")
	}
}

func TestRunMeasuredXRAGE(t *testing.T) {
	spec := MeasuredSpec{
		Workload:      XRAGEWorkload(24, 16, 16, 1, 3),
		Algorithm:     "ray-iso",
		Width:         48,
		Height:        48,
		ImagesPerStep: 1,
		Ranks:         1,
	}
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames[0].CoveredPixels() == 0 {
		t.Error("xrage render empty")
	}
}

func TestRunMeasuredSampling(t *testing.T) {
	full := haccSpec()
	fullRes, err := RunMeasured(full)
	if err != nil {
		t.Fatal(err)
	}
	sampled := haccSpec()
	sampled.SamplingRatio = 0.25
	sampledRes, err := RunMeasured(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if sampledRes.Elements >= fullRes.Elements {
		t.Errorf("sampling kept %d of %d elements", sampledRes.Elements, fullRes.Elements)
	}
}

func TestRunMeasuredValidation(t *testing.T) {
	bad := haccSpec()
	bad.Algorithm = ""
	if _, err := RunMeasured(bad); err == nil {
		t.Error("missing algorithm accepted")
	}
	bad = haccSpec()
	bad.Width = 0
	if _, err := RunMeasured(bad); err == nil {
		t.Error("zero width accepted")
	}
	bad = haccSpec()
	bad.Mode = coupling.Socket
	if _, err := RunMeasured(bad); err == nil {
		t.Error("socket without layout accepted")
	}
	bad = haccSpec()
	bad.Workload.Steps = 0
	if _, err := RunMeasured(bad); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestDiskWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s0.ethd")
	wl := HACCWorkload(100, 1, 1)
	ds, err := wl.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vtkio.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	dwl, err := DiskWorkload("replay", path)
	if err != nil {
		t.Fatal(err)
	}
	spec := MeasuredSpec{
		Workload:  dwl,
		Algorithm: "gsplat",
		Width:     32, Height: 32,
		ImagesPerStep: 1,
	}
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 100 {
		t.Errorf("disk replay elements = %d", res.Elements)
	}
	if _, err := DiskWorkload("none"); err == nil {
		t.Error("empty disk workload accepted")
	}
}

func TestRunModeled(t *testing.T) {
	res, err := RunModeled(ModeledSpec{
		Nodes:          400,
		Algorithm:      "gsplat",
		Elements:       1e9,
		PixelsPerImage: 1 << 20,
		ImagesPerStep:  500,
		TimeSteps:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.EnergyJ <= 0 {
		t.Error("modeled run empty")
	}
	if _, err := RunModeled(ModeledSpec{Algorithm: "bogus", Nodes: 4, Elements: 1, PixelsPerImage: 1, ImagesPerStep: 1, TimeSteps: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunModeledCoupled(t *testing.T) {
	sim := &cluster.SimSpec{SecondsPerStep: 60, RefNodes: 400, BytesPerStep: 1e10, Utilization: 0.5}
	res, err := RunModeled(ModeledSpec{
		Nodes:          400,
		Algorithm:      "points",
		Elements:       1e9,
		PixelsPerImage: 1 << 20,
		ImagesPerStep:  100,
		TimeSteps:      2,
		Coupling:       cluster.Intercore,
		CoupledSim:     sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunModeled(ModeledSpec{
		Nodes:          400,
		Algorithm:      "points",
		Elements:       1e9,
		PixelsPerImage: 1 << 20,
		ImagesPerStep:  100,
		TimeSteps:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= plain.Seconds {
		t.Error("coupled run should include sim time")
	}
}

// Sampling at a lower ratio must degrade the image relative to the full
// render — the Table II accuracy relationship, measured end to end.
func TestMeasuredSamplingRMSEMonotone(t *testing.T) {
	render := func(ratio float64) *fb.Frame {
		spec := MeasuredSpec{
			Workload:      HACCWorkload(20000, 1, 3),
			Algorithm:     "points",
			Width:         64,
			Height:        64,
			ImagesPerStep: 1,
			SamplingRatio: ratio,
		}
		res, err := RunMeasured(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Frames[0]
	}
	ref := render(1.0)
	rmse25, err := fb.RMSE(ref, render(0.25))
	if err != nil {
		t.Fatal(err)
	}
	rmse75, err := fb.RMSE(ref, render(0.75))
	if err != nil {
		t.Fatal(err)
	}
	if rmse25 <= rmse75 {
		t.Errorf("RMSE(0.25)=%v should exceed RMSE(0.75)=%v", rmse25, rmse75)
	}
	if rmse25 == 0 {
		t.Error("sampling at 0.25 changed nothing")
	}
}
