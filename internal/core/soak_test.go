package core

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
)

// TestSoakMillionParticleMultiRank runs the full measured pipeline at a
// scale closer to real use: one million particles, four proxy pairs,
// raycasting, two images per step. It validates that the harness holds
// up beyond toy sizes (memory, determinism of the composited output
// against a reference single-rank run is covered elsewhere; here we
// check liveness and structural sanity).
func TestSoakMillionParticleMultiRank(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test (several seconds)")
	}
	spec := MeasuredSpec{
		Workload:      HACCWorkload(1_000_000, 1, 99),
		Algorithm:     "raycast",
		Width:         256,
		Height:        256,
		ImagesPerStep: 2,
		Ranks:         4,
	}
	res, err := RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 4 {
		t.Fatalf("frames = %d", len(res.Frames))
	}
	total := 0
	covered := 0
	for _, frame := range res.Frames {
		covered += frame.CoveredPixels()
	}
	for _, rep := range res.Reports {
		total += rep.Viz.Results[0].Elements
	}
	if total != 1_000_000 {
		t.Errorf("ranks processed %d particles", total)
	}
	if covered < 10_000 {
		t.Errorf("suspiciously low coverage: %d pixels", covered)
	}
	// The per-rank frames must be composable.
	out := fb.New(256, 256)
	for _, frame := range res.Frames {
		for i := range out.Depth {
			if frame.Depth[i] < out.Depth[i] {
				out.Depth[i] = frame.Depth[i]
				out.Color[i] = frame.Color[i]
			}
		}
	}
	if out.CoveredPixels() == 0 {
		t.Error("composited soak frame empty")
	}
}
