package analysis

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ascr-ecx/eth/internal/cosmo"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

// plantedCloud builds a cloud with k tight clusters plus sparse noise.
func plantedCloud(k, perCluster, noise int, seed int64) (*data.PointCloud, []vec.V3) {
	rng := rand.New(rand.NewSource(seed))
	total := k*perCluster + noise
	p := data.NewPointCloud(total)
	centers := make([]vec.V3, k)
	idx := 0
	for c := 0; c < k; c++ {
		// Centers far apart on a coarse lattice.
		centers[c] = vec.New(float64(c%3)*40+10, float64((c/3)%3)*40+10, float64(c/9)*40+10)
		for m := 0; m < perCluster; m++ {
			p.IDs[idx] = int64(idx)
			p.SetPos(idx, centers[c].Add(vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.3)))
			p.SetVel(idx, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(50))
			idx++
		}
	}
	for idx < total {
		p.IDs[idx] = int64(idx)
		p.SetPos(idx, vec.New(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100))
		idx++
	}
	return p, centers
}

func TestFOFFindsPlantedClusters(t *testing.T) {
	p, centers := plantedCloud(5, 100, 200, 1)
	halos, err := FOF(p, FOFOptions{LinkLength: 1.5, MinMembers: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 5 {
		t.Fatalf("found %d halos, want 5", len(halos))
	}
	// Every planted center must be matched by a found halo.
	for _, c := range centers {
		best := math.Inf(1)
		for _, h := range halos {
			if d := h.Center.Sub(c).Len(); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("planted center %v unmatched (nearest %v away)", c, best)
		}
	}
	// Sizes ~100 each.
	for _, h := range halos {
		if h.Count < 90 || h.Count > 130 {
			t.Errorf("halo size %d, want ~100", h.Count)
		}
		if h.Radius <= 0 || h.Radius > 2 {
			t.Errorf("halo radius %v implausible", h.Radius)
		}
		if h.VelDisp <= 0 {
			t.Error("zero velocity dispersion for random velocities")
		}
	}
}

func TestFOFOrderingAndIDs(t *testing.T) {
	p, _ := plantedCloud(3, 50, 0, 2)
	// Make cluster sizes distinct by dropping particles from the tail.
	trimmed := p.Slice(0, 50+40+30) // 50, 40, 30 members
	halos, err := FOF(trimmed, FOFOptions{LinkLength: 1.5, MinMembers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 3 {
		t.Fatalf("halos = %d", len(halos))
	}
	for i := 1; i < len(halos); i++ {
		if halos[i].Count > halos[i-1].Count {
			t.Error("halos not sorted by size")
		}
	}
	for i, h := range halos {
		if h.ID != i {
			t.Errorf("halo %d has ID %d", i, h.ID)
		}
	}
}

func TestFOFMinMembersFilters(t *testing.T) {
	p, _ := plantedCloud(2, 30, 0, 3)
	halos, err := FOF(p, FOFOptions{LinkLength: 1.5, MinMembers: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 0 {
		t.Errorf("min-members filter kept %d halos", len(halos))
	}
}

func TestFOFEmptyAndDegenerate(t *testing.T) {
	halos, err := FOF(data.NewPointCloud(0), FOFOptions{})
	if err != nil || halos != nil {
		t.Errorf("empty cloud: %v, %v", halos, err)
	}
	// All particles at one point with no explicit link length: degenerate
	// bounds must error rather than divide by zero.
	p := data.NewPointCloud(10)
	if _, err := FOF(p, FOFOptions{}); err == nil {
		t.Error("degenerate bounds accepted without link length")
	}
	// With explicit link length it forms one group.
	halos, err = FOF(p, FOFOptions{LinkLength: 1, MinMembers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || halos[0].Count != 10 {
		t.Errorf("coincident particles: %+v", halos)
	}
}

func TestFOFDefaultLinkLength(t *testing.T) {
	p, _ := plantedCloud(4, 80, 100, 4)
	halos, err := FOF(p, FOFOptions{MinMembers: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) < 3 {
		t.Errorf("default link length found only %d halos", len(halos))
	}
}

// FOF on the cosmo generator must recover a halo population of the
// planted order of magnitude — the cross-module validation that the
// synthetic universe really contains findable halos.
func TestFOFOnCosmoGenerator(t *testing.T) {
	params := cosmo.Params{
		Particles: 60_000, BoxSize: 60,
		Halos: 25, HaloFraction: 0.7, Seed: 5,
	}
	cloud, err := cosmo.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	halos, err := FOF(cloud, FOFOptions{MinMembers: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) < 10 || len(halos) > 80 {
		t.Errorf("found %d halos for 25 planted", len(halos))
	}
	// The biggest halo should be a sizable fraction of the clustered mass.
	if halos[0].Count < 500 {
		t.Errorf("largest halo only %d members", halos[0].Count)
	}
}

func TestMassFunction(t *testing.T) {
	halos := []Halo{
		{Count: 1000}, {Count: 500}, {Count: 100}, {Count: 90}, {Count: 10},
	}
	edges, counts := MassFunction(halos, 4)
	if len(edges) != 4 || len(counts) != 4 {
		t.Fatalf("bins = %d, %d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(halos) {
		t.Errorf("mass function counts %d halos, want %d", total, len(halos))
	}
	// Edges ascend.
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Error("edges not ascending")
		}
	}
	if e, c := MassFunction(nil, 4); e != nil || c != nil {
		t.Error("empty input should return nil")
	}
}

func TestDisjointSetInvariants(t *testing.T) {
	d := newDisjointSet(10)
	d.union(0, 1)
	d.union(1, 2)
	d.union(5, 6)
	if d.find(0) != d.find(2) {
		t.Error("transitive union broken")
	}
	if d.find(0) == d.find(5) {
		t.Error("separate sets merged")
	}
	if d.find(9) != 9 {
		t.Error("singleton moved")
	}
	// Idempotent union.
	d.union(0, 2)
	if d.find(1) != d.find(2) {
		t.Error("repeated union broke set")
	}
}

func BenchmarkFOF(b *testing.B) {
	p, _ := plantedCloud(20, 500, 10_000, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FOF(p, FOFOptions{LinkLength: 1.5}); err != nil {
			b.Fatal(err)
		}
	}
}
