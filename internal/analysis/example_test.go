package analysis_test

import (
	"fmt"

	"github.com/ascr-ecx/eth/internal/analysis"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Find the two planted particle groups with friends-of-friends.
func ExampleFOF() {
	cloud := data.NewPointCloud(40)
	for i := 0; i < 20; i++ {
		cloud.SetPos(i, vec.New(float64(i%4)*0.1, float64(i/4)*0.1, 0))
	}
	for i := 20; i < 40; i++ {
		j := i - 20
		cloud.SetPos(i, vec.New(50+float64(j%4)*0.1, 50+float64(j/4)*0.1, 50))
	}
	halos, _ := analysis.FOF(cloud, analysis.FOFOptions{LinkLength: 0.5, MinMembers: 5})
	for _, h := range halos {
		fmt.Printf("halo %d: %d members\n", h.ID, h.Count)
	}
	// Output:
	// halo 0: 20 members
	// halo 1: 20 members
}

// Summarize a field in one pass.
func ExampleStats() {
	st := analysis.Stats([]float32{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean %.1f, min %.0f, max %.0f\n", st.Mean, st.Min, st.Max)
	// Output:
	// mean 5.0, min 2, max 9
}
