package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStatsBasics(t *testing.T) {
	st := Stats([]float32{1, 2, 3, 4})
	if st.Count != 4 || st.Min != 1 || st.Max != 4 || st.Mean != 2.5 {
		t.Errorf("stats = %+v", st)
	}
	one := Stats([]float32{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Errorf("single-value stats = %+v", one)
	}
	if Stats(nil) != (FieldStats{}) {
		t.Error("empty stats not zero")
	}
	if Stats([]float32{1}).String() == "" {
		t.Error("empty string")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestStatsMatchesTwoPassProperty(t *testing.T) {
	f := func(vals []float32) bool {
		for i, v := range vals {
			if v != v || v > 1e18 || v < -1e18 {
				vals[i] = 0
			}
		}
		st := Stats(vals)
		if len(vals) == 0 {
			return st.Count == 0
		}
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		mean := sum / float64(len(vals))
		if math.Abs(st.Mean-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		if len(vals) > 1 {
			var ss float64
			for _, v := range vals {
				d := float64(v) - mean
				ss += d * d
			}
			std := math.Sqrt(ss / float64(len(vals)-1))
			if math.Abs(st.Std-std) > 1e-5*(1+std) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float32{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	edges, counts := Histogram(vals, 4)
	if len(edges) != 4 || len(counts) != 4 {
		t.Fatalf("bins = %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(vals) {
		t.Errorf("histogram total = %d", total)
	}
	if edges[0] != 0 {
		t.Errorf("first edge = %v", edges[0])
	}
	// Degenerate cases.
	if e, c := Histogram(nil, 4); e != nil || c != nil {
		t.Error("empty histogram not nil")
	}
	if e, c := Histogram(vals, 0); e != nil || c != nil {
		t.Error("zero bins not nil")
	}
	// Constant field: all values land in bin 0.
	_, cc := Histogram([]float32{3, 3, 3}, 2)
	if cc[0] != 3 || cc[1] != 0 {
		t.Errorf("constant histogram = %v", cc)
	}
}
