// Package analysis implements in-situ analysis operators — the
// non-rendering half of the paper's "analysis and visualization
// operations" (§III). Its first operator is the friends-of-friends (FOF)
// halo finder the paper's introduction motivates: "while the algorithm
// tracks very large numbers of particles, the science is particularly
// interested in the distribution of halos". Running FOF inside the
// visualization proxy turns the raw particle stream into the compact
// extract a cosmologist actually stores.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Halo is one friends-of-friends group.
type Halo struct {
	// ID is the group's index in descending-size order (0 = largest).
	ID int
	// Count is the number of member particles.
	Count int
	// Center is the mean member position.
	Center vec.V3
	// Velocity is the mean member velocity.
	Velocity vec.V3
	// Radius is the RMS member distance from Center.
	Radius float64
	// VelDisp is the 3-D velocity dispersion (RMS deviation from the
	// mean velocity).
	VelDisp float64
}

// FOFOptions configures the halo finder.
type FOFOptions struct {
	// LinkLength is the friends-of-friends linking length b: particles
	// closer than b are in the same group. <= 0 derives 0.2x the mean
	// inter-particle spacing, the standard cosmology choice.
	LinkLength float64
	// MinMembers drops groups smaller than this (default 8).
	MinMembers int
}

// FOF runs friends-of-friends over the cloud and returns the halos in
// descending size order. The implementation grids space at the linking
// length and unions neighbors with a path-compressed disjoint-set —
// O(N · 27 · cell occupancy) expected, exact (not approximate) linking.
func FOF(p *data.PointCloud, opt FOFOptions) ([]Halo, error) {
	n := p.Count()
	if n == 0 {
		return nil, nil
	}
	link := opt.LinkLength
	if link <= 0 {
		b := p.Bounds()
		vol := b.Size().X * b.Size().Y * b.Size().Z
		if vol <= 0 {
			return nil, fmt.Errorf("analysis: degenerate bounds, specify LinkLength")
		}
		link = 0.2 * math.Cbrt(vol/float64(n))
	}
	minMembers := opt.MinMembers
	if minMembers <= 0 {
		minMembers = 8
	}

	// Spatial hash grid with cell edge = link length: all neighbors
	// within link distance lie in the 27-cell neighborhood.
	bounds := p.Bounds()
	inv := 1 / link
	key := func(i int) [3]int32 {
		pos := p.Pos(i)
		return [3]int32{
			int32((pos.X - bounds.Min.X) * inv),
			int32((pos.Y - bounds.Min.Y) * inv),
			int32((pos.Z - bounds.Min.Z) * inv),
		}
	}
	cells := make(map[[3]int32][]int32, n/4+1)
	for i := 0; i < n; i++ {
		k := key(i)
		cells[k] = append(cells[k], int32(i))
	}

	ds := newDisjointSet(n)
	link2 := link * link
	for i := 0; i < n; i++ {
		pi := p.Pos(i)
		k := key(i)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					nk := [3]int32{k[0] + dx, k[1] + dy, k[2] + dz}
					for _, j := range cells[nk] {
						if int(j) <= i {
							continue // each pair once
						}
						d := pi.Sub(p.Pos(int(j)))
						if d.Dot(d) <= link2 {
							ds.union(i, int(j))
						}
					}
				}
			}
		}
	}

	// Gather groups.
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := ds.find(i)
		members[r] = append(members[r], i)
	}
	halos := make([]Halo, 0)
	for _, m := range members {
		if len(m) < minMembers {
			continue
		}
		halos = append(halos, summarize(p, m))
	}
	sort.Slice(halos, func(a, b int) bool {
		if halos[a].Count != halos[b].Count {
			return halos[a].Count > halos[b].Count
		}
		// Deterministic tie-break by position.
		return halos[a].Center.X < halos[b].Center.X
	})
	for i := range halos {
		halos[i].ID = i
	}
	return halos, nil
}

func summarize(p *data.PointCloud, members []int) Halo {
	var cSum, vSum vec.V3
	for _, i := range members {
		cSum = cSum.Add(p.Pos(i))
		vSum = vSum.Add(p.Vel(i))
	}
	inv := 1 / float64(len(members))
	center := cSum.Scale(inv)
	vel := vSum.Scale(inv)
	var r2, dv2 float64
	for _, i := range members {
		r2 += p.Pos(i).Sub(center).Len2()
		dv2 += p.Vel(i).Sub(vel).Len2()
	}
	return Halo{
		Count:    len(members),
		Center:   center,
		Velocity: vel,
		Radius:   math.Sqrt(r2 * inv),
		VelDisp:  math.Sqrt(dv2 * inv),
	}
}

// disjointSet is a union-find with path compression and union by size.
type disjointSet struct {
	parent []int32
	size   []int32
}

func newDisjointSet(n int) *disjointSet {
	d := &disjointSet{
		parent: make([]int32, n),
		size:   make([]int32, n),
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

func (d *disjointSet) find(x int) int {
	root := x
	for d.parent[root] != int32(root) {
		root = int(d.parent[root])
	}
	for d.parent[x] != int32(root) {
		d.parent[x], x = int32(root), int(d.parent[x])
	}
	return root
}

func (d *disjointSet) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	d.size[ra] += d.size[rb]
}

// MassFunction returns the halo counts in logarithmic mass (member
// count) bins between the smallest and largest halo — the "distribution
// of halos" extract the paper's cosmology example stores in place of raw
// particles. Returned as (bin lower edges, counts).
func MassFunction(halos []Halo, bins int) ([]float64, []int) {
	if len(halos) == 0 || bins <= 0 {
		return nil, nil
	}
	lo := math.Log10(float64(halos[len(halos)-1].Count))
	hi := math.Log10(float64(halos[0].Count))
	if hi == lo {
		hi = lo + 1
	}
	edges := make([]float64, bins)
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = math.Pow(10, lo+float64(i)*width)
	}
	for _, h := range halos {
		b := int((math.Log10(float64(h.Count)) - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
