package analysis

import (
	"fmt"
	"math"
)

// FieldStats summarizes a scalar field — the minimal in-situ statistics
// extract (min/max/mean/stddev) a monitoring pipeline ships instead of
// raw arrays.
type FieldStats struct {
	Count    int
	Min, Max float64
	Mean     float64
	Std      float64
}

// Stats computes streaming single-pass statistics over values using
// Welford's algorithm (numerically stable for long runs).
func Stats(values []float32) FieldStats {
	s := FieldStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var mean, m2 float64
	for _, raw := range values {
		v := float64(raw)
		s.Count++
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		delta := v - mean
		mean += delta / float64(s.Count)
		m2 += delta * (v - mean)
	}
	if s.Count == 0 {
		return FieldStats{}
	}
	s.Mean = mean
	if s.Count > 1 {
		s.Std = math.Sqrt(m2 / float64(s.Count-1))
	}
	return s
}

// String implements fmt.Stringer.
func (s FieldStats) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g std=%.4g",
		s.Count, s.Min, s.Max, s.Mean, s.Std)
}

// Histogram bins values into the given number of equal-width bins over
// [min, max]. It returns the bin lower edges and counts; empty input
// returns nils.
func Histogram(values []float32, bins int) (edges []float64, counts []int) {
	if len(values) == 0 || bins <= 0 {
		return nil, nil
	}
	st := Stats(values)
	lo, hi := st.Min, st.Max
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(bins)
	edges = make([]float64, bins)
	counts = make([]int, bins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, raw := range values {
		b := int((float64(raw) - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
