package blast

import (
	"math"
	"reflect"
	"testing"

	"github.com/ascr-ecx/eth/internal/vec"
)

func TestGenerateShapeAndFields(t *testing.T) {
	p := SmallParams()
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != p.NX || g.NY != p.NY || g.NZ != p.NZ {
		t.Fatalf("dims = %d %d %d", g.NX, g.NY, g.NZ)
	}
	for _, name := range []string{"temperature", "density", "pressure"} {
		if _, err := g.Field(name); err != nil {
			t.Errorf("field %q missing", name)
		}
	}
	// Longest axis spans the box.
	if math.Abs(g.Bounds().Size().MaxComp()-p.BoxSize) > 1e-9 {
		t.Errorf("bounds = %+v, want longest = %v", g.Bounds(), p.BoxSize)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(SmallParams())
	b, _ := Generate(SmallParams())
	fa, _ := a.Field("temperature")
	fb, _ := b.Field("temperature")
	if !reflect.DeepEqual(fa.Values, fb.Values) {
		t.Error("generation not deterministic")
	}
}

func TestTemperatureNormalized(t *testing.T) {
	g, _ := Generate(SmallParams())
	f, _ := g.Field("temperature")
	lo, hi := f.MinMax()
	if lo < 0 || hi > 1 {
		t.Errorf("temperature range [%v, %v] outside [0,1]", lo, hi)
	}
	if hi-lo < 0.3 {
		t.Errorf("temperature dynamic range too small: [%v, %v]", lo, hi)
	}
}

func TestIsovaluesIntersectVolume(t *testing.T) {
	// Every isovalue in the sweep range must have vertices on both sides,
	// so isosurfaces are non-empty for the experiments.
	g, _ := Generate(MediumParams())
	f, _ := g.Field("temperature")
	for _, iso := range []float32{0.2, 0.35, 0.5, 0.65} {
		below, above := 0, 0
		for _, v := range f.Values {
			if v < iso {
				below++
			} else {
				above++
			}
		}
		if below == 0 || above == 0 {
			t.Errorf("isovalue %v does not cross the field (below=%d above=%d)", iso, below, above)
		}
	}
}

func TestShockExpandsWithTime(t *testing.T) {
	// The mean temperature-weighted radius from the impact point must
	// grow with TimeStep (the blast front expands).
	radius := func(step int) float64 {
		p := SmallParams()
		p.TimeStep = step
		g, _ := Generate(p)
		f, _ := g.Field("temperature")
		impact := vec.New(
			0.5*g.Spacing.X*float64(g.NX-1),
			0.38*g.Spacing.Y*float64(g.NY-1),
			0.5*g.Spacing.Z*float64(g.NZ-1),
		)
		var wsum, rsum float64
		idx := 0
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					w := float64(f.Values[idx])
					if w > 0.5 {
						rsum += w * g.VertexPos(i, j, k).Sub(impact).Len()
						wsum += w
					}
					idx++
				}
			}
		}
		if wsum == 0 {
			return 0
		}
		return rsum / wsum
	}
	r0 := radius(0)
	r8 := radius(8)
	if r8 <= r0 {
		t.Errorf("hot region did not expand: r(0)=%v r(8)=%v", r0, r8)
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Params{NX: 1, NY: 4, NZ: 4, BoxSize: 1}); err == nil {
		t.Error("degenerate dim accepted")
	}
	if _, err := Generate(Params{NX: 4, NY: 4, NZ: 4, BoxSize: 0}); err == nil {
		t.Error("zero box accepted")
	}
}

func TestProblemSizePresets(t *testing.T) {
	s, m, l := SmallParams(), MediumParams(), LargeParams()
	sv := s.NX * s.NY * s.NZ
	mv := m.NX * m.NY * m.NZ
	lv := l.NX * l.NY * l.NZ
	if !(sv < mv && mv < lv) {
		t.Errorf("presets not ordered: %d %d %d", sv, mv, lv)
	}
	// The paper's small->large is a ~27x growth (2x in each of ~3 dims
	// going small->medium->large in two steps); ours should be >= 10x.
	if float64(lv)/float64(sv) < 10 {
		t.Errorf("large/small = %.1f, want >= 10", float64(lv)/float64(sv))
	}
}

func TestNoiseBounded(t *testing.T) {
	f := blastField{box: 10, seed: 7, shockR: 1, impact: vec.New(5, 4, 5)}
	for i := 0; i < 1000; i++ {
		p := vec.New(float64(i)*0.37, float64(i)*0.11, float64(i)*0.23)
		n := f.noise(p)
		if n < -1.01 || n > 1.01 {
			t.Fatalf("noise(%v) = %v out of range", p, n)
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(SmallParams()); err != nil {
			b.Fatal(err)
		}
	}
}
