// Package blast synthesizes xRAGE-like asteroid-impact volume datasets.
// The paper's grid workload is the temperature field around an asteroid
// ocean strike, resampled from AMR onto structured grids of up to
// 1840x1120x960 (§IV-A). We replace the proprietary dump with an analytic
// Sedov-Taylor-flavoured blast: a hot, expanding shock shell over an
// ambient gradient, plus a buried "asteroid" density anomaly and
// deterministic multi-octave turbulence so that isosurfaces are closed,
// bumpy, and non-trivial at every isovalue the sweeps visit — the
// properties slicing and isosurfacing actually exercise.
package blast

import (
	"fmt"
	"math"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Params configures the synthetic impact volume.
type Params struct {
	// NX, NY, NZ are the grid vertex counts.
	NX, NY, NZ int
	// BoxSize is the world edge length of the longest axis.
	BoxSize float64
	// TimeStep advances the blast front; the paper processes 12 steps.
	TimeStep int
	// Seed perturbs the turbulence phases.
	Seed int64
}

// DefaultParams returns a laptop-scale grid with the paper's 1.7:1.2:1
// aspect ratio (1840x1120x960 scaled down).
func DefaultParams() Params {
	return Params{NX: 184, NY: 112, NZ: 96, BoxSize: 10, Seed: 1}
}

// SmallParams, MediumParams and LargeParams mirror the paper's three
// problem sizes at 1/10 linear scale (the paper's small/medium/large are
// 610x375x320, 1280x750x640, 1840x1120x960).
func SmallParams() Params  { return Params{NX: 61, NY: 38, NZ: 32, BoxSize: 10, Seed: 1} }
func MediumParams() Params { return Params{NX: 128, NY: 75, NZ: 64, BoxSize: 10, Seed: 1} }
func LargeParams() Params  { return Params{NX: 184, NY: 112, NZ: 96, BoxSize: 10, Seed: 1} }

// Generate synthesizes the volume for p with fields "temperature",
// "density" and "pressure". It is deterministic and parallel over z-slabs.
func Generate(p Params) (*data.StructuredGrid, error) {
	if p.NX < 2 || p.NY < 2 || p.NZ < 2 {
		return nil, fmt.Errorf("blast: grid dims must be >= 2, got %dx%dx%d", p.NX, p.NY, p.NZ)
	}
	if p.BoxSize <= 0 {
		return nil, fmt.Errorf("blast: box size must be positive, got %g", p.BoxSize)
	}
	g := data.NewStructuredGrid(p.NX, p.NY, p.NZ)
	maxDim := p.NX
	if p.NY > maxDim {
		maxDim = p.NY
	}
	if p.NZ > maxDim {
		maxDim = p.NZ
	}
	h := p.BoxSize / float64(maxDim-1)
	g.Spacing = vec.Splat(h)

	field := blastField{
		// Impact point: on the "ocean surface" plane one third up the box.
		impact: vec.New(
			0.5*h*float64(p.NX-1),
			0.38*h*float64(p.NY-1),
			0.5*h*float64(p.NZ-1),
		),
		// Shock radius grows ~ t^(2/5) (Sedov-Taylor).
		shockR: 0.12 * p.BoxSize * math.Pow(float64(p.TimeStep)+1, 0.4),
		box:    p.BoxSize,
		seed:   p.Seed,
	}

	temp := make([]float32, g.Count())
	dens := make([]float32, g.Count())
	pres := make([]float32, g.Count())

	par.For(p.NZ, 0, func(k int) {
		idx := g.Index(0, 0, k)
		for j := 0; j < p.NY; j++ {
			for i := 0; i < p.NX; i++ {
				pos := g.VertexPos(i, j, k)
				t, d := field.eval(pos)
				temp[idx] = float32(t)
				dens[idx] = float32(d)
				pres[idx] = float32(t * d) // ideal-gas-like
				idx++
			}
		}
	})

	if err := g.AddField("temperature", temp); err != nil {
		return nil, err
	}
	if err := g.AddField("density", dens); err != nil {
		return nil, err
	}
	if err := g.AddField("pressure", pres); err != nil {
		return nil, err
	}
	return g, nil
}

type blastField struct {
	impact vec.V3
	shockR float64
	box    float64
	seed   int64
}

// eval returns (temperature, density) at world position p. Temperature is
// normalized to roughly [0, 1] so that isovalue sweeps across (0, 1) all
// intersect the shell.
func (f blastField) eval(p vec.V3) (temperature, density float64) {
	r := p.Sub(f.impact).Len()
	// Shock shell: hot, thin, with turbulent corrugation.
	shell := math.Exp(-sq((r-f.shockR)/(0.08*f.box+1e-9)) * 4)
	// Fireball interior: hot core decaying outward.
	core := math.Exp(-sq(r / (0.6 * f.shockR)))
	// Ambient stratification: cooler with height (Y).
	ambient := 0.15 * (1 - p.Y/f.box)
	// Multi-octave turbulence corrugates the shell so isosurfaces are
	// bumpy (marching cubes emits realistic triangle counts).
	turb := f.noise(p.Scale(3))*0.5 + f.noise(p.Scale(7))*0.25 + f.noise(p.Scale(13))*0.125

	temperature = clamp01(0.85*shell + 0.6*core + ambient + 0.12*turb*shell)

	// Density: water below the surface plane, air above, evacuated cavity
	// inside the fireball, compressed at the shell.
	waterline := f.impact.Y
	base := 0.1
	if p.Y < waterline {
		base = 1.0
	}
	density = base*(1-0.8*core) + 1.5*shell*0.3
	return temperature, density
}

// noise is a cheap deterministic value-noise: hash the lattice cell,
// trilinearly interpolate. Range roughly [-1, 1].
func (f blastField) noise(p vec.V3) float64 {
	xi, xf := math.Floor(p.X), p.X-math.Floor(p.X)
	yi, yf := math.Floor(p.Y), p.Y-math.Floor(p.Y)
	zi, zf := math.Floor(p.Z), p.Z-math.Floor(p.Z)
	h := func(dx, dy, dz float64) float64 {
		return hash3(int64(xi)+int64(dx), int64(yi)+int64(dy), int64(zi)+int64(dz), f.seed)
	}
	// Smoothstep fade.
	u := xf * xf * (3 - 2*xf)
	v := yf * yf * (3 - 2*yf)
	w := zf * zf * (3 - 2*zf)
	lerp := func(a, b, t float64) float64 { return a + t*(b-a) }
	c00 := lerp(h(0, 0, 0), h(1, 0, 0), u)
	c10 := lerp(h(0, 1, 0), h(1, 1, 0), u)
	c01 := lerp(h(0, 0, 1), h(1, 0, 1), u)
	c11 := lerp(h(0, 1, 1), h(1, 1, 1), u)
	return lerp(lerp(c00, c10, v), lerp(c01, c11, v), w)
}

// hash3 maps a lattice point to [-1, 1] deterministically.
func hash3(x, y, z, seed int64) float64 {
	h := uint64(x)*0x8da6b343 + uint64(y)*0xd8163841 + uint64(z)*0xcb1ab31f + uint64(seed)*0x165667b1
	h ^= h >> 13
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%2000000)/1000000 - 1
}

func sq(x float64) float64 { return x * x }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
