// Package layout implements the job-layout file of the paper's §VII:
// "The job layout (i.e., where the visualization and simulation proxies
// are run) is specified in a separate file... For subsequent exploration
// of a different layout, the user simply changes the job layout file."
// A layout spec is a JSON document describing the whole experiment —
// workload, proxy pairs, coupling, algorithm, sampling — which
// cmd/ethrun executes directly (-spec file.json), so sweeping the design
// space means editing files, not code.
package layout

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ascr-ecx/eth/internal/core"
	"github.com/ascr-ecx/eth/internal/coupling"
	"github.com/ascr-ecx/eth/internal/proxy"
	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/sampling"
	"github.com/ascr-ecx/eth/internal/transport"
)

// Spec is the top-level job-layout document.
type Spec struct {
	// Name labels the experiment.
	Name string `json:"name"`
	// Workload selects the data source.
	Workload WorkloadSpec `json:"workload"`
	// Pairs is the number of simulation/visualization proxy pairs.
	Pairs int `json:"pairs"`
	// Coupling is "unified" (tight) or "socket".
	Coupling string `json:"coupling"`
	// Algorithm names the rendering back-end.
	Algorithm string `json:"algorithm"`
	// Image shapes the render output.
	Image ImageSpec `json:"image"`
	// Sampling configures spatial sampling (optional).
	Sampling SamplingSpec `json:"sampling"`
	// Compress enables wire compression in socket coupling (legacy sugar
	// for Codec "flate"; ignored when Codec is set).
	Compress bool `json:"compress"`
	// Codec names the socket-coupling wire codec: "raw", "flate", "delta",
	// or "delta+flate" (empty defers to Compress).
	Codec string `json:"codec"`
	// Operations lists in-situ analysis steps ("halos", "stats", "save").
	Operations []string `json:"operations"`
	// OutDir receives PNG artifacts (optional).
	OutDir string `json:"outDir"`
}

// WorkloadSpec selects and sizes the data source.
type WorkloadSpec struct {
	// Kind is "hacc", "xrage", or "disk".
	Kind string `json:"kind"`
	// Particles sizes hacc workloads.
	Particles int `json:"particles"`
	// Grid is the longest grid edge for xrage workloads.
	Grid int `json:"grid"`
	// Steps is the time-step count for synthetic workloads.
	Steps int `json:"steps"`
	// Seed drives synthesis determinism.
	Seed int64 `json:"seed"`
	// Glob matches exported files for disk workloads.
	Glob string `json:"glob"`
}

// ImageSpec shapes the render output.
type ImageSpec struct {
	Width         int `json:"width"`
	Height        int `json:"height"`
	ImagesPerStep int `json:"imagesPerStep"`
}

// SamplingSpec configures spatial sampling.
type SamplingSpec struct {
	// Ratio in (0, 1]; 0 means no sampling.
	Ratio float64 `json:"ratio"`
	// Method is "random", "stride", or "stratified".
	Method string `json:"method"`
}

// Load reads and validates a spec from a JSON file.
func Load(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Parse decodes and validates a spec from JSON bytes. Unknown fields are
// rejected so typos in layout files fail loudly.
func Parse(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate reports specification errors with actionable messages.
func (s *Spec) Validate() error {
	switch s.Workload.Kind {
	case "hacc":
		if s.Workload.Particles <= 0 {
			return fmt.Errorf("layout: hacc workload needs particles > 0")
		}
	case "xrage":
		if s.Workload.Grid < 4 {
			return fmt.Errorf("layout: xrage workload needs grid >= 4")
		}
	case "disk":
		if s.Workload.Glob == "" {
			return fmt.Errorf("layout: disk workload needs a glob")
		}
	default:
		return fmt.Errorf("layout: unknown workload kind %q (want hacc, xrage, disk)", s.Workload.Kind)
	}
	if s.Workload.Kind != "disk" && s.Workload.Steps <= 0 {
		return fmt.Errorf("layout: synthetic workloads need steps > 0")
	}
	if s.Pairs < 0 {
		return fmt.Errorf("layout: negative pair count")
	}
	switch s.Coupling {
	case "", "unified", "socket":
	default:
		return fmt.Errorf("layout: unknown coupling %q (want unified or socket)", s.Coupling)
	}
	found := false
	for _, a := range render.Algorithms() {
		if a == s.Algorithm {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("layout: unknown algorithm %q (have %v)", s.Algorithm, render.Algorithms())
	}
	if s.Image.Width <= 0 || s.Image.Height <= 0 {
		return fmt.Errorf("layout: image size %dx%d invalid", s.Image.Width, s.Image.Height)
	}
	if s.Sampling.Ratio < 0 || s.Sampling.Ratio > 1 {
		return fmt.Errorf("layout: sampling ratio %v outside [0, 1]", s.Sampling.Ratio)
	}
	if _, err := parseMethod(s.Sampling.Method); err != nil {
		return err
	}
	if _, err := transport.ParseCodec(s.Codec); err != nil {
		return err
	}
	if _, err := buildOperations(s.Operations); err != nil {
		return err
	}
	return nil
}

// buildOperations maps operation names to implementations.
func buildOperations(names []string) ([]proxy.Operation, error) {
	var out []proxy.Operation
	for _, name := range names {
		switch name {
		case "halos":
			out = append(out, &proxy.HaloOperation{})
		case "stats":
			out = append(out, &proxy.StatsOperation{})
		case "save":
			out = append(out, &proxy.SaveOperation{})
		default:
			return nil, fmt.Errorf("layout: unknown operation %q (want halos, stats, save)", name)
		}
	}
	return out, nil
}

// ToMeasuredSpec converts the layout to a runnable harness spec.
// layoutDir is used for socket-coupling rendezvous files.
func (s *Spec) ToMeasuredSpec(layoutDir string) (core.MeasuredSpec, error) {
	var (
		wl  core.Workload
		err error
	)
	switch s.Workload.Kind {
	case "hacc":
		wl = core.HACCWorkload(s.Workload.Particles, s.Workload.Steps, s.Workload.Seed)
	case "xrage":
		g := s.Workload.Grid
		wl = core.XRAGEWorkload(g, g*112/184, g*96/184, s.Workload.Steps, s.Workload.Seed)
	case "disk":
		paths, gerr := filepath.Glob(s.Workload.Glob)
		if gerr != nil || len(paths) == 0 {
			return core.MeasuredSpec{}, fmt.Errorf("layout: no files match %q", s.Workload.Glob)
		}
		wl, err = core.DiskWorkload(s.Name, paths...)
		if err != nil {
			return core.MeasuredSpec{}, err
		}
	}

	mode := coupling.Unified
	layoutPath := ""
	if s.Coupling == "socket" {
		mode = coupling.Socket
		layoutPath = filepath.Join(layoutDir, "rendezvous.layout")
	}
	method, err := parseMethod(s.Sampling.Method)
	if err != nil {
		return core.MeasuredSpec{}, err
	}
	ops, err := buildOperations(s.Operations)
	if err != nil {
		return core.MeasuredSpec{}, err
	}
	return core.MeasuredSpec{
		Workload:       wl,
		Operations:     ops,
		Algorithm:      s.Algorithm,
		Width:          s.Image.Width,
		Height:         s.Image.Height,
		ImagesPerStep:  s.Image.ImagesPerStep,
		Ranks:          s.Pairs,
		Mode:           mode,
		LayoutPath:     layoutPath,
		SamplingRatio:  s.Sampling.Ratio,
		SamplingMethod: method,
		Compress:       s.Compress,
		Codec:          s.Codec,
		OutDir:         s.OutDir,
	}, nil
}

func parseMethod(m string) (sampling.Method, error) {
	switch m {
	case "", "random":
		return sampling.Random, nil
	case "stride":
		return sampling.Stride, nil
	case "stratified":
		return sampling.Stratified, nil
	default:
		return 0, fmt.Errorf("layout: unknown sampling method %q", m)
	}
}
