package layout

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ascr-ecx/eth/internal/core"
	"github.com/ascr-ecx/eth/internal/coupling"
)

const goodSpec = `{
	"name": "hacc-sweep",
	"workload": {"kind": "hacc", "particles": 10000, "steps": 2, "seed": 3},
	"pairs": 2,
	"coupling": "unified",
	"algorithm": "gsplat",
	"image": {"width": 64, "height": 64, "imagesPerStep": 1},
	"sampling": {"ratio": 0.5, "method": "stride"}
}`

func TestParseGoodSpec(t *testing.T) {
	s, err := Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "hacc-sweep" || s.Pairs != 2 || s.Algorithm != "gsplat" {
		t.Errorf("spec = %+v", s)
	}
	if s.Sampling.Ratio != 0.5 {
		t.Errorf("ratio = %v", s.Sampling.Ratio)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(goodSpec, `"pairs"`, `"paris"`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("typo field accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct{ name, from, to string }{
		{"bad workload kind", `"kind": "hacc"`, `"kind": "fluid"`},
		{"zero particles", `"particles": 10000`, `"particles": 0`},
		{"bad coupling", `"coupling": "unified"`, `"coupling": "quantum"`},
		{"bad algorithm", `"algorithm": "gsplat"`, `"algorithm": "blender"`},
		{"zero width", `"width": 64`, `"width": 0`},
		{"bad ratio", `"ratio": 0.5`, `"ratio": 2.0`},
		{"bad method", `"method": "stride"`, `"method": "psychic"`},
		{"zero steps", `"steps": 2`, `"steps": 0`},
	}
	for _, c := range cases {
		bad := strings.Replace(goodSpec, c.from, c.to, 1)
		if bad == goodSpec {
			t.Fatalf("%s: replacement did not apply", c.name)
		}
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(goodSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "hacc-sweep" {
		t.Error("load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestToMeasuredSpecAndRun(t *testing.T) {
	s, err := Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToMeasuredSpec(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != coupling.Unified || spec.Ranks != 2 {
		t.Errorf("spec = %+v", spec)
	}
	res, err := core.RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements == 0 {
		t.Error("layout-driven run produced nothing")
	}
	// Sampling applied (50% of 10000/2-rank pieces).
	if res.Elements > 7000 {
		t.Errorf("sampling not applied: %d elements", res.Elements)
	}
}

func TestSocketSpec(t *testing.T) {
	sock := strings.Replace(goodSpec, `"coupling": "unified"`, `"coupling": "socket"`, 1)
	s, err := Parse([]byte(sock))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToMeasuredSpec(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != coupling.Socket || spec.LayoutPath == "" {
		t.Errorf("socket spec: %+v", spec)
	}
	res, err := core.RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved == 0 {
		t.Error("socket layout moved no bytes")
	}
}

func TestXRAGESpec(t *testing.T) {
	x := `{
		"name": "blast",
		"workload": {"kind": "xrage", "grid": 32, "steps": 1, "seed": 1},
		"algorithm": "ray-iso",
		"image": {"width": 48, "height": 48, "imagesPerStep": 1}
	}`
	s, err := Parse([]byte(x))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToMeasuredSpec(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunMeasured(spec); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSpecGlobValidation(t *testing.T) {
	d := `{
		"name": "replay",
		"workload": {"kind": "disk", "glob": "/nonexistent/*.ethd"},
		"algorithm": "points",
		"image": {"width": 32, "height": 32}
	}`
	s, err := Parse([]byte(d))
	if err != nil {
		t.Fatal(err) // validation passes; glob resolution happens at run
	}
	if _, err := s.ToMeasuredSpec(t.TempDir()); err == nil {
		t.Error("empty glob accepted at conversion")
	}
}

func TestOperationsInSpec(t *testing.T) {
	withOps := strings.Replace(goodSpec, `"sampling": {"ratio": 0.5, "method": "stride"}`,
		`"sampling": {"ratio": 0.5, "method": "stride"},
		"operations": ["halos", "stats"]`, 1)
	s, err := Parse([]byte(withOps))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.ToMeasuredSpec(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Operations) != 2 {
		t.Fatalf("operations = %d", len(spec.Operations))
	}
	res, err := core.RunMeasured(spec)
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Reports[0].Viz.Results[0].Ops
	if len(ops) != 2 || ops[0].Op != "halos" || ops[1].Op != "stats" {
		t.Errorf("ops = %+v", ops)
	}

	bad := strings.Replace(withOps, `"halos"`, `"telepathy"`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("unknown operation accepted")
	}
}
