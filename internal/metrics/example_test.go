package metrics_test

import (
	"os"

	"github.com/ascr-ecx/eth/internal/metrics"
)

// Build and print a paper-style results table.
func ExampleTable() {
	tab := metrics.NewTable("Table I (excerpt)", "Algorithm", "Time (s)")
	tab.AddRow("Raycasting", 464.4)
	tab.AddRow("Gaussian Splat", 171.9)
	_ = tab.Fprint(os.Stdout)
	// Output:
	// Table I (excerpt)
	// Algorithm       Time (s)
	// --------------  --------
	// Raycasting      464.4
	// Gaussian Splat  171.9
}
