package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEnergySavedPct(t *testing.T) {
	if got := EnergySavedPct(100, 75); got != 25 {
		t.Errorf("saved = %v", got)
	}
	if got := EnergySavedPct(100, 120); math.Abs(got-(-20)) > 1e-9 {
		t.Errorf("negative saving = %v", got)
	}
	if got := EnergySavedPct(0, 5); got != 0 {
		t.Errorf("zero base = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("infinite speedup expected")
	}
	if NormalizedPerformance(8, 4) != 2 {
		t.Error("normalized perf wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("Table X", "Algorithm", "Time (s)", "Power (kW)")
	tab.AddRow("raycasting", 464.4, 55.7)
	tab.AddRow("gsplat", 171.9, 55.3)
	out := tab.String()
	if !strings.Contains(out, "Table X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "464.4") || !strings.Contains(out, "55.70") {
		t.Errorf("values missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Column alignment: all rows same length or close.
	if len(tab.Rows()) != 2 {
		t.Errorf("rows = %d", len(tab.Rows()))
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.235e+06",
		0.0001:  "1.000e-04",
		123.456: "123.5",
		12.3456: "12.35",
		0.5:     "0.5000",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", 1.0)
	tab.AddRow(`with "quote", and comma`, 2.0)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with ""quote"", and comma"`) {
		t.Errorf("escaping wrong: %q", lines[2])
	}
}

func TestTableMixedCellTypes(t *testing.T) {
	tab := NewTable("t", "x")
	tab.AddRow(42)
	tab.AddRow("str")
	tab.AddRow(float32(1.5))
	rows := tab.Rows()
	if rows[0][0] != "42" || rows[1][0] != "str" || rows[2][0] != "1.50" {
		t.Errorf("rows = %v", rows)
	}
}
