// Package metrics computes the paper's evaluation metrics (§V-C) —
// performance, power, energy, scalability, and image accuracy — and
// provides the tabular results container every experiment emits, with
// aligned-text and CSV rendering so cmd/ethbench output can be compared
// against the paper's tables and figures row by row.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// EnergySavedPct returns the percentage of energy saved by 'other'
// relative to 'base' (positive = saved), the Table II quantity.
func EnergySavedPct(baseJ, otherJ float64) float64 {
	if baseJ == 0 {
		return 0
	}
	return (1 - otherJ/baseJ) * 100
}

// Speedup returns baseSeconds / otherSeconds.
func Speedup(baseSeconds, otherSeconds float64) float64 {
	if otherSeconds == 0 {
		return math.Inf(1)
	}
	return baseSeconds / otherSeconds
}

// NormalizedPerformance returns the Fig 15 series: performance on n nodes
// relative to 1 node (reciprocal of execution-time ratio).
func NormalizedPerformance(t1, tN float64) float64 { return Speedup(t1, tN) }

// Table is a simple column-oriented results table.
type Table struct {
	// Title labels the table (e.g. "Table I: Visualization Algorithm
	// Results for HACC").
	Title string
	// Columns are the header names.
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted rows.
func (t *Table) Rows() [][]string { return t.rows }

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	default:
		return fmt.Sprintf("%v", c)
	}
}

func formatFloat(v float64) string {
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	switch {
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				// No padding after the last column: keeps lines free of
				// trailing whitespace.
				b.WriteString(cell)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// WriteCSV emits the table as RFC-4180-ish CSV (cells containing commas
// or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, csvEscape(cell)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
