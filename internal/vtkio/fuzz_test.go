package vtkio

import (
	"bytes"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
)

// FuzzReadVTK feeds arbitrary bytes to Read. The corpus is seeded with
// round-tripped containers of all three dataset kinds plus truncations,
// so the mutator starts from structurally valid streams and corrupts
// headers, counts, and payloads from there. Read must never panic or
// allocate unboundedly; any successfully parsed dataset must survive a
// write/read round trip.
func FuzzReadVTK(f *testing.F) {
	seed := func(ds data.Dataset) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, ds); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	cloud := seed(sampleCloud(17, 1))
	grid := seed(sampleGrid())
	unstr := seed(data.Tetrahedralize(sampleGrid()))
	for _, b := range [][]byte{cloud, grid, unstr} {
		f.Add(b)
		f.Add(b[:len(b)/2])
		f.Add(b[:7]) // magic + version + kind, nothing else
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ds); err != nil {
			t.Fatalf("re-encoding accepted dataset: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.Kind() != ds.Kind() || back.Count() != ds.Count() {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				ds.Kind(), ds.Count(), back.Kind(), back.Count())
		}
		// Compare serialized forms, not the in-memory structs: byte
		// equality is exact under NaN payloads (where reflect.DeepEqual
		// reports NaN != NaN) and ignores nil-versus-empty slices.
		var buf2 bytes.Buffer
		if err := Write(&buf2, back); err != nil {
			t.Fatalf("re-encoding twice: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("round trip changed serialized contents")
		}
	})
}
