package vtkio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
)

func TestLegacyExportPointCloud(t *testing.T) {
	p := sampleCloud(5, 1)
	var buf bytes.Buffer
	if err := ExportLegacyVTK(&buf, p, "test cloud"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"test cloud",
		"ASCII",
		"DATASET POLYDATA",
		"POINTS 5 float",
		"VERTICES 5 10",
		"POINT_DATA 5",
		"VECTORS velocity float",
		"SCALARS speed float 1",
		"LOOKUP_TABLE default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in export", want)
		}
	}
	// One coordinate line per point plus attribute lines — sanity on size.
	if lines := strings.Count(out, "\n"); lines < 5*3 {
		t.Errorf("export suspiciously short (%d lines)", lines)
	}
}

func TestLegacyExportStructured(t *testing.T) {
	g := sampleGrid()
	var buf bytes.Buffer
	if err := ExportLegacyVTK(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 4 5 6",
		"ORIGIN -1 2 3",
		"SPACING 0.5 0.25 2",
		"POINT_DATA 120",
		"SCALARS temp float 1",
		"SCALARS rho float 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLegacyExportUnstructured(t *testing.T) {
	u := data.Tetrahedralize(sampleGrid())
	var buf bytes.Buffer
	if err := ExportLegacyVTK(&buf, u, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DATASET UNSTRUCTURED_GRID",
		"CELL_TYPES",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Every cell line starts with "4 " and cell type is 10 (tetra).
	if !strings.Contains(out, "\n4 ") {
		t.Error("no tetra cells emitted")
	}
	if !strings.Contains(out, "\n10\n") {
		t.Error("no VTK_TETRA cell types")
	}
}

func TestLegacyExportFieldNameSanitized(t *testing.T) {
	p := data.NewPointCloud(1)
	if err := p.AddField("my field", []float32{1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportLegacyVTK(&buf, p, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SCALARS my_field float 1") {
		t.Error("field name not sanitized")
	}
}
