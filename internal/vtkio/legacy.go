package vtkio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"github.com/ascr-ecx/eth/internal/data"
)

// ExportLegacyVTK writes ds in the ASCII "legacy" VTK file format
// (# vtk DataFile Version 3.0) so ETH extracts open directly in ParaView
// or VisIt — closing the loop with the production tools the paper
// positions ETH beside. Point clouds export as POLYDATA vertices,
// structured grids as STRUCTURED_POINTS, and tetrahedral meshes as
// UNSTRUCTURED_GRID cells, each with their scalar fields as POINT_DATA.
func ExportLegacyVTK(w io.Writer, ds data.Dataset, title string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if title == "" {
		title = "ETH export"
	}
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\n", title)
	switch d := ds.(type) {
	case *data.PointCloud:
		if err := legacyPointCloud(bw, d); err != nil {
			return err
		}
	case *data.StructuredGrid:
		if err := legacyStructured(bw, d); err != nil {
			return err
		}
	case *data.UnstructuredGrid:
		if err := legacyUnstructured(bw, d); err != nil {
			return err
		}
	default:
		return fmt.Errorf("vtkio: legacy export does not support %T", ds)
	}
	return bw.Flush()
}

// ExportLegacyVTKFile writes ds to the named .vtk file.
func ExportLegacyVTKFile(path string, ds data.Dataset, title string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ExportLegacyVTK(f, ds, title); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func legacyPointCloud(w *bufio.Writer, p *data.PointCloud) error {
	n := p.Count()
	fmt.Fprintf(w, "DATASET POLYDATA\nPOINTS %d float\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g %g %g\n", p.X[i], p.Y[i], p.Z[i])
	}
	fmt.Fprintf(w, "VERTICES %d %d\n", n, 2*n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "1 %d\n", i)
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", n)
	// Velocity as a vector attribute.
	fmt.Fprintf(w, "VECTORS velocity float\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g %g %g\n", p.VX[i], p.VY[i], p.VZ[i])
	}
	return legacyFields(w, p.Fields)
}

func legacyStructured(w *bufio.Writer, g *data.StructuredGrid) error {
	fmt.Fprintf(w, "DATASET STRUCTURED_POINTS\n")
	fmt.Fprintf(w, "DIMENSIONS %d %d %d\n", g.NX, g.NY, g.NZ)
	fmt.Fprintf(w, "ORIGIN %g %g %g\n", g.Origin.X, g.Origin.Y, g.Origin.Z)
	fmt.Fprintf(w, "SPACING %g %g %g\n", g.Spacing.X, g.Spacing.Y, g.Spacing.Z)
	fmt.Fprintf(w, "POINT_DATA %d\n", g.Count())
	return legacyFields(w, g.Fields)
}

func legacyUnstructured(w *bufio.Writer, u *data.UnstructuredGrid) error {
	fmt.Fprintf(w, "DATASET UNSTRUCTURED_GRID\nPOINTS %d float\n", u.Count())
	for _, p := range u.Points {
		fmt.Fprintf(w, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(w, "CELLS %d %d\n", u.Cells(), 5*u.Cells())
	for _, t := range u.Tets {
		fmt.Fprintf(w, "4 %d %d %d %d\n", t[0], t[1], t[2], t[3])
	}
	fmt.Fprintf(w, "CELL_TYPES %d\n", u.Cells())
	for range u.Tets {
		fmt.Fprintln(w, 10) // VTK_TETRA
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", u.Count())
	return legacyFields(w, u.Fields)
}

func legacyFields(w *bufio.Writer, fields []data.Field) error {
	for _, f := range fields {
		fmt.Fprintf(w, "SCALARS %s float 1\nLOOKUP_TABLE default\n", sanitizeName(f.Name))
		for _, v := range f.Values {
			fmt.Fprintf(w, "%g\n", v)
		}
	}
	return nil
}

// sanitizeName replaces whitespace in field names (the legacy format is
// whitespace-delimited).
func sanitizeName(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == ' ' || c == '\t' || c == '\n' {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "field"
	}
	return string(out)
}
