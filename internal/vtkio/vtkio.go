// Package vtkio implements ETH's on-disk dataset container, the stand-in
// for the VTK files the paper requires users to export their simulation
// data as (§III-B: "our design requires that the data is exported as VTK
// data objects"). The format ("ETHD") is a little-endian, self-describing
// binary container that round-trips both data model types exactly. It is
// also the wire format the transport layer streams between proxies, so a
// dataset written by the simulation proxy can be replayed byte-identically
// by the visualization proxy.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "ETHD"
//	version uint16   (currently 1)
//	kind    uint8    data.Kind
//	  -- kind-specific header and payload --
//	fields  uint32 count, then per field:
//	  nameLen uint16, name bytes, valueCount uint64, float32 values
package vtkio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

var (
	magic = [4]byte{'E', 'T', 'H', 'D'}

	// ErrBadMagic is returned when the stream does not start with the
	// container magic.
	ErrBadMagic = errors.New("vtkio: bad magic (not an ETHD container)")
	// ErrBadVersion is returned for unsupported container versions.
	ErrBadVersion = errors.New("vtkio: unsupported container version")
)

const version = 1

// maxReasonable guards length fields read from untrusted streams so a
// corrupt header cannot force a huge allocation.
const maxReasonable = 1 << 33 // 8 Gi elements

// Write serializes ds to w.
func Write(w io.Writer, ds data.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint8(ds.Kind())); err != nil {
		return err
	}
	switch d := ds.(type) {
	case *data.PointCloud:
		if err := writePointCloud(bw, d); err != nil {
			return err
		}
	case *data.StructuredGrid:
		if err := writeGrid(bw, d); err != nil {
			return err
		}
	case *data.UnstructuredGrid:
		if err := writeUnstructured(bw, d); err != nil {
			return err
		}
	default:
		return fmt.Errorf("vtkio: unsupported dataset type %T", ds)
	}
	return bw.Flush()
}

// Read deserializes a dataset from r.
func Read(r io.Reader) (data.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("vtkio: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var kind uint8
	if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	switch data.Kind(kind) {
	case data.KindPointCloud:
		return readPointCloud(br)
	case data.KindStructuredGrid:
		return readGrid(br)
	case data.KindUnstructuredGrid:
		return readUnstructured(br)
	default:
		return nil, fmt.Errorf("vtkio: unknown dataset kind %d", kind)
	}
}

// WriteFile writes ds to the named file, creating or truncating it.
func WriteFile(path string, ds data.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from the named file.
func ReadFile(path string) (data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writePointCloud(w io.Writer, p *data.PointCloud) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(p.Count())); err != nil {
		return err
	}
	if err := writeInt64s(w, p.IDs); err != nil {
		return err
	}
	for _, arr := range [][]float32{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		if err := writeFloat32s(w, arr); err != nil {
			return err
		}
	}
	return writeFields(w, p.Fields)
}

func readPointCloud(r io.Reader) (*data.PointCloud, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible particle count %d", n)
	}
	p := data.NewPointCloud(int(n))
	if err := readInt64s(r, p.IDs); err != nil {
		return nil, err
	}
	for _, arr := range [][]float32{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		if err := readFloat32s(r, arr); err != nil {
			return nil, err
		}
	}
	fields, err := readFields(r, p.Count())
	if err != nil {
		return nil, err
	}
	p.Fields = fields
	return p, nil
}

func writeGrid(w io.Writer, g *data.StructuredGrid) error {
	hdr := []uint64{uint64(g.NX), uint64(g.NY), uint64(g.NZ)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	geo := []float64{
		g.Origin.X, g.Origin.Y, g.Origin.Z,
		g.Spacing.X, g.Spacing.Y, g.Spacing.Z,
	}
	if err := binary.Write(w, binary.LittleEndian, geo); err != nil {
		return err
	}
	return writeFields(w, g.Fields)
}

func readGrid(r io.Reader) (*data.StructuredGrid, error) {
	hdr := make([]uint64, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	for _, d := range hdr {
		if d > maxReasonable {
			return nil, fmt.Errorf("vtkio: implausible grid dimension %d", d)
		}
	}
	if hdr[0]*hdr[1]*hdr[2] > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible grid size %dx%dx%d", hdr[0], hdr[1], hdr[2])
	}
	g := data.NewStructuredGrid(int(hdr[0]), int(hdr[1]), int(hdr[2]))
	geo := make([]float64, 6)
	if err := binary.Read(r, binary.LittleEndian, geo); err != nil {
		return nil, err
	}
	g.Origin = vec.New(geo[0], geo[1], geo[2])
	g.Spacing = vec.New(geo[3], geo[4], geo[5])
	fields, err := readFields(r, g.Count())
	if err != nil {
		return nil, err
	}
	g.Fields = fields
	return g, nil
}

func writeFields(w io.Writer, fields []data.Field) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(fields))); err != nil {
		return err
	}
	for _, f := range fields {
		if len(f.Name) > math.MaxUint16 {
			return fmt.Errorf("vtkio: field name too long (%d bytes)", len(f.Name))
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(f.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, f.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(f.Values))); err != nil {
			return err
		}
		if err := writeFloat32s(w, f.Values); err != nil {
			return err
		}
	}
	return nil
}

func readFields(r io.Reader, expect int) ([]data.Field, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("vtkio: implausible field count %d", n)
	}
	fields := make([]data.Field, 0, n)
	for i := 0; i < int(n); i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		var count uint64
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count != uint64(expect) {
			return nil, fmt.Errorf("vtkio: field %q has %d values, dataset expects %d", name, count, expect)
		}
		vals := make([]float32, count)
		if err := readFloat32s(r, vals); err != nil {
			return nil, err
		}
		fields = append(fields, data.Field{Name: string(name), Values: vals})
	}
	return fields, nil
}

// writeFloat32s writes a float32 slice in bulk, chunked to bound the
// scratch buffer.
func writeFloat32s(w io.Writer, vals []float32) error {
	const chunk = 1 << 16
	buf := make([]byte, 0, chunk*4)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readFloat32s(r io.Reader, vals []float32) error {
	const chunk = 1 << 16
	buf := make([]byte, chunk*4)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		vals = vals[n:]
	}
	return nil
}

func writeInt64s(w io.Writer, vals []int64) error {
	const chunk = 1 << 15
	buf := make([]byte, 0, chunk*8)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readInt64s(r io.Reader, vals []int64) error {
	const chunk = 1 << 15
	buf := make([]byte, chunk*8)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			vals[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		vals = vals[n:]
	}
	return nil
}

func writeUnstructured(w io.Writer, u *data.UnstructuredGrid) error {
	hdr := []uint64{uint64(len(u.Points)), uint64(len(u.Tets))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	coords := make([]float32, 0, 3*len(u.Points))
	for _, p := range u.Points {
		coords = append(coords, float32(p.X), float32(p.Y), float32(p.Z))
	}
	if err := writeFloat32s(w, coords); err != nil {
		return err
	}
	idx := make([]byte, 0, 16*len(u.Tets))
	for _, t := range u.Tets {
		for _, v := range t {
			idx = binary.LittleEndian.AppendUint32(idx, uint32(v))
		}
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}
	return writeFields(w, u.Fields)
}

func readUnstructured(r io.Reader) (*data.UnstructuredGrid, error) {
	hdr := make([]uint64, 2)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if hdr[0] > maxReasonable || hdr[1] > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible unstructured sizes %d points, %d tets", hdr[0], hdr[1])
	}
	nPts, nTets := int(hdr[0]), int(hdr[1])
	coords := make([]float32, 3*nPts)
	if err := readFloat32s(r, coords); err != nil {
		return nil, err
	}
	u := &data.UnstructuredGrid{
		Points: make([]vec.V3, nPts),
		Tets:   make([][4]int32, nTets),
	}
	for i := range u.Points {
		u.Points[i] = vec.New(float64(coords[3*i]), float64(coords[3*i+1]), float64(coords[3*i+2]))
	}
	idx := make([]byte, 16*nTets)
	if _, err := io.ReadFull(r, idx); err != nil {
		return nil, err
	}
	for i := range u.Tets {
		for v := 0; v < 4; v++ {
			raw := binary.LittleEndian.Uint32(idx[16*i+4*v:])
			if raw >= uint32(nPts) {
				return nil, fmt.Errorf("vtkio: tet %d references vertex %d of %d", i, raw, nPts)
			}
			u.Tets[i][v] = int32(raw)
		}
	}
	fields, err := readFields(r, nPts)
	if err != nil {
		return nil, err
	}
	u.Fields = fields
	return u, nil
}
