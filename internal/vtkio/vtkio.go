// Package vtkio implements ETH's on-disk dataset container, the stand-in
// for the VTK files the paper requires users to export their simulation
// data as (§III-B: "our design requires that the data is exported as VTK
// data objects"). The format ("ETHD") is a little-endian, self-describing
// binary container that round-trips both data model types exactly. It is
// also the wire format the transport layer streams between proxies, so a
// dataset written by the simulation proxy can be replayed byte-identically
// by the visualization proxy.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "ETHD"
//	version uint16   (currently 1)
//	kind    uint8    data.Kind
//	  -- kind-specific header and payload --
//	fields  uint32 count, then per field:
//	  nameLen uint16, name bytes, valueCount uint64, float32 values
package vtkio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

var (
	magic = [4]byte{'E', 'T', 'H', 'D'}

	// ErrBadMagic is returned when the stream does not start with the
	// container magic.
	ErrBadMagic = errors.New("vtkio: bad magic (not an ETHD container)")
	// ErrBadVersion is returned for unsupported container versions.
	ErrBadVersion = errors.New("vtkio: unsupported container version")
)

const version = 1

// maxReasonable guards length fields read from untrusted streams so a
// corrupt header cannot force a huge allocation.
const maxReasonable = 1 << 33 // 8 Gi elements

// Write serializes ds to w.
func Write(w io.Writer, ds data.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint8(ds.Kind())); err != nil {
		return err
	}
	switch d := ds.(type) {
	case *data.PointCloud:
		if err := writePointCloud(bw, d); err != nil {
			return err
		}
	case *data.StructuredGrid:
		if err := writeGrid(bw, d); err != nil {
			return err
		}
	case *data.UnstructuredGrid:
		if err := writeUnstructured(bw, d); err != nil {
			return err
		}
	default:
		return fmt.Errorf("vtkio: unsupported dataset type %T", ds)
	}
	return bw.Flush()
}

// Read deserializes a dataset from r.
func Read(r io.Reader) (data.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("vtkio: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var kind uint8
	if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	switch data.Kind(kind) {
	case data.KindPointCloud:
		return readPointCloud(br)
	case data.KindStructuredGrid:
		return readGrid(br)
	case data.KindUnstructuredGrid:
		return readUnstructured(br)
	default:
		return nil, fmt.Errorf("vtkio: unknown dataset kind %d", kind)
	}
}

// WriteFile writes ds to the named file, creating or truncating it.
func WriteFile(path string, ds data.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from the named file.
func ReadFile(path string) (data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writePointCloud(w io.Writer, p *data.PointCloud) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(p.Count())); err != nil {
		return err
	}
	if err := writeInt64s(w, p.IDs); err != nil {
		return err
	}
	for _, arr := range [][]float32{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		if err := writeFloat32s(w, arr); err != nil {
			return err
		}
	}
	return writeFields(w, p.Fields)
}

func readPointCloud(r io.Reader) (*data.PointCloud, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible particle count %d", n)
	}
	// Arrays are grown chunk by chunk as payload actually arrives, so a
	// corrupt count cannot force a multi-gigabyte allocation up front.
	p := &data.PointCloud{}
	var err error
	if p.IDs, err = readInt64sN(r, int(n)); err != nil {
		return nil, err
	}
	for _, dst := range []*[]float32{&p.X, &p.Y, &p.Z, &p.VX, &p.VY, &p.VZ} {
		if *dst, err = readFloat32sN(r, int(n)); err != nil {
			return nil, err
		}
	}
	fields, err := readFields(r, p.Count())
	if err != nil {
		return nil, err
	}
	p.Fields = fields
	return p, nil
}

func writeGrid(w io.Writer, g *data.StructuredGrid) error {
	hdr := []uint64{uint64(g.NX), uint64(g.NY), uint64(g.NZ)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	geo := []float64{
		g.Origin.X, g.Origin.Y, g.Origin.Z,
		g.Spacing.X, g.Spacing.Y, g.Spacing.Z,
	}
	if err := binary.Write(w, binary.LittleEndian, geo); err != nil {
		return err
	}
	return writeFields(w, g.Fields)
}

func readGrid(r io.Reader) (*data.StructuredGrid, error) {
	hdr := make([]uint64, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	for _, d := range hdr {
		if d > maxReasonable {
			return nil, fmt.Errorf("vtkio: implausible grid dimension %d", d)
		}
	}
	// Guard the vertex-count product stepwise with divisions: a plain
	// hdr[0]*hdr[1]*hdr[2] overflows uint64 for dimensions that each pass
	// the per-axis check, wraps to a small number, and slips through.
	if hdr[0] > 0 && hdr[1] > 0 {
		if hdr[1] > maxReasonable/hdr[0] || (hdr[2] > 0 && hdr[2] > maxReasonable/(hdr[0]*hdr[1])) {
			return nil, fmt.Errorf("vtkio: implausible grid size %dx%dx%d", hdr[0], hdr[1], hdr[2])
		}
	}
	g := data.NewStructuredGrid(int(hdr[0]), int(hdr[1]), int(hdr[2]))
	geo := make([]float64, 6)
	if err := binary.Read(r, binary.LittleEndian, geo); err != nil {
		return nil, err
	}
	g.Origin = vec.New(geo[0], geo[1], geo[2])
	g.Spacing = vec.New(geo[3], geo[4], geo[5])
	fields, err := readFields(r, g.Count())
	if err != nil {
		return nil, err
	}
	g.Fields = fields
	return g, nil
}

func writeFields(w io.Writer, fields []data.Field) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(fields))); err != nil {
		return err
	}
	for _, f := range fields {
		if len(f.Name) > math.MaxUint16 {
			return fmt.Errorf("vtkio: field name too long (%d bytes)", len(f.Name))
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(f.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, f.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(f.Values))); err != nil {
			return err
		}
		if err := writeFloat32s(w, f.Values); err != nil {
			return err
		}
	}
	return nil
}

func readFields(r io.Reader, expect int) ([]data.Field, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("vtkio: implausible field count %d", n)
	}
	fields := make([]data.Field, 0, n)
	for i := 0; i < int(n); i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		var count uint64
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count != uint64(expect) {
			return nil, fmt.Errorf("vtkio: field %q has %d values, dataset expects %d", name, count, expect)
		}
		vals, err := readFloat32sN(r, int(count))
		if err != nil {
			return nil, err
		}
		fields = append(fields, data.Field{Name: string(name), Values: vals})
	}
	return fields, nil
}

// writeFloat32s writes a float32 slice in bulk, chunked to bound the
// scratch buffer.
func writeFloat32s(w io.Writer, vals []float32) error {
	const chunk = 1 << 16
	buf := make([]byte, 0, chunk*4)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// readFloat32sN reads n float32 values, growing the result chunk by chunk
// so memory use is bounded by the bytes the stream actually delivers
// (plus one chunk) rather than by an untrusted header count.
func readFloat32sN(r io.Reader, n int) ([]float32, error) {
	const chunk = 1 << 16
	vals := make([]float32, 0, min(n, chunk))
	buf := make([]byte, chunk*4)
	for len(vals) < n {
		c := min(n-len(vals), chunk)
		if _, err := io.ReadFull(r, buf[:c*4]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			vals = append(vals, math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return vals, nil
}

func writeInt64s(w io.Writer, vals []int64) error {
	const chunk = 1 << 15
	buf := make([]byte, 0, chunk*8)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// readInt64sN reads n int64 values with the same incremental-allocation
// policy as readFloat32sN.
func readInt64sN(r io.Reader, n int) ([]int64, error) {
	const chunk = 1 << 15
	vals := make([]int64, 0, min(n, chunk))
	buf := make([]byte, chunk*8)
	for len(vals) < n {
		c := min(n-len(vals), chunk)
		if _, err := io.ReadFull(r, buf[:c*8]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			vals = append(vals, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return vals, nil
}

func writeUnstructured(w io.Writer, u *data.UnstructuredGrid) error {
	hdr := []uint64{uint64(len(u.Points)), uint64(len(u.Tets))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	coords := make([]float32, 0, 3*len(u.Points))
	for _, p := range u.Points {
		coords = append(coords, float32(p.X), float32(p.Y), float32(p.Z))
	}
	if err := writeFloat32s(w, coords); err != nil {
		return err
	}
	idx := make([]byte, 0, 16*len(u.Tets))
	for _, t := range u.Tets {
		for _, v := range t {
			idx = binary.LittleEndian.AppendUint32(idx, uint32(v))
		}
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}
	return writeFields(w, u.Fields)
}

func readUnstructured(r io.Reader) (*data.UnstructuredGrid, error) {
	hdr := make([]uint64, 2)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if hdr[0] > maxReasonable || hdr[1] > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible unstructured sizes %d points, %d tets", hdr[0], hdr[1])
	}
	nPts, nTets := int(hdr[0]), int(hdr[1])
	coords, err := readFloat32sN(r, 3*nPts)
	if err != nil {
		return nil, err
	}
	// The coordinate payload has fully arrived by this point, so nPts is
	// backed by delivered bytes and the point allocation is proportional
	// to actual input, not to an untrusted header count.
	u := &data.UnstructuredGrid{Points: make([]vec.V3, nPts)}
	for i := range u.Points {
		u.Points[i] = vec.New(float64(coords[3*i]), float64(coords[3*i+1]), float64(coords[3*i+2]))
	}
	// Tets likewise arrive chunk by chunk, validated as they land.
	const chunk = 1 << 14
	u.Tets = make([][4]int32, 0, min(nTets, chunk))
	buf := make([]byte, chunk*16)
	for len(u.Tets) < nTets {
		c := min(nTets-len(u.Tets), chunk)
		if _, err := io.ReadFull(r, buf[:c*16]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			var t [4]int32
			for v := 0; v < 4; v++ {
				raw := binary.LittleEndian.Uint32(buf[16*i+4*v:])
				if uint64(raw) >= uint64(nPts) {
					return nil, fmt.Errorf("vtkio: tet %d references vertex %d of %d", len(u.Tets), raw, nPts)
				}
				t[v] = int32(raw)
			}
			u.Tets = append(u.Tets, t)
		}
	}
	fields, err := readFields(r, nPts)
	if err != nil {
		return nil, err
	}
	u.Fields = fields
	return u, nil
}
