// Package vtkio implements ETH's on-disk dataset container, the stand-in
// for the VTK files the paper requires users to export their simulation
// data as (§III-B: "our design requires that the data is exported as VTK
// data objects"). The format ("ETHD") is a little-endian, self-describing
// binary container that round-trips both data model types exactly. It is
// also the wire format the transport layer streams between proxies, so a
// dataset written by the simulation proxy can be replayed byte-identically
// by the visualization proxy.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "ETHD"
//	version uint16   (currently 1)
//	kind    uint8    data.Kind
//	  -- kind-specific header and payload --
//	fields  uint32 count, then per field:
//	  nameLen uint16, name bytes, valueCount uint64, float32 values
//
// Steady-state allocation: Write and Read run on pooled codec states
// (buffered I/O plus conversion scratch), so repeated calls allocate
// nothing beyond the decoded dataset itself — and ReadInto eliminates
// even that by decoding into the arrays of a previous step's dataset
// when the shapes match, which is the common case for a simulation
// replaying fixed-size steps.
package vtkio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

var (
	magic = [4]byte{'E', 'T', 'H', 'D'}

	// ErrBadMagic is returned when the stream does not start with the
	// container magic.
	ErrBadMagic = errors.New("vtkio: bad magic (not an ETHD container)")
	// ErrBadVersion is returned for unsupported container versions.
	ErrBadVersion = errors.New("vtkio: unsupported container version")
)

const version = 1

// maxReasonable guards length fields read from untrusted streams so a
// corrupt header cannot force a huge allocation.
const maxReasonable = 1 << 33 // 8 Gi elements

// Codec scratch geometry: bulk payloads are converted through a fixed
// 256 KiB chunk owned by the pooled codec state, bounding scratch memory
// regardless of dataset size.
const (
	chunkBytes = 1 << 18
	chunkF32   = chunkBytes / 4
	chunkI64   = chunkBytes / 8
)

// eofReader parks pooled codecs between uses so they never pin a caller's
// stream.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

// ---- encoder ----

// encoder is the pooled write-side state: a large buffered writer plus
// conversion scratch, so steady-state Write calls allocate nothing.
type encoder struct {
	bw    *bufio.Writer
	tmp   [8]byte
	chunk []byte
}

var encoders = sync.Pool{New: func() any {
	return &encoder{bw: bufio.NewWriterSize(io.Discard, 1<<20), chunk: make([]byte, chunkBytes)}
}}

func (e *encoder) u8(v uint8) error { return e.bw.WriteByte(v) }

func (e *encoder) u16(v uint16) error {
	binary.LittleEndian.PutUint16(e.tmp[:2], v)
	_, err := e.bw.Write(e.tmp[:2])
	return err
}

func (e *encoder) u32(v uint32) error {
	binary.LittleEndian.PutUint32(e.tmp[:4], v)
	_, err := e.bw.Write(e.tmp[:4])
	return err
}

func (e *encoder) u64(v uint64) error {
	binary.LittleEndian.PutUint64(e.tmp[:8], v)
	_, err := e.bw.Write(e.tmp[:8])
	return err
}

func (e *encoder) f64(v float64) error { return e.u64(math.Float64bits(v)) }

// float32s writes a float32 slice in bulk through the conversion chunk.
func (e *encoder) float32s(vals []float32) error {
	for len(vals) > 0 {
		n := min(len(vals), chunkF32)
		buf := e.chunk[:n*4]
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := e.bw.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// int64s writes an int64 slice in bulk through the conversion chunk.
func (e *encoder) int64s(vals []int64) error {
	for len(vals) > 0 {
		n := min(len(vals), chunkI64)
		buf := e.chunk[:n*8]
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		if _, err := e.bw.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// Write serializes ds to w.
func Write(w io.Writer, ds data.Dataset) error {
	e := encoders.Get().(*encoder)
	e.bw.Reset(w)
	err := e.write(ds)
	if ferr := e.bw.Flush(); err == nil {
		err = ferr
	}
	e.bw.Reset(io.Discard)
	encoders.Put(e)
	return err
}

func (e *encoder) write(ds data.Dataset) error {
	if _, err := e.bw.Write(magic[:]); err != nil {
		return err
	}
	if err := e.u16(version); err != nil {
		return err
	}
	if err := e.u8(uint8(ds.Kind())); err != nil {
		return err
	}
	switch d := ds.(type) {
	case *data.PointCloud:
		return e.writePointCloud(d)
	case *data.StructuredGrid:
		return e.writeGrid(d)
	case *data.UnstructuredGrid:
		return e.writeUnstructured(d)
	default:
		return fmt.Errorf("vtkio: unsupported dataset type %T", ds)
	}
}

func (e *encoder) writePointCloud(p *data.PointCloud) error {
	if err := e.u64(uint64(p.Count())); err != nil {
		return err
	}
	if err := e.int64s(p.IDs); err != nil {
		return err
	}
	for _, arr := range [...][]float32{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		if err := e.float32s(arr); err != nil {
			return err
		}
	}
	return e.writeFields(p.Fields)
}

func (e *encoder) writeGrid(g *data.StructuredGrid) error {
	for _, d := range [...]uint64{uint64(g.NX), uint64(g.NY), uint64(g.NZ)} {
		if err := e.u64(d); err != nil {
			return err
		}
	}
	for _, v := range [...]float64{
		g.Origin.X, g.Origin.Y, g.Origin.Z,
		g.Spacing.X, g.Spacing.Y, g.Spacing.Z,
	} {
		if err := e.f64(v); err != nil {
			return err
		}
	}
	return e.writeFields(g.Fields)
}

func (e *encoder) writeFields(fields []data.Field) error {
	if err := e.u32(uint32(len(fields))); err != nil {
		return err
	}
	for _, f := range fields {
		if len(f.Name) > math.MaxUint16 {
			return fmt.Errorf("vtkio: field name too long (%d bytes)", len(f.Name))
		}
		if err := e.u16(uint16(len(f.Name))); err != nil {
			return err
		}
		if _, err := e.bw.WriteString(f.Name); err != nil {
			return err
		}
		if err := e.u64(uint64(len(f.Values))); err != nil {
			return err
		}
		if err := e.float32s(f.Values); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) writeUnstructured(u *data.UnstructuredGrid) error {
	if err := e.u64(uint64(len(u.Points))); err != nil {
		return err
	}
	if err := e.u64(uint64(len(u.Tets))); err != nil {
		return err
	}
	// Coordinates, 12 bytes per point, batched through the chunk.
	used := 0
	for _, p := range u.Points {
		if used+12 > len(e.chunk) {
			if _, err := e.bw.Write(e.chunk[:used]); err != nil {
				return err
			}
			used = 0
		}
		binary.LittleEndian.PutUint32(e.chunk[used:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(e.chunk[used+4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(e.chunk[used+8:], math.Float32bits(float32(p.Z)))
		used += 12
	}
	if used > 0 {
		if _, err := e.bw.Write(e.chunk[:used]); err != nil {
			return err
		}
	}
	// Tetrahedra, 16 bytes per cell.
	used = 0
	for _, t := range u.Tets {
		if used+16 > len(e.chunk) {
			if _, err := e.bw.Write(e.chunk[:used]); err != nil {
				return err
			}
			used = 0
		}
		for v := 0; v < 4; v++ {
			binary.LittleEndian.PutUint32(e.chunk[used+4*v:], uint32(t[v]))
		}
		used += 16
	}
	if used > 0 {
		if _, err := e.bw.Write(e.chunk[:used]); err != nil {
			return err
		}
	}
	return e.writeFields(u.Fields)
}

// ---- decoder ----

// decoder is the pooled read-side state, mirroring encoder.
type decoder struct {
	br    *bufio.Reader
	tmp   [8]byte
	chunk []byte
}

var decoders = sync.Pool{New: func() any {
	return &decoder{br: bufio.NewReaderSize(eofReader{}, 1<<20), chunk: make([]byte, chunkBytes)}
}}

func (d *decoder) u8() (uint8, error) { return d.br.ReadByte() }

func (d *decoder) u16() (uint16, error) {
	if _, err := io.ReadFull(d.br, d.tmp[:2]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(d.tmp[:2]), nil
}

func (d *decoder) u32() (uint32, error) {
	if _, err := io.ReadFull(d.br, d.tmp[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(d.tmp[:4]), nil
}

func (d *decoder) u64() (uint64, error) {
	if _, err := io.ReadFull(d.br, d.tmp[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(d.tmp[:8]), nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

// Read deserializes a dataset from r.
func Read(r io.Reader) (data.Dataset, error) {
	return ReadInto(r, nil)
}

// ReadInto deserializes a dataset from r, reusing prev's backing arrays
// when prev is non-nil, of the same kind, and shape-compatible (matching
// array capacities and field layout). This is the steady-state path of
// the in-situ interface: a simulation replaying fixed-size steps decodes
// every step after the first without allocating.
//
// On success the returned dataset may be prev itself, mutated in place —
// the caller must treat prev as invalid (aliased) afterwards. On error
// prev is also invalid: it may have been partially overwritten by the
// failed decode.
func ReadInto(r io.Reader, prev data.Dataset) (data.Dataset, error) {
	d := decoders.Get().(*decoder)
	d.br.Reset(r)
	ds, err := d.read(prev)
	d.br.Reset(eofReader{})
	decoders.Put(d)
	return ds, err
}

func (d *decoder) read(prev data.Dataset) (data.Dataset, error) {
	if _, err := io.ReadFull(d.br, d.tmp[:4]); err != nil {
		return nil, fmt.Errorf("vtkio: reading magic: %w", err)
	}
	if [4]byte(d.tmp[:4]) != magic {
		return nil, fmt.Errorf("%w: got % x", ErrBadMagic, d.tmp[:4])
	}
	ver, err := d.u16()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch data.Kind(kind) {
	case data.KindPointCloud:
		p, _ := prev.(*data.PointCloud)
		return d.readPointCloud(p)
	case data.KindStructuredGrid:
		g, _ := prev.(*data.StructuredGrid)
		return d.readGrid(g)
	case data.KindUnstructuredGrid:
		u, _ := prev.(*data.UnstructuredGrid)
		return d.readUnstructured(u)
	default:
		return nil, fmt.Errorf("vtkio: unknown dataset kind %d", kind)
	}
}

func (d *decoder) readPointCloud(prev *data.PointCloud) (*data.PointCloud, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible particle count %d", n)
	}
	p := prev
	if p == nil {
		p = &data.PointCloud{}
	}
	if p.IDs, err = d.int64s(p.IDs[:0], int(n)); err != nil {
		return nil, err
	}
	for _, dst := range [...]*[]float32{&p.X, &p.Y, &p.Z, &p.VX, &p.VY, &p.VZ} {
		if *dst, err = d.float32s((*dst)[:0], int(n)); err != nil {
			return nil, err
		}
	}
	fields, err := d.readFields(p.Fields, p.Count())
	if err != nil {
		return nil, err
	}
	p.Fields = fields
	// The reuse path overwrites positions in place, so the lazy bounds
	// cache of the previous step must not survive.
	p.InvalidateBounds()
	return p, nil
}

func (d *decoder) readGrid(prev *data.StructuredGrid) (*data.StructuredGrid, error) {
	var hdr [3]uint64
	for i := range hdr {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		if v > maxReasonable {
			return nil, fmt.Errorf("vtkio: implausible grid dimension %d", v)
		}
		hdr[i] = v
	}
	// Guard the vertex-count product stepwise with divisions: a plain
	// hdr[0]*hdr[1]*hdr[2] overflows uint64 for dimensions that each pass
	// the per-axis check, wraps to a small number, and slips through.
	if hdr[0] > 0 && hdr[1] > 0 {
		if hdr[1] > maxReasonable/hdr[0] || (hdr[2] > 0 && hdr[2] > maxReasonable/(hdr[0]*hdr[1])) {
			return nil, fmt.Errorf("vtkio: implausible grid size %dx%dx%d", hdr[0], hdr[1], hdr[2])
		}
	}
	g := prev
	if g == nil || g.NX != int(hdr[0]) || g.NY != int(hdr[1]) || g.NZ != int(hdr[2]) {
		g = data.NewStructuredGrid(int(hdr[0]), int(hdr[1]), int(hdr[2]))
	}
	var geo [6]float64
	for i := range geo {
		v, err := d.f64()
		if err != nil {
			return nil, err
		}
		geo[i] = v
	}
	g.Origin = vec.New(geo[0], geo[1], geo[2])
	g.Spacing = vec.New(geo[3], geo[4], geo[5])
	fields, err := d.readFields(g.Fields, g.Count())
	if err != nil {
		return nil, err
	}
	g.Fields = fields
	return g, nil
}

// readFields decodes the field table, recycling prev's entries: a field
// whose name matches the previous step's field at the same index keeps
// its name string, and its value array is reused whenever its capacity
// suffices.
func (d *decoder) readFields(prev []data.Field, expect int) ([]data.Field, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("vtkio: implausible field count %d", n)
	}
	fields := prev[:0]
	if fields == nil || cap(fields) < int(n) {
		fields = make([]data.Field, 0, n)
	}
	for i := 0; i < int(n); i++ {
		// Save the previous entry before append overwrites its slot (prev
		// and fields share a backing array on the reuse path).
		var old data.Field
		if i < len(prev) {
			old = prev[i]
		}
		nameLen, err := d.u16()
		if err != nil {
			return nil, err
		}
		nameBytes := d.chunk[:nameLen]
		if _, err := io.ReadFull(d.br, nameBytes); err != nil {
			return nil, err
		}
		name := old.Name
		if string(nameBytes) != old.Name { // comparison does not allocate
			name = string(nameBytes)
		}
		count, err := d.u64()
		if err != nil {
			return nil, err
		}
		if count != uint64(expect) {
			return nil, fmt.Errorf("vtkio: field %q has %d values, dataset expects %d", name, count, expect)
		}
		vals, err := d.float32s(old.Values[:0], int(count))
		if err != nil {
			return nil, err
		}
		fields = append(fields, data.Field{Name: name, Values: vals})
	}
	return fields, nil
}

// float32s reads n float32 values into dst. When dst's capacity covers n
// the values are decoded in place with zero allocation; otherwise the
// result grows chunk by chunk so memory use is bounded by the bytes the
// stream actually delivers (plus one chunk) rather than by an untrusted
// header count.
func (d *decoder) float32s(dst []float32, n int) ([]float32, error) {
	if n == 0 {
		if dst == nil {
			return []float32{}, nil // keep round trips non-nil, like make(_, 0)
		}
		return dst[:0], nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
		for off := 0; off < n; {
			c := min(n-off, chunkF32)
			if _, err := io.ReadFull(d.br, d.chunk[:c*4]); err != nil {
				return nil, err
			}
			for i := 0; i < c; i++ {
				dst[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(d.chunk[i*4:]))
			}
			off += c
		}
		return dst, nil
	}
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]float32, 0, min(n, chunkF32))
	}
	for len(dst) < n {
		c := min(n-len(dst), chunkF32)
		if _, err := io.ReadFull(d.br, d.chunk[:c*4]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(d.chunk[i*4:])))
		}
	}
	return dst, nil
}

// int64s reads n int64 values with the same reuse/incremental policy as
// float32s.
func (d *decoder) int64s(dst []int64, n int) ([]int64, error) {
	if n == 0 {
		if dst == nil {
			return []int64{}, nil
		}
		return dst[:0], nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
		for off := 0; off < n; {
			c := min(n-off, chunkI64)
			if _, err := io.ReadFull(d.br, d.chunk[:c*8]); err != nil {
				return nil, err
			}
			for i := 0; i < c; i++ {
				dst[off+i] = int64(binary.LittleEndian.Uint64(d.chunk[i*8:]))
			}
			off += c
		}
		return dst, nil
	}
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]int64, 0, min(n, chunkI64))
	}
	for len(dst) < n {
		c := min(n-len(dst), chunkI64)
		if _, err := io.ReadFull(d.br, d.chunk[:c*8]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			dst = append(dst, int64(binary.LittleEndian.Uint64(d.chunk[i*8:])))
		}
	}
	return dst, nil
}

func (d *decoder) readUnstructured(prev *data.UnstructuredGrid) (*data.UnstructuredGrid, error) {
	nPtsU, err := d.u64()
	if err != nil {
		return nil, err
	}
	nTetsU, err := d.u64()
	if err != nil {
		return nil, err
	}
	if nPtsU > maxReasonable || nTetsU > maxReasonable {
		return nil, fmt.Errorf("vtkio: implausible unstructured sizes %d points, %d tets", nPtsU, nTetsU)
	}
	nPts, nTets := int(nPtsU), int(nTetsU)
	u := prev
	if u == nil {
		u = &data.UnstructuredGrid{}
	}

	// Coordinates, 12 bytes per point, streamed through the chunk. On the
	// reuse path points land in place; otherwise the slice grows chunk by
	// chunk, bounded by delivered bytes.
	const ptsPerChunk = chunkBytes / 12
	pts := u.Points[:0]
	inPlace := nPts > 0 && cap(pts) >= nPts
	if inPlace {
		pts = pts[:nPts]
	} else if cap(pts) == 0 {
		pts = make([]vec.V3, 0, min(nPts, ptsPerChunk))
	}
	for off := 0; off < nPts; {
		c := min(nPts-off, ptsPerChunk)
		if _, err := io.ReadFull(d.br, d.chunk[:c*12]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			p := vec.New(
				float64(math.Float32frombits(binary.LittleEndian.Uint32(d.chunk[i*12:]))),
				float64(math.Float32frombits(binary.LittleEndian.Uint32(d.chunk[i*12+4:]))),
				float64(math.Float32frombits(binary.LittleEndian.Uint32(d.chunk[i*12+8:]))),
			)
			if inPlace {
				pts[off+i] = p
			} else {
				pts = append(pts, p)
			}
		}
		off += c
	}
	u.Points = pts

	// Tetrahedra, 16 bytes per cell, vertex indices validated as they land.
	const tetsPerChunk = chunkBytes / 16
	tets := u.Tets[:0]
	tetsInPlace := nTets > 0 && cap(tets) >= nTets
	if tetsInPlace {
		tets = tets[:nTets]
	} else if cap(tets) == 0 {
		tets = make([][4]int32, 0, min(nTets, tetsPerChunk))
	}
	for off := 0; off < nTets; {
		c := min(nTets-off, tetsPerChunk)
		if _, err := io.ReadFull(d.br, d.chunk[:c*16]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			var t [4]int32
			for v := 0; v < 4; v++ {
				raw := binary.LittleEndian.Uint32(d.chunk[16*i+4*v:])
				if uint64(raw) >= uint64(nPts) {
					return nil, fmt.Errorf("vtkio: tet %d references vertex %d of %d", off+i, raw, nPts)
				}
				t[v] = int32(raw)
			}
			if tetsInPlace {
				tets[off+i] = t
			} else {
				tets = append(tets, t)
			}
		}
		off += c
	}
	u.Tets = tets

	fields, err := d.readFields(u.Fields, nPts)
	if err != nil {
		return nil, err
	}
	u.Fields = fields
	u.InvalidateBounds()
	return u, nil
}

// ---- files ----

// WriteFile writes ds to the named file, creating or truncating it.
func WriteFile(path string, ds data.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from the named file.
func ReadFile(path string) (data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
