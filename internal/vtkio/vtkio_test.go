package vtkio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

func sampleCloud(n int, seed int64) *data.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = rng.Int63()
		p.SetPos(i, vec.New(rng.Float64(), rng.Float64(), rng.Float64()))
		p.SetVel(i, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	p.SpeedField()
	return p
}

func sampleGrid() *data.StructuredGrid {
	g := data.NewStructuredGrid(4, 5, 6)
	g.Origin = vec.New(-1, 2, 3)
	g.Spacing = vec.New(0.5, 0.25, 2)
	g.FillField("temp", func(p vec.V3) float32 { return float32(p.X*p.Y + p.Z) })
	g.FillField("rho", func(p vec.V3) float32 { return float32(p.Len()) })
	return g
}

func TestPointCloudRoundTrip(t *testing.T) {
	p := sampleCloud(137, 42)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := got.(*data.PointCloud)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if !reflect.DeepEqual(p.IDs, q.IDs) {
		t.Error("IDs differ")
	}
	if !reflect.DeepEqual(p.X, q.X) || !reflect.DeepEqual(p.Y, q.Y) || !reflect.DeepEqual(p.Z, q.Z) {
		t.Error("positions differ")
	}
	if !reflect.DeepEqual(p.VX, q.VX) || !reflect.DeepEqual(p.VY, q.VY) || !reflect.DeepEqual(p.VZ, q.VZ) {
		t.Error("velocities differ")
	}
	if !reflect.DeepEqual(p.Fields, q.Fields) {
		t.Error("fields differ")
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := sampleGrid()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := got.(*data.StructuredGrid)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if h.NX != g.NX || h.NY != g.NY || h.NZ != g.NZ {
		t.Errorf("dims = %d %d %d", h.NX, h.NY, h.NZ)
	}
	if h.Origin != g.Origin || h.Spacing != g.Spacing {
		t.Errorf("geometry differs: %v %v", h.Origin, h.Spacing)
	}
	if !reflect.DeepEqual(g.Fields, h.Fields) {
		t.Error("fields differ")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cloud.ethd")
	p := sampleCloud(10, 7)
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 10 {
		t.Errorf("count = %d", got.Count())
	}
}

func TestEmptyCloudRoundTrip(t *testing.T) {
	p := data.NewPointCloud(0)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Errorf("count = %d", got.Count())
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE-not-a-container")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, data.NewPointCloud(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // clobber version
	_, err := Read(bytes.NewReader(b))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCloud(100, 1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{0, 3, 7, 20, len(b) / 2, len(b) - 1} {
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCorruptFieldCountRejected(t *testing.T) {
	g := data.NewStructuredGrid(2, 2, 2)
	g.FillField("f", func(vec.V3) float32 { return 1 })
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The field value-count lives right after the name; flip a low byte of
	// the count to make it disagree with the grid size.
	// header: 4 magic + 2 ver + 1 kind + 24 dims + 48 geo + 4 fieldcount
	// + 2 namelen + 1 name = 86; count at [86:94].
	b[86] = 3
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("mismatched field count not detected")
	}
}

func TestImplausibleCountRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, data.NewPointCloud(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Particle count is the uint64 at offset 7; make it absurd.
	for i := 0; i < 8; i++ {
		b[7+i] = 0xFF
	}
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("implausible count not rejected")
	}
}

// Property: round-trip preserves arbitrary float32 payloads bit-exactly
// (including negative zero; NaN payloads compare by bits via DeepEqual on
// the underlying slice after a bits comparison would be overkill — we
// exclude NaN here and cover it in the explicit test below).
func TestRoundTripProperty(t *testing.T) {
	f := func(xs []float32) bool {
		for i, v := range xs {
			if v != v { // strip NaN; compared separately
				xs[i] = 0
			}
		}
		p := data.NewPointCloud(len(xs))
		copy(p.X, xs)
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.(*data.PointCloud).X, p.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteCloud(b *testing.B) {
	p := sampleCloud(100_000, 9)
	b.SetBytes(p.Bytes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCloud(b *testing.B) {
	p := sampleCloud(100_000, 9)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(p.Bytes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnstructuredRoundTrip(t *testing.T) {
	g := sampleGrid()
	u := data.Tetrahedralize(g)
	var buf bytes.Buffer
	if err := Write(&buf, u); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := got.(*data.UnstructuredGrid)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if v.Count() != u.Count() || v.Cells() != u.Cells() {
		t.Fatalf("sizes: %d/%d vs %d/%d", v.Count(), v.Cells(), u.Count(), u.Cells())
	}
	if !reflect.DeepEqual(u.Tets, v.Tets) {
		t.Error("tets differ")
	}
	if !reflect.DeepEqual(u.Fields, v.Fields) {
		t.Error("fields differ")
	}
	// Positions survive the float32 round trip of the original grid
	// coordinates exactly (they were float32-representable).
	for i := range u.Points {
		if u.Points[i].Sub(v.Points[i]).Len() > 1e-6 {
			t.Fatalf("point %d drifted", i)
		}
	}
}

func TestUnstructuredCorruptIndexRejected(t *testing.T) {
	u := data.Tetrahedralize(sampleGrid())
	var buf bytes.Buffer
	if err := Write(&buf, u); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first tet index (after 7-byte header + 16-byte sizes +
	// 12*nPoints coordinates) to reference an absurd vertex.
	off := 7 + 16 + 12*u.Count()
	b[off] = 0xFF
	b[off+1] = 0xFF
	b[off+2] = 0xFF
	b[off+3] = 0x7F
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("out-of-range tet index accepted")
	}
}

// Corruption robustness: flipping any single byte of a valid stream must
// never panic — Read either errors or returns a structurally sane
// dataset (flips in float payloads are undetectable by design).
func TestRandomCorruptionNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCloud(50, 3)); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		b := make([]byte, len(base))
		copy(b, base)
		pos := rng.Intn(len(b))
		b[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", pos, r)
				}
			}()
			ds, err := Read(bytes.NewReader(b))
			if err == nil && ds.Count() < 0 {
				t.Fatalf("negative count after corruption at %d", pos)
			}
		}()
	}
}

func TestRandomTruncationNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, data.Tetrahedralize(sampleGrid())); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		cut := rng.Intn(len(base))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			if _, err := Read(bytes.NewReader(base[:cut])); err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(base))
			}
		}()
	}
}
