package lint

import "testing"

const errwrapFixture = `package fix

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("boom")

func flattenV() error {
	return fmt.Errorf("ctx: %v", errSentinel) // want "use %w"
}

func flattenS() error {
	return fmt.Errorf("ctx: %s", errSentinel) // want "use %w"
}

func mixed(step int, err error) error {
	return fmt.Errorf("step %d failed after %d tries: %v", step, 3, err) // want "use %w"
}

func wrapped(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

func stringArg(err error) error {
	return fmt.Errorf("ctx: %s", err.Error())
}

func noErrArgs(name string, n int) error {
	return fmt.Errorf("bad input %q (%d values)", name, n)
}

func severed(err error) error {
	//lint:ignore errwrap boundary: do not leak the internal sentinel
	return fmt.Errorf("request failed: %v", err)
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

func starWidth(width int, err error) error {
	return fmt.Errorf("%*d %v", width, 7, err) // want "use %w"
}
`

func TestErrWrap(t *testing.T) {
	res := runFixture(t, ErrWrap, "example.com/fix", errwrapFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		exact  bool
	}{
		{"plain", "", true},
		{"%d and %v", "dv", true},
		{"100%% done: %w", "w", true},
		{"%+q %#v %6.2f", "qvf", true},
		{"%*d", "*d", true},
		{"%.*f", "*f", true},
		{"%[1]d", "", false},
	}
	for _, c := range cases {
		verbs, exact := formatVerbs(c.format)
		got := ""
		for _, v := range verbs {
			got += string(v)
		}
		if exact != c.exact || (exact && got != c.verbs) {
			t.Errorf("formatVerbs(%q) = %q/%v, want %q/%v", c.format, got, exact, c.verbs, c.exact)
		}
	}
}
