package lint

import "testing"

// The fixture mirrors the telemetry span shape (StartSpan/Child/End on a
// type named Span) so the analyzer is tested without importing the real
// package. The "early" case is the exact PR 1 coupling bug: End on the
// happy path only, so error returns leak the span.
const spanFixture = `package fix

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) Name() string            { return "" }
func (s *Span) Child(name string) *Span { return s }

type Registry struct{}

func (r *Registry) StartSpan(name string) *Span { return &Span{} }

var reg = &Registry{}

func work() {}

func early(fail bool) int {
	sp := reg.StartSpan("early") // want "non-deferred End"
	if fail {
		return 0
	}
	sp.End()
	return 1
}

func never() {
	sp := reg.StartSpan("never") // want "never ended"
	_ = sp.Name()
}

func discarded() {
	_ = reg.StartSpan("discarded") // want "discarded"
}

func good() {
	sp := reg.StartSpan("good")
	defer sp.End()
	work()
}

func goodLoop(n int) {
	sp := reg.StartSpan("loop")
	defer sp.End()
	for i := 0; i < n; i++ {
		func() {
			step := sp.Child("step")
			defer step.End()
			work()
		}()
	}
}

func childLeak(sp *Span) {
	st := sp.Child("leak") // want "never ended"
	_ = st.Name()
}

func escapes() *Span {
	sp := reg.StartSpan("escapes")
	return sp
}

func suppressed() {
	//lint:ignore spanend measured externally
	sp := reg.StartSpan("suppressed")
	_ = sp.Name()
}
`

func TestSpanEnd(t *testing.T) {
	res := runFixture(t, SpanEnd, "example.com/fix", spanFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}
