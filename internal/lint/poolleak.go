package lint

import (
	"go/ast"
	"go/types"
)

// PoolLeak machine-checks the mempool ownership convention README states
// in prose: every pooled acquisition — mempool.Bytes, SlicePool.Get,
// AcquireFrame / AcquireFrameUncleared — bound to a local variable must
// reach its matching release (PutBytes, Put, ReleaseFrame) on every
// normal path out of the function. The analysis is flow-sensitive: the
// function's CFG is solved with a forward "live acquisition" dataflow, so
// an early error return that skips the release is reported while a
// release on every branch (or a `defer` release, which also covers panic
// unwinding) is accepted.
//
// Ownership transfers the analyzer recognizes and exempts:
//
//   - returning the buffer (the caller now owns it) — per path, so
//     `return nil, err` without a release still reports;
//   - storing it into a struct, slice, map, channel, or another variable;
//   - capturing it in a closure that does more than read/index it;
//   - passing it to an ordinary call is a borrow, not a transfer —
//     helper functions that fill a buffer do not launder ownership.
//
// Explicit panic(...) exits are exempt: a panicking function's buffers
// are garbage, not pool debt, and requiring releases there would force
// defer on every hot path the zero-alloc gate protects.
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc:  "pooled buffers must be released on every normal path out of the function",
	Run:  runPoolLeak,
}

// poolAcq is one tracked acquisition site.
type poolAcq struct {
	obj  types.Object // the variable the acquisition is bound to
	node ast.Node     // the assignment, for reporting
	kind string       // "Bytes", "SlicePool.Get", "AcquireFrame", ...
}

func runPoolLeak(pass *Pass) {
	pass.funcNodes(func(fn ast.Node, body *ast.BlockStmt) {
		checkPoolLeak(pass, fn, body)
	})
}

func checkPoolLeak(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	// Pass 1: collect acquisition sites bound to plain local variables in
	// this function's own scope (closures are separate scopes).
	var sites []*poolAcq
	siteOf := make(map[types.Object][]int)
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := poolAcquireKind(pass, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "pooled buffer from %s is discarded; bind it and release it", kind)
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || len(sites) >= FactLimit {
			return true
		}
		siteOf[obj] = append(siteOf[obj], len(sites))
		sites = append(sites, &poolAcq{obj: obj, node: as, kind: kind})
		return true
	})
	if len(sites) == 0 {
		return
	}

	// Pass 2: classify uses. A site whose buffer escapes (stored,
	// captured by a mutating closure, aliased) is the new owner's
	// business; a site released by a defer is safe on every exit,
	// including panics.
	escaped := make(map[types.Object]bool)
	deferred := make(map[types.Object]bool)
	classifyPoolUses(pass, body, siteOf, escaped, deferred)

	cfg := pass.CFGOf(fn)
	if cfg == nil {
		return
	}
	for _, d := range cfg.Defers {
		markDeferredReleases(pass, d, siteOf, deferred)
	}

	tracked := Facts(0)
	for i, s := range sites {
		if !escaped[s.obj] && !deferred[s.obj] {
			tracked = tracked.Add(i)
		}
	}
	if tracked == 0 {
		return
	}

	// Forward flow: a site's bit is live from its acquisition until a
	// release of (or a return mentioning) its variable on that path.
	flow := ForwardFlow(cfg, FlowProblem[Facts]{
		Init: 0,
		Join: Facts.Union,
		Transfer: func(b *Block, in Facts) Facts {
			out := in
			for _, n := range b.Nodes {
				out = poolTransferNode(pass, n, sites, siteOf, tracked, out)
			}
			return out
		},
	}, 0)
	if !flow.Converged {
		return
	}

	leaked := flow.In[cfg.Exit] & tracked
	for i, s := range sites {
		if leaked.Has(i) {
			pass.Reportf(s.node.Pos(),
				"pooled buffer from %s is not released on every path out of %s; release it before each return or use defer",
				s.kind, cfg.Name)
		}
	}
}

// poolTransferNode updates the live-acquisition set for one block node.
func poolTransferNode(pass *Pass, n ast.Node, sites []*poolAcq, siteOf map[types.Object][]int, tracked Facts, out Facts) Facts {
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			// An acquisition assignment sets its site's bit.
			if len(m.Lhs) == 1 && len(m.Rhs) == 1 {
				if call, ok := m.Rhs[0].(*ast.CallExpr); ok {
					if _, isAcq := poolAcquireKind(pass, call); isAcq {
						if id, ok := m.Lhs[0].(*ast.Ident); ok {
							if obj := defOrUse(pass, id); obj != nil {
								for _, i := range siteOf[obj] {
									if tracked.Has(i) {
										out = out.Add(i)
									}
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// A release call clears every site bound to the argument.
			if obj := poolReleaseArg(pass, m); obj != nil {
				for _, i := range siteOf[obj] {
					out = out.Del(i)
				}
			}
		case *ast.ReturnStmt:
			// Returning the buffer hands ownership to the caller on this
			// path only.
			for _, res := range m.Results {
				inspectShallow(res, func(r ast.Node) bool {
					if id, ok := r.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							for _, i := range siteOf[obj] {
								out = out.Del(i)
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
	return out
}

// classifyPoolUses walks the function body marking sites whose variable
// escapes. Neutral uses (borrows): call arguments and method receivers
// (callees fill buffers, they do not take ownership), indexing and
// in-place slicing, range operands, comparisons, and reassignment of the
// variable itself. Escapes: stores into another variable or element,
// slice-aliasing assignments (out := buf[:0]), composite literals,
// channel sends, and capture by a closure that does more than read or
// index the buffer.
func classifyPoolUses(pass *Pass, body *ast.BlockStmt, siteOf map[types.Object][]int, escaped, deferred map[types.Object]bool) {
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || siteOf[obj] == nil {
			return true
		}
		// Inside a nested closure? Classify the closure use itself: pure
		// read/index uses (par.For bodies filling the buffer) are fine;
		// anything else escapes.
		for i := len(stack) - 1; i >= 0; i-- {
			if _, isLit := stack[i].(*ast.FuncLit); isLit {
				if !neutralPoolUse(pass, id, stack) {
					escaped[obj] = true
				}
				return true
			}
		}
		if !neutralPoolUse(pass, id, stack) {
			escaped[obj] = true
		}
		return true
	})
}

// neutralPoolUse reports whether this occurrence of the tracked variable
// neither releases nor transfers ownership — it is a borrow or a
// same-variable operation the flow transfer handles.
func neutralPoolUse(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.IndexExpr:
		return true // buf[i]
	case *ast.SliceExpr:
		// buf[:n] read in place is neutral; aliasing it into another
		// variable is handled by the surrounding assignment below.
		if len(stack) >= 2 {
			if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
				for _, rhs := range as.Rhs {
					if rhs == p {
						return false // out := buf[:0] aliases the backing array
					}
				}
			}
		}
		return true
	case *ast.SelectorExpr:
		// buf.Field read or method borrow: v.CopyFrom(x), f.Color[i], ...
		return p.X == id
	case *ast.CallExpr:
		// Argument (or callee) position. Release calls are handled by the
		// flow transfer; any other call borrows the buffer.
		return true
	case *ast.RangeStmt:
		return p.X == id
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return true // reassignment target
			}
		}
		// RHS of an assignment to some other variable: aliasing store.
		return false
	case *ast.ReturnStmt:
		return true // per-path ownership transfer, handled in the flow
	case *ast.IfStmt, *ast.BinaryExpr, *ast.UnaryExpr, *ast.ParenExpr:
		return true // nil checks, comparisons, &buf[i]...
	case *ast.ExprStmt, *ast.IncDecStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.ForStmt:
		return true
	}
	// Composite literal, send, index on the LHS of a map store, defer
	// argument (defers are scanned separately), go statement, ...
	if _, ok := parent.(*ast.KeyValueExpr); ok {
		return false
	}
	return false
}

// markDeferredReleases records variables released by a defer statement:
// either `defer PutBytes(buf)` directly or a deferred closure whose body
// releases the variable.
func markDeferredReleases(pass *Pass, d *ast.DeferStmt, siteOf map[types.Object][]int, deferred map[types.Object]bool) {
	if obj := poolReleaseArg(pass, d.Call); obj != nil && siteOf[obj] != nil {
		deferred[obj] = true
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := poolReleaseArg(pass, call); obj != nil && siteOf[obj] != nil {
					deferred[obj] = true
				}
			}
			return true
		})
	}
}

// poolAcquireKind reports whether call is a pooled acquisition and names
// its shape. Matched by name plus type shape so fixtures and any package
// following the mempool conventions are covered:
//
//   - package-level func Bytes(n) returning []byte
//   - method Get on a named type SlicePool
//   - package-level funcs AcquireFrame / AcquireFrameUncleared
func poolAcquireKind(pass *Pass, call *ast.CallExpr) (string, bool) {
	fnObj := calleeFunc(pass, call)
	if fnObj == nil {
		return "", false
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	switch fnObj.Name() {
	case "Bytes":
		if sig.Recv() == nil && sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
			isByteSlice(sig.Results().At(0).Type()) {
			return "Bytes", true
		}
	case "Get":
		if recvNamed(sig) == "SlicePool" {
			return "SlicePool.Get", true
		}
	case "AcquireFrame", "AcquireFrameUncleared":
		if sig.Recv() == nil {
			return fnObj.Name(), true
		}
	}
	return "", false
}

// poolReleaseArg returns the released variable's object when call is a
// pool release (PutBytes, ReleaseFrame, SlicePool.Put) with a plain
// identifier argument, else nil.
func poolReleaseArg(pass *Pass, call *ast.CallExpr) types.Object {
	fnObj := calleeFunc(pass, call)
	if fnObj == nil || len(call.Args) != 1 {
		return nil
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	switch fnObj.Name() {
	case "PutBytes", "ReleaseFrame":
		if sig.Recv() != nil {
			return nil
		}
	case "Put":
		if recvNamed(sig) != "SlicePool" {
			return nil
		}
	default:
		return nil
	}
	arg := call.Args[0]
	for {
		switch a := arg.(type) {
		case *ast.ParenExpr:
			arg = a.X
			continue
		case *ast.SliceExpr:
			arg = a.X // PutBytes(buf[:0]) still releases buf's backing array
			continue
		}
		break
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// calleeFunc resolves the called function or method object.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation Get[T]
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := fun.X.(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func defOrUse(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// recvNamed returns the name of the method receiver's named type (through
// pointers and generic instantiation), or "".
func recvNamed(sig *types.Signature) string {
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
