package lint

import "testing"

const floateqFixture = `package fix

type scalar float32

func eq64(a, b float64) bool {
	return a == b // want "floating-point"
}

func neq32(a, b float32) bool {
	return a != b // want "floating-point"
}

func named(a, b scalar) bool {
	return a == b // want "floating-point"
}

func mixedConst(x float64) bool {
	return x == 0 // want "floating-point"
}

func nanIdiom(x float64) bool {
	return x != x
}

func ints(a, b int) bool {
	return a == b
}

func ordered(a, b float64) bool {
	return a >= b
}

func sentinel(x float64) bool {
	//lint:ignore floateq uninitialized-slot marker is written as exact 0
	return x == 0
}
`

func TestFloatEq(t *testing.T) {
	res := runFixture(t, FloatEq, "example.com/internal/rt", floateqFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// TestFloatEqScope checks the ban applies only to the numeric hot
// packages; protocol code may compare floats read off the wire exactly.
func TestFloatEqScope(t *testing.T) {
	src := `package fix

func eq64(a, b float64) bool {
	return a == b
}
`
	runFixture(t, FloatEq, "example.com/internal/transport", src)
}
