package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under lint.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod), using only the standard library: module
// packages are compiled from source, standard-library imports come from
// the toolchain's export data. Test files are skipped — ethlint checks
// shipped code. Returns packages sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		root:    root,
		modPath: modPath,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*Package),
		std:     importer.Default(),
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// loader resolves imports: module-internal paths are type-checked from
// source (memoized), everything else is delegated to the toolchain
// importer.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	cache   map[string]*Package
	std     types.Importer
	loading []string // active loadDir stack, for cycle reporting
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	pkgPath := l.importPath(dir)
	if pkg, ok := l.cache[pkgPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s (%s)", pkgPath, strings.Join(l.loading, " -> "))
		}
		return pkg, nil
	}
	l.cache[pkgPath] = nil // cycle marker
	l.loading = append(l.loading, pkgPath)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS suffixes)
		// for the host platform, the way the compiler will: a unix/!unix
		// file pair declares the same names and must not be loaded
		// together.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: %s does not type-check: %w", pkgPath, typeErrs[0])
	}

	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.cache[pkgPath] = pkg
	return pkg, nil
}

// importPath maps a directory under the module root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
