package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedField enforces the `// guarded by <mu>` annotation convention: a
// struct field carrying that annotation may only be read or written inside
// a function that locks the named mutex on the same receiver (Lock for
// writes; Lock or RLock for reads), or inside a function whose name ends
// in "Locked" (the caller-holds-the-lock convention). This is the class of
// the PR 1 bounds-cache race: a lazily computed field read concurrently by
// every rank proxy without the guard.
//
// The check is intraprocedural and conservative: it verifies that the
// enclosing function contains a lock call on the right mutex, not that the
// lock dominates the access. Lock-free fast paths should carry
// //lint:ignore guardedfield <reason>.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "fields annotated `// guarded by <mu>` need the lock held",
	Run:  runGuardedField,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

type guardInfo struct {
	structName string
	fieldName  string
	muName     string
}

func runGuardedField(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			g, ok := guards[selection.Obj()]
			if !ok {
				return true
			}
			body, fname := enclosingFunc(stack)
			if body == nil {
				pass.Reportf(sel.Pos(), "%s.%s (guarded by %s) accessed outside any function",
					g.structName, g.fieldName, g.muName)
				return true
			}
			if strings.HasSuffix(fname, "Locked") {
				return true
			}
			base, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				pass.Reportf(sel.Pos(), "%s.%s (guarded by %s) accessed through a non-local expression; hoist the receiver to a variable so the lock can be checked",
					g.structName, g.fieldName, g.muName)
				return true
			}
			baseObj := pass.Info.Uses[base]
			if baseObj == nil {
				baseObj = pass.Info.Defs[base]
			}
			write := isWriteAccess(sel, stack)
			if !locksMutex(pass, body, baseObj, g.muName, write) {
				verb := "read"
				need := g.muName + ".Lock or " + g.muName + ".RLock"
				if write {
					verb = "written"
					need = g.muName + ".Lock"
				}
				pass.Reportf(sel.Pos(), "%s.%s is %s in %s without %s.%s held (field is guarded by %s)",
					g.structName, g.fieldName, verb, fname, base.Name, need, g.muName)
			}
			return true
		})
	}
}

// collectGuards finds annotated struct fields and maps their types.Var to
// the guard spec. A `guarded by` annotation naming a mutex field that does
// not exist in the struct is itself reported.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(f.Pos(), "%s: `guarded by %s` names a field that does not exist in %s",
						fieldList(f), mu, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, muName: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func fieldList(f *ast.Field) string {
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// isWriteAccess reports whether sel is the target of an assignment, an
// address-of, or an inc/dec statement.
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if unparen(lhs) == sel {
				return true
			}
		}
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	case *ast.IncDecStmt:
		return p.X == sel
	}
	return false
}

// locksMutex reports whether body contains a call base.mu.Lock() (or, for
// reads, base.mu.RLock()) on the same base object.
func locksMutex(pass *Pass, body *ast.BlockStmt, baseObj types.Object, muName string, write bool) bool {
	if baseObj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if method.Sel.Name != "Lock" && (write || method.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := unparen(method.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != muName {
			return true
		}
		base, ok := unparen(muSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pass.Info.Uses[base] == baseObj {
			found = true
			return false
		}
		return true
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
