package lint

import "testing"

const lockOrderFixture = `package fixture

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
	mu sync.RWMutex
	state int
}

// abPath and baPath take the same pair of locks in opposite orders: the
// classic AB/BA deadlock. Both cycle-completing acquisitions report.
func (s *server) abPath() {
	s.a.Lock()
	s.b.Lock() // want "lock order cycle"
	s.state++
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) baPath() {
	s.b.Lock()
	s.a.Lock() // want "lock order cycle"
	s.state++
	s.a.Unlock()
	s.b.Unlock()
}

// pair is always locked first-then-second, across plain and deferred
// unlock styles: consistent order, no findings.
type pair struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

func (p *pair) one() {
	p.first.Lock()
	p.second.Lock()
	p.n++
	p.second.Unlock()
	p.first.Unlock()
}

func (p *pair) two() {
	p.first.Lock()
	defer p.first.Unlock()
	p.second.Lock()
	defer p.second.Unlock()
	p.n++
}

// sequential releases second before taking first: no overlap, no edge —
// the flow-sensitive part. A flow-insensitive "mentioned earlier in the
// function" ordering would see second-then-first here and report a false
// cycle against one().
func (p *pair) sequential() {
	p.second.Lock()
	p.n++
	p.second.Unlock()
	p.first.Lock()
	p.n++
	p.first.Unlock()
}

// RLock participates in ordering like Lock.
func (s *server) read() int {
	s.mu.RLock()
	s.a.Lock()
	v := s.state
	s.a.Unlock()
	s.mu.RUnlock()
	return v
}

// Branches that lock different mutexes under a common guard stay acyclic.
func (s *server) guarded(which bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if which {
		s.a.Lock()
		s.state++
		s.a.Unlock()
	} else {
		s.b.Lock()
		s.state++
		s.b.Unlock()
	}
}
`

func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrder, "fixture/lockorder", lockOrderFixture)
}

// Package-level mutexes are one graph node per variable; a cycle between
// them spans functions.
func TestLockOrderPackageVars(t *testing.T) {
	src := `package fixture

import "sync"

var regMu sync.Mutex
var statsMu sync.Mutex
var reg, stats int

func updateBoth() {
	regMu.Lock()
	statsMu.Lock() // want "lock order cycle"
	reg++
	stats++
	statsMu.Unlock()
	regMu.Unlock()
}

func snapshot() (int, int) {
	statsMu.Lock()
	defer statsMu.Unlock()
	regMu.Lock() // want "lock order cycle"
	defer regMu.Unlock()
	return reg, stats
}
`
	runFixture(t, LockOrder, "fixture/lockorderpkg", src)
}
