package lint

import (
	"go/ast"
	"go/types"
)

// CtxGuard keeps the supervised, long-running loops cancellable: inside
// any function that receives a context.Context, an unbounded loop
// (`for { ... }` or `for cond { ... }`) must observe the context on each
// iteration — select on ctx.Done(), check ctx.Err(), call a function
// that takes the context, or receive from a channel bound from
// ctx.Done(). A loop that ignores its context keeps a supervised role
// alive after the watchdog tears the run down, which is exactly the hang
// the PR 5 supervision plane exists to prevent.
//
// The check is flow-sensitive where it matters: the function's CFG
// decides whether the loop can actually iterate. A `for { ...; return }`
// body that leaves the function on every path has no back edge and is
// not reported. Counter-stepped loops (`for i := 0; i < n; i++`) and
// range loops are bounded by construction and skipped.
var CtxGuard = &Analyzer{
	Name: "ctxguard",
	Doc:  "unbounded loops in ctx-taking functions must observe cancellation",
	Run:  runCtxGuard,
}

func runCtxGuard(pass *Pass) {
	pass.funcNodes(func(fn ast.Node, body *ast.BlockStmt) {
		ctxObjs := ctxParams(pass, fn)
		if len(ctxObjs) == 0 {
			return
		}
		// Also trust channels derived from the context: done := ctx.Done()
		// followed by <-done observes cancellation.
		addDoneChans(pass, body, ctxObjs)

		inspectShallow(body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// Bounded shape: a three-clause counter loop steps toward its
			// condition; range loops never reach here (RangeStmt).
			if loop.Cond != nil && loop.Post != nil {
				return true
			}
			if loopObservesCtx(pass, loop, ctxObjs) {
				return true
			}
			cfg := pass.CFGOf(fn)
			if cfg == nil || !cfg.HasBackEdge(loop) {
				return true // exits on every path; not really a loop
			}
			pass.Reportf(loop.Pos(),
				"unbounded loop in ctx-taking %s never observes ctx: select on ctx.Done(), check ctx.Err(), or pass ctx to a callee",
				cfg.Name)
			return true
		})
	})
}

// ctxParams returns the function's context.Context-typed parameters.
func ctxParams(pass *Pass, fn ast.Node) map[types.Object]bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	default:
		return nil
	}
	objs := make(map[types.Object]bool)
	if ft.Params == nil {
		return objs
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				objs[obj] = true
			}
		}
	}
	return objs
}

// addDoneChans extends the observed set with variables assigned from
// <ctx>.Done() anywhere in the function body.
func addDoneChans(pass *Pass, body *ast.BlockStmt, ctxObjs map[types.Object]bool) {
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				continue
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || !ctxObjs[pass.Info.Uses[base]] {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := defOrUse(pass, id); obj != nil {
					ctxObjs[obj] = true
				}
			}
		}
		return true
	})
}

// loopObservesCtx reports whether the loop's condition or body (outside
// nested function literals) mentions any of the tracked objects — the
// context itself, a derived context, or a Done channel.
func loopObservesCtx(pass *Pass, loop *ast.ForStmt, ctxObjs map[types.Object]bool) bool {
	found := false
	check := func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && ctxObjs[obj] {
				found = true
			}
		}
		return !found
	}
	if loop.Cond != nil {
		inspectShallow(loop.Cond, check)
	}
	if !found {
		inspectShallow(loop.Body, check)
	}
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
