package lint

import "testing"

const ctxGuardFixture = `package fixture

import "context"

func step(ctx context.Context) error { return ctx.Err() }
func poll() int                      { return 0 }

// An infinite loop that never looks at its context keeps a supervised
// role alive after teardown.
func unguarded(ctx context.Context) {
	n := 0
	for { // want "never observes ctx"
		n += poll()
	}
}

// Selecting on ctx.Done() each iteration is the canonical guard.
func guardedSelect(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// Passing the context to a callee counts: the callee observes it.
func guardedCall(ctx context.Context) {
	for {
		if err := step(ctx); err != nil {
			return
		}
	}
}

// A Done channel bound from the context is an observation too.
func guardedDoneChan(ctx context.Context, work chan int) {
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		case <-work:
		}
	}
}

// Checking ctx.Err() in the loop condition guards a while-shaped loop.
func guardedCond(ctx context.Context) {
	for ctx.Err() == nil {
		poll()
	}
}

// No back edge: the body leaves the function on every path, so the CFG
// proves this "loop" runs at most once.
func alwaysReturns(ctx context.Context) int {
	for {
		return poll()
	}
}

// While-shaped spin without any context observation.
func whileUnguarded(ctx context.Context, ready *bool) {
	for !*ready { // want "never observes ctx"
		poll()
	}
}

// Counter-stepped loops are bounded by construction: skipped.
func boundedCounter(ctx context.Context, n int) {
	sum := 0
	for i := 0; i < n; i++ {
		sum += poll()
	}
	_ = sum
}

// Functions without a context parameter are out of scope.
func noCtx() {
	for {
		if poll() > 0 {
			return
		}
	}
}

// A function literal with its own ctx parameter is its own scope.
var handler = func(ctx context.Context) {
	for { // want "never observes ctx"
		poll()
	}
}
`

func TestCtxGuard(t *testing.T) {
	runFixture(t, CtxGuard, "fixture/ctxguard", ctxGuardFixture)
}

func TestCtxGuardSuppression(t *testing.T) {
	src := `package fixture

import "context"

func spin() {}

// A deliberate busy-wait documented via directive.
func calibrate(ctx context.Context) {
	//lint:ignore ctxguard timing calibration must not be preempted by cancellation
	for {
		spin()
	}
}
`
	res := runFixture(t, CtxGuard, "fixture/ctxguardsup", src)
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
}
