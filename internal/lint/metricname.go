package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName enforces the telemetry naming contract the /metrics
// exposition depends on: every name handed to a Registry —
// Counter, Gauge, Histogram, Span, StartSpan, ObserveSpan — must be a
// compile-time constant in dotted snake_case ("transport.bytes_sent",
// "viz.render"). Two failure modes are caught:
//
//   - A malformed literal ("Transport.Bytes", "viz-render") would be
//     mangled by the Prometheus name sanitizer, silently splitting one
//     logical series into differently-spelled families across ranks.
//   - A dynamic name (fmt.Sprintf, string concatenation with a
//     variable) defeats grep, cannot be audited against dashboards, and
//     risks unbounded metric cardinality from unvalidated input. Hoist
//     the possible names to literals, or carry
//     //lint:ignore metricname <reason> when the domain is provably
//     closed (e.g. an enum's String()).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be constant dotted snake_case",
	Run:  runMetricName,
}

// metricNameRe is the canonical shape: dot-separated snake_case
// segments, each starting with a letter.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricNameMethods are the Registry methods whose first argument is a
// metric name.
var metricNameMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"Span": true, "StartSpan": true, "ObserveSpan": true,
}

func runMetricName(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricNameMethods[sel.Sel.Name] {
				return true
			}
			if !isRegistryRecv(pass, sel) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"dynamic metric name in %s(); use a constant so the series can be grepped and its cardinality audited",
					sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q is not dotted snake_case ([a-z][a-z0-9_]*, dot-separated); the Prometheus sanitizer would mangle it",
					name)
			}
			return true
		})
	}
}

// isRegistryRecv reports whether the selector's receiver is a telemetry
// Registry (matched by type name, so fixtures and any package following
// the telemetry shape are covered).
func isRegistryRecv(pass *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
