package lint

import "testing"

const journalEndFixture = `package fixture

import "fmt"

type Event struct {
	Type, Phase, Detail string
	Rank, Step          int
}

type Writer struct{ events []Event }

func (w *Writer) Emit(e Event) { w.events = append(w.events, e) }

const (
	TypeRunStart = "run_start"
	TypeRunEnd   = "run_end"
	TypePhase    = "phase"
)

// A start via the Type constant with no end anywhere: flagged.
func startNoEnd(jw *Writer) {
	jw.Emit(Event{Type: TypeRunStart}) // want "no matching .run_end."
}

// Start and end in the same body: clean.
func startWithEnd(jw *Writer) {
	jw.Emit(Event{Type: TypeRunStart})
	jw.Emit(Event{Type: TypeRunEnd})
}

// The end lives in a deferred closure — the idiomatic shape: clean.
func endInDefer(jw *Writer) {
	jw.Emit(Event{Type: TypeRunStart})
	defer func() {
		jw.Emit(Event{Type: TypeRunEnd})
	}()
}

// Phase events pair through the leading Detail token; a Sprintf with a
// constant format counts. pair_start has no pair_end here: flagged.
func detailStartNoEnd(jw *Writer, mode string) {
	jw.Emit(Event{Type: TypePhase, Detail: fmt.Sprintf("pair_start mode=%s", mode)}) // want "no matching .pair_end."
}

// The same shape with both halves: clean.
func detailStartWithEnd(jw *Writer, mode string) {
	jw.Emit(Event{Type: TypePhase, Detail: fmt.Sprintf("pair_start mode=%s", mode)})
	jw.Emit(Event{Type: TypePhase, Detail: fmt.Sprintf("pair_end mode=%s", mode)})
}

// A mismatched end does not satisfy a different start: flagged.
func wrongEnd(jw *Writer) {
	jw.Emit(Event{Type: TypePhase, Detail: "sweep_start"}) // want "no matching .sweep_end."
	jw.Emit(Event{Type: TypePhase, Detail: "pair_end"})
}

// A function literal is its own pairing domain: the start inside the
// closure is not satisfied by an end in the enclosing function.
func closureScopes(jw *Writer) {
	fn := func() {
		jw.Emit(Event{Type: TypePhase, Detail: "inner_start"}) // want "no matching .inner_end."
	}
	fn()
	jw.Emit(Event{Type: TypePhase, Detail: "inner_end"})
}

// Non-start events, dynamic details, and non-journal Emits are ignored.
type Other struct{}

func (Other) Emit(e Event) {}

func neutral(jw *Writer, o Other, d string) {
	jw.Emit(Event{Type: TypePhase, Detail: d})
	jw.Emit(Event{Type: "transfer", Detail: "send"})
	o.Emit(Event{Type: TypeRunStart}) // not a Writer: ignored
}

// An ignore directive with a reason suppresses the finding.
func split(jw *Writer) {
	//lint:ignore journalend the end is emitted by the caller's defer
	jw.Emit(Event{Type: TypeRunStart})
}
`

func TestJournalEndFixture(t *testing.T) {
	res := runFixture(t, JournalEnd, "fixture/journalend", journalEndFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}
