package lint

import "testing"

const hotallocFixture = `package fix

import "fmt"

func makeInHotLoop(w, h int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			buf := make([]byte, 16) // want "make in hot loop"
			_ = buf
		}
	}
}

func appendInHotLoop(rows [][]int) {
	for _, row := range rows {
		for _, v := range row {
			var out []int
			out = append(out, v) // want "append in hot loop"
			_ = out
		}
	}
}

func boxingArgInHotLoop(xs []int) {
	for range xs {
		for _, v := range xs {
			fmt.Sprintln(v) // want "boxes into interface"
		}
	}
}

func boxingAssignInHotLoop(xs []int) {
	var sink interface{}
	for range xs {
		for _, v := range xs {
			sink = v // want "assignment boxes into interface"
		}
	}
	_ = sink
}

func boxingConversionInHotLoop(xs []int) {
	for range xs {
		for _, v := range xs {
			_ = interface{}(v) // want "conversion to"
		}
	}
}

// Loops through a function literal still count: par.For-style bodies run
// once per element of an outer sweep.
func throughFuncLit(xs []int, run func(func(int))) {
	for range xs {
		run(func(i int) { // depth 1 at the call site: not flagged
			for j := 0; j < i; j++ {
				_ = make([]byte, j) // want "make in hot loop"
			}
		})
	}
}

func setupLoopIsFine(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, 0, 8)
	}
	return out
}

func interfaceToInterfaceIsFine(xs []error) {
	var sink interface{}
	for range xs {
		for _, e := range xs {
			sink = e // already an interface: no box
		}
	}
	_ = sink
}

func nilIsFine(xs []int) {
	var sink interface{}
	for range xs {
		for range xs {
			sink = nil
		}
	}
	_ = sink
}

func suppressed(rows [][]int32, out []int32) []int32 {
	for _, row := range rows {
		for _, v := range row {
			//lint:ignore hotalloc capacity amortized by pooled scratch
			out = append(out, v)
		}
	}
	return out
}
`

func TestHotAlloc(t *testing.T) {
	res := runFixture(t, HotAlloc, "example.com/internal/raster", hotallocFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// TestHotAllocScope checks only the per-pixel/per-sample packages are
// policed; orchestration code may allocate in nested loops freely.
func TestHotAllocScope(t *testing.T) {
	src := `package fix

func nested(w, h int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			_ = make([]byte, 16)
		}
	}
}
`
	runFixture(t, HotAlloc, "example.com/internal/proxy", src)
}
