package lint

import "testing"

// The positive cases are the par-package worker launches before the PR 2
// fix: pure compute goroutines where any panic killed the process (or
// wedged the WaitGroup) with no containment. The negative cases are the
// three accepted shapes: deferred recover (directly, via a helper, or via
// a method), an error-carrying channel send, and assignment into a
// captured error slot.
const nakedgoFixture = `package fix

type result struct {
	n   int
	err error
}

func work() error { return nil }

type box struct{}

func (b *box) capture() {
	_ = recover()
}

func bare(done chan struct{}) {
	go func() { // want "neither recovers"
		close(done)
	}()
}

func deferRecoverIsANoop() {
	go func() { // want "neither recovers"
		defer recover()
		_ = work()
	}()
}

func named() {
	go namedWorker() // want "named function"
}

func namedWorker() {}

func recovers() {
	go func() {
		defer func() { _ = recover() }()
		_ = work()
	}()
}

func recoversViaMethod(b *box) {
	go func() {
		defer b.capture()
		_ = work()
	}()
}

func sendsErrorStruct(c chan result) {
	go func() {
		c <- result{n: 1, err: work()}
	}()
}

func sendsError(c chan error) {
	go func() {
		c <- work()
	}()
}

func assignsCaptured(errs []error) {
	go func() {
		errs[0] = work()
	}()
}

func infallible(done chan struct{}) {
	//lint:ignore nakedgo closes a channel, nothing can fail
	go func() {
		close(done)
	}()
}
`

func TestNakedGo(t *testing.T) {
	res := runFixture(t, NakedGo, "example.com/internal/fix", nakedgoFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// TestNakedGoScope checks the analyzer keeps out of non-internal
// packages, where API users may launch goroutines however they like.
func TestNakedGoScope(t *testing.T) {
	src := `package fix

func bare(done chan struct{}) {
	go func() {
		close(done)
	}()
}
`
	runFixture(t, NakedGo, "example.com/fix", src)
}
