package lint

// A small forward dataflow engine over the lint CFG. Analyzers describe a
// join-semilattice of per-block facts (any comparable type; the provided
// Facts bitset covers the common "powerset of up to 64 sites" case) and a
// transfer function; the engine iterates blocks in reverse postorder
// until the facts stop changing or a bounded iteration cap trips. The cap
// makes termination unconditional even for a non-monotone transfer
// function — a buggy analyzer degrades to "no answer" (Converged false)
// instead of hanging the lint gate.

// Facts is a powerset lattice over at most 64 indexed facts (acquisition
// sites, held locks, ...). The zero value is the empty set.
type Facts uint64

// FactLimit is the largest number of distinct facts a single function can
// track; analyzers skip functions that overflow it.
const FactLimit = 64

// Has reports whether fact i is in the set.
func (f Facts) Has(i int) bool { return f&(1<<uint(i)) != 0 }

// Add returns the set with fact i included.
func (f Facts) Add(i int) Facts { return f | 1<<uint(i) }

// Del returns the set with fact i removed.
func (f Facts) Del(i int) Facts { return f &^ (1 << uint(i)) }

// Union returns the set union — the join for "exists a path" analyses.
func (f Facts) Union(g Facts) Facts { return f | g }

// FlowProblem describes one forward dataflow analysis over a CFG.
type FlowProblem[F comparable] struct {
	// Init is the fact at function entry.
	Init F
	// Join merges the facts flowing in from two predecessors.
	Join func(a, b F) F
	// Transfer computes a block's out-fact from its in-fact by walking
	// the block's nodes in order.
	Transfer func(b *Block, in F) F
}

// FlowResult carries the fixpoint solution.
type FlowResult[F comparable] struct {
	// In and Out hold each reachable block's entry and exit facts.
	In, Out map[*Block]F
	// Converged is false when the iteration cap tripped first; analyzers
	// should stay silent rather than report from a partial solution.
	Converged bool
	// Iters is the number of full passes performed.
	Iters int
}

// ForwardFlow solves the problem to fixpoint, capped at maxIters full
// passes over the graph (values < 1 select a cap proportional to the
// block count, which is ample for any monotone problem on Facts).
func ForwardFlow[F comparable](c *CFG, p FlowProblem[F], maxIters int) FlowResult[F] {
	order := c.ReversePostorder()
	if maxIters < 1 {
		// A monotone bitset problem converges in O(depth) passes; 4·N+8
		// is a generous safety margin, not a tuning knob.
		maxIters = 4*len(order) + 8
	}
	res := FlowResult[F]{
		In:  make(map[*Block]F, len(order)),
		Out: make(map[*Block]F, len(order)),
	}
	res.In[c.Entry] = p.Init
	res.Out[c.Entry] = p.Transfer(c.Entry, p.Init)

	changed := true
	for changed && res.Iters < maxIters {
		changed = false
		res.Iters++
		for _, b := range order {
			if b == c.Entry {
				continue
			}
			var in F
			first := true
			for _, pred := range b.Preds {
				o, ok := res.Out[pred]
				if !ok {
					continue // pred not yet visited (or unreachable)
				}
				if first {
					in = o
					first = false
				} else {
					in = p.Join(in, o)
				}
			}
			if first {
				continue // no reachable predecessor yet
			}
			out := p.Transfer(b, in)
			if prev, ok := res.Out[b]; !ok || prev != out || res.In[b] != in {
				changed = true
			}
			res.In[b] = in
			res.Out[b] = out
		}
	}
	res.Converged = !changed
	return res
}
