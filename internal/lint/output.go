package lint

// Machine-readable renderings of a Result: a compact JSON form for
// scripting and SARIF 2.1.0 for CI code-scanning annotation. Both render
// file paths relative to the module root so output is stable across
// checkouts.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// jsonDiag mirrors Diagnostic with a root-relative file path.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonResult struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Suppressed  int        `json:"suppressed"`
	Ignores     int        `json:"ignores"`
}

// WriteJSON renders the result as one JSON document.
func WriteJSON(w io.Writer, res Result, root string) error {
	out := jsonResult{Diagnostics: []jsonDiag{}, Suppressed: res.Suppressed, Ignores: res.Ignores}
	for _, d := range res.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename, root),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the result as a SARIF 2.1.0 log. analyzers supplies
// the rule metadata (every analyzer that ran, not just those that fired).
func WriteSARIF(w io.Writer, res Result, analyzers []*Analyzer, root string) error {
	driver := sarifDriver{
		Name:  "ethlint",
		Rules: []sarifRule{},
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The driver pseudo-analyzer reports malformed //lint:ignore lines.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "//lint:ignore directives must name a known analyzer and a reason"},
	})

	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range res.Diagnostics {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(d.Pos.Filename, root))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders path relative to root when it is inside it.
func relPath(path, root string) string {
	if root == "" {
		return path
	}
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
