package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SentinelErr enforces the repo's sentinel-error contract in internal
// packages: error classification crosses package boundaries through
// errors.Is against package-level sentinels, so
//
//   - errors.New must only appear in package-level sentinel
//     declarations, never as an anonymous leaf inside a function body —
//     an anonymous leaf can't be classified by any caller; and
//   - a package-level sentinel must not be returned bare: wrap it with
//     fmt.Errorf("...: %w", Err) so the caller gets call-site context
//     (which step, which path) while errors.Is still matches.
//
// Deliberate exceptions (e.g. io.EOF-style protocol sentinels whose
// identity IS the contract) carry //lint:ignore sentinelerr <reason>.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "internal packages return wrapped (%w) package sentinels, not bare errors.New leaves or naked sentinel returns",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) {
	if !strings.Contains(pass.PkgPath, "/internal/") {
		return
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isErrorsNew(pass, n) {
					return true
				}
				if body, name := enclosingFunc(stack); body != nil {
					pass.Reportf(n.Pos(),
						"errors.New inside %s; declare a package-level sentinel (var ErrX = errors.New(...)) and wrap it with %%w", name)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					id, ok := res.(*ast.Ident)
					if !ok {
						continue
					}
					if !isPackageSentinel(pass, id) {
						continue
					}
					pass.Reportf(res.Pos(),
						"sentinel %s returned bare; wrap with fmt.Errorf(\"...: %%w\", %s) so the caller gets context", id.Name, id.Name)
				}
			}
			return true
		})
	}
}

// isErrorsNew reports whether call is a call to errors.New.
func isErrorsNew(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "errors.New"
}

// isPackageSentinel reports whether id names a package-level error
// variable following the ErrX convention — the repo's sentinel shape.
func isPackageSentinel(pass *Pass, id *ast.Ident) bool {
	if !strings.HasPrefix(id.Name, "Err") || len(id.Name) < 4 {
		return false
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Parent() != pass.Pkg.Scope() {
		return false
	}
	return implementsError(obj.Type())
}
