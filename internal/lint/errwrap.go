package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrap enforces error-chain transparency: a fmt.Errorf call whose
// argument list carries an error must format it with %w, so errors.Is and
// errors.As keep working across the proxy -> transport -> coupling call
// chain. Formatting an error with %v (or %s) flattens it to text and
// breaks sentinel checks downstream. Sites that deliberately sever the
// chain (e.g. to avoid leaking an internal sentinel across an API
// boundary) should carry //lint:ignore errwrap <reason>.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must wrap it with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(pass, call) || len(call.Args) < 2 {
				return true
			}
			format, ok := stringLiteral(pass, call.Args[0])
			if !ok {
				return true // dynamic format string: nothing to check
			}
			verbs, exact := formatVerbs(format)
			if !exact {
				return true // explicit arg indexes etc.: too clever, skip
			}
			for i, arg := range call.Args[1:] {
				tv, ok := pass.Info.Types[arg]
				if !ok || !implementsError(tv.Type) {
					continue
				}
				if i >= len(verbs) {
					continue // arity mismatch: go vet's department
				}
				if verbs[i] != 'w' {
					pass.Reportf(arg.Pos(),
						"error argument formatted with %%%c; use %%w so errors.Is/As see the cause", verbs[i])
				}
			}
			return true
		})
	}
}

// isFmtErrorf reports whether call is a call to fmt.Errorf.
func isFmtErrorf(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "fmt.Errorf"
}

// stringLiteral resolves expr to a constant string (literal or named
// constant).
func stringLiteral(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb rune consuming each successive argument of
// a Printf-style format string, in argument order. Width/precision '*'
// consume an argument and are recorded as '*'. exact is false when the
// format uses explicit argument indexes (%[n]v), which this simple
// scanner does not model.
func formatVerbs(format string) (verbs []rune, exact bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags
		for i < len(rs) && (rs[i] == '#' || rs[i] == '+' || rs[i] == '-' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// explicit argument index: bail out
		if i < len(rs) && rs[i] == '[' {
			return nil, false
		}
		// width
		if i < len(rs) && rs[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			if i < len(rs) && rs[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
					i++
				}
			}
		}
		if i < len(rs) {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}
