package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the telemetry-span lifetime invariant: a span obtained
// from StartSpan or Child and bound to a local variable must be ended via
// `defer <span>.End()` in the same function scope. A plain (non-deferred)
// End() call leaks the span on every early return — exactly the bug class
// PR 1's hand instrumentation had in the coupling drivers, where an error
// return between StartSpan and End silently dropped the measurement the
// harness's Figure-8-style comparisons depend on.
//
// Spans that escape the function (returned, stored in a struct, passed to
// a call) are skipped: their lifetime is the caller's business. A loop
// that opens a per-iteration child span should move the iteration body
// into a function literal so the defer fires each iteration.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "telemetry spans must be ended via defer on every path",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					spanEndScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				spanEndScope(pass, fn.Body)
			}
			return true
		})
	}
}

// spanEndScope checks one function body, not descending into nested
// function literals (each literal is its own defer scope and is visited
// by the outer Inspect).
func spanEndScope(pass *Pass, body *ast.BlockStmt) {
	type spanVar struct {
		obj      types.Object
		pos      ast.Node
		name     string // metric name argument if a literal, else ""
		deferred bool
		plainEnd bool
		escapes  bool
	}
	var spans []*spanVar
	byObj := make(map[types.Object]*spanVar)

	// Pass 1: find span-producing assignments in this scope.
	walkScope(body, func(n ast.Node, stack []ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isSpanCall(pass, call) {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "span from %s is discarded; end it with defer", spanCallName(call))
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		sv := &spanVar{obj: obj, pos: as, name: spanMetricName(call)}
		spans = append(spans, sv)
		byObj[obj] = sv
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2: classify every use of each span variable. This walk does
	// descend into nested function literals: a span captured by a closure
	// has a lifetime the closure controls, so it is treated as escaping.
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		sv, ok := byObj[obj]
		if !ok {
			return true
		}
		for _, anc := range stack {
			if _, isLit := anc.(*ast.FuncLit); isLit {
				sv.escapes = true
				return true
			}
		}
		// A reassignment target (sp = r.StartSpan(...)) is neutral.
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == id {
					return true
				}
			}
		}
		// Walk up: id -> SelectorExpr -> CallExpr -> (DeferStmt | ExprStmt).
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == id {
				switch sel.Sel.Name {
				case "End":
					if call := parentCall(stack, sel); call != nil {
						if _, isDefer := stack[len(stack)-3].(*ast.DeferStmt); isDefer {
							sv.deferred = true
						} else {
							sv.plainEnd = true
						}
						return true
					}
				case "Child", "Name", "Parent":
					return true // neutral uses
				}
			}
		}
		// Any other use (return value, call argument, struct field, send,
		// reassignment source) hands the span to someone else.
		sv.escapes = true
		return true
	})

	for _, sv := range spans {
		if sv.deferred || sv.escapes {
			continue
		}
		label := ""
		if sv.name != "" {
			label = " " + sv.name
		}
		if sv.plainEnd {
			pass.Reportf(sv.pos.Pos(),
				"span%s has a non-deferred End(); early returns leak it — use defer, or wrap loop bodies in a func literal", label)
		} else {
			pass.Reportf(sv.pos.Pos(), "span%s is never ended; add defer .End()", label)
		}
	}
}

// walkScope walks body without descending into nested function literals.
func walkScope(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node)) {
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n, stack)
		return true
	})
}

// parentCall returns the CallExpr directly wrapping sel, given the stack
// below sel's ident (stack[len-1] == sel's parent's child...). It checks
// stack[len-2] is a CallExpr whose Fun is sel.
func parentCall(stack []ast.Node, sel *ast.SelectorExpr) *ast.CallExpr {
	if len(stack) < 3 {
		return nil
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != sel {
		return nil
	}
	return call
}

// isSpanCall reports whether call is StartSpan(...) or Child(...)
// returning a *Span (matched by type name, so the analyzer works on any
// package that follows the telemetry shape, including test fixtures).
func isSpanCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "StartSpan" && sel.Sel.Name != "Child") {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

func spanCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "StartSpan"
}

// spanMetricName returns the quoted literal metric name, if the first
// argument is a string literal.
func spanMetricName(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		return lit.Value
	}
	return ""
}
