package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfClean loads the whole module and runs the full suite: the tree
// must stay ethlint-clean. This is the same gate scripts/check.sh runs,
// wired into `go test` so a plain test run catches regressions too, and
// it doubles as the loader's integration test (every package in the
// module parses and type-checks through the stdlib-only importer).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d packages, expected the full module", len(pkgs))
	}
	res := Run(pkgs, All())
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if res.Suppressed == 0 {
		t.Error("expected the tree's //lint:ignore directives to be counted")
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// TestDirectives exercises the directive machinery itself: a reasonless
// directive is malformed (and does not suppress), an unknown analyzer
// name is a finding, and a valid directive only silences the analyzer it
// names.
func TestDirectives(t *testing.T) {
	src := `package fix

func eq(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

func eq2(a, b float64) bool {
	//lint:ignore nosuchanalyzer some reason
	return a == b
}

func eq3(a, b float64) bool {
	//lint:ignore spanend wrong analyzer named
	return a == b
}
`
	pkg := typeCheckFixture(t, "example.com/internal/geom", src)
	res := Run([]*Package{pkg}, []*Analyzer{FloatEq})
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0 (no directive names floateq with a reason)", res.Suppressed)
	}
	var gotMalformed, gotUnknown int
	var floatDiags int
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "malformed"):
			gotMalformed++
		case d.Analyzer == "directive" && strings.Contains(d.Message, "unknown analyzer"):
			gotUnknown++
		case d.Analyzer == "floateq":
			floatDiags++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if gotMalformed != 1 || gotUnknown != 1 || floatDiags != 3 {
		t.Errorf("got malformed=%d unknown=%d floateq=%d, want 1/1/3 in:\n%v",
			gotMalformed, gotUnknown, floatDiags, res.Diagnostics)
	}
}
