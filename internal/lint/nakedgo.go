package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NakedGo enforces goroutine hygiene in internal packages: a `go func`
// must either contain a deferred recover (so a panic in a worker cannot
// tear down the whole harness mid-sweep) or visibly forward its errors to
// the launching side — by sending on a channel whose payload carries an
// error, or by assigning into an error variable or slice element captured
// from the caller. A goroutine that does neither turns any failure into a
// silent wrong measurement or a process crash, which is exactly what an
// in-situ faithfulness harness cannot afford.
//
// The check is shape-based: it looks for evidence of a forwarding path,
// not proof that every error reaches it. Goroutines that are genuinely
// infallible can carry //lint:ignore nakedgo <reason>.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "goroutines in internal/ must recover panics or forward errors",
	Run:  runNakedGo,
}

func runNakedGo(pass *Pass) {
	if !isInternalPkg(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "go statement launches a named function; wrap it in a literal that recovers or forwards its error")
				return true
			}
			if !recoversOrForwards(pass, lit.Body) {
				pass.Reportf(g.Pos(), "goroutine neither recovers panics nor forwards errors to its launcher")
			}
			return true
		})
	}
}

func isInternalPkg(path string) bool {
	return strings.Contains(path, "/internal/")
}

// recoversOrForwards scans a goroutine body for (a) a deferred call whose
// function contains recover(), (b) a channel send whose payload is or
// contains an error, or (c) an assignment whose target has type error.
func recoversOrForwards(pass *Pass, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if callsRecover(pass, st.Call) {
				ok = true
				return false
			}
		case *ast.SendStmt:
			if tv, has := pass.Info.Types[st.Value]; has && carriesError(tv.Type) {
				ok = true
				return false
			}
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
					continue
				}
				if tv, has := pass.Info.Types[lhs]; has && implementsError(tv.Type) {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// callsRecover reports whether the deferred call is a function literal,
// same-package function, or same-package method whose body calls
// recover(). A bare `defer recover()` deliberately does not count: the
// spec makes it a no-op (recover must be called by the deferred function,
// not be it), so accepting it would bless the exact bug this check exists
// to catch.
func callsRecover(pass *Pass, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	switch fn := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	case *ast.Ident:
		// Deferred named helper: find its declaration in this package.
		if obj, ok := pass.Info.Uses[fn].(*types.Func); ok {
			body = funcBody(pass, obj)
		}
	case *ast.SelectorExpr:
		// Deferred method call (defer pb.capture()): resolve the method
		// and look for recover in its body, if declared in this package.
		if obj, ok := pass.Info.Uses[fn.Sel].(*types.Func); ok {
			body = funcBody(pass, obj)
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isRecoverIdent(pass, c.Fun) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isRecoverIdent(pass *Pass, fun ast.Expr) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// funcBody finds the body of a package-level function declared in this
// package, or nil.
func funcBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// carriesError reports whether t is an error or a struct with at least
// one field that is an error (the simOut{bytes, err} pattern).
func carriesError(t types.Type) bool {
	if implementsError(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if implementsError(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
