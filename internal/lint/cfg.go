package lint

// Control-flow graphs for flow-sensitive analyzers. The builder turns one
// function body into basic blocks connected by edges that model Go's
// structured control flow — if/for/range/switch/select, labeled break and
// continue, goto, fallthrough — plus two distinguished exits: Exit for
// normal returns (and falling off the end of the body) and Panic for
// explicit panic statements. Deferred calls are collected separately:
// they run on *every* exit path, so analyzers treat a release or unlock
// inside a defer as covering returns and panics alike.
//
// The graph is intraprocedural and syntactic: statements are stored whole
// (a block's Nodes are the statements and control expressions it
// executes, in order), and nested function literals are never traversed —
// each literal gets its own CFG. Analyzers walking block nodes should use
// inspectShallow so a closure's body does not bleed into the enclosing
// function's flow.

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"strings"
)

// Block is one basic block: a maximal run of straight-line statements.
type Block struct {
	// Index is the block's creation order, unique within its CFG.
	Index int
	// Label names the block's role for dumps: "entry", "exit", "panic",
	// "for.head", "case", ...
	Label string
	// Nodes are the statements and control expressions executed in this
	// block, in source order. Control expressions (an if condition, a
	// switch tag, a range operand) appear as bare ast.Expr nodes.
	Nodes []ast.Node
	// Succs and Preds are the flow edges.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Name is a display name for dumps ("directSend", "func literal").
	Name string
	// Entry is the unique entry block (empty; its successor is the first
	// body block).
	Entry *Block
	// Exit collects every normal exit: return statements and falling off
	// the end of the body.
	Exit *Block
	// Panic collects explicit panic(...) exits. Deferred calls still run
	// on these paths; analyzers that only care about normal completion
	// check liveness at Exit and leave Panic alone.
	Panic *Block
	// Blocks lists every block in creation order (Entry first).
	Blocks []*Block
	// Defers lists the defer statements encountered anywhere in the body,
	// in source order. They execute on every path that leaves the
	// function, in reverse order.
	Defers []*ast.DeferStmt

	loopHead map[ast.Stmt]*Block // ForStmt/RangeStmt -> head block
}

// NewCFG builds the graph for fn, which must be an *ast.FuncDecl with a
// body or an *ast.FuncLit. Returns nil for body-less declarations.
func NewCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	name := "func literal"
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if fn.Body == nil {
			return nil
		}
		body = fn.Body
		name = fn.Name.Name
	case *ast.FuncLit:
		body = fn.Body
	default:
		return nil
	}
	b := &cfgBuilder{
		cfg:    &CFG{Name: name, loopHead: make(map[ast.Stmt]*Block)},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.Panic = b.newBlock("panic")
	first := b.newBlock("body")
	b.edge(b.cfg.Entry, first)
	b.start(first)
	b.stmtList(body.List)
	if !b.terminated {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// HasBackEdge reports whether the loop statement (ForStmt or RangeStmt)
// can actually iterate: some block reachable from the loop's head flows
// back into it. A `for { ...; return x }` whose body leaves the function
// on every path has no back edge and is not really a loop.
func (c *CFG) HasBackEdge(loop ast.Stmt) bool {
	head, ok := c.loopHead[loop]
	if !ok {
		return false
	}
	// Reachability from head, then check whether any of head's preds is in
	// that set.
	seen := make(map[*Block]bool)
	stack := []*Block{head}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	for _, p := range head.Preds {
		if seen[p] {
			return true
		}
	}
	return false
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the iteration order under which a forward dataflow fixpoint
// converges fastest.
func (c *CFG) ReversePostorder() []*Block {
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dump writes a human-readable rendering of the graph, one block per
// line, for `ethlint -cfgdump` and the builder's own tests.
func (c *CFG) Dump(w io.Writer, fset *token.FileSet) {
	fmt.Fprintf(w, "cfg %s: %d blocks, %d defers\n", c.Name, len(c.Blocks), len(c.Defers))
	for _, b := range c.Blocks {
		var succs []string
		for _, s := range b.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.Index))
		}
		pos := ""
		if len(b.Nodes) > 0 && fset != nil {
			p := fset.Position(b.Nodes[0].Pos())
			pos = fmt.Sprintf(" @%d", p.Line)
		}
		fmt.Fprintf(w, "  b%d(%s)%s: %d nodes -> [%s]\n",
			b.Index, b.Label, pos, len(b.Nodes), strings.Join(succs, " "))
	}
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block
	terminated bool

	// breaks/continues are target stacks; an empty label matches the
	// innermost enclosing construct, a named label only its loop/switch.
	breaks    []branchTarget
	continues []branchTarget
	// labels maps label names to their blocks, created on demand so
	// forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label wrapping the next loop/switch/select
	// statement, consumed when its targets are pushed.
	pendingLabel string
	// fellThrough is the block ending in a fallthrough statement, wired
	// to the next case clause by the switch builder.
	fellThrough *Block
}

type branchTarget struct {
	label string
	block *Block
}

func (b *cfgBuilder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Label: label}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// start makes blk the current block and marks it live.
func (b *cfgBuilder) start(blk *Block) {
	b.cur = blk
	b.terminated = false
}

// flowTo wires fallthrough flow from the current block to blk (unless the
// current block already terminated) and continues there.
func (b *cfgBuilder) flowTo(blk *Block) {
	if !b.terminated {
		b.edge(b.cur, blk)
	}
	b.start(blk)
}

// add appends a node to the current block, opening a fresh (unreachable)
// block for statements that follow a terminator.
func (b *cfgBuilder) add(n ast.Node) {
	if b.terminated {
		b.start(b.newBlock("dead"))
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findBreak resolves a break target; label "" means innermost.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// takeLabel consumes the pending label for a loop/switch statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.flowTo(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminated = true

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			b.add(s)
			b.edge(b.cur, b.cfg.Panic)
			b.terminated = true
			return
		}
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.newBlock("label." + name)
	b.labels[name] = lb
	return lb
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.edge(b.cur, t)
		}
		b.terminated = true
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.edge(b.cur, t)
		}
		b.terminated = true
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
		b.terminated = true
	case token.FALLTHROUGH:
		// Wired to the next case clause by switchStmt.
		b.fellThrough = b.cur
		b.terminated = true
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	condLive := !b.terminated

	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	if condLive {
		b.edge(cond, then)
	}
	b.start(then)
	b.stmtList(s.Body.List)
	b.flowToUnlessDead(after)

	if s.Else != nil {
		els := b.newBlock("if.else")
		if condLive {
			b.edge(cond, els)
		}
		b.start(els)
		b.stmt(s.Else)
		b.flowToUnlessDead(after)
	} else if condLive {
		b.edge(cond, after)
	}
	b.start(after)
}

// flowToUnlessDead wires the current block to blk if still live, without
// switching to blk (used to join branches).
func (b *cfgBuilder) flowToUnlessDead(blk *Block) {
	if !b.terminated {
		b.edge(b.cur, blk)
	}
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.flowTo(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	b.cfg.loopHead[s] = head

	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTarget = post
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, contTarget})
	b.start(body)
	b.stmtList(s.Body.List)
	if post != nil {
		b.flowToUnlessDead(post)
		b.start(post)
		b.stmt(s.Post)
		b.flowToUnlessDead(head)
		b.terminated = true
	} else {
		b.flowToUnlessDead(head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.start(after)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.flowTo(head)
	b.add(s.X)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(head, body)
	b.edge(head, after)
	b.cfg.loopHead[s] = head

	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, head})
	b.start(body)
	b.stmtList(s.Body.List)
	b.flowToUnlessDead(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.start(after)
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	entry := b.cur
	entryLive := !b.terminated
	after := b.newBlock("switch.after")
	b.breaks = append(b.breaks, branchTarget{label, after})

	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		cb := b.newBlock("case")
		if entryLive {
			b.edge(entry, cb)
		}
		if b.fellThrough != nil {
			b.edge(b.fellThrough, cb)
			b.fellThrough = nil
		}
		if clause.List == nil {
			hasDefault = true
		}
		b.start(cb)
		for _, e := range clause.List {
			b.add(e)
		}
		b.stmtList(clause.Body)
		b.flowToUnlessDead(after)
	}
	b.fellThrough = nil
	if !hasDefault && entryLive {
		b.edge(entry, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.start(after)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	entry := b.cur
	entryLive := !b.terminated
	after := b.newBlock("typeswitch.after")
	b.breaks = append(b.breaks, branchTarget{label, after})

	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		cb := b.newBlock("case")
		if entryLive {
			b.edge(entry, cb)
		}
		if clause.List == nil {
			hasDefault = true
		}
		b.start(cb)
		b.stmtList(clause.Body)
		b.flowToUnlessDead(after)
	}
	if !hasDefault && entryLive {
		b.edge(entry, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.start(after)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	entry := b.cur
	entryLive := !b.terminated
	after := b.newBlock("select.after")
	b.breaks = append(b.breaks, branchTarget{label, after})

	// A select with no cases blocks forever: no edges out at all.
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CommClause)
		cb := b.newBlock("comm")
		if entryLive {
			b.edge(entry, cb)
		}
		b.start(cb)
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmtList(clause.Body)
		b.flowToUnlessDead(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.start(after)
	if entryLive && len(s.Body.List) == 0 {
		b.terminated = true // select{} never proceeds
	}
}

// isPanicCall matches an explicit panic(...) call. The check is
// syntactic; shadowing the builtin hides the edge, which is acceptable
// for a lint-grade CFG.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// inspectShallow walks each of the node's subtrees like ast.Inspect but
// does not descend into nested function literals: a closure's body
// belongs to the closure's own CFG, not the enclosing function's flow.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
