package lint

import "testing"

const sentinelerrFixture = `package fix

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("fix: closed")
var ErrBadMagic = errors.New("fix: bad magic")
var errInternal = errors.New("fix: internal")

func bareReturn() error {
	return ErrClosed // want "returned bare"
}

func bareSecondResult() (int, error) {
	return 0, ErrBadMagic // want "returned bare"
}

func wrappedReturn() error {
	return fmt.Errorf("fix: stream torn down: %w", ErrClosed)
}

func leafInBody() error {
	return errors.New("fix: anonymous leaf") // want "package-level sentinel"
}

func leafInLiteral() error {
	f := func() error {
		return errors.New("fix: nested leaf") // want "package-level sentinel"
	}
	return f()
}

func unexportedSentinelOK() error {
	// Unexported sentinels follow the same naming but a bare return of a
	// lowercase one is its own package's business.
	return errInternal
}

func notASentinel() error {
	var ErrLocal error
	return ErrLocal
}

func deliberateProtocolSentinel() error {
	//lint:ignore sentinelerr identity is the protocol contract, like io.EOF
	return ErrClosed
}

func passThrough(err error) error {
	return err
}
`

// sentinelerrOutsideFixture proves the analyzer only polices internal
// packages: the same violations under a non-internal path are silent.
const sentinelerrOutsideFixture = `package fix

import "errors"

var ErrClosed = errors.New("fix: closed")

func bareReturn() error {
	return ErrClosed
}

func leafInBody() error {
	return errors.New("fix: anonymous leaf")
}
`

func TestSentinelErr(t *testing.T) {
	res := runFixture(t, SentinelErr, "example.com/mod/internal/fix", sentinelerrFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

func TestSentinelErrIgnoresNonInternal(t *testing.T) {
	res := runFixture(t, SentinelErr, "example.com/mod/fix", sentinelerrOutsideFixture)
	if len(res.Diagnostics) != 0 {
		t.Errorf("diagnostics outside internal/ = %v, want none", res.Diagnostics)
	}
}
