package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"testing"
)

// typeCheckFixture compiles src as a one-file package under pkgPath
// (stdlib imports only) and returns it ready for analysis.
func typeCheckFixture(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(pkgPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   []*ast.File{file},
		Types:   pkg,
		Info:    info,
	}
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// runFixture runs one analyzer over the fixture and checks its surviving
// diagnostics against the `// want "regexp"` comments in the source: every
// diagnostic must be expected on its line, and every expectation must be
// hit. Returns the Result for extra assertions (e.g. suppression counts).
//
// Every fixture is run twice: once plain and once with the dataflow
// engine's debug mode enabled (Options.CFGDump, the ethlint -cfgdump
// path). Dumping control-flow graphs is pure observation, so the two
// runs must produce identical diagnostics.
func runFixture(t *testing.T, a *Analyzer, pkgPath, src string) Result {
	t.Helper()
	pkg := typeCheckFixture(t, pkgPath, src)
	res := Run([]*Package{pkg}, []*Analyzer{a})

	var dump strings.Builder
	dumped := RunOpts([]*Package{pkg}, []*Analyzer{a}, Options{CFGDump: &dump})
	if len(dumped.Diagnostics) != len(res.Diagnostics) {
		t.Errorf("-cfgdump run diverged: %d diagnostics vs %d without dumping",
			len(dumped.Diagnostics), len(res.Diagnostics))
	} else {
		for i := range res.Diagnostics {
			if res.Diagnostics[i] != dumped.Diagnostics[i] {
				t.Errorf("-cfgdump run diverged at diagnostic %d: %v vs %v",
					i, dumped.Diagnostics[i], res.Diagnostics[i])
			}
		}
	}

	type want struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[int][]*want{}
	for i, line := range strings.Split(src, "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], &want{re: regexp.MustCompile(m[1])})
		}
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at line %d: [%s] %s", d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("line %d: expected diagnostic matching %q, got none", line, w.re)
			}
		}
	}
	return res
}
