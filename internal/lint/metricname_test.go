package lint

import "testing"

const metricnameFixture = `package fix

import "time"

type Registry struct{}

func (r *Registry) Counter(name string) *int       { return nil }
func (r *Registry) Gauge(name string) *int         { return nil }
func (r *Registry) Histogram(name string) *int     { return nil }
func (r *Registry) Span(name string) *int          { return nil }
func (r *Registry) StartSpan(name string) *int     { return nil }
func (r *Registry) ObserveSpan(name string, d time.Duration) {}

const stepSpan = "sim.generate"

type algo int

func (a algo) String() string { return "direct_send" }

func good(r *Registry, d time.Duration) {
	r.Counter("transport.bytes_sent")
	r.Gauge("queue_depth")
	r.Histogram("viz.render.raycast")
	r.Span("coupling.socket")
	r.StartSpan(stepSpan)
	r.ObserveSpan("viz.op.halos", d)
	r.Counter("a.b_2.c")
}

func badFormat(r *Registry) {
	r.Counter("Transport.Bytes")  // want "not dotted snake_case"
	r.Gauge("viz-render")         // want "not dotted snake_case"
	r.Histogram("viz..render")    // want "not dotted snake_case"
	r.StartSpan("2fast")          // want "not dotted snake_case"
	r.Span("trailing.")           // want "not dotted snake_case"
	r.Counter("")                 // want "not dotted snake_case"
}

func dynamic(r *Registry, alg algo, name string, d time.Duration) {
	r.ObserveSpan("compositing."+alg.String(), d) // want "dynamic metric name in ObserveSpan"
	r.Histogram("viz.render." + name)             // want "dynamic metric name in Histogram"
	r.Counter(name)                               // want "dynamic metric name in Counter"
	//lint:ignore metricname algorithm enum is a closed two-value domain
	r.StartSpan("compositing." + alg.String())
}

// Constant folding: concatenation of constants stays auditable.
func folded(r *Registry) {
	const prefix = "proxy."
	r.Counter(prefix + "steps")
}

// Other receivers named differently are not metric registries.
type client struct{}

func (c *client) Counter(name string) *int { return nil }

func notRegistry(c *client, name string) {
	c.Counter(name)
	c.Counter("Whatever-Goes")
}
`

func TestMetricName(t *testing.T) {
	res := runFixture(t, MetricName, "example.com/internal/proxy", metricnameFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}
