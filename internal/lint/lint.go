// Package lint is ETH's project-specific static-analysis suite. It loads
// every package in the module with the standard library's go/parser and
// go/types (no golang.org/x/tools dependency, matching the repo's
// zero-dependency go.mod) and runs a set of analyzers that machine-check
// the invariants the harness's measurements depend on: telemetry spans
// are ended on every path, errors wrap with %w across proxy/transport
// boundaries, mutex-guarded fields are only touched under their lock,
// goroutines either recover or forward their errors, and hot numeric
// packages never compare floats with ==.
//
// A finding can be suppressed with a directive on the offending line or
// the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; suppressed findings are counted and reported
// in the driver's summary line so silence is never free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the pass.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description shown by `ethlint -list`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags   *[]Diagnostic
	cfgs    map[ast.Node]*CFG
	cfgDump io.Writer
}

// CFGOf returns the control-flow graph for fn (an *ast.FuncDecl or
// *ast.FuncLit), building and caching it on first use. When the driver
// runs with -cfgdump, every graph built here is also written to the dump
// sink — the debug mode the fixture harness exercises to prove dumping
// never changes diagnostics.
func (p *Pass) CFGOf(fn ast.Node) *CFG {
	if c, ok := p.cfgs[fn]; ok {
		return c
	}
	c := NewCFG(fn)
	if p.cfgs == nil {
		p.cfgs = make(map[ast.Node]*CFG)
	}
	p.cfgs[fn] = c
	if c != nil && p.cfgDump != nil {
		pos := p.Fset.Position(fn.Pos())
		fmt.Fprintf(p.cfgDump, "%s:%d: [%s] ", pos.Filename, pos.Line, p.Analyzer.Name)
		c.Dump(p.cfgDump, p.Fset)
	}
	return c
}

// funcNodes calls fn for every function with a body in the pass's files:
// declarations and function literals alike. Each literal is its own
// analysis scope (its own CFG); analyzers that use inspectShallow over
// block nodes never see a nested literal's body twice.
func (p *Pass) funcNodes(fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n, n.Body)
				}
			case *ast.FuncLit:
				fn(n, n.Body)
			}
			return true
		})
	}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// Ignores is the number of well-formed //lint:ignore directives in
	// the analyzed packages — the suppression debt `-max-ignores` gates.
	Ignores int
	// IgnoreDirectives lists every well-formed directive with how many
	// findings it actually silenced in this run; a directive with zero
	// hits under the full suite is stale.
	IgnoreDirectives []IgnoreDirective
}

// IgnoreDirective is one //lint:ignore occurrence.
type IgnoreDirective struct {
	Pos       token.Position
	Analyzers []string
	Hits      int
}

// Options tune a Run.
type Options struct {
	// CFGDump, when non-nil, receives a textual dump of every CFG any
	// analyzer builds (driver flag -cfgdump). Dumping must never change
	// diagnostics; the fixture harness asserts this for every fixture.
	CFGDump io.Writer
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{SpanEnd, ErrWrap, GuardedField, NakedGo, FloatEq, HotAlloc, JournalEnd, SentinelErr, MetricName, PoolLeak, LockOrder, CtxGuard}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applies ignore
// directives, and returns surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	return RunOpts(pkgs, analyzers, Options{})
}

// RunOpts is Run with explicit Options.
func RunOpts(pkgs []*Package, analyzers []*Analyzer, opts Options) Result {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.PkgPath,
				Info:     pkg.Info,
				diags:    &raw,
				cfgDump:  opts.CFGDump,
			}
			a.Run(pass)
		}
	}

	// Collect ignore directives across every file of every package.
	ig := newIgnoreIndex()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ig.collectFile(pkg.Fset, f, &raw)
		}
	}

	res := Result{}
	for _, d := range raw {
		if ig.suppresses(d) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	res.Ignores = len(ig.dirs)
	for _, dir := range ig.dirs {
		res.IgnoreDirectives = append(res.IgnoreDirectives, *dir)
	}
	sort.Slice(res.IgnoreDirectives, func(i, j int) bool {
		a, b := res.IgnoreDirectives[i].Pos, res.IgnoreDirectives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return res.Diagnostics[i].Analyzer < res.Diagnostics[j].Analyzer
	})
	return res
}

// ignoreRe matches "lint:ignore <analyzer[,analyzer...]> <reason>".
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(?:\s+(.*))?$`)

type ignoreKey struct {
	file string
	line int
}

type ignoreIndex struct {
	// byLine maps file:line to the directives anchored there.
	byLine map[ignoreKey][]*IgnoreDirective
	// dirs lists every well-formed directive, for debt accounting and
	// the stale-suppression audit.
	dirs []*IgnoreDirective
}

func newIgnoreIndex() *ignoreIndex {
	return &ignoreIndex{byLine: make(map[ignoreKey][]*IgnoreDirective)}
}

// collectFile indexes every //lint:ignore directive in f. Malformed
// directives (missing analyzer, missing reason, unknown analyzer name)
// are themselves reported as findings so they cannot rot silently.
func (ig *ignoreIndex) collectFile(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := ignoreRe.FindStringSubmatch(strings.TrimSpace(text))
			if m == nil || strings.TrimSpace(m[2]) == "" {
				*diags = append(*diags, Diagnostic{
					Analyzer: "directive",
					Pos:      pos,
					Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			names := strings.Split(m[1], ",")
			dir := &IgnoreDirective{Pos: pos}
			for _, name := range names {
				if ByName(name) == nil {
					*diags = append(*diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown analyzer %q in //lint:ignore", name),
					})
					continue
				}
				dir.Analyzers = append(dir.Analyzers, name)
			}
			if len(dir.Analyzers) == 0 {
				continue
			}
			ig.dirs = append(ig.dirs, dir)
			k := ignoreKey{file: pos.Filename, line: pos.Line}
			ig.byLine[k] = append(ig.byLine[k], dir)
		}
	}
}

// suppresses reports whether d is covered by a directive on its own line
// or the line directly above it.
func (ig *ignoreIndex) suppresses(d Diagnostic) bool {
	if d.Analyzer == "directive" {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range ig.byLine[ignoreKey{file: d.Pos.Filename, line: line}] {
			for _, name := range dir.Analyzers {
				if name == d.Analyzer {
					dir.Hits++
					return true
				}
			}
		}
	}
	return false
}

// walkStack traverses root depth-first, calling fn with each node and its
// ancestor stack (stack[len-1] is the node's parent). Returning false
// skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	v := &stackVisitor{fn: fn}
	ast.Walk(v, root)
}

type stackVisitor struct {
	stack []ast.Node
	fn    func(ast.Node, []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if !v.fn(n, v.stack) {
		return nil
	}
	v.stack = append(v.stack, n)
	return v
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements error.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// enclosingFunc returns the innermost FuncDecl in the stack, or, when the
// node sits in a package-level func literal (var initializer), the
// outermost FuncLit. Returns the function's body and display name.
func enclosingFunc(stack []ast.Node) (body *ast.BlockStmt, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Body, fd.Name.Name
		}
	}
	for i := 0; i < len(stack); i++ {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl.Body, "func literal"
		}
	}
	return nil, ""
}
