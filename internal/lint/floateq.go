package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq bans == and != on floating-point operands in the numeric hot
// packages (geom, raster, compositing, rt), where accumulated rounding
// makes exact comparison a latent correctness bug: a contour vertex that
// "equals" an isovalue on one rank and not another desynchronizes the
// composited image. Use an epsilon comparison, or carry
// //lint:ignore floateq <reason> for genuine exact sentinels (an
// uninitialized-slot marker, a divide-by-zero guard on untouched input).
//
// The NaN self-test idiom `x != x` is recognized and allowed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floats in geom, raster, compositing, rt",
	Run:  runFloatEq,
}

// floatEqPkgs are the package base names the check applies to.
var floatEqPkgs = map[string]bool{
	"geom": true, "raster": true, "compositing": true, "rt": true,
}

func runFloatEq(pass *Pass) {
	if !floatEqPkgs[baseName(pass.PkgPath)] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
				return true // x != x is the NaN check
			}
			pass.Reportf(be.Pos(), "floating-point %s comparison; use an epsilon (rounding makes exact equality rank-dependent)", be.Op)
			return true
		})
	}
}

func baseName(pkgPath string) string {
	for i := len(pkgPath) - 1; i >= 0; i-- {
		if pkgPath[i] == '/' {
			return pkgPath[i+1:]
		}
	}
	return pkgPath
}

// isFloat reports whether the expression's core type is float32/float64.
func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether both operands are the same plain identifier.
func sameIdent(a, b ast.Expr) bool {
	ia, ok := unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	ib, ok := unparen(b).(*ast.Ident)
	return ok && ia.Name == ib.Name
}
