package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// JournalEnd enforces journal-event completeness: a function that emits a
// phase-start event (an Event whose Type, or leading Detail token, ends
// in "_start") must emit the matching "_end" event somewhere in the same
// function — including inside deferred closures, the idiomatic place for
// it. A start without an end produces journals where phases never close,
// which breaks duration accounting (journal.Breakdown) and any replay
// tooling that pairs the two; the bug is invisible at runtime because
// Emit happily records half a story. Functions that intentionally split
// a phase across call boundaries should carry
// //lint:ignore journalend <reason>.
var JournalEnd = &Analyzer{
	Name: "journalend",
	Doc:  "journal phase-start events must have a matching end event in the same function",
	Run:  runJournalEnd,
}

func runJournalEnd(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					journalEndScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				journalEndScope(pass, fn.Body)
			}
			return true
		})
	}
}

// journalEndScope checks one function body. Starts are collected from the
// body itself (a nested function literal is its own pairing domain, and
// is visited separately by the outer Inspect); ends are accepted from
// anywhere inside the body including nested literals, because the
// matching end commonly lives in a deferred closure.
func journalEndScope(pass *Pass, body *ast.BlockStmt) {
	type startEvent struct {
		token string
		pos   ast.Node
	}
	var starts []startEvent
	walkScope(body, func(n ast.Node, stack []ast.Node) {
		if tok, ok := journalEventToken(pass, n); ok && strings.HasSuffix(tok, "_start") {
			starts = append(starts, startEvent{token: tok, pos: n})
		}
	})
	if len(starts) == 0 {
		return
	}
	ends := map[string]bool{}
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if tok, ok := journalEventToken(pass, n); ok && strings.HasSuffix(tok, "_end") {
			ends[strings.TrimSuffix(tok, "_end")] = true
		}
		return true
	})
	for _, s := range starts {
		base := strings.TrimSuffix(s.token, "_start")
		if !ends[base] {
			pass.Reportf(s.pos.Pos(),
				"journal event %q has no matching %q emitted in this function", s.token, base+"_end")
		}
	}
}

// journalEventToken extracts the phase token of a journal emission: n
// must be a call to a method named Emit on a receiver of a type named
// Writer, with an Event composite literal argument. The token is the
// Event's constant Type string when it carries a _start/_end suffix,
// otherwise the first word of a constant (or constant-format Sprintf)
// Detail string — the "pair_start mode=…" convention used with
// TypePhase events.
func journalEventToken(pass *Pass, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return "", false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || !isNamedType(tv.Type, "Writer") {
		return "", false
	}
	lit := compositeLit(call.Args[0])
	if lit == nil {
		return "", false
	}
	tvLit, ok := pass.Info.Types[lit]
	if !ok || !isNamedType(tvLit.Type, "Event") {
		return "", false
	}
	var typeTok, detailTok string
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Type":
			if s, ok := stringLiteral(pass, kv.Value); ok {
				typeTok = s
			}
		case "Detail":
			if s, ok := detailString(pass, kv.Value); ok {
				detailTok, _, _ = strings.Cut(s, " ")
			}
		}
	}
	if strings.HasSuffix(typeTok, "_start") || strings.HasSuffix(typeTok, "_end") {
		return typeTok, true
	}
	if strings.HasSuffix(detailTok, "_start") || strings.HasSuffix(detailTok, "_end") {
		return detailTok, true
	}
	return "", false
}

// compositeLit unwraps expr to a composite literal, looking through a
// leading & operator.
func compositeLit(expr ast.Expr) *ast.CompositeLit {
	if u, ok := expr.(*ast.UnaryExpr); ok {
		expr = u.X
	}
	lit, _ := expr.(*ast.CompositeLit)
	return lit
}

// detailString resolves a Detail value to a string prefix worth
// tokenizing: a constant string, or the constant format string of an
// fmt.Sprintf call (whose verbs can only appear after the first token of
// the conventions this analyzer matches).
func detailString(pass *Pass, expr ast.Expr) (string, bool) {
	if s, ok := stringLiteral(pass, expr); ok {
		return s, true
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "fmt.Sprintf" {
		return "", false
	}
	return stringLiteral(pass, call.Args[0])
}

// isNamedType reports whether t (or its pointee) is a named type with the
// given name, matching by shape so fixtures and any journal-like package
// are covered.
func isNamedType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}
