package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects inconsistent mutex acquisition order — the classic
// AB/BA deadlock shape. For every function it solves a forward "held
// locks" dataflow over the CFG: a sync.Mutex / sync.RWMutex Lock or RLock
// site reached while another lock is held adds an edge held→acquired to a
// package-level acquisition-order graph; Unlock/RUnlock removes the lock
// from the held set on that path (a deferred Unlock holds to function
// exit, which is exactly the window other locks are acquired in). A cycle
// in the package graph means two call paths take the same pair of locks
// in opposite orders, and every acquisition completing a cycle is
// reported.
//
// Lock identity is structural so the graph spans functions: a field
// selector (s.mu) keys on the receiver's named type and field, a
// package-level mutex on its variable name, and anything else on the
// enclosing function plus expression text (still catches AB/BA inside
// one function).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be acquired in a consistent order across the package",
	Run:  runLockOrder,
}

// lockEdge is one held→acquired observation.
type lockEdge struct{ from, to string }

func runLockOrder(pass *Pass) {
	edges := make(map[lockEdge]token.Pos) // first site observed per edge
	pass.funcNodes(func(fn ast.Node, body *ast.BlockStmt) {
		collectLockEdges(pass, fn, body, edges)
	})
	if len(edges) == 0 {
		return
	}

	// Adjacency + Tarjan SCC over the acquisition-order graph.
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	scc := stronglyConnected(adj)

	// Deterministic output: report cycle-completing edges sorted by
	// position.
	var cyclic []lockEdge
	for e := range edges {
		if e.from == e.to || (scc[e.from] != 0 && scc[e.from] == scc[e.to]) {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool { return edges[cyclic[i]] < edges[cyclic[j]] })
	for _, e := range cyclic {
		pass.Reportf(edges[e],
			"lock order cycle: %s acquired while %s is held, but another path acquires them in the opposite order",
			e.to, e.from)
	}
}

// collectLockEdges runs the held-locks dataflow over one function.
func collectLockEdges(pass *Pass, fn ast.Node, body *ast.BlockStmt, edges map[lockEdge]token.Pos) {
	// Universe of lock keys appearing in this function, in source order.
	var keys []string
	index := make(map[string]int)
	keyOf := func(k string) (int, bool) {
		if i, ok := index[k]; ok {
			return i, true
		}
		if len(keys) >= FactLimit {
			return 0, false
		}
		index[k] = len(keys)
		keys = append(keys, k)
		return len(keys) - 1, true
	}
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if k, op := lockCallKey(pass, fn, call); op != "" {
				keyOf(k)
			}
		}
		return true
	})
	if len(keys) < 2 {
		return // a single mutex cannot participate in an ordering edge here
	}

	cfg := pass.CFGOf(fn)
	if cfg == nil {
		return
	}
	// The transfer both updates the held set and records edges; recording
	// during the fixpoint would be order-dependent, so the flow is solved
	// first and edges are emitted in a second deterministic pass over the
	// converged block in-facts.
	transfer := func(record bool) func(b *Block, in Facts) Facts {
		return func(b *Block, in Facts) Facts {
			out := in
			for _, n := range b.Nodes {
				// A deferred Unlock runs at function exit: the lock stays
				// held for the rest of the flow, which is exactly the
				// window ordering edges are recorded in.
				if _, isDefer := n.(*ast.DeferStmt); isDefer {
					continue
				}
				inspectShallow(n, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					k, op := lockCallKey(pass, fn, call)
					if op == "" {
						return true
					}
					i, ok := keyOf(k)
					if !ok {
						return true
					}
					switch op {
					case "lock":
						if record {
							for j := 0; j < len(keys); j++ {
								if j != i && out.Has(j) {
									e := lockEdge{from: keys[j], to: keys[i]}
									if _, seen := edges[e]; !seen {
										edges[e] = call.Pos()
									}
								}
							}
						}
						out = out.Add(i)
					case "unlock":
						out = out.Del(i)
					}
					return true
				})
			}
			return out
		}
	}
	flow := ForwardFlow(cfg, FlowProblem[Facts]{
		Init:     0,
		Join:     Facts.Union,
		Transfer: transfer(false),
	}, 0)
	if !flow.Converged {
		return
	}
	rec := transfer(true)
	for _, b := range cfg.ReversePostorder() {
		in, ok := flow.In[b]
		if !ok && b != cfg.Entry {
			continue
		}
		rec(b, in)
	}
}

// lockCallKey classifies call as a mutex operation. op is "lock",
// "unlock", or "" for not-a-mutex-call; key identifies the mutex.
func lockCallKey(pass *Pass, fn ast.Node, call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	if !isSyncMutex(exprType(pass, sel.X)) {
		return "", ""
	}
	return lockIdent(pass, fn, sel.X), op
}

// exprType resolves an expression's type; plain identifiers are not
// recorded in Info.Types, so they go through Uses.
func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isSyncMutex reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockIdent derives the structural identity of the locked expression.
func lockIdent(pass *Pass, fn ast.Node, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// recv.mu — key on the receiver's named type + field so the same
		// field locked in different methods is one node in the graph.
		if tv, ok := pass.Info.Types[x.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return "var " + obj.Name() // package-level mutex
			}
			// Function-local: scope the key to this function so unrelated
			// locals in other functions do not collide.
			return funcDisplayName(fn) + "." + obj.Name()
		}
	}
	return funcDisplayName(fn) + "." + exprText(x)
}

func funcDisplayName(fn ast.Node) string {
	if fd, ok := fn.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return fmt.Sprintf("lit@%d", fn.Pos())
}

// exprText renders a fallback identity for unusual lock expressions.
func exprText(x ast.Expr) string {
	var sb strings.Builder
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			sb.WriteString(id.Name)
			sb.WriteByte('.')
		}
		return true
	})
	return strings.TrimSuffix(sb.String(), ".")
}

// stronglyConnected returns a component id per node (Tarjan); nodes in a
// multi-node component share a nonzero id, trivial components get 0.
func stronglyConnected(adj map[string][]string) map[string]int {
	var nodes []string
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	idx := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 0

	var strong func(v string)
	strong = func(v string) {
		idx[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		ws := append([]string(nil), adj[v]...)
		sort.Strings(ws)
		for _, w := range ws {
			if idx[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && idx[w] < low[v] {
				low[v] = idx[w]
			}
		}
		if low[v] == idx[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, n := range nodes {
		if idx[n] == 0 {
			strong(n)
		}
	}
	return comp
}
