package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses src (a full file), builds the CFG of the function
// named fn, and returns it with the file for node lookups.
func buildTestCFG(t *testing.T, src, fn string) (*CFG, *ast.File, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			c := NewCFG(fd)
			if c == nil {
				t.Fatalf("NewCFG(%s) = nil", fn)
			}
			return c, file, fset
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil, nil, nil
}

// reachable reports whether to is reachable from from via Succs.
func reachable(from, to *Block) bool {
	seen := make(map[*Block]bool)
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// nthLoop returns the n-th (0-based) ForStmt or RangeStmt in the file, in
// source order.
func nthLoop(file *ast.File, n int) ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(file, func(nd ast.Node) bool {
		switch nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, nd.(ast.Stmt))
		}
		return true
	})
	if n < len(loops) {
		return loops[n]
	}
	return nil
}

func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		src  string
		fn   string
		// expectations
		exitReachable  bool
		panicReachable bool
		defers         int
		backEdges      []bool // per loop, in source order
	}{
		{
			name: "straight line",
			src: `package p
func f(a, b int) int {
	c := a + b
	return c
}`,
			fn:            "f",
			exitReachable: true,
		},
		{
			name: "if else join",
			src: `package p
func f(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}`,
			fn:            "f",
			exitReachable: true,
		},
		{
			name: "infinite loop never exits",
			src: `package p
func f() {
	n := 0
	for {
		n++
	}
}`,
			fn:            "f",
			exitReachable: false,
			backEdges:     []bool{true},
		},
		{
			name: "infinite loop with break exits",
			src: `package p
func f() int {
	n := 0
	for {
		n++
		if n > 10 {
			break
		}
	}
	return n
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{true},
		},
		{
			name: "loop body that always returns has no back edge",
			src: `package p
func f() int {
	for {
		return 1
	}
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{false},
		},
		{
			name: "labeled break leaves the outer loop",
			src: `package p
func f(grid [][]int) int {
	sum := 0
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			sum += v
		}
	}
	return sum
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{true, true},
		},
		{
			name: "labeled continue targets the outer loop head",
			src: `package p
func f(n int) int {
	total := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue outer
			}
			total++
		}
	}
	return total
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{true, true},
		},
		{
			name: "defer with recover is collected and panic exit is modeled",
			src: `package p
func f(bad bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	if bad {
		panic("boom")
	}
	return nil
}`,
			fn:             "f",
			exitReachable:  true,
			panicReachable: true,
			defers:         1,
		},
		{
			name: "switch fallthrough chains cases",
			src: `package p
func f(x int) int {
	n := 0
	switch x {
	case 0:
		n++
		fallthrough
	case 1:
		n += 10
	case 2:
		n += 100
	}
	return n
}`,
			fn:            "f",
			exitReachable: true,
		},
		{
			name: "switch without default can skip all cases",
			src: `package p
func f(x int) int {
	switch x {
	case 0:
		return 1
	case 1:
		return 2
	}
	return 0
}`,
			fn:            "f",
			exitReachable: true,
		},
		{
			name: "goto forms a loop",
			src: `package p
func f(n int) int {
	i := 0
again:
	i++
	if i < n {
		goto again
	}
	return i
}`,
			fn:            "f",
			exitReachable: true,
		},
		{
			name: "select with return in one comm clause",
			src: `package p
func f(a, b chan int) int {
	for {
		select {
		case v := <-a:
			return v
		case <-b:
		}
	}
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{true},
		},
		{
			name: "empty select blocks forever",
			src: `package p
func f() int {
	select {}
}`,
			fn:            "f",
			exitReachable: false,
		},
		{
			name: "while-shaped loop exits through its condition",
			src: `package p
func f(n int) int {
	for n > 0 {
		n--
	}
	return n
}`,
			fn:            "f",
			exitReachable: true,
			backEdges:     []bool{true},
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, file, fset := buildTestCFG(t, tt.src, tt.fn)
			if got := reachable(c.Entry, c.Exit); got != tt.exitReachable {
				var dump strings.Builder
				c.Dump(&dump, fset)
				t.Errorf("exit reachable = %v, want %v\n%s", got, tt.exitReachable, dump.String())
			}
			if got := reachable(c.Entry, c.Panic); got != tt.panicReachable {
				t.Errorf("panic reachable = %v, want %v", got, tt.panicReachable)
			}
			if len(c.Defers) != tt.defers {
				t.Errorf("defers = %d, want %d", len(c.Defers), tt.defers)
			}
			for i, want := range tt.backEdges {
				loop := nthLoop(file, i)
				if loop == nil {
					t.Fatalf("loop %d not found", i)
				}
				if got := c.HasBackEdge(loop); got != want {
					t.Errorf("loop %d back edge = %v, want %v", i, got, want)
				}
			}
			// Every block reachable from entry appears in the reverse
			// postorder, and the order starts at the entry.
			rpo := c.ReversePostorder()
			if len(rpo) == 0 || rpo[0] != c.Entry {
				t.Fatalf("reverse postorder does not start at entry")
			}
			seen := make(map[*Block]bool, len(rpo))
			for _, b := range rpo {
				seen[b] = true
			}
			for _, b := range c.Blocks {
				if reachable(c.Entry, b) && !seen[b] {
					t.Errorf("reachable block b%d(%s) missing from RPO", b.Index, b.Label)
				}
			}
		})
	}
}

// TestCFGFallthroughEdge pins the fallthrough edge precisely: the block
// ending in fallthrough must flow into the next case clause's block.
func TestCFGFallthroughEdge(t *testing.T) {
	src := `package p
func f(x int) int {
	n := 0
	switch x {
	case 0:
		n = 1
		fallthrough
	case 1:
		n += 10
	}
	return n
}`
	c, _, _ := buildTestCFG(t, src, "f")
	// Find the block containing the fallthrough branch statement.
	var ftBlock *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ftBlock = b
			}
		}
	}
	if ftBlock == nil {
		t.Fatal("no block holds the fallthrough statement")
	}
	// Its successor must be a case block that contains the n += 10
	// assignment, not the switch's after block.
	if len(ftBlock.Succs) != 1 {
		t.Fatalf("fallthrough block has %d successors, want 1", len(ftBlock.Succs))
	}
	succ := ftBlock.Succs[0]
	if succ.Label != "case" {
		t.Errorf("fallthrough flows to %q, want the next case block", succ.Label)
	}
}

// TestCFGDumpStable asserts Dump output is deterministic — the -cfgdump
// fixture-parity check depends on builds being reproducible.
func TestCFGDumpStable(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	var a, b strings.Builder
	c1, _, fset1 := buildTestCFG(t, src, "f")
	c1.Dump(&a, fset1)
	c2, _, fset2 := buildTestCFG(t, src, "f")
	c2.Dump(&b, fset2)
	if a.String() != b.String() {
		t.Errorf("dump not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "for.head") {
		t.Errorf("dump missing for.head block:\n%s", a.String())
	}
}
