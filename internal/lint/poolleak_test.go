package lint

import "testing"

// The fixture declares pool shapes matching internal/mempool's conventions
// (package-level Bytes/PutBytes and AcquireFrame*/ReleaseFrame, a generic
// SlicePool with Get/Put) so the analyzer is exercised without importing
// the real package.
const poolLeakFixture = `package fixture

import "errors"

func Bytes(n int) []byte { return make([]byte, n) }
func PutBytes(b []byte)  {}

type Frame struct{ W, H int }

func AcquireFrame(w, h int) *Frame          { return &Frame{w, h} }
func AcquireFrameUncleared(w, h int) *Frame { return &Frame{w, h} }
func ReleaseFrame(f *Frame)                 {}

type SlicePool[T any] struct{}

func (p *SlicePool[T]) Get(n int) []T { return make([]T, n) }
func (p *SlicePool[T]) Put(s []T)     {}

var pool SlicePool[int]

// Early error return skips the release: the PR 3 pool-ownership bug class.
func leakOnError(fail bool) error {
	buf := Bytes(64) // want "pooled buffer from Bytes is not released on every path"
	if fail {
		return errors.New("boom")
	}
	PutBytes(buf)
	return nil
}

// Released on both branches: correct on all paths.
func releasedOnAllPaths(fail bool) error {
	buf := Bytes(64)
	if fail {
		PutBytes(buf)
		return errors.New("boom")
	}
	PutBytes(buf)
	return nil
}

// A deferred release covers every exit, including panic unwinding.
func releasedByDefer(fail bool) error {
	buf := Bytes(64)
	defer PutBytes(buf)
	if fail {
		return errors.New("boom")
	}
	buf[0] = 1
	return nil
}

// A deferred closure releasing the buffer counts too.
func releasedByDeferClosure() {
	buf := Bytes(8)
	defer func() { PutBytes(buf) }()
	buf[0] = 1
}

// Returning the buffer transfers ownership on that path; the error path
// releases explicitly. No finding.
func returnedOwnership(fail bool) ([]byte, error) {
	buf := Bytes(64)
	if fail {
		PutBytes(buf)
		return nil, errors.New("boom")
	}
	return buf, nil
}

// The rt.scalarColors shape: success path returns the buffer, error path
// returns nil and leaks it.
func leakReturningNil(bad bool) ([]byte, error) {
	buf := Bytes(64) // want "not released on every path"
	if bad {
		return nil, errors.New("no field")
	}
	return buf, nil
}

// Explicit panic exits are exempt: panicking functions owe the pool
// nothing.
func panicPathExempt(bad bool) {
	buf := Bytes(8)
	if bad {
		panic("bad")
	}
	PutBytes(buf)
}

// SlicePool.Get / Put pairing, leaked on the early return.
func leakSlice(fail bool) error {
	s := pool.Get(10) // want "pooled buffer from SlicePool.Get"
	if fail {
		return errors.New("x")
	}
	pool.Put(s)
	return nil
}

// Frame acquisition leaked when the error path returns nil.
func leakFrame(fail bool) (*Frame, error) {
	f := AcquireFrameUncleared(4, 4) // want "pooled buffer from AcquireFrameUncleared"
	if fail {
		return nil, errors.New("copy failed")
	}
	return f, nil
}

// Released in a helper borrow? No: passing to a call is a borrow; the
// release before both exits keeps this clean.
func borrowedByCallee(fail bool) error {
	buf := Bytes(32)
	fill(buf)
	if fail {
		PutBytes(buf)
		return errors.New("late")
	}
	PutBytes(buf)
	return nil
}

func fill(b []byte) {}

// Storing into a struct transfers ownership; the new owner releases.
type holder struct{ b []byte }

func escapesToStruct(h *holder) {
	buf := Bytes(8)
	h.b = buf
}

// Discarding the acquisition outright.
func discarded() {
	_ = Bytes(8) // want "discarded"
}

// Acquire/release balanced inside a loop body.
func loopReleased(n int) {
	for i := 0; i < n; i++ {
		buf := Bytes(16)
		buf[0] = byte(i)
		PutBytes(buf)
	}
}

// A continue that skips the release leaks one iteration's buffer.
func loopLeakViaContinue(n int) {
	for i := 0; i < n; i++ {
		buf := Bytes(16) // want "not released on every path"
		if i%2 == 0 {
			continue
		}
		PutBytes(buf)
	}
}

// Capture by a read/index-only closure (the par.For shape) is a borrow,
// so the leak on the error return is still visible through it.
func leakWithWorkerClosure(bad bool) ([]byte, error) {
	buf := Bytes(64) // want "not released on every path"
	work(func(i int) { buf[i] = 0 })
	if bad {
		return nil, errors.New("no field")
	}
	return buf, nil
}

func work(f func(int)) { f(0) }

// Capture by a closure that stores the buffer elsewhere escapes: the
// closure owns its fate now.
var sink []byte

func escapesViaClosure() {
	buf := Bytes(8)
	work(func(i int) { sink = buf })
}
`

func TestPoolLeak(t *testing.T) {
	runFixture(t, PoolLeak, "fixture/poolleak", poolLeakFixture)
}

func TestPoolLeakSuppression(t *testing.T) {
	src := `package fixture

func Bytes(n int) []byte { return make([]byte, n) }
func PutBytes(b []byte)  {}

func intentional(fail bool) error {
	//lint:ignore poolleak the arena frees everything at step end
	buf := Bytes(64)
	buf[0] = 1
	return nil
}
`
	res := runFixture(t, PoolLeak, "fixture/poolleaksup", src)
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
	if res.Ignores != 1 {
		t.Errorf("Ignores = %d, want 1", res.Ignores)
	}
}
