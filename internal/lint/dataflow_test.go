package lint

import (
	"go/ast"
	"testing"
)

func TestFactsOps(t *testing.T) {
	var f Facts
	f = f.Add(0).Add(63)
	if !f.Has(0) || !f.Has(63) || f.Has(5) {
		t.Errorf("Facts membership wrong: %b", f)
	}
	f = f.Del(0)
	if f.Has(0) || !f.Has(63) {
		t.Errorf("Del broke membership: %b", f)
	}
	if got := Facts(0b0110).Union(0b1010); got != 0b1110 {
		t.Errorf("Union = %b, want 1110", got)
	}
}

// TestForwardFlowDiamond runs a gen-kill problem over an if/else diamond:
// a fact generated on only one branch must survive to the join (union)
// but a fact killed on both branches must not.
func TestForwardFlowDiamond(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`
	c, _, _ := buildTestCFG(t, src, "f")

	// Fact 0: "saw the then-branch assignment"; fact 1: "saw any assignment".
	flow := ForwardFlow(c, FlowProblem[Facts]{
		Init: 0,
		Join: Facts.Union,
		Transfer: func(b *Block, in Facts) Facts {
			out := in
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					out = out.Add(1)
					_ = as
					if b.Label == "if.then" {
						out = out.Add(0)
					}
				}
			}
			return out
		},
	}, 0)
	if !flow.Converged {
		t.Fatal("diamond did not converge")
	}
	exitIn := flow.In[c.Exit]
	if !exitIn.Has(0) {
		t.Errorf("then-branch fact did not reach exit under union join: %b", exitIn)
	}
	if !exitIn.Has(1) {
		t.Errorf("always-generated fact missing at exit: %b", exitIn)
	}
}

// TestForwardFlowLoopFixpoint asserts a monotone problem over a loop
// converges and the loop head's fact includes the back-edge contribution.
func TestForwardFlowLoopFixpoint(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	c, file, _ := buildTestCFG(t, src, "f")
	loop := nthLoop(file, 0)
	if !c.HasBackEdge(loop) {
		t.Fatal("counter loop should have a back edge")
	}

	// Generate fact 0 inside the loop body; under union join it must flow
	// around the back edge into the head's in-fact.
	flow := ForwardFlow(c, FlowProblem[Facts]{
		Init: 0,
		Join: Facts.Union,
		Transfer: func(b *Block, in Facts) Facts {
			if b.Label == "for.body" {
				return in.Add(0)
			}
			return in
		},
	}, 0)
	if !flow.Converged {
		t.Fatal("loop did not converge")
	}
	if !flow.In[c.Exit].Has(0) {
		t.Errorf("loop-generated fact did not reach exit")
	}
	for _, b := range c.Blocks {
		if b.Label == "for.head" {
			if !flow.In[b].Has(0) {
				t.Errorf("back-edge fact missing at loop head")
			}
		}
	}
}

// TestForwardFlowIterationCap: a deliberately non-monotone (oscillating)
// transfer must be cut off by the bounded iteration cap with Converged
// reported false — a buggy analyzer degrades to silence, not a hang.
func TestForwardFlowIterationCap(t *testing.T) {
	src := `package p
func f() {
	n := 0
	for {
		n++
	}
}`
	c, _, _ := buildTestCFG(t, src, "f")
	flip := Facts(0)
	flow := ForwardFlow(c, FlowProblem[Facts]{
		Init: 0,
		Join: Facts.Union,
		Transfer: func(b *Block, in Facts) Facts {
			flip ^= 1 // oscillates: never stabilizes
			return flip
		},
	}, 7)
	if flow.Converged {
		t.Fatal("oscillating transfer reported convergence")
	}
	if flow.Iters != 7 {
		t.Errorf("Iters = %d, want the cap 7", flow.Iters)
	}
}

// TestForwardFlowInfiniteLoopTerminates: the engine itself must terminate
// on a CFG whose exit is unreachable.
func TestForwardFlowInfiniteLoopTerminates(t *testing.T) {
	src := `package p
func f() {
	for {
	}
}`
	c, _, _ := buildTestCFG(t, src, "f")
	flow := ForwardFlow(c, FlowProblem[Facts]{
		Init:     0,
		Join:     Facts.Union,
		Transfer: func(b *Block, in Facts) Facts { return in.Add(0) },
	}, 0)
	if !flow.Converged {
		t.Fatal("monotone problem on infinite loop did not converge")
	}
	if _, ok := flow.In[c.Exit]; ok {
		t.Errorf("unreachable exit block acquired an in-fact")
	}
}
