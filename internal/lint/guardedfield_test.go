package lint

import "testing"

// The fixture mirrors the data-package bounds cache: a lazily computed
// field annotated `// guarded by <mu>`, read by every rank proxy
// concurrently. racyRead is the PR 1 race reduced to its essentials.
const guardedFixture = `package fix

import "sync"

type Cache struct {
	mu  sync.RWMutex
	val int  // guarded by mu
	set bool // guarded by mu
}

func (c *Cache) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.val
}

func (c *Cache) Set(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.val = v
	c.set = true
}

func (c *Cache) racyRead() bool {
	return c.set // want "without"
}

func (c *Cache) racyWrite(v int) {
	c.val = v // want "written.*without"
}

func (c *Cache) readLockedWrite(v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.val = v // want "written.*without"
}

func (c *Cache) valLocked() int { return c.val }

func (c *Cache) fastPath() bool {
	//lint:ignore guardedfield benign race accepted for the fast path
	return c.set
}

type Broken struct {
	val int // guarded by nosuch // want "does not exist"
}

func other(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.val++
}
`

func TestGuardedField(t *testing.T) {
	res := runFixture(t, GuardedField, "example.com/fix", guardedFixture)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}
