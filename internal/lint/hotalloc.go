package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc polices the per-pixel/per-sample inner loops of the rendering
// and sampling packages: at steady state those loops must not allocate,
// or the harness's own garbage perturbs the costs it exists to measure
// (and the zero-alloc regression tests fail). Inside any loop nested two
// or more deep it flags the three allocation shapes that creep in
// silently:
//
//   - make(...) — a fresh allocation per iteration,
//   - append(...) — may grow its backing array; hoist the capacity or
//     bin through pooled scratch,
//   - interface boxing — passing or assigning a concrete value where an
//     interface is expected heap-allocates the box (fmt helpers and
//     sort.Slice closures are the usual culprits).
//
// Deliberate cases (e.g. appends amortized by pooled capacity classes)
// carry //lint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/growing append/interface boxing in render and sampling hot loops",
	Run:  runHotAlloc,
}

// hotAllocPkgs are the packages whose nested loops are per-pixel or
// per-sample hot paths.
var hotAllocPkgs = []string{
	"/internal/raster",
	"/internal/rt",
	"/internal/sampling",
	"/internal/compositing",
}

// hotLoopDepth is how many enclosing loops make a statement "hot". Depth
// two captures per-pixel (y/x) and per-primitive-per-band shapes while
// leaving ordinary single-pass setup loops alone.
const hotLoopDepth = 2

func runHotAlloc(pass *Pass) {
	hot := false
	for _, suffix := range hotAllocPkgs {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			depth := 0
			for _, a := range stack {
				switch a.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					depth++
				}
			}
			if depth < hotLoopDepth {
				return true
			}
			switch node := n.(type) {
			case *ast.CallExpr:
				checkHotCall(pass, node)
			case *ast.AssignStmt:
				checkHotAssign(pass, node)
			}
			return true
		})
	}
}

// checkHotCall flags allocating builtins, conversions to interface types,
// and concrete arguments passed to interface parameters.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in hot loop allocates every iteration; hoist it or use pooled scratch")
			case "append":
				pass.Reportf(call.Pos(), "append in hot loop may grow its backing array; pre-size the slice or use pooled scratch")
			}
			return
		}
	}
	tv, ok := pass.Info.Types[fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion: boxing only when the target is an interface
		// and the operand is concrete.
		if isInterfaceType(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to %s in hot loop boxes its operand on the heap", tv.Type.String())
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterfaceType(pt) && isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxes into interface %s in hot loop", pt.String())
		}
	}
}

// checkHotAssign flags plain assignments that store a concrete value into
// an interface-typed location.
func checkHotAssign(pass *Pass, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break // N-to-1 assignment; conversion handled at the call
		}
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		ltv, lok := pass.Info.Types[lhs]
		if !lok || !isInterfaceType(ltv.Type) {
			continue
		}
		if isConcrete(pass, st.Rhs[i]) {
			pass.Reportf(st.Rhs[i].Pos(), "assignment boxes into interface %s in hot loop", ltv.Type.String())
		}
	}
}

// isInterfaceType reports whether t's underlying type is an interface.
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isConcrete reports whether expr has a concrete (boxable) type: not an
// interface already, and not untyped nil.
func isConcrete(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return !isInterfaceType(tv.Type)
}
