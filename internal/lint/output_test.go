package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleResult() Result {
	return Result{
		Diagnostics: []Diagnostic{
			{
				Analyzer: "poolleak",
				Pos:      token.Position{Filename: "/mod/internal/x/x.go", Line: 12, Column: 3},
				Message:  "pooled buffer acquired here is not released on every path",
			},
			{
				Analyzer: "lockorder",
				Pos:      token.Position{Filename: "/elsewhere/y.go", Line: 4, Column: 1},
				Message:  "lock order cycle",
			},
		},
		Suppressed: 2,
		Ignores:    5,
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleResult(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var got jsonResult
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got.Diagnostics) != 2 || got.Suppressed != 2 || got.Ignores != 5 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Diagnostics[0].File != "internal/x/x.go" {
		t.Errorf("in-module path not root-relative: %q", got.Diagnostics[0].File)
	}
	if got.Diagnostics[1].File != "/elsewhere/y.go" {
		t.Errorf("out-of-module path mangled: %q", got.Diagnostics[1].File)
	}
	if got.Diagnostics[0].Line != 12 || got.Diagnostics[0].Column != 3 {
		t.Errorf("position lost: %+v", got.Diagnostics[0])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Result{}, ""); err != nil {
		t.Fatal(err)
	}
	// diagnostics must be [] rather than null so consumers can iterate.
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty result should render an empty array:\n%s", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleResult(), All(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("wrong SARIF version marker: %s %s", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ethlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer that ran becomes a rule, plus the directive
	// pseudo-rule for malformed //lint:ignore lines.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if !ruleIDs[r0.RuleID] {
		t.Errorf("result rule %q not declared by the driver", r0.RuleID)
	}
	if r0.Level != "error" {
		t.Errorf("level = %q, want error", r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/x/x.go" {
		t.Errorf("URI not root-relative slash form: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region lost: %+v", loc.Region)
	}
}

func TestWriteSARIFEmptyResults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Result{}, nil, ""); err != nil {
		t.Fatal(err)
	}
	// results must be [] rather than null — GitHub's SARIF ingestion
	// rejects a null results array.
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run should render an empty results array:\n%s", buf.String())
	}
}
