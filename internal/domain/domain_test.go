package domain

import (
	"math/rand"
	"testing"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/compositing"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/render"
	"github.com/ascr-ecx/eth/internal/vec"
)

func testCloud(n int) *data.PointCloud {
	rng := rand.New(rand.NewSource(8))
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i)
		p.SetPos(i, vec.New(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		p.SetVel(i, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	p.SpeedField()
	return p
}

func testGrid(n int) *data.StructuredGrid {
	g := data.NewStructuredGrid(n, n, n)
	c := vec.Splat(float64(n-1) / 2)
	g.FillField("temperature", func(p vec.V3) float32 {
		return float32(1 / (1 + p.Sub(c).Len()))
	})
	return g
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(testCloud(10), 0); err == nil {
		t.Error("zero ranks accepted")
	}
	d, err := Decompose(testCloud(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks() != 4 {
		t.Errorf("ranks = %d", d.Ranks())
	}
}

// The central sort-last invariant: the composited multi-rank image equals
// (approximately, for splats whose radius derives from local density) the
// single-rank image. For raycast spheres with a fixed radius it should be
// exact wherever depths differ meaningfully.
func TestMultiRankMatchesSingleRankRaycast(t *testing.T) {
	p := testCloud(3000)
	cam := camera.ForBounds(p.Bounds())
	opt := render.Options{Radius: 0.25}
	const w, h = 96, 96

	single, _, err := (&Decomposition{Pieces: []data.Dataset{p}, Whole: p}).
		RenderWhole(w, h, "raycast", &cam, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4, 7} {
		d, err := Decompose(p, ranks)
		if err != nil {
			t.Fatal(err)
		}
		multi, stats, err := d.Render(w, h, "raycast", &cam, opt, compositing.BinarySwap)
		if err != nil {
			t.Fatal(err)
		}
		rmse, err := fb.RMSE(single, multi)
		if err != nil {
			t.Fatal(err)
		}
		if rmse > 0.02 {
			t.Errorf("%d ranks: RMSE vs single = %v", ranks, rmse)
		}
		if len(stats.PerRank) != ranks {
			t.Errorf("stats ranks = %d", len(stats.PerRank))
		}
		if ranks > 1 && stats.Composite.BytesMoved == 0 {
			t.Error("no compositing accounted")
		}
	}
}

func TestMultiRankGridIsosurface(t *testing.T) {
	g := testGrid(24)
	cam := camera.ForBounds(g.Bounds())
	opt := render.Options{IsoValue: 0.12}
	const w, h = 96, 96
	d, err := Decompose(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, _, err := d.RenderWhole(w, h, "vtk-iso", &cam, opt)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := d.Render(w, h, "vtk-iso", &cam, opt, compositing.DirectSend)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := fb.RMSE(single, multi)
	if err != nil {
		t.Fatal(err)
	}
	// Slab partitions share boundary planes, so the surfaces must agree
	// closely (small differences from shading of duplicated boundary
	// triangles are acceptable).
	if rmse > 0.03 {
		t.Errorf("grid multi-rank RMSE = %v", rmse)
	}
}

func TestRenderStatsAggregation(t *testing.T) {
	p := testCloud(500)
	cam := camera.ForBounds(p.Bounds())
	d, _ := Decompose(p, 4)
	_, stats, err := d.Render(64, 64, "points", &cam, render.Options{}, compositing.DirectSend)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalPrimitives() == 0 {
		t.Error("no primitives recorded")
	}
	sum := 0
	for _, s := range stats.PerRank {
		sum += s.Primitives
	}
	if sum != stats.TotalPrimitives() {
		t.Error("TotalPrimitives mismatch")
	}
}

func TestRenderUnknownAlgorithm(t *testing.T) {
	p := testCloud(10)
	cam := camera.ForBounds(p.Bounds())
	d, _ := Decompose(p, 2)
	if _, _, err := d.Render(16, 16, "nope", &cam, render.Options{}, compositing.DirectSend); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := d.RenderWhole(16, 16, "nope", &cam, render.Options{}); err == nil {
		t.Error("unknown algorithm accepted in RenderWhole")
	}
}

func TestRenderKindMismatch(t *testing.T) {
	p := testCloud(10)
	cam := camera.ForBounds(p.Bounds())
	d, _ := Decompose(p, 2)
	if _, _, err := d.Render(16, 16, "vtk-iso", &cam, render.Options{}, compositing.DirectSend); err == nil {
		t.Error("grid algorithm on cloud pieces accepted")
	}
}
