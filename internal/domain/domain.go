// Package domain implements rank-parallel rendering: a dataset is
// decomposed into spatial pieces (one per rank, as a production MPI code
// would), every rank renders its piece with the same camera into its own
// framebuffer, and the partial images are depth-composited into the final
// frame. This is the real, executable counterpart of the cluster model's
// arithmetic — laptop-scale experiments run it to validate that sort-last
// rendering produces rank-count-independent images.
package domain

import (
	"fmt"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/compositing"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/render"
)

// Decomposition holds a dataset split across ranks.
type Decomposition struct {
	// Pieces are the per-rank datasets; Pieces[i] belongs to rank i.
	Pieces []data.Dataset
	// Whole is the undecomposed dataset (kept for bounds and reference
	// renders).
	Whole data.Dataset
}

// Decompose splits ds across the given number of ranks.
func Decompose(ds data.Dataset, ranks int) (*Decomposition, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("domain: rank count %d must be positive", ranks)
	}
	return &Decomposition{
		Pieces: ds.Partition(ranks),
		Whole:  ds,
	}, nil
}

// Ranks returns the number of ranks in the decomposition.
func (d *Decomposition) Ranks() int { return len(d.Pieces) }

// RenderStats aggregates per-rank render statistics.
type RenderStats struct {
	// PerRank holds each rank's renderer stats.
	PerRank []render.Stats
	// Composite reports the image-merge communication.
	Composite compositing.Stats
}

// TotalPrimitives sums primitives across ranks.
func (s RenderStats) TotalPrimitives() int {
	n := 0
	for _, r := range s.PerRank {
		n += r.Primitives
	}
	return n
}

// Render renders the decomposition with the named algorithm: each rank
// draws its piece into a private frame (ranks execute concurrently, as
// they would on separate nodes), then the frames are depth-composited.
// The camera must be shared across ranks — it is framed against the
// whole dataset's bounds so every rank agrees on the view.
func (d *Decomposition) Render(w, h int, algorithm string, cam *camera.Camera, opt render.Options, alg compositing.Algorithm) (*fb.Frame, RenderStats, error) {
	ranks := d.Ranks()
	d.pinScalarRange(&opt)
	frames := make([]*fb.Frame, ranks)
	stats := RenderStats{PerRank: make([]render.Stats, ranks)}
	errs := make([]error, ranks)

	par.For(ranks, ranks, func(i int) {
		r, err := render.New(algorithm)
		if err != nil {
			errs[i] = err
			return
		}
		frame := fb.New(w, h)
		s, err := r.Render(frame, d.Pieces[i], cam, opt)
		if err != nil {
			errs[i] = err
			return
		}
		frames[i] = frame
		stats.PerRank[i] = s
	})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	out, cstats, err := compositing.Composite(frames, alg)
	if err != nil {
		return nil, stats, err
	}
	stats.Composite = cstats
	return out, stats, nil
}

// RenderWhole renders the undecomposed dataset for reference comparison.
func (d *Decomposition) RenderWhole(w, h int, algorithm string, cam *camera.Camera, opt render.Options) (*fb.Frame, render.Stats, error) {
	d.pinScalarRange(&opt)
	r, err := render.New(algorithm)
	if err != nil {
		return nil, render.Stats{}, err
	}
	frame := fb.New(w, h)
	s, err := r.Render(frame, d.Whole, cam, opt)
	if err != nil {
		return nil, render.Stats{}, err
	}
	return frame, s, nil
}

// pinScalarRange performs the global range reduction a production
// sort-last renderer does before colormapping: when the caller did not
// pin ScalarLo/Hi, compute the color field's range over the whole dataset
// so every rank normalizes identically. Without this, ranks color by
// their local ranges and the composited image depends on the rank count.
func (d *Decomposition) pinScalarRange(opt *render.Options) {
	if opt.ScalarLo != opt.ScalarHi {
		return
	}
	name := opt.ColorField
	var field *data.Field
	switch ds := d.Whole.(type) {
	case *data.PointCloud:
		if name == "" {
			name = "speed"
		}
		if f, err := ds.Field(name); err == nil {
			field = f
		}
	case *data.StructuredGrid:
		if name == "" {
			name = "temperature"
		}
		if f, err := ds.Field(name); err == nil {
			field = f
		}
	}
	if field == nil {
		return
	}
	opt.ScalarLo, opt.ScalarHi = field.MinMax()
}
