package compositing

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/raceflag"
	"github.com/ascr-ecx/eth/internal/vec"
)

// TestMergeIntoSteadyStateAllocs locks in the zero-allocation steady
// state of the depth-merge kernel on frames small enough for the serial
// branch (the parallel branch allocates its par closure by design).
func TestMergeIntoSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	dst := fb.New(64, 64) // 4096 px: the largest serial merge
	src := fb.New(64, 64)
	for i := range src.Depth {
		src.Depth[i] = float64(i%7) + 0.5
		src.Color[i] = vec.New(0.1, 0.2, 0.3)
	}
	merge := func() {
		if err := MergeInto(dst, src); err != nil {
			t.Fatal(err)
		}
	}
	merge()
	if allocs := testing.AllocsPerRun(50, merge); allocs > 0 {
		t.Errorf("steady-state merge allocates %.1f times per op, want 0", allocs)
	}
}
