package compositing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

// randFrames builds n frames with random sparse coverage.
func randFrames(n, w, h int, seed int64) []*fb.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*fb.Frame, n)
	for i := range frames {
		f := fb.New(w, h)
		for k := 0; k < w*h/3; k++ {
			x := rng.Intn(w)
			y := rng.Intn(h)
			f.DepthSet(x, y, 1+rng.Float64()*10, vec.New(rng.Float64(), rng.Float64(), rng.Float64()))
		}
		frames[i] = f
	}
	return frames
}

// bruteComposite merges by scanning all frames per pixel.
func bruteComposite(frames []*fb.Frame) *fb.Frame {
	out := fb.New(frames[0].W, frames[0].H)
	for i := range out.Depth {
		for _, f := range frames {
			if f.Depth[i] < out.Depth[i] {
				out.Depth[i] = f.Depth[i]
				out.Color[i] = f.Color[i]
			}
		}
	}
	return out
}

func framesEqual(a, b *fb.Frame) bool {
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			return false
		}
		da, db := a.Depth[i], b.Depth[i]
		if da != db && !(math.IsInf(da, 1) && math.IsInf(db, 1)) {
			return false
		}
	}
	return true
}

func TestAlgorithmNames(t *testing.T) {
	if DirectSend.String() != "direct-send" || BinarySwap.String() != "binary-swap" {
		t.Error("names wrong")
	}
}

func TestMergeIntoKeepsNearest(t *testing.T) {
	a := fb.New(2, 1)
	b := fb.New(2, 1)
	a.DepthSet(0, 0, 5, vec.New(1, 0, 0))
	b.DepthSet(0, 0, 3, vec.New(0, 1, 0))
	b.DepthSet(1, 0, 7, vec.New(0, 0, 1))
	if err := MergeInto(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != vec.New(0, 1, 0) {
		t.Error("nearer fragment lost")
	}
	if a.At(1, 0) != vec.New(0, 0, 1) {
		t.Error("uncovered pixel not filled")
	}
	if err := MergeInto(a, fb.New(3, 3)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCompositeMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		frames := randFrames(n, 32, 24, int64(n))
		want := bruteComposite(frames)
		for _, alg := range []Algorithm{DirectSend, BinarySwap} {
			got, stats, err := Composite(frames, alg)
			if err != nil {
				t.Fatal(err)
			}
			if !framesEqual(got, want) {
				t.Errorf("%v with %d ranks: wrong image", alg, n)
			}
			if n > 1 && (stats.BytesMoved <= 0 || stats.MessagesMoved <= 0) {
				t.Errorf("%v with %d ranks: no communication accounted", alg, n)
			}
		}
	}
}

func TestCompositeDoesNotMutateInputs(t *testing.T) {
	frames := randFrames(4, 16, 16, 3)
	snapshots := make([]*fb.Frame, len(frames))
	for i, f := range frames {
		cp := fb.New(f.W, f.H)
		copy(cp.Color, f.Color)
		copy(cp.Depth, f.Depth)
		snapshots[i] = cp
	}
	if _, _, err := Composite(frames, BinarySwap); err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if !framesEqual(frames[i], snapshots[i]) {
			t.Fatalf("input frame %d mutated", i)
		}
	}
}

func TestCompositeErrors(t *testing.T) {
	if _, _, err := Composite(nil, DirectSend); err == nil {
		t.Error("empty input accepted")
	}
	frames := []*fb.Frame{fb.New(4, 4), fb.New(5, 4)}
	if _, _, err := Composite(frames, BinarySwap); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestBinarySwapCommunicationShape(t *testing.T) {
	// Binary swap's aggregate volume is comparable to direct send's
	// (within ~2x) — its advantage is the critical path: log2(P) rounds
	// with all links busy, versus one round funneling P-1 full frames
	// through the root. Check both properties.
	frames := randFrames(16, 64, 64, 1)
	_, ds, _ := Composite(frames, DirectSend)
	_, bs, _ := Composite(frames, BinarySwap)
	if bs.BytesMoved > 2*ds.BytesMoved {
		t.Errorf("binary swap moved %d bytes > 2x direct send %d", bs.BytesMoved, ds.BytesMoved)
	}
	if bs.Rounds <= ds.Rounds {
		t.Errorf("binary swap rounds %d <= direct send %d", bs.Rounds, ds.Rounds)
	}
	if bs.MessagesMoved <= ds.MessagesMoved {
		t.Errorf("binary swap messages %d <= direct send %d", bs.MessagesMoved, ds.MessagesMoved)
	}
}

// Property: compositing is order-insensitive (nearest-depth merge is
// commutative and associative when depths are distinct).
func TestCompositeOrderInsensitiveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		frames := randFrames(n, 16, 16, seed)
		a, _, err := Composite(frames, BinarySwap)
		if err != nil {
			return false
		}
		// Reverse order.
		rev := make([]*fb.Frame, n)
		for i := range frames {
			rev[i] = frames[n-1-i]
		}
		b, _, err := Composite(rev, DirectSend)
		if err != nil {
			return false
		}
		return framesEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestModelCost(t *testing.T) {
	// Single rank: free.
	if ModelCost(DirectSend, 1, 1<<20, 1e9, 1e-6) != 0 {
		t.Error("single rank should cost 0")
	}
	// Binary swap should beat direct send for large P.
	ds := ModelCost(DirectSend, 256, 1<<20, 1e9, 1e-6)
	bs := ModelCost(BinarySwap, 256, 1<<20, 1e9, 1e-6)
	if bs >= ds {
		t.Errorf("binary swap cost %v >= direct send %v at 256 ranks", bs, ds)
	}
	// Costs grow with rank count for direct send.
	if ModelCost(DirectSend, 8, 1<<20, 1e9, 1e-6) >= ds {
		t.Error("direct send cost should grow with ranks")
	}
}

func BenchmarkComposite16(b *testing.B) {
	frames := randFrames(16, 256, 256, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Composite(frames, BinarySwap); err != nil {
			b.Fatal(err)
		}
	}
}
