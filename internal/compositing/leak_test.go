package compositing

import (
	"runtime"
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/mempool"
	"github.com/ascr-ecx/eth/internal/raceflag"
)

// Regression tests for frame-pool leaks on the compositors' error paths,
// found by the poolleak analyzer: a merge or copy failure used to return
// without releasing the pooled output/working frames. Each test seeds
// the frame pool, drives the error path, and asserts the pool hands the
// same frame objects back out — the pointer identity only holds if the
// error path released them. Two things keep the round trip
// deterministic: each test uses a frame size no other test touches, so
// the pool it seeds is exactly the pool the compositor drains; and
// GOMAXPROCS is pinned to 1, because sync.Pool keeps a per-P private
// slot other Ps cannot steal from, so a goroutine migration between
// Release and Acquire would strand a frame and fail the test spuriously.
//
// Under -race the tests skip: the race-instrumented sync.Pool randomly
// drops Put items by design, so pool identity cannot be asserted there.
// scripts/check.sh re-runs them in its non-race alloc-gate pass.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race-instrumented sync.Pool drops Put items at random; identity asserted in the non-race pass")
	}
}

// drainForFrames acquires up to limit pooled frames of the given size,
// reporting whether every frame in want was handed back out. Drained
// frames are returned to the pool when the test ends.
func drainForFrames(t *testing.T, w, h, limit int, want ...*fb.Frame) bool {
	t.Helper()
	remaining := make(map[*fb.Frame]bool, len(want))
	for _, f := range want {
		remaining[f] = true
	}
	for i := 0; i < limit && len(remaining) > 0; i++ {
		got := mempool.AcquireFrameUncleared(w, h)
		t.Cleanup(func() { mempool.ReleaseFrame(got) })
		delete(remaining, got)
	}
	return len(remaining) == 0
}

func TestDirectSendErrorReleasesOutput(t *testing.T) {
	skipUnderRace(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	seed := mempool.AcquireFrameUncleared(12, 5)
	mempool.ReleaseFrame(seed)

	// Mismatched sizes: the output frame is acquired and seeded from
	// frames[0] before MergeInto fails on frames[1].
	if _, _, err := directSend([]*fb.Frame{fb.New(12, 5), fb.New(4, 4)}); err == nil {
		t.Fatal("directSend with mismatched frames should fail")
	}

	if !drainForFrames(t, 12, 5, 4, seed) {
		t.Errorf("output frame %p not returned to the pool on the error path", seed)
	}
}

func TestBinarySwapErrorReleasesWorkFrames(t *testing.T) {
	skipUnderRace(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f1 := mempool.AcquireFrameUncleared(10, 6)
	f2 := mempool.AcquireFrameUncleared(10, 6)
	mempool.ReleaseFrame(f1)
	mempool.ReleaseFrame(f2)

	// pow = 2: the first working copy succeeds, the second's CopyFrom
	// fails on the 4x4 frame — both copies must come back to the pool.
	if _, _, err := binarySwap([]*fb.Frame{fb.New(10, 6), fb.New(4, 4)}); err == nil {
		t.Fatal("binarySwap with mismatched frames should fail")
	}

	if !drainForFrames(t, 10, 6, 4, f1, f2) {
		t.Errorf("working frames %p/%p not returned to the pool on the error path", f1, f2)
	}
}
