package compositing

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/mempool"
)

// Regression tests for frame-pool leaks on the compositors' error paths,
// found by the poolleak analyzer: a merge or copy failure used to return
// without releasing the pooled output/working frames. Each test seeds the
// frame pool, drives the error path, and asserts the pool hands the same
// frame objects back out — the pointer identity only holds if the error
// path released them. The seed/acquire sequences stay on one goroutine,
// so sync.Pool's per-P slots make the round trip deterministic.

func TestDirectSendErrorReleasesOutput(t *testing.T) {
	seed := mempool.AcquireFrameUncleared(8, 8)
	mempool.ReleaseFrame(seed)

	// Mismatched sizes: the output frame is acquired and seeded from
	// frames[0] before MergeInto fails on frames[1].
	if _, _, err := directSend([]*fb.Frame{fb.New(8, 8), fb.New(4, 4)}); err == nil {
		t.Fatal("directSend with mismatched frames should fail")
	}

	got := mempool.AcquireFrameUncleared(8, 8)
	defer mempool.ReleaseFrame(got)
	if got != seed {
		t.Errorf("output frame not returned to the pool on the error path: got %p, want %p", got, seed)
	}
}

func TestBinarySwapErrorReleasesWorkFrames(t *testing.T) {
	f1 := mempool.AcquireFrameUncleared(8, 8)
	f2 := mempool.AcquireFrameUncleared(8, 8)
	mempool.ReleaseFrame(f1)
	mempool.ReleaseFrame(f2)

	// pow = 2: the first working copy succeeds, the second's CopyFrom
	// fails on the 4x4 frame — both copies must come back to the pool.
	if _, _, err := binarySwap([]*fb.Frame{fb.New(8, 8), fb.New(4, 4)}); err == nil {
		t.Fatal("binarySwap with mismatched frames should fail")
	}

	g1 := mempool.AcquireFrameUncleared(8, 8)
	g2 := mempool.AcquireFrameUncleared(8, 8)
	defer mempool.ReleaseFrame(g1)
	defer mempool.ReleaseFrame(g2)
	seeded := map[*fb.Frame]bool{f1: true, f2: true}
	if !seeded[g1] || !seeded[g2] || g1 == g2 {
		t.Errorf("working frames not returned to the pool on the error path: got %p/%p, want %p/%p", g1, g2, f1, f2)
	}
}
