// Package compositing merges the partial images rendered by parallel
// ranks into one final frame. In a distributed in-situ run every rank
// renders only its spatial piece of the data; depth compositing keeps the
// nearest fragment per pixel. Two classic algorithms are provided —
// direct send and binary swap — because their communication patterns
// differ (O(P) messages of full frames vs log2(P) rounds of half frames)
// and the cluster model charges them differently; DESIGN.md lists the
// choice as an ablation.
package compositing

import (
	"fmt"
	"math"
	"time"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/mempool"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/telemetry"
)

// Compositing telemetry: per-composite latency spans plus modeled
// communication counters, so both the core harness path and the domain
// sort-last path report merge cost.
var (
	ctrCompBytes = telemetry.Default.Counter("compositing.bytes")
	ctrCompMsgs  = telemetry.Default.Counter("compositing.messages")
)

// Algorithm selects the compositing schedule.
type Algorithm uint8

const (
	// DirectSend gathers every rank's full frame at the root and merges
	// sequentially — one round, P-1 full-frame messages.
	DirectSend Algorithm = iota
	// BinarySwap pairs ranks over log2(P) rounds, each exchanging half of
	// its current region — the classic scalable schedule. For non-power-
	// of-two P the remainder frames are folded in with direct sends first.
	BinarySwap
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if a == BinarySwap {
		return "binary-swap"
	}
	return "direct-send"
}

// Stats describes the communication a composite performed, consumed by
// the cluster model to charge link time.
type Stats struct {
	Rounds        int   // communication rounds
	BytesMoved    int64 // total payload bytes exchanged
	MessagesMoved int   // total messages
}

// bytesPerPixel is the wire size of one composited pixel: RGB (3x8) +
// depth (8).
const bytesPerPixel = 32

// MergeInto merges src into dst pixel-by-pixel, keeping the nearer
// fragment. Frames must be the same size.
func MergeInto(dst, src *fb.Frame) error {
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("compositing: frame sizes differ (%dx%d vs %dx%d)", dst.W, dst.H, src.W, src.H)
	}
	n := len(dst.Depth)
	if n <= 4096 {
		// Single-grain frames merge inline: constructing the par closure
		// would heap-allocate it, and this path must stay allocation-free
		// at steady state.
		mergeRange(dst, src, 0, n)
		return nil
	}
	par.ForGrained(n, 0, 4096, func(lo, hi int) {
		mergeRange(dst, src, lo, hi)
	})
	return nil
}

// Composite merges the per-rank frames into a single frame using the
// given algorithm and returns it with the communication stats the
// schedule would have incurred on a real interconnect. The input frames
// are not modified. An empty input returns an error.
func Composite(frames []*fb.Frame, alg Algorithm) (*fb.Frame, Stats, error) {
	if len(frames) == 0 {
		return nil, Stats{}, fmt.Errorf("compositing: no frames")
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, Stats{}, fmt.Errorf("compositing: frame %d is %dx%d, want %dx%d", i, f.W, f.H, w, h)
		}
	}
	t0 := time.Now()
	var (
		out   *fb.Frame
		stats Stats
		err   error
	)
	switch alg {
	case BinarySwap:
		out, stats, err = binarySwap(frames)
	default:
		out, stats, err = directSend(frames)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	if alg == BinarySwap {
		telemetry.Default.ObserveSpan("compositing.binary_swap", time.Since(t0))
	} else {
		telemetry.Default.ObserveSpan("compositing.direct_send", time.Since(t0))
	}
	ctrCompBytes.Add(stats.BytesMoved)
	ctrCompMsgs.Add(int64(stats.MessagesMoved))
	return out, stats, err
}

func directSend(frames []*fb.Frame) (*fb.Frame, Stats, error) {
	w, h := frames[0].W, frames[0].H
	// Seed by straight copy from the first input: a MergeInto onto a
	// freshly cleared frame walks every pixel through a depth compare only
	// to arrive at the same bytes. The frame comes from the pool (callers
	// may ReleaseFrame the composite when done; dropping it is fine too).
	out := mempool.AcquireFrameUncleared(w, h)
	if err := out.CopyFrom(frames[0]); err != nil {
		mempool.ReleaseFrame(out)
		return nil, Stats{}, err
	}
	for _, f := range frames[1:] {
		if err := MergeInto(out, f); err != nil {
			mempool.ReleaseFrame(out)
			return nil, Stats{}, err
		}
	}
	stats := Stats{
		Rounds:        1,
		BytesMoved:    int64(len(frames)-1) * int64(w*h) * bytesPerPixel,
		MessagesMoved: len(frames) - 1,
	}
	return out, stats, nil
}

// binarySwap simulates the binary-swap schedule: over log2(P) rounds each
// rank keeps half its active region and sends the other half to its
// partner; afterwards each rank owns the fully composited 1/P of the
// image, gathered at the end. We execute the merges locally but account
// messages/bytes exactly as the schedule would.
func binarySwap(frames []*fb.Frame) (*fb.Frame, Stats, error) {
	p := len(frames)
	w, h := frames[0].W, frames[0].H
	pixels := w * h

	// Fold non-power-of-two remainder into the main group first.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	stats := Stats{}
	work := make([]*fb.Frame, pow)
	for i := 0; i < pow; i++ {
		// Working copies (inputs are preserved) come from the frame pool
		// and are seeded by straight copy — the previous MergeInto onto a
		// cleared frame depth-compared every pixel to produce an identical
		// result. Released back to the pool before returning.
		cp := mempool.AcquireFrameUncleared(w, h)
		if err := cp.CopyFrom(frames[i]); err != nil {
			mempool.ReleaseFrame(cp)
			releaseFrames(work[:i])
			return nil, Stats{}, err
		}
		work[i] = cp
	}
	for i := pow; i < p; i++ {
		if err := MergeInto(work[i-pow], frames[i]); err != nil {
			releaseFrames(work)
			return nil, Stats{}, err
		}
		stats.BytesMoved += int64(pixels) * bytesPerPixel
		stats.MessagesMoved++
		stats.Rounds = 1
	}

	// log2(pow) swap rounds. Regions are tracked as [lo, hi) pixel ranges.
	type region struct{ lo, hi int }
	regions := make([]region, pow)
	for i := range regions {
		regions[i] = region{0, pixels}
	}
	for span := pow; span > 1; span /= 2 {
		stats.Rounds++
		half := span / 2
		for base := 0; base < pow; base += span {
			for k := 0; k < half; k++ {
				a := base + k
				b := base + k + half
				// a keeps the low half of its region, b the high half;
				// each sends the other half to its partner.
				ra := regions[a]
				mid := (ra.lo + ra.hi) / 2
				mergeRange(work[a], work[b], ra.lo, mid)
				mergeRange(work[b], work[a], mid, ra.hi)
				sent := int64(ra.hi-ra.lo) * bytesPerPixel
				stats.BytesMoved += sent // each pair exchanges region halves (half each way)
				stats.MessagesMoved += 2
				regions[a] = region{ra.lo, mid}
				regions[b] = region{mid, ra.hi}
			}
		}
	}

	// Final gather: every rank sends its owned region to the root. The
	// regions tile [0, pixels) exactly, so an uncleared pooled frame is
	// fully overwritten.
	out := mempool.AcquireFrameUncleared(w, h)
	for i := 0; i < pow; i++ {
		r := regions[i]
		copy(out.Color[r.lo:r.hi], work[i].Color[r.lo:r.hi])
		copy(out.Depth[r.lo:r.hi], work[i].Depth[r.lo:r.hi])
		if i != 0 {
			stats.BytesMoved += int64(r.hi-r.lo) * bytesPerPixel
			stats.MessagesMoved++
		}
	}
	releaseFrames(work)
	stats.Rounds++
	return out, stats, nil
}

// releaseFrames returns every frame in fs to the pool.
func releaseFrames(fs []*fb.Frame) {
	for _, f := range fs {
		mempool.ReleaseFrame(f)
	}
}

// mergeRange merges src pixels [lo, hi) into dst.
func mergeRange(dst, src *fb.Frame, lo, hi int) {
	for i := lo; i < hi; i++ {
		if src.Depth[i] < dst.Depth[i] {
			dst.Depth[i] = src.Depth[i]
			dst.Color[i] = src.Color[i]
		}
	}
}

// ModelCost returns the modeled communication time in seconds for
// compositing an image of the given pixel count across ranks over a link
// with the given bandwidth (bytes/s) and per-message latency (s). Used by
// the cluster model; kept here so the formula sits beside the algorithms
// it describes.
func ModelCost(alg Algorithm, ranks, pixels int, bandwidth float64, latency float64) float64 {
	if ranks <= 1 {
		return 0
	}
	frameBytes := float64(pixels) * bytesPerPixel
	switch alg {
	case BinarySwap:
		rounds := math.Ceil(math.Log2(float64(ranks)))
		// Each round exchanges half the current region, halving each time:
		// total bytes ~ frameBytes * (1 - 1/P), in log2(P) latency rounds.
		return rounds*latency + frameBytes*(1-1/float64(ranks))/bandwidth
	default:
		// Root receives P-1 full frames serially.
		return float64(ranks-1)*latency + float64(ranks-1)*frameBytes/bandwidth
	}
}
