package camera

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/vec"
)

func TestProjectCenterHitsImageCenter(t *testing.T) {
	cam := LookAt(vec.New(0, 0, 10), vec.V3{}, vec.New(0, 1, 0))
	x, y, depth, ok := cam.Project(vec.V3{}, 640, 480)
	if !ok {
		t.Fatal("center not visible")
	}
	if math.Abs(x-320) > 1e-6 || math.Abs(y-240) > 1e-6 {
		t.Errorf("center projects to (%v, %v)", x, y)
	}
	if math.Abs(depth-10) > 1e-9 {
		t.Errorf("depth = %v, want 10", depth)
	}
}

func TestProjectBehindCamera(t *testing.T) {
	cam := LookAt(vec.New(0, 0, 10), vec.V3{}, vec.New(0, 1, 0))
	if _, _, _, ok := cam.Project(vec.New(0, 0, 20), 100, 100); ok {
		t.Error("point behind camera reported visible")
	}
}

func TestProjectUpIsUp(t *testing.T) {
	cam := LookAt(vec.New(0, 0, 10), vec.V3{}, vec.New(0, 1, 0))
	_, yTop, _, ok := cam.Project(vec.New(0, 1, 0), 100, 100)
	if !ok {
		t.Fatal("top point not visible")
	}
	_, yCenter, _, _ := cam.Project(vec.V3{}, 100, 100)
	if yTop >= yCenter {
		t.Errorf("world +Y should be up on screen: yTop=%v yCenter=%v", yTop, yCenter)
	}
}

func TestRayThroughCenterPointsForward(t *testing.T) {
	cam := LookAt(vec.New(0, 0, 10), vec.V3{}, vec.New(0, 1, 0))
	r := cam.RayThroughF(50, 50, 100, 100)
	if r.Origin != cam.Eye {
		t.Error("ray origin != eye")
	}
	want := vec.New(0, 0, -1)
	if r.Dir.Sub(want).Len() > 1e-9 {
		t.Errorf("center ray dir = %v", r.Dir)
	}
}

// Property: Project and RayThrough are inverses — casting a ray through
// the projected window position of a point passes through that point.
func TestProjectRayConsistencyProperty(t *testing.T) {
	cam := ForBounds(vec.NewAABB(vec.New(-1, -1, -1), vec.New(1, 1, 1)))
	f := func(px, py, pz float64) bool {
		p := vec.New(math.Mod(px, 1), math.Mod(py, 1), math.Mod(pz, 1))
		if !p.IsFinite() {
			return true
		}
		const w, h = 512, 512
		x, y, depth, ok := cam.Project(p, w, h)
		if !ok {
			return true
		}
		r := cam.RayThroughF(x, y, w, h)
		// Distance from p to the ray must be tiny relative to depth.
		d := p.Sub(r.Origin)
		along := d.Dot(r.Dir)
		perp := d.Sub(r.Dir.Scale(along)).Len()
		return perp < 1e-6*(1+depth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForBoundsSeesWholeBox(t *testing.T) {
	b := vec.NewAABB(vec.New(0, 0, 0), vec.New(10, 20, 5))
	cam := ForBounds(b)
	const w, h = 256, 256
	corners := []vec.V3{
		b.Min, b.Max,
		{X: b.Min.X, Y: b.Min.Y, Z: b.Max.Z},
		{X: b.Min.X, Y: b.Max.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Min.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Max.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Min.Y, Z: b.Max.Z},
		{X: b.Min.X, Y: b.Max.Y, Z: b.Max.Z},
	}
	for _, c := range corners {
		x, y, depth, ok := cam.Project(c, w, h)
		if !ok {
			t.Fatalf("corner %v behind camera", c)
		}
		if x < -w || x > 2*w || y < -h || y > 2*h {
			t.Errorf("corner %v projects far off screen: (%v, %v)", c, x, y)
		}
		if depth < cam.Near || depth > cam.Far {
			t.Errorf("corner %v depth %v outside clip [%v, %v]", c, depth, cam.Near, cam.Far)
		}
	}
}

func TestForBoundsDegenerateBox(t *testing.T) {
	// A point box must still produce a valid camera.
	cam := ForBounds(vec.NewAABB(vec.New(1, 1, 1), vec.New(1, 1, 1)))
	if cam.Near <= 0 || cam.Far <= cam.Near {
		t.Errorf("bad clip range: near=%v far=%v", cam.Near, cam.Far)
	}
	if !cam.Eye.IsFinite() {
		t.Error("eye not finite")
	}
}

func TestViewProjMatchesProject(t *testing.T) {
	cam := ForBounds(vec.NewAABB(vec.New(-2, -2, -2), vec.New(2, 2, 2)))
	const w, h = 400, 300
	p := vec.New(0.5, -0.7, 0.9)
	x, y, _, ok := cam.Project(p, w, h)
	if !ok {
		t.Fatal("point not visible")
	}
	// Same answer via the combined matrix.
	clip, wc := cam.ViewProj(w, h).MulPointW(p)
	nx := clip.X / wc
	ny := clip.Y / wc
	mx := (nx + 1) / 2 * w
	my := (1 - (ny+1)/2) * h
	if math.Abs(mx-x) > 1e-6 || math.Abs(my-y) > 1e-6 {
		t.Errorf("matrix path (%v,%v) vs Project (%v,%v)", mx, my, x, y)
	}
}

func TestRayGenMatchesRayThrough(t *testing.T) {
	cam := ForBounds(vec.NewAABB(vec.New(-3, -1, -2), vec.New(5, 4, 7)))
	const w, h = 133, 97
	gen := cam.NewRayGen(w, h)
	for py := 0; py < h; py += 7 {
		for px := 0; px < w; px += 11 {
			a := cam.RayThrough(px, py, w, h)
			b := gen.Ray(px, py)
			if a.Origin != b.Origin || a.Dir.Sub(b.Dir).Len() > 1e-12 {
				t.Fatalf("pixel (%d,%d): RayThrough %v vs RayGen %v", px, py, a.Dir, b.Dir)
			}
		}
	}
}
