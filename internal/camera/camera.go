// Package camera provides the pinhole camera model shared by both of
// ETH's rendering pipelines. The geometry pipeline uses the combined
// view-projection matrix to transform primitives into screen space; the
// raycasting pipeline uses the inverse mapping to generate per-pixel
// primary rays. Keeping both derivations in one type guarantees the two
// pipelines render the same view, which the RMSE comparisons require.
package camera

import (
	"math"

	"github.com/ascr-ecx/eth/internal/vec"
)

// Camera is a pinhole camera with a vertical field of view.
type Camera struct {
	Eye    vec.V3  // camera position, world space
	Center vec.V3  // look-at target
	Up     vec.V3  // approximate up direction
	FovY   float64 // vertical field of view, radians
	Near   float64 // near clip distance (> 0)
	Far    float64 // far clip distance (> Near)
}

// LookAt returns a camera with sensible defaults (40 degree fov,
// near/far derived later from the scene by FitClip).
func LookAt(eye, center, up vec.V3) Camera {
	return Camera{
		Eye: eye, Center: center, Up: up,
		FovY: 40 * math.Pi / 180,
		Near: 0.1, Far: 1000,
	}
}

// ForBounds positions a camera to frame the bounding box b from a
// three-quarter view, the framing used by every experiment so results
// are comparable across runs.
func ForBounds(b vec.AABB) Camera {
	c := b.Center()
	d := b.Diagonal()
	if d == 0 {
		d = 1
	}
	eye := c.Add(vec.New(0.9, 0.55, 1.1).Norm().Scale(d * 1.2))
	cam := LookAt(eye, c, vec.New(0, 1, 0))
	cam.FitClip(b)
	return cam
}

// FitClip adjusts Near and Far to tightly contain bounds b.
func (c *Camera) FitClip(b vec.AABB) {
	d := c.Eye.Sub(b.Center()).Len()
	r := b.Diagonal() / 2
	c.Near = math.Max((d-r)*0.5, d*1e-4)
	c.Far = (d + r) * 2
}

// View returns the world-to-camera matrix.
func (c *Camera) View() vec.M4 {
	return vec.LookAt(c.Eye, c.Center, c.Up)
}

// Proj returns the camera-to-clip matrix for a w x h viewport.
func (c *Camera) Proj(w, h int) vec.M4 {
	aspect := float64(w) / float64(h)
	return vec.Perspective(c.FovY, aspect, c.Near, c.Far)
}

// ViewProj returns the combined world-to-clip matrix.
func (c *Camera) ViewProj(w, h int) vec.M4 {
	return c.Proj(w, h).MulM(c.View())
}

// Project maps world point p to window coordinates for a w x h viewport:
// x in [0, w), y in [0, h) with y=0 the top row, and depth the camera
// space distance along the view direction (positive in front). ok is
// false when the point is behind the near plane.
func (c *Camera) Project(p vec.V3, w, h int) (x, y, depth float64, ok bool) {
	view := c.View()
	cam := view.MulPoint(p)
	if cam.Z > -c.Near {
		return 0, 0, 0, false
	}
	clip, wc := c.Proj(w, h).MulPointW(cam)
	if wc == 0 {
		return 0, 0, 0, false
	}
	inv := 1 / wc
	nx := clip.X * inv
	ny := clip.Y * inv
	x = (nx + 1) / 2 * float64(w)
	y = (1 - (ny+1)/2) * float64(h)
	return x, y, -cam.Z, true
}

// Ray describes a primary ray.
type Ray struct {
	Origin vec.V3
	Dir    vec.V3 // normalized
}

// RayThrough returns the ray through pixel center (px + 0.5, py + 0.5) of
// a w x h viewport. Pixel (0,0) is the top-left corner, matching Project.
func (c *Camera) RayThrough(px, py, w, h int) Ray {
	return c.RayThroughF(float64(px)+0.5, float64(py)+0.5, w, h)
}

// RayThroughF returns the ray through window position (x, y) in pixels.
func (c *Camera) RayThroughF(x, y float64, w, h int) Ray {
	// Camera basis.
	fwd := c.Center.Sub(c.Eye).Norm()
	right := fwd.Cross(c.Up.Norm()).Norm()
	up := right.Cross(fwd)

	aspect := float64(w) / float64(h)
	halfH := math.Tan(c.FovY / 2)
	halfW := halfH * aspect

	// NDC in [-1, 1], y up.
	nx := 2*x/float64(w) - 1
	ny := 1 - 2*y/float64(h)

	dir := fwd.
		Add(right.Scale(nx * halfW)).
		Add(up.Scale(ny * halfH)).
		Norm()
	return Ray{Origin: c.Eye, Dir: dir}
}

// RayGen precomputes the camera basis for a fixed viewport so per-pixel
// ray generation is a few fused multiply-adds instead of a basis
// construction with trigonometry — the difference is material when every
// pixel of every frame casts a primary ray.
type RayGen struct {
	origin       vec.V3
	fwd, right   vec.V3
	up           vec.V3
	halfW, halfH float64
	invW, invH   float64
}

// NewRayGen builds a generator for cam rendering a w x h viewport.
func (c *Camera) NewRayGen(w, h int) RayGen {
	fwd := c.Center.Sub(c.Eye).Norm()
	right := fwd.Cross(c.Up.Norm()).Norm()
	up := right.Cross(fwd)
	aspect := float64(w) / float64(h)
	halfH := math.Tan(c.FovY / 2)
	return RayGen{
		origin: c.Eye,
		fwd:    fwd, right: right, up: up,
		halfW: halfH * aspect, halfH: halfH,
		invW: 1 / float64(w), invH: 1 / float64(h),
	}
}

// Ray returns the primary ray through pixel center (px+0.5, py+0.5),
// identical to Camera.RayThrough for the same viewport.
func (g *RayGen) Ray(px, py int) Ray {
	nx := 2*(float64(px)+0.5)*g.invW - 1
	ny := 1 - 2*(float64(py)+0.5)*g.invH
	dir := g.fwd.
		Add(g.right.Scale(nx * g.halfW)).
		Add(g.up.Scale(ny * g.halfH)).
		Norm()
	return Ray{Origin: g.origin, Dir: dir}
}
