package cosmo

import (
	"math"
	"reflect"
	"testing"
)

func smallParams() Params {
	return Params{Particles: 20_000, BoxSize: 50, Halos: 20, HaloFraction: 0.6, Seed: 3}
}

func TestGenerateCountAndBounds(t *testing.T) {
	p := smallParams()
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != p.Particles {
		t.Fatalf("count = %d", c.Count())
	}
	b := c.Bounds()
	if b.Min.MinComp() < 0 || b.Max.MaxComp() > p.BoxSize {
		t.Errorf("particles escape the box: %+v", b)
	}
	if _, err := c.Field("speed"); err != nil {
		t.Error("speed field missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.X, b.X) || !reflect.DeepEqual(a.VX, b.VX) {
		t.Error("same params produced different datasets")
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	p := smallParams()
	a, _ := Generate(p)
	p.Seed++
	b, _ := Generate(p)
	if reflect.DeepEqual(a.X, b.X) {
		t.Error("different seeds produced identical positions")
	}
}

func TestGenerateTimeStepEvolves(t *testing.T) {
	p := smallParams()
	a, _ := Generate(p)
	p.TimeStep = 5
	b, _ := Generate(p)
	if reflect.DeepEqual(a.X, b.X) {
		t.Error("time steps produced identical positions")
	}
}

func TestGenerateClusteringExists(t *testing.T) {
	// With 60% of mass in halos, the particle distribution must be far
	// from uniform: count particles in coarse cells and check the
	// variance-to-mean ratio exceeds the Poisson expectation (~1).
	p := smallParams()
	c, _ := Generate(p)
	const cells = 8
	counts := make([]float64, cells*cells*cells)
	cw := p.BoxSize / cells
	for i := 0; i < c.Count(); i++ {
		pos := c.Pos(i)
		ci := int(pos.X / cw)
		cj := int(pos.Y / cw)
		ck := int(pos.Z / cw)
		if ci >= cells {
			ci = cells - 1
		}
		if cj >= cells {
			cj = cells - 1
		}
		if ck >= cells {
			ck = cells - 1
		}
		counts[ci+cells*(cj+cells*ck)]++
	}
	mean := float64(c.Count()) / float64(len(counts))
	varsum := 0.0
	for _, n := range counts {
		varsum += (n - mean) * (n - mean)
	}
	vmr := varsum / float64(len(counts)) / mean
	if vmr < 5 {
		t.Errorf("variance/mean = %.2f; expected strong clustering (>5)", vmr)
	}
}

func TestGenerateNoClusteringWhenDisabled(t *testing.T) {
	p := smallParams()
	p.Halos = 0
	c, _ := Generate(p)
	const cells = 4
	counts := make([]float64, cells*cells*cells)
	cw := p.BoxSize / cells
	for i := 0; i < c.Count(); i++ {
		pos := c.Pos(i)
		ci := minI(int(pos.X/cw), cells-1)
		cj := minI(int(pos.Y/cw), cells-1)
		ck := minI(int(pos.Z/cw), cells-1)
		counts[ci+cells*(cj+cells*ck)]++
	}
	mean := float64(c.Count()) / float64(len(counts))
	varsum := 0.0
	for _, n := range counts {
		varsum += (n - mean) * (n - mean)
	}
	vmr := varsum / float64(len(counts)) / mean
	if vmr > 3 {
		t.Errorf("variance/mean = %.2f for uniform field; expected ~1", vmr)
	}
}

func TestGenerateValidatesParams(t *testing.T) {
	if _, err := Generate(Params{Particles: -1, BoxSize: 1}); err == nil {
		t.Error("negative particles accepted")
	}
	if _, err := Generate(Params{Particles: 10, BoxSize: 0}); err == nil {
		t.Error("zero box accepted")
	}
	// Degenerate but legal cases.
	c, err := Generate(Params{Particles: 0, BoxSize: 1, Seed: 1})
	if err != nil || c.Count() != 0 {
		t.Errorf("empty generation: %v, %d", err, c.Count())
	}
	c, err = Generate(Params{Particles: 5, BoxSize: 1, Halos: 3, HaloFraction: 2, Seed: 1})
	if err != nil || c.Count() != 5 {
		t.Errorf("clamped fraction: %v", err)
	}
}

func TestVelocitiesAreFinite(t *testing.T) {
	c, _ := Generate(smallParams())
	for i := 0; i < c.Count(); i++ {
		if !c.Vel(i).IsFinite() || !c.Pos(i).IsFinite() {
			t.Fatalf("particle %d has non-finite state", i)
		}
	}
}

func TestHaloVelocityDispersionExceedsBackground(t *testing.T) {
	// Halo particles carry virial dispersion; compare the speed spread of
	// the halo tail (IDs >= nBg) against the background.
	p := smallParams()
	c, _ := Generate(p)
	nHalo := int(float64(p.Particles) * p.HaloFraction)
	nBg := p.Particles - nHalo
	bgVar := speedVariance(c.VX[:nBg], c.VY[:nBg], c.VZ[:nBg])
	haloVar := speedVariance(c.VX[nBg:], c.VY[nBg:], c.VZ[nBg:])
	if haloVar < bgVar {
		t.Errorf("halo velocity variance %.1f < background %.1f", haloVar, bgVar)
	}
}

func speedVariance(vx, vy, vz []float32) float64 {
	var sum, sum2 float64
	for i := range vx {
		s := math.Sqrt(float64(vx[i])*float64(vx[i]) + float64(vy[i])*float64(vy[i]) + float64(vz[i])*float64(vz[i]))
		sum += s
		sum2 += s * s
	}
	n := float64(len(vx))
	mean := sum / n
	return sum2/n - mean*mean
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkGenerate100k(b *testing.B) {
	p := smallParams()
	p.Particles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
