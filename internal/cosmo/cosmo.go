// Package cosmo synthesizes HACC-like cosmology particle datasets. The
// paper replays dark-sky n-body dumps (0.25-1 billion particles) whose
// defining visual structure is halo clustering: dense, roughly spherical
// overdensities embedded in a diffuse background, with virialized velocity
// dispersion inside halos and a bulk flow outside. This generator
// reproduces that workload shape deterministically from a seed:
//
//   - Halo centers are placed uniformly in the box with masses drawn from
//     a truncated power-law (Press-Schechter-like slope).
//   - Halo particles follow an NFW-like radial profile rho(r) ~
//     1/(r (1+r/rs)^2), sampled by inverse transform on the enclosed-mass
//     function, so projected images show the cuspy cores that make halo
//     identification easy — the paper's stated visualization task.
//   - Background particles are uniform with a Zel'dovich-flavoured bulk
//     velocity; halo particles add an isotropic virial dispersion that
//     scales with halo mass.
//
// The renderers and samplers only observe positions, velocities, and IDs,
// which is exactly the payload the paper's simulation proxy presents to
// the in-situ interface, so the substitution preserves the code paths
// under study.
package cosmo

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Params configures the synthetic universe.
type Params struct {
	// Particles is the total particle count (background + halos).
	Particles int
	// BoxSize is the comoving box edge length (world units).
	BoxSize float64
	// Halos is the number of halos. Zero disables clustering.
	Halos int
	// HaloFraction is the fraction of particles assigned to halos
	// (the rest form the uniform background). Clamped to [0, 1].
	HaloFraction float64
	// Seed makes generation deterministic.
	Seed int64
	// TimeStep selects the output epoch; halos drift and contract with
	// step so multi-step experiments see evolving data.
	TimeStep int
}

// DefaultParams returns a small laptop-scale configuration that mirrors
// the paper's dataset proportions (many halos, ~70% clustered mass).
func DefaultParams() Params {
	return Params{
		Particles:    1_000_000,
		BoxSize:      100,
		Halos:        200,
		HaloFraction: 0.7,
		Seed:         1,
	}
}

// halo is an internal description of one overdensity.
type halo struct {
	center vec.V3
	mass   float64 // relative mass weight
	rs     float64 // NFW scale radius
	rvir   float64 // truncation radius
	sigma  float64 // 1-D velocity dispersion
	bulk   vec.V3  // bulk velocity of the halo
}

// Generate synthesizes the particle dataset for p. It is deterministic in
// p (including Seed and TimeStep) and parallelized across particles.
func Generate(p Params) (*data.PointCloud, error) {
	if p.Particles < 0 {
		return nil, fmt.Errorf("cosmo: negative particle count %d", p.Particles)
	}
	if p.BoxSize <= 0 {
		return nil, fmt.Errorf("cosmo: box size must be positive, got %g", p.BoxSize)
	}
	if p.HaloFraction < 0 {
		p.HaloFraction = 0
	}
	if p.HaloFraction > 1 {
		p.HaloFraction = 1
	}
	if p.Halos < 0 {
		p.Halos = 0
	}

	halos := makeHalos(p)
	nHalo := 0
	if p.Halos > 0 {
		nHalo = int(float64(p.Particles) * p.HaloFraction)
	}
	nBg := p.Particles - nHalo

	cloud := data.NewPointCloud(p.Particles)

	// Assign halo particles proportionally to halo mass. Compute the
	// cumulative mass table once; each particle binary-searches it.
	cum := make([]float64, len(halos))
	total := 0.0
	for i, h := range halos {
		total += h.mass
		cum[i] = total
	}

	// Per-particle generation must be reproducible regardless of worker
	// count, so each particle derives its own RNG stream from (seed, i).
	par.For(p.Particles, 0, func(i int) {
		rng := rand.New(rand.NewSource(p.Seed ^ int64(uint64(i)*0x9E3779B97F4A7C15) ^ int64(p.TimeStep)<<32))
		cloud.IDs[i] = int64(i)
		if i < nBg || len(halos) == 0 {
			genBackground(cloud, i, p, rng)
			return
		}
		// Pick a halo by mass weight.
		u := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		genHaloParticle(cloud, i, p, halos[lo], rng)
	})

	cloud.SpeedField()
	return cloud, nil
}

// makeHalos places the halo population deterministically.
func makeHalos(p Params) []halo {
	if p.Halos == 0 || p.HaloFraction == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed*7919 + 13))
	drift := 0.01 * float64(p.TimeStep) * p.BoxSize
	contraction := math.Pow(0.97, float64(p.TimeStep))
	halos := make([]halo, p.Halos)
	for i := range halos {
		// Truncated power-law mass function: P(m) ~ m^-1.9 on [1, 100].
		u := rng.Float64()
		m := math.Pow(1-u*(1-math.Pow(100, -0.9)), -1/0.9)
		rvir := 0.02 * p.BoxSize * math.Cbrt(m/10) * contraction
		ctr := vec.New(
			rng.Float64()*p.BoxSize,
			rng.Float64()*p.BoxSize,
			rng.Float64()*p.BoxSize,
		)
		// Halos drift coherently with epoch so time steps differ.
		dir := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Norm()
		ctr = wrapV(ctr.Add(dir.Scale(drift)), p.BoxSize)
		halos[i] = halo{
			center: ctr,
			mass:   m,
			rs:     rvir / 5, // concentration c = 5
			rvir:   rvir,
			sigma:  30 * math.Sqrt(m/10),
			bulk:   dir.Scale(50),
		}
	}
	return halos
}

func genBackground(cloud *data.PointCloud, i int, p Params, rng *rand.Rand) {
	pos := vec.New(
		rng.Float64()*p.BoxSize,
		rng.Float64()*p.BoxSize,
		rng.Float64()*p.BoxSize,
	)
	cloud.SetPos(i, pos)
	// Bulk flow: a large-scale sinusoidal velocity field plus thermal noise.
	k := 2 * math.Pi / p.BoxSize
	flow := vec.New(
		40*math.Sin(k*pos.Y)+rng.NormFloat64()*5,
		40*math.Sin(k*pos.Z)+rng.NormFloat64()*5,
		40*math.Sin(k*pos.X)+rng.NormFloat64()*5,
	)
	cloud.SetVel(i, flow)
}

func genHaloParticle(cloud *data.PointCloud, i int, p Params, h halo, rng *rand.Rand) {
	// Inverse-transform sampling of the NFW enclosed mass
	// M(<r) ~ ln(1+x) - x/(1+x), x=r/rs, truncated at rvir.
	c := h.rvir / h.rs
	mTot := math.Log(1+c) - c/(1+c)
	u := rng.Float64() * mTot
	// Solve ln(1+x) - x/(1+x) = u by bisection on [0, c].
	lo, hi := 0.0, c
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if math.Log(1+mid)-mid/(1+mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	r := (lo + hi) / 2 * h.rs

	// Isotropic direction.
	zc := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - zc*zc)
	dir := vec.New(s*math.Cos(phi), s*math.Sin(phi), zc)
	pos := wrapV(h.center.Add(dir.Scale(r)), p.BoxSize)
	cloud.SetPos(i, pos)

	vel := h.bulk.Add(vec.New(
		rng.NormFloat64()*h.sigma,
		rng.NormFloat64()*h.sigma,
		rng.NormFloat64()*h.sigma,
	))
	cloud.SetVel(i, vel)
}

// wrapV applies periodic boundary conditions on [0, box).
func wrapV(v vec.V3, box float64) vec.V3 {
	return vec.New(wrap(v.X, box), wrap(v.Y, box), wrap(v.Z, box))
}

func wrap(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}
