package transport

import (
	"net"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/raceflag"
)

// TestSendRecvSteadyStateAllocs locks in the zero-allocation steady state
// of the uncompressed dataset path: after the first exchange warms the
// payload buffer, codec pools, and the receiver's reused dataset, a full
// SendDataset / Recv / ack round trip must not allocate on either side.
// AllocsPerRun counts mallocs across all goroutines, so the receiver
// goroutine's decode is included in the budget.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	cloud := data.NewPointCloud(10_000)
	for i := 0; i < cloud.Count(); i++ {
		cloud.IDs[i] = int64(i)
		cloud.X[i] = float32(i)
		cloud.Y[i] = float32(i) * 0.5
		cloud.Z[i] = float32(i) * 0.25
	}
	cloud.SpeedField()

	cl, sr := net.Pipe()
	send, recv := NewConn(cl), NewConn(sr)
	defer send.Close()
	defer recv.Close()
	recv.SetDatasetReuse(true)

	errc := make(chan error, 1)
	go func() {
		for {
			typ, _, _, err := recv.Recv()
			if err != nil {
				errc <- err
				return
			}
			if typ == MsgDone {
				errc <- nil
				return
			}
			if err := recv.SendAck(0); err != nil {
				errc <- err
				return
			}
		}
	}()

	roundTrip := func() {
		if err := send.SendDataset(cloud); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := send.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pools: payload buffer, vtkio codecs, the receiver's reused
	// dataset, and the ack scratch all materialize on the first trips.
	for i := 0; i < 5; i++ {
		roundTrip()
	}
	// The round trip now includes the integrity machinery — CRC32C over
	// header+payload on send, the streaming crcReader plus trailer verify
	// on receive — all of which must stay inside the Conn's scratch state.
	// Proving the checksum actually ran keeps this a CRC-path gate rather
	// than a vacuous pass.
	checksummed := ctrCRCChecked.Value()
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs > 0 {
		t.Errorf("steady-state round trip allocates %.1f times per op, want 0 (CRC path included)", allocs)
	}
	if got := ctrCRCChecked.Value() - checksummed; got < 50 {
		t.Errorf("crc_checked advanced by %d during AllocsPerRun, want >= 50 (CRC path not exercised)", got)
	}

	if err := send.SendDone(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
