package transport

import (
	"net"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/raceflag"
)

// allocCloud builds the shape-stable dataset the steady-state gates
// stream: the same layout every step, as a coherent simulation produces.
func allocCloud(n int) *data.PointCloud {
	cloud := data.NewPointCloud(n)
	for i := 0; i < cloud.Count(); i++ {
		cloud.IDs[i] = int64(i)
		cloud.X[i] = float32(i)
		cloud.Y[i] = float32(i) * 0.5
		cloud.Z[i] = float32(i) * 0.25
	}
	cloud.SpeedField()
	return cloud
}

// allocHarness wires a sender and receiver Conn over an in-memory pipe
// with the receiver in dataset-reuse mode, drives the receive/ack loop in
// a goroutine, and returns a full round trip (send dataset, wait for ack)
// plus a finish func that drains the receiver and closes both ends. The
// advance callback, when non-nil, perturbs the dataset before each send
// so temporal codecs see real residuals rather than all-zero ones.
func allocHarness(t *testing.T, cloud *data.PointCloud, codec CodecID, advance func()) (roundTrip, finish func()) {
	t.Helper()
	cl, sr := net.Pipe()
	send, recv := NewConn(cl), NewConn(sr)
	send.SetCodec(codec)
	recv.SetDatasetReuse(true)

	errc := make(chan error, 1)
	go func() {
		for {
			typ, _, _, err := recv.Recv()
			if err != nil {
				errc <- err
				return
			}
			if typ == MsgDone {
				errc <- nil
				return
			}
			if err := recv.SendAck(0); err != nil {
				errc <- err
				return
			}
		}
	}()

	roundTrip = func() {
		if advance != nil {
			advance()
		}
		if err := send.SendDataset(cloud); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := send.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	finish = func() {
		if err := send.SendDone(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		send.Close()
		recv.Close()
	}
	return roundTrip, finish
}

// gateSteadyState warms the harness, then asserts the steady-state
// round-trip allocation budget while proving the CRC path actually ran.
func gateSteadyState(t *testing.T, codec CodecID, advance func(c *data.PointCloud), budget float64) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	cloud := allocCloud(10_000)
	var adv func()
	if advance != nil {
		adv = func() { advance(cloud) }
	}
	roundTrip, finish := allocHarness(t, cloud, codec, adv)
	defer finish()
	// Warm the pools: payload/wire/reference buffers, vtkio codecs, the
	// per-direction codec instances, the receiver's reused dataset, and
	// the ack scratch all materialize on the first trips.
	for i := 0; i < 5; i++ {
		roundTrip()
	}
	// The round trip includes the integrity machinery — CRC32C over
	// header+payload on send, the bulk trailer verify over the
	// materialized wire payload on receive — all of which must stay
	// inside the Conn's scratch state. Proving the checksum actually ran
	// keeps this a CRC-path gate rather than a vacuous pass.
	checksummed := ctrCRCChecked.Value()
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs > budget {
		t.Errorf("%s steady-state round trip allocates %.1f times per op, want <= %g (CRC path included)",
			codec, allocs, budget)
	}
	if got := ctrCRCChecked.Value() - checksummed; got < 50 {
		t.Errorf("crc_checked advanced by %d during AllocsPerRun, want >= 50 (CRC path not exercised)", got)
	}
}

// drift perturbs a slice of coordinates in place so successive frames
// carry genuine (non-zero) delta residuals without allocating.
func drift(c *data.PointCloud) {
	for i := 0; i < len(c.X); i += 97 {
		c.X[i] += 0.125
		c.Y[i] -= 0.0625
	}
}

// TestSendRecvSteadyStateAllocs locks in the zero-allocation steady state
// of the raw dataset path: after the first exchange warms the buffers, a
// full SendDataset / Recv / ack round trip must not allocate on either
// side. AllocsPerRun counts mallocs across all goroutines, so the
// receiver goroutine's decode is included in the budget.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	gateSteadyState(t, CodecRaw, nil, 0)
}

// TestDeltaSteadyStateAllocs is the acceptance gate for the temporal
// path: XOR delta encode, bulk CRC, delta decode, and the plain-payload
// reference swaps on both sides must all stay inside Conn-owned scratch —
// exactly zero allocations per round trip, same budget as raw.
func TestDeltaSteadyStateAllocs(t *testing.T) {
	gateSteadyState(t, CodecDelta, drift, 0)
}

// TestFlateSendSteadyStateAllocs gates the flate *send* path at zero: the
// flate writer, its sink buffer, and the frame scratch are all reused, so
// compressing and framing a steady stream must not allocate. The receive
// side is excluded by draining raw bytes instead of decoding (inflate
// allocates per dynamic block inside compress/flate; see the round-trip
// bound below).
func TestFlateSendSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	cloud := allocCloud(10_000)
	cl, sr := net.Pipe()
	send := NewConn(cl)
	defer send.Close()
	defer sr.Close()
	send.SetCodec(CodecFlate)

	// Drain the pipe with a persistent buffer so the sender never blocks
	// and the counting loop itself stays allocation-free.
	go func() {
		buf := make([]byte, 1<<20)
		for {
			if _, err := sr.Read(buf); err != nil {
				return
			}
		}
	}()

	sendOnce := func() {
		if err := send.SendDataset(cloud); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		sendOnce()
	}
	if allocs := testing.AllocsPerRun(50, sendOnce); allocs > 0 {
		t.Errorf("flate send allocates %.1f times per op, want 0", allocs)
	}
}

// TestFlateRoundTripAllocsBounded bounds the full compressed round trip.
// It cannot be zero with the standard library: flate's inflater rebuilds
// its Huffman link tables per dynamic block, and this ~240 KiB payload
// spans enough blocks to cost ~170 allocations on the decode side. The
// bound asserts that everything else — framing, CRC, buffers, the flate
// writer, the persistent reader — contributes nothing beyond that stdlib
// floor, and that a regression (an unpooled flate reader, a per-frame
// sink) fails loudly.
func TestFlateRoundTripAllocsBounded(t *testing.T) {
	gateSteadyState(t, CodecFlate, nil, 200)
}

// TestDeltaFlateRoundTripAllocsBounded is the flate bound applied to the
// composed codec. The XOR stage must add nothing, and because the
// residual stream is sparse (mostly zeros) it inflates through far fewer
// dynamic blocks than plain flate, so the budget is much tighter.
func TestDeltaFlateRoundTripAllocsBounded(t *testing.T) {
	gateSteadyState(t, CodecDeltaFlate, drift, 24)
}
