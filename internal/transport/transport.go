// Package transport implements ETH's inter-proxy communication: the
// socket layer and global layout file of §III-C. When the simulation and
// visualization proxies run as separate processes, each simulation rank
// opens a TCP port and appends "rank host:port" to a globally accessible
// layout file; each visualization rank then looks up its paired rank,
// waits for the port, and connects. Messages are length-prefixed frames
// with a one-byte type; datasets travel in the vtkio container format, so
// the wire payload is identical to the on-disk format.
//
// Dataset frames are integrity-checked and resumable: each carries the
// sender's step counter and a CRC32C trailer computed over the header and
// payload, so a flipped byte anywhere in the frame surfaces as
// ErrChecksum instead of a silently wrong dataset, and a receiver can
// recognize a re-sent step after a reconnect. Wire format v3 adds a codec
// ID byte to the dataset header — the payload-encoding axis (raw, flate,
// delta, delta+flate; see codec.go) is negotiated per frame, so a sender
// can open with a keyframe and switch to temporal encoding once both
// sides hold reference state. The wire layout is
//
//	MsgDatasetV3:               [1B type][8B payload len][8B step][1B codec][payload][4B CRC32C]
//	MsgDataset/MsgDatasetFlate: [1B type][8B payload len][8B step][payload][4B CRC32C]  (legacy v2)
//	MsgAck:                     [1B type][8B len=8][8B step]
//	MsgDone:                    [1B type][8B len=0]
//	MsgControl:                 [1B type][8B payload len][payload][4B CRC32C]
//
// with all integers big-endian. Receivers accept both framings; senders
// always emit v3. Connections optionally arm per-operation read/write
// deadlines (SetTimeouts) so a stalled peer surfaces as ErrTimeout, and
// DialBackoff rebuilds a connection through the layout file with capped
// exponential backoff and seeded jitter.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// Transport telemetry: byte counters plus per-message latency
// distributions for the serialize/send/recv legs of every transfer.
var (
	ctrBytesSent  = telemetry.Default.Counter("transport.bytes_sent")
	ctrBytesRecv  = telemetry.Default.Counter("transport.bytes_recv")
	ctrBytesPlain = telemetry.Default.Counter("transport.bytes_plain")
	ctrKeyframes  = telemetry.Default.Counter("transport.keyframes")
	ctrMessages   = telemetry.Default.Counter("transport.messages")
	ctrCRCChecked = telemetry.Default.Counter("transport.crc_checked")
	ctrCRCErrors  = telemetry.Default.Counter("transport.crc_errors")
	ctrTimeouts   = telemetry.Default.Counter("transport.timeouts")
	ctrRedials    = telemetry.Default.Counter("transport.redials")
	spanSerial    = telemetry.Default.Span("transport.serialize")
	spanSend      = telemetry.Default.Span("transport.send")
	spanRecv      = telemetry.Default.Span("transport.recv")
)

// MsgType tags a protocol frame.
type MsgType uint8

const (
	// MsgDataset carries a vtkio-encoded dataset (one time step).
	MsgDataset MsgType = iota + 1
	// MsgAck acknowledges processing of the previous dataset and carries
	// an 8-byte big-endian step counter.
	MsgAck
	// MsgDone signals the end of the run; no payload.
	MsgDone
	// MsgDatasetFlate carries a DEFLATE-compressed vtkio dataset — the
	// data-compression lever of the paper's introduction ("data
	// sampling, and compression"), applied on the in-situ interface.
	MsgDatasetFlate
	// MsgDatasetV3 carries a vtkio dataset under wire format v3: the
	// header gains a codec ID byte (see CodecID), so the payload encoding
	// is self-describing per frame. Senders always emit this framing;
	// Recv still reports every dataset framing as MsgDataset.
	MsgDatasetV3
	// MsgControl carries a small out-of-band control payload (steering
	// messages) upstream, against the dataset flow:
	//
	//	[1B type][8B payload len][payload][4B CRC32C]
	//
	// with the trailer computed over header+payload like a dataset
	// frame. Recv consumes control frames internally, handing the
	// payload to the OnControl handler, and keeps waiting for the next
	// data frame — control never perturbs the dataset protocol.
	MsgControl
)

// MaxControlFrame bounds a control payload: steering messages are tens
// of bytes, so anything beyond 64 KiB is a corrupt header or a hostile
// peer, rejected before allocation.
const MaxControlFrame = 1 << 16

// DefaultMaxFrame bounds a frame read from the wire (guards corrupt
// headers) when SetMaxFrame has not lowered it. 1 GiB fits in int on
// 32-bit platforms and comfortably exceeds any dataset the harness moves
// in one step.
const DefaultMaxFrame = 1 << 30

// datasetHeaderLen is the on-wire header of a legacy (v2) dataset frame:
// type (1) + payload length (8) + step (8). datasetHeaderLenV3 adds the
// codec ID byte of wire format v3.
const (
	datasetHeaderLen   = 17
	datasetHeaderLenV3 = 18
)

// castagnoli is the CRC32C polynomial table used for frame trailers
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors. All transport failures that recovery logic dispatches
// on wrap one of these, per the errwrap convention.
var (
	// ErrClosed is returned when the peer closed the stream mid-protocol.
	ErrClosed = errors.New("transport: connection closed by peer")
	// ErrChecksum is returned when a dataset frame's CRC32C trailer does
	// not match its contents: the frame was corrupted in transit.
	ErrChecksum = errors.New("transport: frame checksum mismatch")
	// ErrFrameTooLarge is returned when a frame header announces a length
	// outside the configured bound (a corrupt header or hostile peer).
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrTimeout is returned when an armed read or write deadline expires
	// before the operation completes (a stalled peer).
	ErrTimeout = errors.New("transport: deadline exceeded")
)

// Conn is a framed protocol connection between a simulation-proxy rank
// and its paired visualization-proxy rank.
type Conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// BytesSent and BytesReceived count payload bytes for the harness's
	// data-movement accounting.
	BytesSent     int64
	BytesReceived int64
	// Journal, when set, receives one serialize event and one transfer
	// event per dataset message; Rank and Step label them and are set by
	// the proxy driving the connection (the transport itself is
	// step-agnostic).
	Journal *journal.Writer
	Rank    int
	Step    int
	// codec selects the payload encoding for outgoing datasets. Temporal
	// codecs are downgraded to their Keyframe fallback until the first
	// frame of the connection succeeds (and again after any send error),
	// which is what resynchronizes delta state across reconnect, resume,
	// and skip — every one of those paths builds a fresh Conn.
	codec CodecID

	// Steady-state reuse scratch, split per direction so one sender plus
	// one receiver goroutine stay race-free: payload/swire/sprev serve
	// SendDataset, rwire/rplain/rprev/rrd serve Recv, and the scratch
	// arrays serve header and ack frames (a local array passed through
	// io.ReadFull escapes and allocates per call; a field on the
	// already-heap Conn does not). senc/rdec hold the lazily-built
	// per-direction codec instances; sprev/rprev retain the previous
	// step's *plain* payload — kept at the plain layer regardless of
	// codec, so switching codecs mid-stream never desynchronizes the
	// temporal reference.
	payload  payloadBuffer
	swire    payloadBuffer
	sprev    payloadBuffer
	sprevOK  bool
	senc     [numCodecs]Codec
	rwire    payloadBuffer
	rplain   payloadBuffer
	rprev    payloadBuffer
	rprevOK  bool
	rdec     [numCodecs]Codec
	rrd      bytes.Reader
	scratch  [22]byte // write side (headers, ack payloads, CRC trailers)
	rscratch [22]byte // read side, so one sender + one receiver goroutine stay race-free

	// maxFrame, when > 0, overrides DefaultMaxFrame as the inbound frame
	// bound; readTimeout/writeTimeout, when > 0, arm per-operation
	// deadlines on the underlying connection.
	maxFrame     int64
	readTimeout  time.Duration
	writeTimeout time.Duration

	// prev/reuse drive the decode-into path: when reuse is on, Recv hands
	// the previous step's dataset to vtkio.ReadInto so a shape-stable
	// stream of steps decodes with zero steady-state allocation.
	prev  data.Dataset
	reuse bool

	// onControl receives each MsgControl payload from inside Recv; ctrl
	// is the reusable receive buffer backing it (valid only until the
	// next Recv, like a reused dataset).
	onControl func(payload []byte) error
	ctrl      []byte
}

// NewConn wraps a net.Conn in the framed protocol.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<20),
		bw: bufio.NewWriterSize(c, 1<<20),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetCompression toggles DEFLATE compression for outgoing datasets —
// legacy sugar for SetCodec(CodecFlate) / SetCodec(CodecRaw). Either side
// may pick its codec independently; frames are self-describing.
func (c *Conn) SetCompression(on bool) {
	if on {
		c.codec = CodecFlate
	} else {
		c.codec = CodecRaw
	}
}

// SetCodec selects the payload codec for outgoing datasets. Temporal
// codecs (delta, delta+flate) automatically send a keyframe first — and
// after any send error — so the receiver always has reference state.
// Invalid IDs are rejected at send time.
func (c *Conn) SetCodec(id CodecID) { c.codec = id }

// Codec reports the configured outgoing codec.
func (c *Conn) Codec() CodecID { return c.codec }

// sendCodec returns the send-side instance of the codec, building it on
// first use.
func (c *Conn) sendCodec(id CodecID) Codec {
	if c.senc[id] == nil {
		c.senc[id] = newCodec(id)
	}
	return c.senc[id]
}

// recvCodec is sendCodec's receive-side counterpart; the instances are
// separate because codecs keep internal scratch and the two directions
// may run on different goroutines.
func (c *Conn) recvCodec(id CodecID) Codec {
	if c.rdec[id] == nil {
		c.rdec[id] = newCodec(id)
	}
	return c.rdec[id]
}

// SetDatasetReuse toggles in-place dataset reuse on Recv. When on, each
// received dataset recycles the arrays of the previous one (for
// shape-stable streams this makes Recv allocation-free at steady state),
// which means a dataset returned by Recv is INVALIDATED by the next Recv
// call. Leave it off (the default) if received datasets must outlive the
// next message.
func (c *Conn) SetDatasetReuse(on bool) {
	c.reuse = on
	if !on {
		c.prev = nil
	}
}

// SetMaxFrame lowers (or raises) the inbound frame-length bound from
// DefaultMaxFrame. Frames announcing more than n payload bytes are
// rejected with ErrFrameTooLarge before any allocation. n <= 0 restores
// the default.
func (c *Conn) SetMaxFrame(n int64) { c.maxFrame = n }

// SetTimeouts arms per-operation deadlines: every Recv gets read and
// every Send* gets write deadline now+d on the underlying connection.
// A deadline of 0 disables that direction. An expired deadline surfaces
// as an error wrapping ErrTimeout. The read deadline bounds the whole
// wait for the next frame, so size it for the peer's think time between
// steps, not just wire latency.
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout = read
	c.writeTimeout = write
}

// frameBound is the effective inbound frame limit.
func (c *Conn) frameBound() int64 {
	if c.maxFrame > 0 {
		return c.maxFrame
	}
	return DefaultMaxFrame
}

// armRead arms the read deadline for one Recv, when configured.
func (c *Conn) armRead() {
	if c.readTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
}

// armWrite arms the write deadline for one Send, when configured.
func (c *Conn) armWrite() {
	if c.writeTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
}

// readErr maps low-level read failures onto the transport's sentinels:
// deadline expiries wrap ErrTimeout, EOFs wrap ErrClosed.
func (c *Conn) readErr(err error) error {
	if err == nil {
		return nil
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		ctrTimeouts.Inc()
		return fmt.Errorf("transport: read deadline (%v) expired: %w", c.readTimeout, ErrTimeout)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("transport: peer closed the stream mid-read: %w", ErrClosed)
	}
	return err
}

// writeErr is readErr's write-side counterpart.
func (c *Conn) writeErr(err error) error {
	if err == nil {
		return nil
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		ctrTimeouts.Inc()
		return fmt.Errorf("transport: write deadline (%v) expired: %w", c.writeTimeout, ErrTimeout)
	}
	return err
}

// SendDataset streams ds as a MsgDatasetV3 frame under the configured
// codec. The first frame of a connection — and the first after any send
// error — is a keyframe when the codec is temporal, so the receiver can
// always rebuild delta state from the wire alone.
func (c *Conn) SendDataset(ds data.Dataset) error {
	// Encode to a buffer first to learn the length. Dataset payloads are
	// the dominant cost; an extra copy is acceptable for framing clarity.
	// The payload, wire, and reference buffers live on the Conn, so
	// steady-state sends reuse them in full.
	t0 := time.Now()
	if !c.codec.Valid() {
		return fmt.Errorf("transport: send with invalid codec %s", c.codec)
	}
	c.payload = c.payload[:0]
	if err := vtkio.Write(&c.payload, ds); err != nil {
		return err
	}
	return c.sendPayload(t0, ds.Count())
}

// SendPayload streams an already-serialized vtkio payload as a dataset
// frame under the configured codec — the fan-out entry point: a
// broadcaster serializes a dataset once and replays the bytes to every
// subscriber connection through each connection's own codec and temporal
// reference state. The bytes are copied into the Conn's scratch, so the
// caller keeps ownership of p.
func (c *Conn) SendPayload(p []byte) error {
	t0 := time.Now()
	if !c.codec.Valid() {
		return fmt.Errorf("transport: send with invalid codec %s", c.codec)
	}
	c.payload = append(c.payload[:0], p...)
	return c.sendPayload(t0, 0)
}

// sendPayload frames and sends c.payload (the plain vtkio bytes staged
// by SendDataset or SendPayload): codec encode, v3 header, CRC32C
// trailer, and the plain-layer temporal-reference swap.
func (c *Conn) sendPayload(t0 time.Time, elements int) error {
	plain := []byte(c.payload)
	id := c.codec
	if id.Temporal() && !c.sprevOK {
		id = id.Keyframe()
		ctrKeyframes.Inc()
	}
	out := plain
	if id != CodecRaw {
		enc, err := c.sendCodec(id).Encode(c.swire[:0], plain, c.sprev)
		if err != nil {
			c.sprevOK = false
			return err
		}
		c.swire = enc
		out = enc
	}
	serDur := time.Since(t0)
	spanSerial.Observe(serDur)
	c.Journal.Emit(journal.Event{
		Type: journal.TypeSerialize, Phase: journal.PhaseSerialize,
		Rank: c.Rank, Step: c.Step, DurNS: int64(serDur),
		Bytes: int64(len(out)), Elements: elements,
	})

	// Frame: 18-byte header (type, payload length, step, codec), payload,
	// then a CRC32C trailer over header+payload so any in-flight flip —
	// header and codec byte included — is detected at the receiver. The
	// step field is what lets the receiver recognize a duplicate after a
	// reconnect-and-resume.
	t1 := time.Now()
	c.armWrite()
	hdr := c.scratch[:datasetHeaderLenV3]
	hdr[0] = byte(MsgDatasetV3)
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(out)))
	binary.BigEndian.PutUint64(hdr[9:17], uint64(c.Step))
	hdr[17] = byte(id)
	crc := crc32.Update(0, castagnoli, hdr)
	crc = crc32.Update(crc, castagnoli, out)
	if _, err := c.bw.Write(hdr); err != nil {
		c.sprevOK = false
		return c.writeErr(err)
	}
	if _, err := c.bw.Write(out); err != nil {
		c.sprevOK = false
		return c.writeErr(err)
	}
	binary.BigEndian.PutUint32(c.scratch[18:22], crc)
	if _, err := c.bw.Write(c.scratch[18:22]); err != nil {
		c.sprevOK = false
		return c.writeErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.sprevOK = false
		return c.writeErr(err)
	}
	// The frame is on the wire: this step's plain payload becomes the
	// temporal reference for the next (a buffer swap, so the vacated
	// reference becomes next step's encode scratch).
	c.payload, c.sprev = c.sprev, c.payload
	c.sprevOK = true
	sendDur := time.Since(t1)
	c.BytesSent += int64(len(out))
	spanSend.Observe(sendDur)
	ctrBytesSent.Add(int64(len(out)))
	ctrBytesPlain.Add(int64(len(plain)))
	ctrMessages.Inc()
	c.Journal.Emit(journal.Event{
		Type: journal.TypeTransfer, Phase: journal.PhaseTransport,
		Rank: c.Rank, Step: c.Step, DurNS: int64(sendDur),
		Bytes: int64(len(out)), Detail: "send",
	})
	return nil
}

// SendAck sends an acknowledgment for the given step.
func (c *Conn) SendAck(step int64) error {
	c.armWrite()
	if err := c.writeHeader(MsgAck, 8); err != nil {
		return c.writeErr(err)
	}
	binary.BigEndian.PutUint64(c.scratch[:8], uint64(step))
	if _, err := c.bw.Write(c.scratch[:8]); err != nil {
		return c.writeErr(err)
	}
	return c.writeErr(c.bw.Flush())
}

// SendDone signals end of run.
func (c *Conn) SendDone() error {
	c.armWrite()
	if err := c.writeHeader(MsgDone, 0); err != nil {
		return c.writeErr(err)
	}
	return c.writeErr(c.bw.Flush())
}

// SendControl frames p as a MsgControl message with a CRC32C trailer
// over header+payload. It shares the write-side scratch with the other
// Send* methods, so it must be called from the connection's sending
// goroutine (in practice: between a Recv and the next SendAck on the
// receiving side of a dataset stream, or between Recvs on a subscriber
// connection).
func (c *Conn) SendControl(p []byte) error {
	if len(p) > MaxControlFrame {
		return fmt.Errorf("transport: control payload %d bytes exceeds %d: %w",
			len(p), MaxControlFrame, ErrFrameTooLarge)
	}
	c.armWrite()
	c.scratch[0] = byte(MsgControl)
	binary.BigEndian.PutUint64(c.scratch[1:9], uint64(len(p)))
	crc := crc32.Update(0, castagnoli, c.scratch[:9])
	crc = crc32.Update(crc, castagnoli, p)
	if _, err := c.bw.Write(c.scratch[:9]); err != nil {
		return c.writeErr(err)
	}
	if _, err := c.bw.Write(p); err != nil {
		return c.writeErr(err)
	}
	binary.BigEndian.PutUint32(c.scratch[9:13], crc)
	if _, err := c.bw.Write(c.scratch[9:13]); err != nil {
		return c.writeErr(err)
	}
	return c.writeErr(c.bw.Flush())
}

// OnControl installs the handler Recv invokes for each MsgControl
// payload. The payload slice is only valid for the duration of the call
// (the buffer is reused); a handler that needs to retain it must copy.
// A handler error aborts the Recv that consumed the frame. Without a
// handler, an incoming control frame is a protocol error.
func (c *Conn) OnControl(fn func(payload []byte) error) { c.onControl = fn }

// recvControl finishes receiving a control frame after the common
// 9-byte preamble (already in rscratch[:9]): payload, CRC verify over
// the exact wire bytes, then the OnControl handler.
func (c *Conn) recvControl(n int64) error {
	if n > MaxControlFrame {
		return fmt.Errorf("transport: control frame length %d exceeds %d: %w",
			n, MaxControlFrame, ErrFrameTooLarge)
	}
	if int64(cap(c.ctrl)) < n {
		c.ctrl = make([]byte, n)
	}
	c.ctrl = c.ctrl[:n]
	if _, err := io.ReadFull(c.br, c.ctrl); err != nil {
		return c.readErr(err)
	}
	if _, err := io.ReadFull(c.br, c.rscratch[9:13]); err != nil {
		return c.readErr(err)
	}
	crc := crc32.Update(0, castagnoli, c.rscratch[:9])
	crc = crc32.Update(crc, castagnoli, c.ctrl)
	if want := binary.BigEndian.Uint32(c.rscratch[9:13]); crc != want {
		ctrCRCErrors.Inc()
		return fmt.Errorf("transport: control frame: %w", ErrChecksum)
	}
	ctrCRCChecked.Inc()
	if c.onControl == nil {
		return fmt.Errorf("transport: unexpected control frame (no handler installed)")
	}
	return c.onControl(c.ctrl)
}

func (c *Conn) writeHeader(t MsgType, n int64) error {
	c.scratch[0] = byte(t)
	binary.BigEndian.PutUint64(c.scratch[1:9], uint64(n))
	_, err := c.bw.Write(c.scratch[:9])
	return err
}

// Recv reads the next frame. For dataset frames (any framing) the decoded
// dataset is returned as MsgDataset along with the sender's step counter
// from the frame header; for MsgAck the acknowledged step is in step;
// MsgDone has neither. A frame whose CRC32C trailer does not match yields
// an error wrapping ErrChecksum, never a silently wrong dataset — the
// trailer is verified over the exact wire bytes *before* any codec runs,
// so a flipped codec byte is a checksum error, not a misdecode.
func (c *Conn) Recv() (t MsgType, ds data.Dataset, step int64, err error) {
	// Control frames are consumed in place (handler + continue), so the
	// loop runs until a data frame or an error surfaces.
	for {
		c.armRead()
		if _, err = io.ReadFull(c.br, c.rscratch[:9]); err != nil {
			return 0, nil, 0, c.readErr(err)
		}
		t = MsgType(c.rscratch[0])
		n := int64(binary.BigEndian.Uint64(c.rscratch[1:9]))
		if n < 0 || n > c.frameBound() {
			return 0, nil, 0, fmt.Errorf("transport: frame length %d outside [0, %d]: %w",
				n, c.frameBound(), ErrFrameTooLarge)
		}
		switch t {
		case MsgDataset, MsgDatasetFlate, MsgDatasetV3:
			ds, step, err = c.recvDataset(t, n)
			if err != nil {
				// Whatever reference state we held may no longer match the
				// sender's; the next temporal frame must not decode against it.
				c.rprevOK = false
				return 0, nil, 0, err
			}
			return MsgDataset, ds, step, nil
		case MsgAck:
			if n != 8 {
				return 0, nil, 0, fmt.Errorf("transport: ack frame length %d", n)
			}
			if _, err = io.ReadFull(c.br, c.rscratch[:8]); err != nil {
				return 0, nil, 0, c.readErr(err)
			}
			return t, nil, int64(binary.BigEndian.Uint64(c.rscratch[:8])), nil
		case MsgDone:
			if n != 0 {
				return 0, nil, 0, fmt.Errorf("transport: done frame length %d", n)
			}
			return t, nil, 0, nil
		case MsgControl:
			if err := c.recvControl(n); err != nil {
				return 0, nil, 0, err
			}
		default:
			return 0, nil, 0, fmt.Errorf("transport: unknown message type %d", c.rscratch[0])
		}
	}
}

// recvDataset finishes receiving a dataset frame after the common 9-byte
// preamble: it materializes the wire payload into the Conn's receive
// buffer with amortized chunked growth (bounded by delivered bytes, so a
// hostile length cannot force a huge up-front allocation), verifies the
// CRC32C trailer over the exact wire bytes, and only then runs the codec
// and the vtkio decode. All scratch lives on the Conn, so a shape-stable
// stream of raw or delta frames decodes with zero steady-state
// allocation.
func (c *Conn) recvDataset(t MsgType, n int64) (ds data.Dataset, step int64, err error) {
	hdrLen := datasetHeaderLen
	if t == MsgDatasetV3 {
		hdrLen = datasetHeaderLenV3
	}
	if _, err = io.ReadFull(c.br, c.rscratch[9:hdrLen]); err != nil {
		return nil, 0, c.readErr(err)
	}
	step = int64(binary.BigEndian.Uint64(c.rscratch[9:17]))
	id := CodecRaw
	switch t {
	case MsgDatasetFlate:
		id = CodecFlate
	case MsgDatasetV3:
		id = CodecID(c.rscratch[17])
	}
	// Time the payload leg only: the header read above blocks on the
	// peer producing data, so including it would charge think-time to
	// the transport phase.
	t0 := time.Now()
	// Materialize the wire payload in ≤1 MiB chunks: growth happens only
	// just ahead of successfully delivered bytes, preserving the bounded-
	// allocation property of the old streaming path while letting the CRC
	// run over the buffer in bulk before any decode.
	c.rwire = c.rwire[:0]
	for remaining := n; remaining > 0; {
		k := int(remaining)
		if k > 1<<20 {
			k = 1 << 20
		}
		off := len(c.rwire)
		if cap(c.rwire)-off >= k {
			c.rwire = c.rwire[:off+k]
		} else {
			c.rwire = append(c.rwire, make([]byte, k)...)
		}
		if _, err = io.ReadFull(c.br, c.rwire[off:]); err != nil {
			return nil, 0, c.readErr(err)
		}
		remaining -= int64(k)
	}
	if _, err = io.ReadFull(c.br, c.rscratch[18:22]); err != nil {
		return nil, 0, c.readErr(err)
	}
	crc := crc32.Update(0, castagnoli, c.rscratch[:hdrLen])
	crc = crc32.Update(crc, castagnoli, c.rwire)
	if want := binary.BigEndian.Uint32(c.rscratch[18:22]); crc != want {
		ctrCRCErrors.Inc()
		return nil, 0, fmt.Errorf("transport: dataset frame step %d: %w", step, ErrChecksum)
	}
	ctrCRCChecked.Inc()

	// The frame is authentic; now interpret it. An unknown codec here
	// means a sender bug, not corruption (the CRC covered the codec byte).
	if !id.Valid() {
		return nil, 0, fmt.Errorf("transport: dataset frame step %d: unknown codec %d", step, c.rscratch[17])
	}
	if id.Temporal() && !c.rprevOK {
		return nil, 0, fmt.Errorf("transport: dataset frame step %d: %w", step, ErrDeltaState)
	}
	plain := []byte(c.rwire)
	if id != CodecRaw {
		plain, err = c.recvCodec(id).Decode(c.rplain[:0], c.rwire, c.rprev)
		if err != nil {
			return nil, 0, fmt.Errorf("transport: decoding dataset: %w", err)
		}
		c.rplain = plain
	}
	prev := c.prev
	c.prev = nil // never reuse through a failed decode
	c.rrd.Reset(plain)
	ds, decodeErr := vtkio.ReadInto(&c.rrd, prev)
	if decodeErr != nil {
		return nil, 0, fmt.Errorf("transport: decoding dataset: %w", decodeErr)
	}
	// Retain this step's plain payload as the temporal reference (a swap,
	// so the vacated buffer serves the next frame's read or decode).
	if id == CodecRaw {
		c.rwire, c.rprev = c.rprev, c.rwire
	} else {
		c.rplain, c.rprev = c.rprev, c.rplain
	}
	c.rprevOK = true
	if c.reuse {
		c.prev = ds
	}
	c.BytesReceived += n
	recvDur := time.Since(t0)
	spanRecv.Observe(recvDur)
	ctrBytesRecv.Add(n)
	c.Journal.Emit(journal.Event{
		Type: journal.TypeTransfer, Phase: journal.PhaseTransport,
		Rank: c.Rank, Step: c.Step, DurNS: int64(recvDur),
		Bytes: n, Elements: ds.Count(), Detail: "recv",
	})
	return ds, step, nil
}

// payloadBuffer is a minimal growable write buffer ([]byte as io.Writer).
type payloadBuffer []byte

func (b *payloadBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// ---- layout file (§III-C rendezvous) ----

// LayoutEntry records where one simulation-proxy rank listens.
type LayoutEntry struct {
	Rank int
	Addr string // host:port
}

// AppendLayout appends this rank's address to the layout file. Each entry
// is one line "rank addr\n" written with a single O_APPEND write so
// concurrent ranks do not interleave.
func AppendLayout(path string, e LayoutEntry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%d %s\n", e.Rank, e.Addr)
	if _, err := f.WriteString(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLayout parses the layout file into a rank -> address map.
func ReadLayout(path string) (map[int]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[int]string{}
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("transport: layout line %d malformed: %q", lineNo+1, line)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("transport: layout line %d rank: %w", lineNo+1, err)
		}
		out[rank] = fields[1]
	}
	return out, nil
}

// WaitLayout polls the layout file until it contains an entry for rank or
// the timeout expires — the "waits for the corresponding port to open"
// step of the paper's §III-C startup sequence.
func WaitLayout(path string, rank int, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		entries, err := ReadLayout(path)
		if err == nil {
			if addr, ok := entries[rank]; ok {
				return addr, nil
			}
		} else if !os.IsNotExist(err) {
			return "", err
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("transport: rank %d not in layout %s after %v", rank, path, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Listen opens a TCP listener on an OS-assigned port of host (empty =
// loopback) and registers it in the layout file under rank.
func Listen(layoutPath string, rank int, host string) (net.Listener, error) {
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, err
	}
	if err := AppendLayout(layoutPath, LayoutEntry{Rank: rank, Addr: ln.Addr().String()}); err != nil {
		ln.Close()
		return nil, err
	}
	return ln, nil
}

// Dial looks up rank in the layout file (waiting up to timeout for it to
// appear) and connects, retrying until the listener accepts or the
// timeout expires.
func Dial(layoutPath string, rank int, timeout time.Duration) (*Conn, error) {
	addr, err := WaitLayout(layoutPath, rank, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return NewConn(c), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dialing rank %d at %s: %w", rank, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
		// Re-resolve: layout files append, so a restarted simulation
		// proxy registers a fresh address that must win over a stale one.
		if entries, rerr := ReadLayout(layoutPath); rerr == nil {
			if fresh, ok := entries[rank]; ok {
				addr = fresh
			}
		}
	}
}

// Backoff parameterizes DialBackoff. The zero value is unusable; start
// from DefaultBackoff and override fields as needed.
type Backoff struct {
	Base       time.Duration // first retry delay
	Max        time.Duration // cap on any single delay
	Attempts   int           // total dial attempts before giving up
	Jitter     float64       // fraction of the delay randomized, in [0,1]
	Seed       int64         // jitter RNG seed; reproducible runs share seeds
	LayoutWait time.Duration // per-attempt wait for the rank's layout entry

	// Dial replaces net.DialTimeout when non-nil, letting tests and the
	// fault injector intercept connection attempts.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
}

// DefaultBackoff is the retry policy used when a caller passes a zero
// Attempts count: 8 attempts from 50ms doubling to a 1s cap with 20%
// jitter.
func DefaultBackoff(seed int64) Backoff {
	return Backoff{
		Base:       50 * time.Millisecond,
		Max:        time.Second,
		Attempts:   8,
		Jitter:     0.2,
		Seed:       seed,
		LayoutWait: 5 * time.Second,
	}
}

// delay returns the sleep before attempt i (i >= 1), exponentially grown
// from Base, capped at Max, with a seeded jitter fraction so concurrent
// dialers do not thundering-herd the listener.
func (b Backoff) delay(i int, rng *rand.Rand) time.Duration {
	d := b.Base << uint(i-1)
	if b.Max > 0 && (d > b.Max || d <= 0) {
		d = b.Max
	}
	if b.Jitter > 0 && rng != nil {
		f := 1 - b.Jitter + 2*b.Jitter*rng.Float64()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// DialBackoff connects to rank via the layout file like Dial, but with
// capped exponential backoff between attempts instead of a hot poll. The
// layout file is re-read before every attempt so a restarted listener's
// fresh address wins over a stale one — this is the reconnect path after
// a mid-run connection loss. Every attempt past the first increments the
// transport.redials counter.
func DialBackoff(layoutPath string, rank int, bo Backoff) (*Conn, error) {
	if bo.Attempts <= 0 {
		def := DefaultBackoff(bo.Seed)
		def.Dial = bo.Dial
		bo = def
	}
	dial := bo.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	var rng *rand.Rand
	if bo.Jitter > 0 {
		rng = rand.New(rand.NewSource(bo.Seed))
	}
	addr, err := WaitLayout(layoutPath, rank, bo.LayoutWait)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := 0; i < bo.Attempts; i++ {
		if i > 0 {
			ctrRedials.Inc()
			time.Sleep(bo.delay(i, rng))
			// Re-resolve: a restarted simulation proxy appends a fresh
			// address that must win over the stale one we first read.
			if entries, rerr := ReadLayout(layoutPath); rerr == nil {
				if fresh, ok := entries[rank]; ok {
					addr = fresh
				}
			}
		}
		c, err := dial("tcp", addr, time.Second)
		if err == nil {
			return NewConn(c), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: dialing rank %d at %s after %d attempts: %w",
		rank, addr, bo.Attempts, lastErr)
}

// openAppend opens path for appending; separated out for tests.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
