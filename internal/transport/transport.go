// Package transport implements ETH's inter-proxy communication: the
// socket layer and global layout file of §III-C. When the simulation and
// visualization proxies run as separate processes, each simulation rank
// opens a TCP port and appends "rank host:port" to a globally accessible
// layout file; each visualization rank then looks up its paired rank,
// waits for the port, and connects. Messages are length-prefixed frames
// with a one-byte type; datasets travel in the vtkio container format, so
// the wire payload is identical to the on-disk format.
package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// Transport telemetry: byte counters plus per-message latency
// distributions for the serialize/send/recv legs of every transfer.
var (
	ctrBytesSent = telemetry.Default.Counter("transport.bytes_sent")
	ctrBytesRecv = telemetry.Default.Counter("transport.bytes_recv")
	ctrMessages  = telemetry.Default.Counter("transport.messages")
	spanSerial   = telemetry.Default.Span("transport.serialize")
	spanSend     = telemetry.Default.Span("transport.send")
	spanRecv     = telemetry.Default.Span("transport.recv")
)

// MsgType tags a protocol frame.
type MsgType uint8

const (
	// MsgDataset carries a vtkio-encoded dataset (one time step).
	MsgDataset MsgType = iota + 1
	// MsgAck acknowledges processing of the previous dataset and carries
	// an 8-byte big-endian step counter.
	MsgAck
	// MsgDone signals the end of the run; no payload.
	MsgDone
	// MsgDatasetFlate carries a DEFLATE-compressed vtkio dataset — the
	// data-compression lever of the paper's introduction ("data
	// sampling, and compression"), applied on the in-situ interface.
	MsgDatasetFlate
)

// maxFrame bounds a frame read from the wire (guards corrupt headers).
const maxFrame = 1 << 36

// ErrClosed is returned when the peer closed the stream mid-protocol.
var ErrClosed = errors.New("transport: connection closed by peer")

// Conn is a framed protocol connection between a simulation-proxy rank
// and its paired visualization-proxy rank.
type Conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// BytesSent and BytesReceived count payload bytes for the harness's
	// data-movement accounting.
	BytesSent     int64
	BytesReceived int64
	// Journal, when set, receives one serialize event and one transfer
	// event per dataset message; Rank and Step label them and are set by
	// the proxy driving the connection (the transport itself is
	// step-agnostic).
	Journal *journal.Writer
	Rank    int
	Step    int
	// compress enables DEFLATE framing for outgoing datasets.
	compress bool

	// Steady-state reuse scratch: the encode payload and compression
	// buffers persist across SendDataset calls, the flate coder pair and
	// limit reader persist across messages, and scratch serves header and
	// ack frames (a local array passed through io.ReadFull escapes and
	// allocates per call; a field on the already-heap Conn does not).
	payload  payloadBuffer
	zbuf     bytes.Buffer
	zw       *flate.Writer
	zr       io.ReadCloser
	lr       io.LimitedReader
	scratch  [16]byte // write side (headers, ack payloads)
	rscratch [16]byte // read side, so one sender + one receiver goroutine stay race-free

	// prev/reuse drive the decode-into path: when reuse is on, Recv hands
	// the previous step's dataset to vtkio.ReadInto so a shape-stable
	// stream of steps decodes with zero steady-state allocation.
	prev  data.Dataset
	reuse bool
}

// NewConn wraps a net.Conn in the framed protocol.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<20),
		bw: bufio.NewWriterSize(c, 1<<20),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetCompression toggles DEFLATE compression for outgoing datasets.
// Either side may enable it independently; receivers handle both framings
// transparently.
func (c *Conn) SetCompression(on bool) { c.compress = on }

// SetDatasetReuse toggles in-place dataset reuse on Recv. When on, each
// received dataset recycles the arrays of the previous one (for
// shape-stable streams this makes Recv allocation-free at steady state),
// which means a dataset returned by Recv is INVALIDATED by the next Recv
// call. Leave it off (the default) if received datasets must outlive the
// next message.
func (c *Conn) SetDatasetReuse(on bool) {
	c.reuse = on
	if !on {
		c.prev = nil
	}
}

// SendDataset streams ds as a MsgDataset (or MsgDatasetFlate) frame.
func (c *Conn) SendDataset(ds data.Dataset) error {
	// Encode to a buffer first to learn the length. Dataset payloads are
	// the dominant cost; an extra copy is acceptable for framing clarity.
	// The payload buffer (and on the compressed path the flate buffer and
	// writer) live on the Conn, so steady-state sends reuse them in full.
	t0 := time.Now()
	c.payload = c.payload[:0]
	if err := vtkio.Write(&c.payload, ds); err != nil {
		return err
	}
	typ := MsgDataset
	out := []byte(c.payload)
	if c.compress {
		c.zbuf.Reset()
		if c.zw == nil {
			zw, err := flate.NewWriter(&c.zbuf, flate.BestSpeed)
			if err != nil {
				return err
			}
			c.zw = zw
		} else {
			c.zw.Reset(&c.zbuf)
		}
		if _, err := c.zw.Write(out); err != nil {
			return err
		}
		if err := c.zw.Close(); err != nil {
			return err
		}
		typ = MsgDatasetFlate
		out = c.zbuf.Bytes()
	}
	serDur := time.Since(t0)
	spanSerial.Observe(serDur)
	c.Journal.Emit(journal.Event{
		Type: journal.TypeSerialize, Phase: journal.PhaseSerialize,
		Rank: c.Rank, Step: c.Step, DurNS: int64(serDur),
		Bytes: int64(len(out)), Elements: ds.Count(),
	})

	t1 := time.Now()
	if err := c.writeHeader(typ, int64(len(out))); err != nil {
		return err
	}
	if _, err := c.bw.Write(out); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	sendDur := time.Since(t1)
	c.BytesSent += int64(len(out))
	spanSend.Observe(sendDur)
	ctrBytesSent.Add(int64(len(out)))
	ctrMessages.Inc()
	c.Journal.Emit(journal.Event{
		Type: journal.TypeTransfer, Phase: journal.PhaseTransport,
		Rank: c.Rank, Step: c.Step, DurNS: int64(sendDur),
		Bytes: int64(len(out)), Detail: "send",
	})
	return nil
}

// SendAck sends an acknowledgment for the given step.
func (c *Conn) SendAck(step int64) error {
	if err := c.writeHeader(MsgAck, 8); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(c.scratch[:8], uint64(step))
	if _, err := c.bw.Write(c.scratch[:8]); err != nil {
		return err
	}
	return c.bw.Flush()
}

// SendDone signals end of run.
func (c *Conn) SendDone() error {
	if err := c.writeHeader(MsgDone, 0); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Conn) writeHeader(t MsgType, n int64) error {
	c.scratch[0] = byte(t)
	binary.BigEndian.PutUint64(c.scratch[1:9], uint64(n))
	_, err := c.bw.Write(c.scratch[:9])
	return err
}

// Recv reads the next frame. For MsgDataset the decoded dataset is
// returned; for MsgAck the step counter is in step; MsgDone has neither.
func (c *Conn) Recv() (t MsgType, ds data.Dataset, step int64, err error) {
	if _, err = io.ReadFull(c.br, c.rscratch[:9]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, 0, ErrClosed
		}
		return 0, nil, 0, err
	}
	t = MsgType(c.rscratch[0])
	n := int64(binary.BigEndian.Uint64(c.rscratch[1:9]))
	if n < 0 || n > maxFrame {
		return 0, nil, 0, fmt.Errorf("transport: implausible frame length %d", n)
	}
	switch t {
	case MsgDataset, MsgDatasetFlate:
		// Time the payload leg only: the header read above blocks on the
		// peer producing data, so including it would charge think-time to
		// the transport phase.
		t0 := time.Now()
		c.lr.R, c.lr.N = c.br, n
		lr := &c.lr
		var payload io.Reader = lr
		if t == MsgDatasetFlate {
			if c.zr == nil {
				c.zr = flate.NewReader(lr)
			} else if err := c.zr.(flate.Resetter).Reset(lr, nil); err != nil {
				return 0, nil, 0, err
			}
			payload = c.zr
		}
		prev := c.prev
		c.prev = nil // never reuse through a failed decode
		ds, err = vtkio.ReadInto(payload, prev)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("transport: decoding dataset: %w", err)
		}
		if c.reuse {
			c.prev = ds
		}
		if t == MsgDatasetFlate {
			if cerr := c.zr.Close(); cerr != nil {
				return 0, nil, 0, cerr
			}
		}
		// Drain any remainder (vtkio reads exactly its payload, but be safe).
		if _, derr := io.Copy(io.Discard, lr); derr != nil {
			return 0, nil, 0, derr
		}
		c.BytesReceived += n
		recvDur := time.Since(t0)
		spanRecv.Observe(recvDur)
		ctrBytesRecv.Add(n)
		c.Journal.Emit(journal.Event{
			Type: journal.TypeTransfer, Phase: journal.PhaseTransport,
			Rank: c.Rank, Step: c.Step, DurNS: int64(recvDur),
			Bytes: n, Elements: ds.Count(), Detail: "recv",
		})
		return MsgDataset, ds, 0, nil
	case MsgAck:
		if n != 8 {
			return 0, nil, 0, fmt.Errorf("transport: ack frame length %d", n)
		}
		if _, err = io.ReadFull(c.br, c.rscratch[:8]); err != nil {
			return 0, nil, 0, err
		}
		return t, nil, int64(binary.BigEndian.Uint64(c.rscratch[:8])), nil
	case MsgDone:
		if n != 0 {
			return 0, nil, 0, fmt.Errorf("transport: done frame length %d", n)
		}
		return t, nil, 0, nil
	default:
		return 0, nil, 0, fmt.Errorf("transport: unknown message type %d", c.rscratch[0])
	}
}

// payloadBuffer is a minimal growable write buffer ([]byte as io.Writer).
type payloadBuffer []byte

func (b *payloadBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// ---- layout file (§III-C rendezvous) ----

// LayoutEntry records where one simulation-proxy rank listens.
type LayoutEntry struct {
	Rank int
	Addr string // host:port
}

// AppendLayout appends this rank's address to the layout file. Each entry
// is one line "rank addr\n" written with a single O_APPEND write so
// concurrent ranks do not interleave.
func AppendLayout(path string, e LayoutEntry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%d %s\n", e.Rank, e.Addr)
	if _, err := f.WriteString(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLayout parses the layout file into a rank -> address map.
func ReadLayout(path string) (map[int]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[int]string{}
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("transport: layout line %d malformed: %q", lineNo+1, line)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("transport: layout line %d rank: %w", lineNo+1, err)
		}
		out[rank] = fields[1]
	}
	return out, nil
}

// WaitLayout polls the layout file until it contains an entry for rank or
// the timeout expires — the "waits for the corresponding port to open"
// step of the paper's §III-C startup sequence.
func WaitLayout(path string, rank int, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		entries, err := ReadLayout(path)
		if err == nil {
			if addr, ok := entries[rank]; ok {
				return addr, nil
			}
		} else if !os.IsNotExist(err) {
			return "", err
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("transport: rank %d not in layout %s after %v", rank, path, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Listen opens a TCP listener on an OS-assigned port of host (empty =
// loopback) and registers it in the layout file under rank.
func Listen(layoutPath string, rank int, host string) (net.Listener, error) {
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, err
	}
	if err := AppendLayout(layoutPath, LayoutEntry{Rank: rank, Addr: ln.Addr().String()}); err != nil {
		ln.Close()
		return nil, err
	}
	return ln, nil
}

// Dial looks up rank in the layout file (waiting up to timeout for it to
// appear) and connects, retrying until the listener accepts or the
// timeout expires.
func Dial(layoutPath string, rank int, timeout time.Duration) (*Conn, error) {
	addr, err := WaitLayout(layoutPath, rank, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return NewConn(c), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dialing rank %d at %s: %w", rank, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
		// Re-resolve: layout files append, so a restarted simulation
		// proxy registers a fresh address that must win over a stale one.
		if entries, rerr := ReadLayout(layoutPath); rerr == nil {
			if fresh, ok := entries[rank]; ok {
				addr = fresh
			}
		}
	}
}

// openAppend opens path for appending; separated out for tests.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
