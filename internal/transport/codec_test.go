package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
)

func TestParseCodec(t *testing.T) {
	for id, name := range Codecs() {
		got, err := ParseCodec(name)
		if err != nil || got != CodecID(id) {
			t.Errorf("ParseCodec(%q) = %v, %v; want %v", name, got, err, CodecID(id))
		}
		if got.String() != name {
			t.Errorf("CodecID(%d).String() = %q, want %q", id, got.String(), name)
		}
	}
	if got, err := ParseCodec(""); err != nil || got != CodecRaw {
		t.Errorf("ParseCodec(\"\") = %v, %v; want raw", got, err)
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Error("ParseCodec accepted an unknown codec")
	}
}

func TestCodecIDProperties(t *testing.T) {
	cases := []struct {
		id       CodecID
		temporal bool
		keyframe CodecID
	}{
		{CodecRaw, false, CodecRaw},
		{CodecFlate, false, CodecFlate},
		{CodecDelta, true, CodecRaw},
		{CodecDeltaFlate, true, CodecFlate},
	}
	for _, c := range cases {
		if !c.id.Valid() {
			t.Errorf("%v not valid", c.id)
		}
		if c.id.Temporal() != c.temporal {
			t.Errorf("%v.Temporal() = %v", c.id, c.id.Temporal())
		}
		if c.id.Keyframe() != c.keyframe {
			t.Errorf("%v.Keyframe() = %v, want %v", c.id, c.id.Keyframe(), c.keyframe)
		}
	}
	if numCodecs.Valid() {
		t.Error("out-of-range codec ID reports valid")
	}
}

func TestXorDeltaSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Lengths straddle the 8-byte word loop and the byte-wise tail, and
	// the shorter/longer prev cases exercise the verbatim-copy path.
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000, 1001} {
		for _, pn := range []int{0, n / 2, n, n + 13} {
			cur, prev := make([]byte, n), make([]byte, pn)
			rng.Read(cur)
			rng.Read(prev)
			res := xorDelta(nil, cur, prev)
			if len(res) != n {
				t.Fatalf("n=%d pn=%d: residual length %d", n, pn, len(res))
			}
			back := xorDelta(nil, res, prev)
			if !bytes.Equal(back, cur) {
				t.Fatalf("n=%d pn=%d: xorDelta not self-inverse", n, pn)
			}
		}
	}
}

func TestCodecEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	plain, prev := make([]byte, 4096), make([]byte, 4096)
	rng.Read(plain)
	copy(prev, plain)
	for i := 0; i < len(prev); i += 31 {
		prev[i] ^= 0x55
	}
	for id := CodecID(0); id < numCodecs; id++ {
		var ref []byte
		if id.Temporal() {
			ref = prev
		}
		// Separate encoder and decoder instances, as the Conn keeps them.
		enc, dec := newCodec(id), newCodec(id)
		wire, err := enc.Encode(nil, plain, ref)
		if err != nil {
			t.Fatalf("%v: encode: %v", id, err)
		}
		got, err := dec.Decode(nil, wire, ref)
		if err != nil {
			t.Fatalf("%v: decode: %v", id, err)
		}
		if !bytes.Equal(got, plain) {
			t.Errorf("%v: round trip not bit-exact", id)
		}
		if id == CodecDelta && len(wire) != len(plain) {
			t.Errorf("delta wire length %d != plain length %d", len(wire), len(plain))
		}
		if enc.ID() != id {
			t.Errorf("%v reports ID %v", id, enc.ID())
		}
	}
}

func TestTemporalCodecsRequireReference(t *testing.T) {
	for _, id := range []CodecID{CodecDelta, CodecDeltaFlate} {
		c := newCodec(id)
		if _, err := c.Encode(nil, []byte{1, 2, 3}, nil); !errors.Is(err, ErrDeltaState) {
			t.Errorf("%v encode without prev: err = %v, want ErrDeltaState", id, err)
		}
		if _, err := c.Decode(nil, []byte{1, 2, 3}, nil); !errors.Is(err, ErrDeltaState) {
			t.Errorf("%v decode without prev: err = %v, want ErrDeltaState", id, err)
		}
	}
}

// TestKeyframeThenDelta proves the temporal send path opens with exactly
// one keyframe and then stays in delta mode: three coherent steps over
// one connection advance the keyframes counter once, and every frame
// decodes bit-exact.
func TestKeyframeThenDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	steps := []*data.PointCloud{fuzzCloud(300, rng), fuzzCloud(300, rng), fuzzCloud(300, rng)}
	for _, codec := range []CodecID{CodecDelta, CodecDeltaFlate} {
		before := ctrKeyframes.Value()
		dss := make([]data.Dataset, len(steps))
		for i, s := range steps {
			dss[i] = s
		}
		frames := encodeStream(codec, 0, dss...)
		if got := ctrKeyframes.Value() - before; got != 1 {
			t.Errorf("%v: %d keyframes over 3 sends, want 1", codec, got)
		}
		// Frame 1 carries the keyframe fallback codec; frames 2+ carry the
		// temporal codec itself. The ID byte sits at offset 17 of the v3
		// header.
		if got := CodecID(frames[0][17]); got != codec.Keyframe() {
			t.Errorf("%v: keyframe encoded as %v, want %v", codec, got, codec.Keyframe())
		}
		for i := 1; i < len(frames); i++ {
			if got := CodecID(frames[i][17]); got != codec {
				t.Errorf("%v: frame %d encoded as %v", codec, i, got)
			}
		}
		c := NewConn(&memConn{r: bytes.NewReader(bytes.Join(frames, nil))})
		for i, want := range steps {
			_, ds, step, err := c.Recv()
			if err != nil {
				t.Fatalf("%v frame %d: %v", codec, i, err)
			}
			if step != int64(i) {
				t.Errorf("%v frame %d: step %d", codec, i, step)
			}
			if got, ok := ds.(*data.PointCloud); !ok || !cloudEqual(got, want) {
				t.Errorf("%v frame %d: not bit-exact", codec, i)
			}
		}
	}
}

// TestDeltaWithoutKeyframeFails feeds a receiver a delta frame with no
// preceding keyframe — the resume-after-restart shape — and requires the
// ErrDeltaState protocol error rather than garbage output.
func TestDeltaWithoutKeyframeFails(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s1, s2 := fuzzCloud(100, rng), fuzzCloud(100, rng)
	frames := encodeStream(CodecDelta, 0, s1, s2)
	c := NewConn(&memConn{r: bytes.NewReader(frames[1])}) // delta frame only
	if _, _, _, err := c.Recv(); !errors.Is(err, ErrDeltaState) {
		t.Fatalf("delta-without-keyframe err = %v, want ErrDeltaState", err)
	}
}

// TestMixedCodecStream switches the codec between every frame on one
// connection. The reference state lives at the plain-payload layer on
// both sides, so raw and flate frames keep the temporal codecs' state
// fresh and a switch into delta needs no new keyframe.
func TestMixedCodecStream(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	order := []CodecID{CodecRaw, CodecDelta, CodecFlate, CodecDeltaFlate, CodecDelta, CodecRaw}
	steps := make([]*data.PointCloud, len(order))
	for i := range steps {
		steps[i] = fuzzCloud(250, rng)
	}
	mc := &memConn{}
	send := NewConn(mc)
	for i, s := range steps {
		send.SetCodec(order[i])
		send.Step = i
		if err := send.SendDataset(s); err != nil {
			t.Fatalf("frame %d (%v): %v", i, order[i], err)
		}
	}
	recv := NewConn(&memConn{r: bytes.NewReader(mc.w.Bytes())})
	for i, want := range steps {
		_, ds, step, err := recv.Recv()
		if err != nil {
			t.Fatalf("frame %d (%v): %v", i, order[i], err)
		}
		if step != int64(i) {
			t.Errorf("frame %d: step %d", i, step)
		}
		if got, ok := ds.(*data.PointCloud); !ok || !cloudEqual(got, want) {
			t.Errorf("frame %d (%v): not bit-exact", i, order[i])
		}
	}
	// The raw opener trained the reference state, so the first delta frame
	// needed no keyframe fallback: every frame carries its configured ID.
	// (Offset 17 is the v3 header's codec byte.)
	wire := mc.w.Bytes()
	off := 0
	for i, id := range order {
		if got := CodecID(wire[off+17]); got != id {
			t.Errorf("frame %d: wire codec %v, want %v", i, got, id)
		}
		payload := int(binary.BigEndian.Uint64(wire[off+1 : off+9]))
		off += datasetHeaderLenV3 + payload + 4 // header, payload, CRC trailer
	}
}

// TestSendDatasetRejectsInvalidCodec guards the axis boundary: a Conn
// forced to an out-of-range codec must fail loudly on send, not emit an
// undecodable frame.
func TestSendDatasetRejectsInvalidCodec(t *testing.T) {
	c := NewConn(&memConn{})
	c.SetCodec(numCodecs)
	if err := c.SendDataset(sampleCloud(10)); err == nil {
		t.Fatal("SendDataset accepted an invalid codec")
	}
}
