package transport

// FuzzFrameFlip is the wire-format integrity fuzzer: a dataset frame is
// encoded once, then the fuzzer flips an arbitrary byte with an
// arbitrary mask. A zero mask must round-trip cleanly (bit-exact
// dataset, correct step); any non-zero flip — header, step, payload, or
// trailer, plain or compressed — must surface as an error, never a
// silently wrong dataset. CRC32C guarantees detection of any single-byte
// change, so a survivor here is a real hole in the framing.

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
)

// memConn adapts an in-memory byte stream to net.Conn: reads come from
// r, writes accumulate in w, deadlines are accepted and ignored.
type memConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (m *memConn) Read(p []byte) (int, error) {
	if m.r == nil {
		return 0, net.ErrClosed
	}
	return m.r.Read(p)
}
func (m *memConn) Write(p []byte) (int, error)      { return m.w.Write(p) }
func (m *memConn) Close() error                     { return nil }
func (m *memConn) LocalAddr() net.Addr              { return memAddr{} }
func (m *memConn) RemoteAddr() net.Addr             { return memAddr{} }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// encodeFrame serializes one dataset frame (with step) into bytes.
func encodeFrame(tb testing.TB, ds data.Dataset, compress bool, step int) []byte {
	tb.Helper()
	mc := &memConn{}
	c := NewConn(mc)
	c.SetCompression(compress)
	c.Step = step
	if err := c.SendDataset(ds); err != nil {
		tb.Fatal(err)
	}
	return append([]byte(nil), mc.w.Bytes()...)
}

func decodeFrame(frame []byte) (data.Dataset, int64, error) {
	c := NewConn(&memConn{r: bytes.NewReader(frame)})
	typ, ds, step, err := c.Recv()
	if err == nil && typ != MsgDataset {
		return nil, 0, err
	}
	return ds, step, err
}

func FuzzFrameFlip(f *testing.F) {
	want := sampleCloud(200)
	frames := [2][]byte{
		encodeFrame(f, want, false, 5),
		encodeFrame(f, want, true, 5),
	}
	f.Add(false, uint32(0), byte(0))    // clean plain frame
	f.Add(true, uint32(0), byte(0))     // clean compressed frame
	f.Add(false, uint32(0), byte(0xff)) // type byte
	f.Add(false, uint32(3), byte(0x80)) // length field
	f.Add(false, uint32(12), byte(1))   // step field
	f.Add(false, uint32(40), byte(0xa5))
	f.Add(true, uint32(40), byte(0xa5)) // compressed payload
	f.Add(false, uint32(1<<31), byte(2))
	f.Fuzz(func(t *testing.T, compressed bool, pos uint32, mask byte) {
		frame := frames[0]
		if compressed {
			frame = frames[1]
		}
		if mask == 0 {
			ds, step, err := decodeFrame(frame)
			if err != nil {
				t.Fatalf("clean frame failed to decode: %v", err)
			}
			got, ok := ds.(*data.PointCloud)
			if !ok || !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.X, want.X) {
				t.Fatal("clean frame round-trip not bit-exact")
			}
			if step != 5 {
				t.Fatalf("clean frame step = %d, want 5", step)
			}
			return
		}
		flipped := append([]byte(nil), frame...)
		flipped[int(pos)%len(flipped)] ^= mask
		if ds, _, err := decodeFrame(flipped); err == nil {
			t.Fatalf("byte %d flipped with %#x decoded silently (ds=%v)",
				int(pos)%len(flipped), mask, ds != nil)
		}
	})
}
