package transport

// FuzzFrameFlip is the wire-format integrity fuzzer, extended to wire
// format v3: for every codec a two-frame stream is encoded once (for the
// temporal codecs that is a keyframe followed by a genuine delta frame),
// then the fuzzer flips an arbitrary byte with an arbitrary mask. A zero
// mask must round-trip the whole stream cleanly — bit-exact datasets,
// correct steps. Any non-zero flip — type byte, length, step, the v3
// codec ID byte, payload, or trailer — must be detected: no Recv may
// ever return a dataset that differs from what was sent. CRC32C covers
// the header (codec byte included) and payload, so a flipped codec byte
// surfaces as ErrChecksum rather than a frame decoded under the wrong
// codec; a survivor here is a real hole in the framing.
//
// FuzzDeltaRoundTrip attacks the temporal codecs from the other side:
// random shape-stable step pairs (same particle count, arbitrary values)
// must survive the keyframe+delta round trip bit-exact, and the delta
// codec's wire frames must stay length-preserving.

import (
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
)

// memConn adapts an in-memory byte stream to net.Conn: reads come from
// r, writes accumulate in w, deadlines are accepted and ignored.
type memConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (m *memConn) Read(p []byte) (int, error) {
	if m.r == nil {
		return 0, net.ErrClosed
	}
	return m.r.Read(p)
}
func (m *memConn) Write(p []byte) (int, error)      { return m.w.Write(p) }
func (m *memConn) Close() error                     { return nil }
func (m *memConn) LocalAddr() net.Addr              { return memAddr{} }
func (m *memConn) RemoteAddr() net.Addr             { return memAddr{} }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// encodeStream serializes the datasets as consecutive frames on one
// sending Conn under the given codec — so for temporal codecs the first
// frame is a keyframe and later frames carry real deltas — and returns
// each frame's bytes separately. Steps count from firstStep. It panics
// on error so it can run during fuzz-corpus construction.
func encodeStream(codec CodecID, firstStep int, steps ...data.Dataset) [][]byte {
	mc := &memConn{}
	c := NewConn(mc)
	c.SetCodec(codec)
	frames := make([][]byte, 0, len(steps))
	prev := 0
	for i, ds := range steps {
		c.Step = firstStep + i
		if err := c.SendDataset(ds); err != nil {
			panic(err)
		}
		all := mc.w.Bytes()
		frames = append(frames, append([]byte(nil), all[prev:]...))
		prev = len(all)
	}
	return frames
}

// cloudEqual compares the exported payload of two point clouds (the
// unexported bounds cache is lazily populated and irrelevant to the
// wire).
func cloudEqual(a, b *data.PointCloud) bool {
	return reflect.DeepEqual(a.IDs, b.IDs) &&
		reflect.DeepEqual(a.X, b.X) && reflect.DeepEqual(a.Y, b.Y) && reflect.DeepEqual(a.Z, b.Z) &&
		reflect.DeepEqual(a.VX, b.VX) && reflect.DeepEqual(a.VY, b.VY) && reflect.DeepEqual(a.VZ, b.VZ) &&
		reflect.DeepEqual(a.Fields, b.Fields)
}

// fuzzCloud builds an n-particle cloud with values drawn from rng.
func fuzzCloud(n int, rng *rand.Rand) *data.PointCloud {
	c := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		c.IDs[i] = int64(rng.Uint64())
		c.X[i] = float32(rng.NormFloat64())
		c.Y[i] = float32(rng.NormFloat64())
		c.Z[i] = float32(rng.NormFloat64())
		c.VX[i] = float32(rng.NormFloat64())
		c.VY[i] = float32(rng.NormFloat64())
		c.VZ[i] = float32(rng.NormFloat64())
	}
	c.SpeedField()
	return c
}

// flipStream is one codec's precomputed two-frame fuzz stream.
type flipStream struct {
	frames [][]byte
	wants  []*data.PointCloud
}

// buildFlipStreams encodes the per-codec streams the flip fuzzer
// mutates: two shape-stable steps with different values, so temporal
// codecs emit one keyframe and one genuine delta frame.
func buildFlipStreams() [numCodecs]flipStream {
	rng := rand.New(rand.NewSource(42))
	s1, s2 := fuzzCloud(200, rng), fuzzCloud(200, rng)
	var out [numCodecs]flipStream
	for id := CodecID(0); id < numCodecs; id++ {
		out[id] = flipStream{
			frames: encodeStream(id, 5, s1, s2),
			wants:  []*data.PointCloud{s1, s2},
		}
	}
	return out
}

func FuzzFrameFlip(f *testing.F) {
	streams := buildFlipStreams()
	for id := CodecID(0); id < numCodecs; id++ {
		b := uint8(id)
		f.Add(b, uint32(0), byte(0))    // clean stream
		f.Add(b, uint32(0), byte(0xff)) // type byte, frame 1
		f.Add(b, uint32(3), byte(0x80)) // length field
		f.Add(b, uint32(12), byte(1))   // step field
		f.Add(b, uint32(17), byte(2))   // v3 codec ID byte, frame 1
		f.Add(b, uint32(40), byte(0xa5))
		// Same offsets inside frame 2 — for temporal codecs that is the
		// delta frame, including its codec ID byte at offset 17.
		off := uint32(len(streams[id].frames[0]))
		f.Add(b, off, byte(0xff))
		f.Add(b, off+17, byte(2))
		f.Add(b, off+40, byte(0xa5))
		f.Add(b, uint32(1<<31), byte(2))
	}
	f.Fuzz(func(t *testing.T, codecByte uint8, pos uint32, mask byte) {
		id := CodecID(codecByte) % numCodecs
		st := streams[id]
		stream := bytes.Join(st.frames, nil)
		if mask != 0 {
			flipped := append([]byte(nil), stream...)
			flipped[int(pos)%len(flipped)] ^= mask
			stream = flipped
		}
		c := NewConn(&memConn{r: bytes.NewReader(stream)})
		clean := 0
		for i, want := range st.wants {
			typ, ds, step, err := c.Recv()
			if err != nil {
				break // corruption detected: acceptable for mask != 0
			}
			if typ != MsgDataset {
				// A type-byte flip can turn a dataset frame into another
				// valid message (e.g. MsgDone). The dataset is lost, never
				// silently wrong; the consumer sees a protocol violation.
				break
			}
			got, ok := ds.(*data.PointCloud)
			if !ok || !cloudEqual(got, want) {
				t.Fatalf("codec %v frame %d: Recv succeeded with a corrupted dataset (mask %#x at %d)",
					id, i, mask, int(pos)%len(stream))
			}
			if step != int64(5+i) {
				t.Fatalf("codec %v frame %d: step = %d, want %d", id, i, step, 5+i)
			}
			clean++
		}
		if mask == 0 && clean != len(st.wants) {
			t.Fatalf("codec %v: clean stream decoded %d/%d frames", id, clean, len(st.wants))
		}
		if mask != 0 && clean == len(st.wants) {
			t.Fatalf("codec %v: byte %d flipped with %#x and the whole stream still decoded",
				id, int(pos)%len(stream), mask)
		}
	})
}

// FuzzDeltaRoundTrip drives the temporal codecs with random shape-stable
// step pairs: any two same-count clouds must survive keyframe+delta
// encoding bit-exact, and the plain delta codec's frames must keep the
// raw frame length (length-preserving residuals are what keep fault
// schedules aligned across codecs in the chaos suite).
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), uint16(100), true)
	f.Add(int64(3), int64(3), uint16(1), false) // identical steps: all-zero residual
	f.Add(int64(7), int64(11), uint16(2048), true)
	f.Add(int64(0), int64(0), uint16(0), false)
	f.Fuzz(func(t *testing.T, seedA, seedB int64, n uint16, compress bool) {
		count := int(n)%2048 + 1
		s1 := fuzzCloud(count, rand.New(rand.NewSource(seedA)))
		s2 := fuzzCloud(count, rand.New(rand.NewSource(seedB)))
		codec := CodecDelta
		if compress {
			codec = CodecDeltaFlate
		}
		frames := encodeStream(codec, 0, s1, s2)
		if codec == CodecDelta && len(frames[1]) != len(frames[0]) {
			t.Fatalf("delta frame length %d != keyframe length %d: XOR residual must be length-preserving",
				len(frames[1]), len(frames[0]))
		}
		c := NewConn(&memConn{r: bytes.NewReader(bytes.Join(frames, nil))})
		for i, want := range []*data.PointCloud{s1, s2} {
			typ, ds, step, err := c.Recv()
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != MsgDataset || step != int64(i) {
				t.Fatalf("frame %d: typ %v step %d", i, typ, step)
			}
			if got, ok := ds.(*data.PointCloud); !ok || !cloudEqual(got, want) {
				t.Fatalf("frame %d: %v round trip not bit-exact", i, codec)
			}
		}
	})
}
