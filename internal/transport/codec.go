// Wire codecs: the payload-encoding axis of the design space. A codec
// turns a serialized dataset (the "plain" vtkio bytes) into the wire
// payload of a v3 frame and back. Codecs are stateful per Conn and per
// direction — flate coders and scratch buffers persist across frames so
// the steady state stays allocation-free — and the temporal codecs
// (delta, delta+flate) additionally reference the previous step's plain
// payload, which the Conn retains on both sides of the link.
//
// Temporal codecs never stand alone on the wire: the first frame of a
// connection (and the first after any error) is a keyframe, encoded with
// the codec's Keyframe fallback (raw for delta, flate for delta+flate),
// so a receiver with no reference state can always resynchronize. The
// codec ID travels in every frame header, covered by the CRC trailer, so
// a flipped codec byte surfaces as ErrChecksum, never as a frame decoded
// under the wrong codec.
package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// CodecID identifies a payload codec in the v3 frame header.
type CodecID uint8

const (
	// CodecRaw sends the vtkio bytes untouched (the zero value, and the
	// default): lowest latency, highest bandwidth.
	CodecRaw CodecID = iota
	// CodecFlate DEFLATE-compresses each frame independently — the
	// stateless compression lever carried over from wire format v2.
	CodecFlate
	// CodecDelta XORs the plain payload against the previous step's: for
	// coherent successive steps the residual is mostly zero bytes. The
	// wire length equals the raw length (delta trades nothing for speed;
	// it exists to feed delta+flate and to keep fault schedules aligned
	// with raw framing).
	CodecDelta
	// CodecDeltaFlate DEFLATE-compresses the XOR residual: near-zero
	// residuals compress an order of magnitude better — and faster — than
	// absolute values.
	CodecDeltaFlate

	numCodecs
)

// ErrDeltaState is returned when a temporal frame (delta, delta+flate)
// arrives but the receiver holds no reference payload — a protocol
// violation, since senders must open every connection with a keyframe.
var ErrDeltaState = errors.New("transport: delta frame without reference state")

// ErrCodecFrame is returned when a compressed frame's container is
// structurally malformed — truncated header, bitmap, or packed blocks
// that disagree with the bitmap. It indicates corruption the CRC did not
// catch (or a buggy peer), never a recoverable state-loss condition.
var ErrCodecFrame = errors.New("transport: malformed codec frame")

var codecNames = [numCodecs]string{"raw", "flate", "delta", "delta+flate"}

// String returns the codec's sweep-axis name.
func (id CodecID) String() string {
	if id < numCodecs {
		return codecNames[id]
	}
	return fmt.Sprintf("codec(%d)", uint8(id))
}

// Valid reports whether id names a known codec.
func (id CodecID) Valid() bool { return id < numCodecs }

// Temporal reports whether the codec references the previous step's
// payload and therefore needs keyframe resynchronization.
func (id CodecID) Temporal() bool { return id == CodecDelta || id == CodecDeltaFlate }

// Keyframe returns the codec used for a full-dataset frame when id has no
// reference state to delta against: raw for delta, flate for delta+flate,
// and id itself for the non-temporal codecs.
func (id CodecID) Keyframe() CodecID {
	switch id {
	case CodecDelta:
		return CodecRaw
	case CodecDeltaFlate:
		return CodecFlate
	default:
		return id
	}
}

// Codecs lists every codec name in ID order — the sweep axis for CLIs and
// benchmarks.
func Codecs() []string { return codecNames[:] }

// ParseCodec maps a sweep-axis name ("raw", "flate", "delta",
// "delta+flate"; "" means raw) to its CodecID.
func ParseCodec(name string) (CodecID, error) {
	if name == "" {
		return CodecRaw, nil
	}
	for id, n := range codecNames {
		if n == name {
			return CodecID(id), nil
		}
	}
	return 0, fmt.Errorf("transport: unknown codec %q (want one of %v)", name, Codecs())
}

// Codec encodes plain dataset bytes into a wire payload and back. prev is
// the previous step's *plain* payload on both sides (nil for keyframes
// and non-temporal codecs). Encode and Decode append into dst[:0] and
// return the result — except rawCodec, which passes the input through
// unchanged so the pass-through path costs zero copies. Implementations
// keep internal scratch, so one instance must not be shared between a
// sending and a receiving goroutine; the Conn keeps separate per-direction
// instances.
type Codec interface {
	ID() CodecID
	Encode(dst, plain, prev []byte) ([]byte, error)
	Decode(dst, wire, prev []byte) ([]byte, error)
}

// newCodec builds a fresh stateful instance of the codec.
func newCodec(id CodecID) Codec {
	switch id {
	case CodecRaw:
		return rawCodec{}
	case CodecFlate:
		return &flateCodec{}
	case CodecDelta:
		return deltaCodec{}
	case CodecDeltaFlate:
		return &deltaFlateCodec{}
	default:
		panic("transport: newCodec on invalid codec " + id.String())
	}
}

// rawCodec is the identity codec: the wire payload is the plain payload.
type rawCodec struct{}

func (rawCodec) ID() CodecID                               { return CodecRaw }
func (rawCodec) Encode(_, plain, _ []byte) ([]byte, error) { return plain, nil }
func (rawCodec) Decode(_, wire, _ []byte) ([]byte, error)  { return wire, nil }

// flateCodec DEFLATE-compresses frames independently. The writer, reader,
// and copy scratch persist across frames; inflate itself still allocates
// per dynamic block inside compress/flate, which is why the flate alloc
// gate is a bound rather than zero.
type flateCodec struct {
	zw   *flate.Writer
	zr   io.ReadCloser
	rd   bytes.Reader
	sink payloadBuffer
	cp   []byte
}

func (*flateCodec) ID() CodecID { return CodecFlate }

func (f *flateCodec) Encode(dst, plain, _ []byte) ([]byte, error) {
	// The sink must be a field, not a local: flate.Writer holds the
	// io.Writer across calls, and a local's address escaping would
	// allocate per frame.
	f.sink = dst[:0]
	if f.zw == nil {
		zw, err := flate.NewWriter(&f.sink, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		f.zw = zw
	} else {
		f.zw.Reset(&f.sink)
	}
	if _, err := f.zw.Write(plain); err != nil {
		return nil, err
	}
	if err := f.zw.Close(); err != nil {
		return nil, err
	}
	return f.sink, nil
}

func (f *flateCodec) Decode(dst, wire, _ []byte) ([]byte, error) {
	f.rd.Reset(wire)
	if f.zr == nil {
		f.zr = flate.NewReader(&f.rd)
	} else if err := f.zr.(flate.Resetter).Reset(&f.rd, nil); err != nil {
		return nil, err
	}
	if f.cp == nil {
		f.cp = make([]byte, 32<<10)
	}
	// Manual read loop instead of io.Copy: io.Copy allocates its transfer
	// buffer per call, and the inflated size is unknown up front.
	out := dst[:0]
	for {
		n, err := f.zr.Read(f.cp)
		out = append(out, f.cp[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := f.zr.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// deltaCodec XORs against the previous plain payload. XOR is self-inverse
// so Encode and Decode are the same transform, and the wire length always
// equals the plain length.
type deltaCodec struct{}

func (deltaCodec) ID() CodecID { return CodecDelta }

func (deltaCodec) Encode(dst, plain, prev []byte) ([]byte, error) {
	if prev == nil {
		return nil, fmt.Errorf("transport: delta encode: %w", ErrDeltaState)
	}
	return xorDelta(dst, plain, prev), nil
}

func (deltaCodec) Decode(dst, wire, prev []byte) ([]byte, error) {
	if prev == nil {
		return nil, fmt.Errorf("transport: delta decode: %w", ErrDeltaState)
	}
	return xorDelta(dst, wire, prev), nil
}

// dfBlock is the zero-elision granule of the delta+flate container.
// 4 KiB is small enough that one changed array in an otherwise-quiet
// payload only drags its own blocks through DEFLATE, and large enough
// that the bitmap overhead is 1 bit per 4096 bytes.
const dfBlock = 4096

// deltaFlateCodec composes delta and flate with a sparse-block container.
// The XOR residual of coherent steps is dominated by all-zero regions
// (unchanged arrays), so the wire payload is
//
//	[8B residual length][block bitmap][DEFLATE of the nonzero blocks]
//
// and DEFLATE — the expensive stage in both directions — only ever sees
// the blocks that actually changed. The cost of a delta+flate frame
// therefore scales with how much of the dataset moved between steps, not
// with the dataset size; a fully-quiet step costs one bitmap and an
// empty DEFLATE stream.
type deltaFlateCodec struct {
	zw *flate.Writer
	zr io.ReadCloser
	rd bytes.Reader
	// sink is the evolving wire payload (header+bitmap+DEFLATE). It must
	// be a field: the flate writer retains &d.sink across frames, and a
	// local's address escaping would allocate per frame.
	sink payloadBuffer
	cp   []byte
	tmp  payloadBuffer // XOR residual (encode) / packed blocks (decode)
}

func (*deltaFlateCodec) ID() CodecID { return CodecDeltaFlate }

func (d *deltaFlateCodec) Encode(dst, plain, prev []byte) ([]byte, error) {
	if prev == nil {
		return nil, fmt.Errorf("transport: delta+flate encode: %w", ErrDeltaState)
	}
	d.tmp = xorDelta(d.tmp, plain, prev)
	res := d.tmp
	nb := (len(res) + dfBlock - 1) / dfBlock
	bitmapLen := (nb + 7) / 8

	out := append(dst[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(out, uint64(len(res)))
	// The bitmap region must be cleared explicitly: dst is a reused
	// buffer, so append into its capacity resurrects old bytes.
	for i := 0; i < bitmapLen; i++ {
		out = append(out, 0)
	}
	d.sink = out
	if d.zw == nil {
		zw, err := flate.NewWriter(&d.sink, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		d.zw = zw
	} else {
		d.zw.Reset(&d.sink)
	}
	for b := 0; b < nb; b++ {
		lo, hi := b*dfBlock, (b+1)*dfBlock
		if hi > len(res) {
			hi = len(res)
		}
		if allZero(res[lo:hi]) {
			continue
		}
		// Indexing d.sink directly is safe even though the flate writer
		// appends to it: append preserves the prefix, and d.sink is the
		// current header.
		d.sink[8+b/8] |= 1 << (b % 8)
		if _, err := d.zw.Write(res[lo:hi]); err != nil {
			return nil, err
		}
	}
	if err := d.zw.Close(); err != nil {
		return nil, err
	}
	return d.sink, nil
}

func (d *deltaFlateCodec) Decode(dst, wire, prev []byte) ([]byte, error) {
	if prev == nil {
		return nil, fmt.Errorf("transport: delta+flate decode: %w", ErrDeltaState)
	}
	if len(wire) < 8 {
		return nil, fmt.Errorf("%w: delta+flate frame shorter than its header", ErrCodecFrame)
	}
	resLen := binary.BigEndian.Uint64(wire)
	if resLen > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%w: delta+flate residual length %d overflows", ErrCodecFrame, resLen)
	}
	n := int(resLen)
	nb := (n + dfBlock - 1) / dfBlock
	bitmapLen := (nb + 7) / 8
	if len(wire) < 8+bitmapLen {
		return nil, fmt.Errorf("%w: delta+flate frame shorter than its block bitmap", ErrCodecFrame)
	}
	bitmap := wire[8 : 8+bitmapLen]

	// Inflate the packed nonzero blocks into the scratch buffer.
	d.rd.Reset(wire[8+bitmapLen:])
	if d.zr == nil {
		d.zr = flate.NewReader(&d.rd)
	} else if err := d.zr.(flate.Resetter).Reset(&d.rd, nil); err != nil {
		return nil, err
	}
	if d.cp == nil {
		d.cp = make([]byte, 32<<10)
	}
	packed := d.tmp[:0]
	for {
		k, err := d.zr.Read(d.cp)
		packed = append(packed, d.cp[:k]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := d.zr.Close(); err != nil {
		return nil, err
	}
	d.tmp = packed

	// Reassemble the residual directly into dst, then XOR in place
	// against the reference (self-inverse, index-aligned, so aliasing
	// cur with dst is safe).
	var out []byte
	if cap(dst) >= n {
		out = dst[:n]
	} else {
		out = make([]byte, n)
	}
	pi := 0
	for b := 0; b < nb; b++ {
		lo, hi := b*dfBlock, (b+1)*dfBlock
		if hi > n {
			hi = n
		}
		seg := out[lo:hi]
		if bitmap[b/8]&(1<<(b%8)) != 0 {
			if pi+len(seg) > len(packed) {
				return nil, fmt.Errorf("%w: delta+flate packed blocks truncated", ErrCodecFrame)
			}
			copy(seg, packed[pi:pi+len(seg)])
			pi += len(seg)
		} else {
			for i := range seg {
				seg[i] = 0
			}
		}
	}
	if pi != len(packed) {
		return nil, fmt.Errorf("%w: delta+flate carries %d packed bytes beyond its bitmap", ErrCodecFrame, len(packed)-pi)
	}
	return xorDelta(out, out, prev), nil
}

// allZero reports whether b contains only zero bytes, a word at a time.
func allZero(b []byte) bool {
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// xorDelta writes cur XOR prev into dst (reusing its capacity) and
// returns it, always len(cur) long: bytes past len(prev) are copied
// verbatim, so a shape change mid-stream stays losslessly invertible.
// The loop runs a machine word at a time; tails finish byte-wise.
func xorDelta(dst, cur, prev []byte) []byte {
	if cap(dst) >= len(cur) {
		dst = dst[:len(cur)]
	} else {
		dst = make([]byte, len(cur))
	}
	n := len(cur)
	if len(prev) < n {
		n = len(prev)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(cur[i:])^binary.LittleEndian.Uint64(prev[i:]))
	}
	for ; i < n; i++ {
		dst[i] = cur[i] ^ prev[i]
	}
	copy(dst[n:], cur[n:])
	return dst
}
