package transport

// Robustness tests for the hardened wire format: CRC32C trailers, typed
// truncation/oversize/timeout errors, step round-trip, and the
// backoff-based reconnect dialer.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/faults"
)

// rawPipe returns both ends of a TCP loopback connection, unwrapped.
func rawPipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestStepTravelsWithDataset(t *testing.T) {
	a, b := pipePair(t)
	a.Step = 7
	errc := make(chan error, 1)
	go func() { errc <- a.SendDataset(sampleCloud(100)) }()
	typ, _, step, err := b.Recv()
	if err != nil || typ != MsgDataset {
		t.Fatalf("recv: %v %v", typ, err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if step != 7 {
		t.Errorf("wire step = %d, want 7", step)
	}
}

func TestCorruptedFrameDetected(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			// Position 25 is past the 18-byte v3 dataset header: a payload flip,
			// caught by the checksum rather than the length sanity checks.
			sched := faults.New(1, faults.Rule{
				Side: faults.SideSim, Conn: 0, Op: faults.OpWrite, Nth: 0,
				Action: faults.Corrupt, Pos: 25,
			})
			cw, sw := rawPipe(t)
			a, b := NewConn(sched.WrapAccepted(cw)), NewConn(sw)
			a.SetCompression(compress)
			go a.SendDataset(sampleCloud(500))
			_, _, _, err := b.Recv()
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("err = %v, want wrapped ErrChecksum", err)
			}
		})
	}
}

func TestTruncatedFrameDetected(t *testing.T) {
	// Reset kills the connection halfway through the frame: the receiver
	// must surface a typed closed-connection error, never a dataset.
	sched := faults.New(1, faults.Rule{
		Side: faults.SideSim, Conn: 0, Op: faults.OpWrite, Nth: 0, Action: faults.Reset,
	})
	cw, sw := rawPipe(t)
	a, b := NewConn(sched.WrapAccepted(cw)), NewConn(sw)
	go a.SendDataset(sampleCloud(500))
	typ, ds, _, err := b.Recv()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v (type %v, ds %v), want wrapped ErrClosed", err, typ, ds)
	}
}

func TestFrameTooLarge(t *testing.T) {
	a, b := pipePair(t)
	b.SetMaxFrame(1024)
	go a.SendDataset(sampleCloud(500)) // well over 1 KiB on the wire
	_, _, _, err := b.Recv()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want wrapped ErrFrameTooLarge", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	_, b := pipePair(t)
	b.SetTimeouts(50*time.Millisecond, 0)
	start := time.Now()
	_, _, _, err := b.Recv()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestSendTimeout(t *testing.T) {
	// A peer that never reads eventually fills the socket buffers; with a
	// write deadline the sender unblocks with ErrTimeout instead of
	// hanging forever.
	a, _ := pipePair(t)
	a.SetTimeouts(0, 100*time.Millisecond)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = a.SendDataset(sampleCloud(5000))
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
}

func TestDialBackoffConnects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	ln, err := Listen(path, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		conn.SendAck(3)
		conn.Close()
	}()
	bo := DefaultBackoff(1)
	bo.Base, bo.Max = time.Millisecond, 5*time.Millisecond
	conn, err := DialBackoff(path, 0, bo)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	typ, _, step, err := conn.Recv()
	if err != nil || typ != MsgAck || step != 3 {
		t.Fatalf("recv: %v %v %v", typ, step, err)
	}
}

func TestDialBackoffRetriesThenSucceeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	if err := AppendLayout(path, LayoutEntry{Rank: 0, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	bo := Backoff{
		Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 5,
		LayoutWait: time.Second,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			calls++
			if calls < 3 {
				return nil, errors.New("connection refused")
			}
			c, _ := net.Pipe()
			return c, nil
		},
	}
	conn, err := DialBackoff(path, 0, bo)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if calls != 3 {
		t.Errorf("dial attempts = %d, want 3", calls)
	}
}

func TestDialBackoffExhaustsAttempts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	if err := AppendLayout(path, LayoutEntry{Rank: 0, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	refused := errors.New("refused")
	calls := 0
	bo := Backoff{
		Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3,
		LayoutWait: time.Second,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			calls++
			return nil, refused
		},
	}
	_, err := DialBackoff(path, 0, bo)
	if !errors.Is(err, refused) {
		t.Fatalf("err = %v, want wrapped last dial error", err)
	}
	if calls != 3 {
		t.Errorf("dial attempts = %d, want 3", calls)
	}
}

func TestBackoffDelaysDeterministicAndCapped(t *testing.T) {
	bo := DefaultBackoff(0)
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		for i := 1; i <= 8; i++ {
			out = append(out, bo.delay(i, rng))
		}
		return out
	}
	a, b := seq(9), seq(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
		limit := time.Duration(float64(bo.Max) * (1 + bo.Jitter))
		if a[i] <= 0 || a[i] > limit {
			t.Errorf("delay %d = %v outside (0, %v]", i+1, a[i], limit)
		}
	}
	// Late attempts must sit near the cap, not keep doubling.
	if a[7] > time.Duration(float64(bo.Max)*(1+bo.Jitter)) {
		t.Errorf("attempt 8 delay %v exceeds jittered cap", a[7])
	}
}
