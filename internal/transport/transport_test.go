package transport

import (
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	a, b := NewConn(client), NewConn(server)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func sampleCloud(n int) *data.PointCloud {
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i * 3)
		p.SetPos(i, vec.New(float64(i), float64(i)*2, float64(i)*3))
	}
	p.SpeedField()
	return p
}

func TestDatasetRoundTripOverSocket(t *testing.T) {
	a, b := pipePair(t)
	want := sampleCloud(500)
	errc := make(chan error, 1)
	go func() { errc <- a.SendDataset(want) }()
	typ, ds, _, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if typ != MsgDataset {
		t.Fatalf("type = %v", typ)
	}
	got := ds.(*data.PointCloud)
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.X, want.X) {
		t.Error("dataset corrupted in transit")
	}
	if a.BytesSent == 0 || b.BytesReceived != a.BytesSent {
		t.Errorf("byte accounting: sent=%d received=%d", a.BytesSent, b.BytesReceived)
	}
}

func TestAckAndDone(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		a.SendAck(42)
		a.SendDone()
	}()
	typ, _, step, err := b.Recv()
	if err != nil || typ != MsgAck || step != 42 {
		t.Fatalf("ack: %v %v %v", typ, step, err)
	}
	typ, _, _, err = b.Recv()
	if err != nil || typ != MsgDone {
		t.Fatalf("done: %v %v", typ, err)
	}
}

func TestRecvOnClosedConn(t *testing.T) {
	a, b := pipePair(t)
	a.Close()
	if _, _, _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestMultipleDatasetsSequential(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		for step := 0; step < 5; step++ {
			a.SendDataset(sampleCloud(100 + step))
		}
		a.SendDone()
	}()
	for step := 0; step < 5; step++ {
		typ, ds, _, err := b.Recv()
		if err != nil || typ != MsgDataset {
			t.Fatalf("step %d: %v %v", step, typ, err)
		}
		if ds.Count() != 100+step {
			t.Fatalf("step %d: count %d", step, ds.Count())
		}
	}
	typ, _, _, err := b.Recv()
	if err != nil || typ != MsgDone {
		t.Fatalf("final: %v %v", typ, err)
	}
}

func TestLayoutFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	for rank := 0; rank < 4; rank++ {
		if err := AppendLayout(path, LayoutEntry{Rank: rank, Addr: "127.0.0.1:900" + string(rune('0'+rank))}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[2] != "127.0.0.1:9002" {
		t.Errorf("rank 2 = %q", entries[2])
	}
}

func TestLayoutConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	const ranks = 32
	var wg sync.WaitGroup
	wg.Add(ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			defer wg.Done()
			AppendLayout(path, LayoutEntry{Rank: r, Addr: "10.0.0.1:5000"})
		}(r)
	}
	wg.Wait()
	entries, err := ReadLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != ranks {
		t.Errorf("concurrent appends lost entries: %d/%d", len(entries), ranks)
	}
}

func TestReadLayoutMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad")
	if err := AppendLayout(path, LayoutEntry{Rank: 0, Addr: "ok:1"}); err != nil {
		t.Fatal(err)
	}
	// Append a malformed line by hand.
	f, _ := openAppend(path)
	f.WriteString("not a layout line with too many fields\n")
	f.Close()
	if _, err := ReadLayout(path); err == nil {
		t.Error("malformed layout accepted")
	}
}

func TestWaitLayoutTimesOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never")
	if _, err := WaitLayout(path, 0, 50*time.Millisecond); err == nil {
		t.Error("missing layout did not time out")
	}
}

func TestListenDialRendezvous(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	ln, err := Listen(path, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		acceptErr <- conn.SendAck(7)
	}()

	conn, err := Dial(path, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	typ, _, step, err := conn.Recv()
	if err != nil || typ != MsgAck || step != 7 {
		t.Fatalf("rendezvous recv: %v %v %v", typ, step, err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknownRank(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout")
	AppendLayout(path, LayoutEntry{Rank: 0, Addr: "127.0.0.1:1"})
	if _, err := Dial(path, 9, 50*time.Millisecond); err == nil {
		t.Error("dial to unknown rank succeeded")
	}
}

func TestCompressedDatasetRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	a.SetCompression(true)
	want := sampleCloud(2000)
	errc := make(chan error, 1)
	go func() { errc <- a.SendDataset(want) }()
	typ, ds, _, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// Receivers see MsgDataset regardless of wire framing.
	if typ != MsgDataset {
		t.Fatalf("type = %v", typ)
	}
	got := ds.(*data.PointCloud)
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.X, want.X) {
		t.Error("compressed dataset corrupted in transit")
	}
}

func TestCompressionSavesBytesOnCompressibleData(t *testing.T) {
	// A cloud with constant fields compresses very well; the wire byte
	// count must shrink substantially.
	mkCloud := func() *data.PointCloud {
		p := data.NewPointCloud(5000)
		for i := range p.IDs {
			p.IDs[i] = 7
		}
		return p
	}
	send := func(compress bool) int64 {
		a, b := pipePair(t)
		a.SetCompression(compress)
		done := make(chan error, 1)
		go func() { done <- a.SendDataset(mkCloud()) }()
		if _, _, _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return a.BytesSent
	}
	raw := send(false)
	packed := send(true)
	if packed >= raw/10 {
		t.Errorf("compression saved too little: %d vs %d bytes", packed, raw)
	}
}

func TestMixedCompressionStream(t *testing.T) {
	// Toggling compression between frames must not confuse the receiver.
	a, b := pipePair(t)
	go func() {
		a.SendDataset(sampleCloud(50))
		a.SetCompression(true)
		a.SendDataset(sampleCloud(60))
		a.SetCompression(false)
		a.SendDataset(sampleCloud(70))
		a.SendDone()
	}()
	for _, want := range []int{50, 60, 70} {
		typ, ds, _, err := b.Recv()
		if err != nil || typ != MsgDataset {
			t.Fatalf("recv: %v %v", typ, err)
		}
		if ds.Count() != want {
			t.Fatalf("count = %d, want %d", ds.Count(), want)
		}
	}
	typ, _, _, err := b.Recv()
	if err != nil || typ != MsgDone {
		t.Fatalf("done: %v %v", typ, err)
	}
}

func TestDialPicksUpFreshRegistration(t *testing.T) {
	// A stale layout entry points nowhere; while the dialer retries, a
	// fresh listener registers under the same rank and must win.
	path := filepath.Join(t.TempDir(), "layout")
	if err := AppendLayout(path, LayoutEntry{Rank: 0, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		ln, err := Listen(path, 0, "")
		if err != nil {
			return
		}
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		conn.SendAck(1)
		conn.Close()
		ln.Close()
	}()
	conn, err := Dial(path, 0, 5*time.Second)
	if err != nil {
		t.Fatalf("dial did not recover from stale entry: %v", err)
	}
	defer conn.Close()
	typ, _, step, err := conn.Recv()
	if err != nil || typ != MsgAck || step != 1 {
		t.Fatalf("recv: %v %v %v", typ, step, err)
	}
}
