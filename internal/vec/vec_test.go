package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func approxV(a, b V3) bool { return approx(a.X, b.X) && approx(a.Y, b.Y) && approx(a.Z, b.Z) }

func TestAddSub(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Neg() {
		t.Errorf("y cross x = %v, want -z", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x.y = %v", got)
	}
	if got := New(1, 2, 3).Dot(New(4, 5, 6)); got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
}

func TestNorm(t *testing.T) {
	v := New(3, 4, 0).Norm()
	if !approx(v.Len(), 1) {
		t.Errorf("norm length = %v", v.Len())
	}
	zero := V3{}
	if zero.Norm() != zero {
		t.Errorf("zero.Norm() = %v", zero.Norm())
	}
}

func TestLerp(t *testing.T) {
	a := New(0, 0, 0)
	b := New(10, -10, 2)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !approxV(got, New(5, -5, 1)) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestAxisAccessors(t *testing.T) {
	v := New(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Axis(i); got != want {
			t.Errorf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.WithAxis(1, 42); got != New(7, 42, 9) {
		t.Errorf("WithAxis = %v", got)
	}
}

func TestClampAndFinite(t *testing.T) {
	v := New(-2, 0.5, 3).Clamp(0, 1)
	if v != New(0, 0.5, 1) {
		t.Errorf("Clamp = %v", v)
	}
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: cross product is orthogonal to both inputs.
func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clampRange(ax), clampRange(ay), clampRange(az))
		b := New(clampRange(bx), clampRange(by), clampRange(bz))
		c := a.Cross(b)
		scale := 1 + a.Len()*b.Len()
		return math.Abs(c.Dot(a))/scale < 1e-6 && math.Abs(c.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a x b|^2 + (a.b)^2 == |a|^2 |b|^2 (Lagrange identity).
func TestLagrangeIdentityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clampRange(ax), clampRange(ay), clampRange(az))
		b := New(clampRange(bx), clampRange(by), clampRange(bz))
		lhs := a.Cross(b).Len2() + a.Dot(b)*a.Dot(b)
		rhs := a.Len2() * b.Len2()
		return math.Abs(lhs-rhs) <= 1e-6*(1+rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampRange maps arbitrary float64s from testing/quick into a sane range
// so products do not overflow.
func clampRange(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func TestMatIdentity(t *testing.T) {
	p := New(1, 2, 3)
	if got := Identity().MulPoint(p); got != p {
		t.Errorf("I*p = %v", got)
	}
}

func TestTranslateScale(t *testing.T) {
	p := New(1, 2, 3)
	if got := Translate(New(10, 20, 30)).MulPoint(p); got != New(11, 22, 33) {
		t.Errorf("translate = %v", got)
	}
	if got := ScaleM(New(2, 3, 4)).MulPoint(p); got != New(2, 6, 12) {
		t.Errorf("scale = %v", got)
	}
	// Directions ignore translation.
	if got := Translate(New(10, 20, 30)).MulDir(p); got != p {
		t.Errorf("translate dir = %v", got)
	}
}

func TestRotations(t *testing.T) {
	x := New(1, 0, 0)
	if got := RotateZ(math.Pi / 2).MulPoint(x); !approxV(got, New(0, 1, 0)) {
		t.Errorf("rotZ(90)*x = %v", got)
	}
	if got := RotateY(math.Pi / 2).MulPoint(x); !approxV(got, New(0, 0, -1)) {
		t.Errorf("rotY(90)*x = %v", got)
	}
	z := New(0, 0, 1)
	if got := RotateX(math.Pi / 2).MulPoint(z); !approxV(got, New(0, -1, 0)) {
		t.Errorf("rotX(90)*z = %v", got)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a := RotateX(0.3)
	b := Translate(New(1, 2, 3))
	c := ScaleM(New(2, 2, 2))
	p := New(0.5, -1, 4)
	left := a.MulM(b).MulM(c).MulPoint(p)
	right := a.MulPoint(b.MulPoint(c.MulPoint(p)))
	if !approxV(left, right) {
		t.Errorf("(ABC)p = %v, A(B(Cp)) = %v", left, right)
	}
}

func TestInvert(t *testing.T) {
	m := Translate(New(1, 2, 3)).MulM(RotateY(0.7)).MulM(ScaleM(New(2, 3, 4)))
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("matrix reported singular")
	}
	p := New(5, -6, 7)
	back := inv.MulPoint(m.MulPoint(p))
	if !approxV(back, p) {
		t.Errorf("inv(m)*m*p = %v, want %v", back, p)
	}
	// Singular matrix.
	var sing M4
	if _, ok := sing.Invert(); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := New(5, 4, 3)
	view := LookAt(eye, New(0, 0, 0), New(0, 1, 0))
	if got := view.MulPoint(eye); !approxV(got, V3{}) {
		t.Errorf("view*eye = %v, want origin", got)
	}
	// The look target must land on the -Z axis.
	tgt := view.MulPoint(New(0, 0, 0))
	if !approx(tgt.X, 0) || !approx(tgt.Y, 0) || tgt.Z >= 0 {
		t.Errorf("view*center = %v, want on -Z axis", tgt)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	proj := Perspective(math.Pi/3, 1, 1, 100)
	near := proj.MulPoint(New(0, 0, -1))
	far := proj.MulPoint(New(0, 0, -100))
	if !approx(near.Z, -1) {
		t.Errorf("near plane z = %v, want -1", near.Z)
	}
	if !approx(far.Z, 1) {
		t.Errorf("far plane z = %v, want 1", far.Z)
	}
}

func TestOrthoMapsBoxToNDC(t *testing.T) {
	m := Ortho(-2, 2, -1, 1, 1, 10)
	lo := m.MulPoint(New(-2, -1, -1))
	hi := m.MulPoint(New(2, 1, -10))
	if !approxV(lo, New(-1, -1, -1)) {
		t.Errorf("ortho lo = %v", lo)
	}
	if !approxV(hi, New(1, 1, 1)) {
		t.Errorf("ortho hi = %v", hi)
	}
}

// Property: Invert really inverts for random well-conditioned transforms.
func TestInvertProperty(t *testing.T) {
	f := func(tx, ty, tz, rx, ry, rz float64) bool {
		m := Translate(New(clampRange(tx), clampRange(ty), clampRange(tz))).
			MulM(RotateX(clampRange(rx))).
			MulM(RotateY(clampRange(ry))).
			MulM(RotateZ(clampRange(rz)))
		inv, ok := m.Invert()
		if !ok {
			return false
		}
		p := New(1, 2, 3)
		back := inv.MulPoint(m.MulPoint(p))
		return back.Sub(p).Len() < 1e-6*(1+p.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAABBExtendUnion(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	b = b.Extend(New(1, 2, 3))
	if b.IsEmpty() || b.Min != New(1, 2, 3) || b.Max != New(1, 2, 3) {
		t.Fatalf("point box wrong: %+v", b)
	}
	b = b.Extend(New(-1, 5, 0))
	want := AABB{Min: New(-1, 2, 0), Max: New(1, 5, 3)}
	if b != want {
		t.Fatalf("extended box = %+v, want %+v", b, want)
	}
	u := b.Union(NewAABB(New(10, 10, 10), New(11, 11, 11)))
	if u.Max != New(11, 11, 11) || u.Min != New(-1, 2, 0) {
		t.Fatalf("union = %+v", u)
	}
}

func TestAABBGeometryQueries(t *testing.T) {
	b := NewAABB(New(0, 0, 0), New(2, 4, 6))
	if b.Center() != New(1, 2, 3) {
		t.Errorf("center = %v", b.Center())
	}
	if b.Size() != New(2, 4, 6) {
		t.Errorf("size = %v", b.Size())
	}
	if got := b.SurfaceArea(); got != 2*(2*4+4*6+6*2) {
		t.Errorf("area = %v", got)
	}
	if b.LongestAxis() != 2 {
		t.Errorf("longest axis = %d", b.LongestAxis())
	}
	if !b.Contains(New(1, 1, 1)) || b.Contains(New(3, 1, 1)) {
		t.Error("Contains wrong")
	}
	if !b.Overlaps(NewAABB(New(1, 1, 1), New(5, 5, 5))) {
		t.Error("Overlaps wrong (should overlap)")
	}
	if b.Overlaps(NewAABB(New(5, 5, 5), New(6, 6, 6))) {
		t.Error("Overlaps wrong (should not overlap)")
	}
	if EmptyAABB().SurfaceArea() != 0 {
		t.Error("empty box area != 0")
	}
}

func TestAABBIntersectRay(t *testing.T) {
	b := NewAABB(New(-1, -1, -1), New(1, 1, 1))
	origin := New(0, 0, -5)
	dir := New(0, 0, 1)
	inv := New(1/dir.X, 1/dir.Y, 1/dir.Z)
	t0, t1, ok := b.IntersectRay(origin, inv, 0, math.Inf(1))
	if !ok {
		t.Fatal("ray should hit box")
	}
	if !approx(t0, 4) || !approx(t1, 6) {
		t.Errorf("interval = [%v, %v], want [4, 6]", t0, t1)
	}
	// Miss.
	origin = New(5, 5, -5)
	if _, _, ok := b.IntersectRay(origin, inv, 0, math.Inf(1)); ok {
		t.Error("offset ray should miss box")
	}
	// Ray starting inside.
	t0, t1, ok = b.IntersectRay(New(0, 0, 0), inv, 0, math.Inf(1))
	if !ok || !approx(t0, 0) || !approx(t1, 1) {
		t.Errorf("inside ray = [%v %v] ok=%v", t0, t1, ok)
	}
}

// Property: if a point is inside the box, a ray from far away toward it hits.
func TestAABBRayHitProperty(t *testing.T) {
	b := NewAABB(New(-3, -2, -1), New(4, 5, 6))
	f := func(px, py, pz float64) bool {
		p := New(
			math.Mod(math.Abs(clampRange(px)), 7)-3,
			math.Mod(math.Abs(clampRange(py)), 7)-2,
			math.Mod(math.Abs(clampRange(pz)), 7)-1,
		)
		if !b.Contains(p) {
			return true // only testing interior points
		}
		origin := New(100, 90, 80)
		dir := p.Sub(origin).Norm()
		inv := New(1/dir.X, 1/dir.Y, 1/dir.Z)
		_, _, ok := b.IntersectRay(origin, inv, 0, math.Inf(1))
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
