package vec

import "math"

// M4 is a 4x4 matrix in row-major order, used for model/view/projection
// transforms. M[r][c] addresses row r, column c. Points are transformed as
// column vectors: p' = M * p.
type M4 [4][4]float64

// Identity returns the 4x4 identity matrix.
func Identity() M4 {
	return M4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
}

// Translate returns a translation matrix by t.
func Translate(t V3) M4 {
	m := Identity()
	m[0][3] = t.X
	m[1][3] = t.Y
	m[2][3] = t.Z
	return m
}

// ScaleM returns a non-uniform scaling matrix.
func ScaleM(s V3) M4 {
	m := Identity()
	m[0][0] = s.X
	m[1][1] = s.Y
	m[2][2] = s.Z
	return m
}

// RotateX returns a rotation matrix about the X axis by angle radians.
func RotateX(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[1][1], m[1][2] = c, -s
	m[2][1], m[2][2] = s, c
	return m
}

// RotateY returns a rotation matrix about the Y axis by angle radians.
func RotateY(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// RotateZ returns a rotation matrix about the Z axis by angle radians.
func RotateZ(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[0][0], m[0][1] = c, -s
	m[1][0], m[1][1] = s, c
	return m
}

// MulM returns the matrix product m * n.
func (m M4) MulM(n M4) M4 {
	var r M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// MulPoint transforms point p (w=1) by m and performs the perspective
// divide. Points at w=0 are returned untransformed by the divide.
func (m M4) MulPoint(p V3) V3 {
	x := m[0][0]*p.X + m[0][1]*p.Y + m[0][2]*p.Z + m[0][3]
	y := m[1][0]*p.X + m[1][1]*p.Y + m[1][2]*p.Z + m[1][3]
	z := m[2][0]*p.X + m[2][1]*p.Y + m[2][2]*p.Z + m[2][3]
	w := m[3][0]*p.X + m[3][1]*p.Y + m[3][2]*p.Z + m[3][3]
	if w != 0 && w != 1 {
		inv := 1 / w
		return V3{x * inv, y * inv, z * inv}
	}
	return V3{x, y, z}
}

// MulPointW transforms point p (w=1) by m and returns the homogeneous
// result before the perspective divide.
func (m M4) MulPointW(p V3) (V3, float64) {
	x := m[0][0]*p.X + m[0][1]*p.Y + m[0][2]*p.Z + m[0][3]
	y := m[1][0]*p.X + m[1][1]*p.Y + m[1][2]*p.Z + m[1][3]
	z := m[2][0]*p.X + m[2][1]*p.Y + m[2][2]*p.Z + m[2][3]
	w := m[3][0]*p.X + m[3][1]*p.Y + m[3][2]*p.Z + m[3][3]
	return V3{x, y, z}, w
}

// MulDir transforms direction d (w=0) by m; translation is ignored.
func (m M4) MulDir(d V3) V3 {
	return V3{
		m[0][0]*d.X + m[0][1]*d.Y + m[0][2]*d.Z,
		m[1][0]*d.X + m[1][1]*d.Y + m[1][2]*d.Z,
		m[2][0]*d.X + m[2][1]*d.Y + m[2][2]*d.Z,
	}
}

// Transpose returns the transpose of m.
func (m M4) Transpose() M4 {
	var r M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// LookAt returns a right-handed view matrix placing the camera at eye,
// looking at center, with the given up direction — the same convention as
// gluLookAt. The result maps world space to camera space where the camera
// looks down -Z.
func LookAt(eye, center, up V3) M4 {
	f := center.Sub(eye).Norm()
	s := f.Cross(up.Norm()).Norm()
	u := s.Cross(f)
	m := Identity()
	m[0][0], m[0][1], m[0][2] = s.X, s.Y, s.Z
	m[1][0], m[1][1], m[1][2] = u.X, u.Y, u.Z
	m[2][0], m[2][1], m[2][2] = -f.X, -f.Y, -f.Z
	return m.MulM(Translate(eye.Neg()))
}

// Perspective returns a perspective projection matrix with the given
// vertical field of view (radians), aspect ratio (width/height) and
// near/far clip distances. The convention matches gluPerspective; after the
// perspective divide, visible coordinates land in [-1,1]^3 (NDC).
func Perspective(fovy, aspect, near, far float64) M4 {
	f := 1 / math.Tan(fovy/2)
	var m M4
	m[0][0] = f / aspect
	m[1][1] = f
	m[2][2] = (far + near) / (near - far)
	m[2][3] = 2 * far * near / (near - far)
	m[3][2] = -1
	return m
}

// Ortho returns an orthographic projection matrix mapping the box
// [l,r]x[b,t]x[-far,-near] to NDC [-1,1]^3.
func Ortho(l, r, b, t, near, far float64) M4 {
	var m M4
	m[0][0] = 2 / (r - l)
	m[0][3] = -(r + l) / (r - l)
	m[1][1] = 2 / (t - b)
	m[1][3] = -(t + b) / (t - b)
	m[2][2] = -2 / (far - near)
	m[2][3] = -(far + near) / (far - near)
	m[3][3] = 1
	return m
}

// Invert returns the inverse of m and whether m was invertible
// (determinant not within 1e-12 of zero). Uses Gauss-Jordan elimination
// with partial pivoting, which is plenty for 4x4 transform matrices.
func (m M4) Invert() (M4, bool) {
	a := m
	inv := Identity()
	for col := 0; col < 4; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return Identity(), false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Normalize the pivot row.
		d := 1 / a[col][col]
		for j := 0; j < 4; j++ {
			a[col][j] *= d
			inv[col][j] *= d
		}
		// Eliminate this column from every other row.
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, true
}
