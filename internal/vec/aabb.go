package vec

import "math"

// AABB is an axis-aligned bounding box defined by its inclusive Min and Max
// corners. The zero value is not a valid box; use EmptyAABB to start an
// accumulation.
type AABB struct {
	Min, Max V3
}

// EmptyAABB returns a box that contains nothing: Min at +Inf and Max at
// -Inf, so the first Extend produces a point box.
func EmptyAABB() AABB {
	return AABB{
		Min: Splat(math.Inf(1)),
		Max: Splat(math.Inf(-1)),
	}
}

// NewAABB returns the smallest box containing both corners, regardless of
// their ordering.
func NewAABB(a, b V3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// IsEmpty reports whether the box contains no points (any Min component
// exceeds the corresponding Max).
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend returns the box grown to include point p.
func (b AABB) Extend(p V3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Expand returns the box grown by r in every direction.
func (b AABB) Expand(r float64) AABB {
	d := Splat(r)
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Center returns the centroid of the box.
func (b AABB) Center() V3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the edge lengths of the box.
func (b AABB) Size() V3 { return b.Max.Sub(b.Min) }

// Diagonal returns the length of the box diagonal.
func (b AABB) Diagonal() float64 { return b.Size().Len() }

// SurfaceArea returns the total surface area, used by SAH BVH builders.
// An empty box has zero area.
func (b AABB) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return 2 * (s.X*s.Y + s.Y*s.Z + s.Z*s.X)
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Overlaps reports whether b and o share any volume (touching counts).
func (b AABB) Overlaps(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// LongestAxis returns the index (0, 1, 2) of the box's longest edge.
func (b AABB) LongestAxis() int {
	s := b.Size()
	if s.X >= s.Y && s.X >= s.Z {
		return 0
	}
	if s.Y >= s.Z {
		return 1
	}
	return 2
}

// IntersectRay computes the parametric interval [t0, t1] where the ray
// origin + t*dir overlaps the box, using the slab method with
// precomputed inverse direction. It returns ok=false when the ray misses.
// The interval is clamped to [tMin, tMax].
func (b AABB) IntersectRay(origin, invDir V3, tMin, tMax float64) (t0, t1 float64, ok bool) {
	t0, t1 = tMin, tMax
	for axis := 0; axis < 3; axis++ {
		inv := invDir.Axis(axis)
		o := origin.Axis(axis)
		tNear := (b.Min.Axis(axis) - o) * inv
		tFar := (b.Max.Axis(axis) - o) * inv
		if tNear > tFar {
			tNear, tFar = tFar, tNear
		}
		if tNear > t0 {
			t0 = tNear
		}
		if tFar < t1 {
			t1 = tFar
		}
		if t0 > t1 {
			return 0, 0, false
		}
	}
	return t0, t1, true
}
