// Package vec provides the small fixed-size linear-algebra types used by
// every geometric component of ETH: 3-vectors, 4x4 matrices, and axis-aligned
// bounding boxes. All types are plain value types with float64 components;
// operations return new values and never mutate their receivers, which keeps
// the renderers free of aliasing bugs at negligible cost (the compiler keeps
// these in registers).
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component vector of float64. It is used for positions,
// directions, colors (RGB in [0,1]) and velocities.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Splat returns the vector (s, s, s).
func Splat(s float64) V3 { return V3{s, s, s} }

// Add returns v + u.
func (v V3) Add(u V3) V3 { return V3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v V3) Sub(u V3) V3 { return V3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Mul returns the component-wise product v * u.
func (v V3) Mul(u V3) V3 { return V3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Scale returns v * s.
func (v V3) Scale(s float64) V3 { return V3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v . u.
func (v V3) Dot(u V3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v V3) Cross(u V3) V3 {
	return V3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Len returns the Euclidean length of v.
func (v V3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared length of v.
func (v V3) Len2() float64 { return v.Dot(v) }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v V3) Norm() V3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp returns the linear interpolation v + t*(u-v).
func (v V3) Lerp(u V3, t float64) V3 {
	return V3{
		v.X + t*(u.X-v.X),
		v.Y + t*(u.Y-v.Y),
		v.Z + t*(u.Z-v.Z),
	}
}

// Min returns the component-wise minimum of v and u.
func (v V3) Min(u V3) V3 {
	return V3{math.Min(v.X, u.X), math.Min(v.Y, u.Y), math.Min(v.Z, u.Z)}
}

// Max returns the component-wise maximum of v and u.
func (v V3) Max(u V3) V3 {
	return V3{math.Max(v.X, u.X), math.Max(v.Y, u.Y), math.Max(v.Z, u.Z)}
}

// MaxComp returns the largest component of v.
func (v V3) MaxComp() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// MinComp returns the smallest component of v.
func (v V3) MinComp() float64 { return math.Min(v.X, math.Min(v.Y, v.Z)) }

// Axis returns component i of v (0=X, 1=Y, 2=Z).
func (v V3) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// WithAxis returns a copy of v with component i replaced by s.
func (v V3) WithAxis(i int, s float64) V3 {
	switch i {
	case 0:
		v.X = s
	case 1:
		v.Y = s
	default:
		v.Z = s
	}
	return v
}

// Clamp returns v with every component clamped to [lo, hi].
func (v V3) Clamp(lo, hi float64) V3 {
	return V3{clamp(v.X, lo, hi), clamp(v.Y, lo, hi), clamp(v.Z, lo, hi)}
}

// IsFinite reports whether all components are finite (no NaN or Inf).
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
