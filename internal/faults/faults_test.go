package faults

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// memPipe returns both ends of an in-memory connection.
func memPipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	s := New(1, Rule{Side: SideSim, Conn: 0, Op: OpWrite, Nth: 1, Action: Corrupt, Pos: 3})
	a, b := memPipe(t)
	fc := s.WrapAccepted(a)

	msg := []byte("hello, chaos")
	read := func() []byte {
		buf := make([]byte, len(msg))
		if _, err := b.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	go fc.Write(msg)
	if got := read(); !reflect.DeepEqual(got, msg) {
		t.Errorf("write 0 altered: %q", got)
	}
	go fc.Write(msg)
	got := read()
	diffs := 0
	for i := range msg {
		if got[i] != msg[i] {
			diffs++
			if i != 3 {
				t.Errorf("byte %d corrupted, want position 3", i)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("corrupt changed %d bytes, want exactly 1", diffs)
	}
	if fired := s.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "corrupt") {
		t.Errorf("fired = %v", fired)
	}
}

func TestDropSwallowsWrite(t *testing.T) {
	s := New(1, Rule{Side: SideSim, Conn: Any, Op: OpWrite, Nth: 0, Action: Drop})
	a, b := memPipe(t)
	fc := s.WrapAccepted(a)
	n, err := fc.Write([]byte("vanishes"))
	if err != nil || n != 8 {
		t.Fatalf("drop write: n=%d err=%v", n, err)
	}
	// Nothing must arrive: a read with a deadline times out.
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := b.Read(make([]byte, 8)); err == nil {
		t.Error("dropped write reached the peer")
	}
}

func TestResetClosesMidWrite(t *testing.T) {
	s := New(1, Rule{Side: SideViz, Conn: 0, Op: OpWrite, Nth: 0, Action: Reset})
	a, b := memPipe(t)
	fc := s.WrapDialed(a)
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	_, err := fc.Write(make([]byte, 32))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: further writes fail.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("conn still open after reset")
	}
}

func TestConnIndexingPerSide(t *testing.T) {
	// The rule targets viz conn 1; viz conn 0 and sim conns are untouched.
	s := New(1, Rule{Side: SideViz, Conn: 1, Op: OpWrite, Nth: Any, Action: Partial})
	write := func(c net.Conn, peer net.Conn) error {
		go func() {
			buf := make([]byte, 64)
			for {
				if _, err := peer.Read(buf); err != nil {
					return
				}
			}
		}()
		_, err := c.Write(make([]byte, 16))
		return err
	}
	a0, b0 := memPipe(t)
	if err := write(s.WrapDialed(a0), b0); err != nil {
		t.Errorf("viz conn 0: %v", err)
	}
	a1, b1 := memPipe(t)
	if err := write(s.WrapAccepted(a1), b1); err != nil {
		t.Errorf("sim conn 0: %v", err)
	}
	a2, b2 := memPipe(t)
	if err := write(s.WrapDialed(a2), b2); !errors.Is(err, ErrInjected) {
		t.Errorf("viz conn 1: err = %v, want ErrInjected", err)
	}
}

func TestDialerRefusesScheduledAttempts(t *testing.T) {
	s := New(1,
		Rule{Side: SideViz, Conn: Any, Op: OpDial, Nth: 0, Action: Refuse},
		Rule{Side: SideViz, Conn: Any, Op: OpDial, Nth: 1, Action: Refuse},
	)
	calls := 0
	base := func(network, addr string, timeout time.Duration) (net.Conn, error) {
		calls++
		c, _ := net.Pipe()
		return c, nil
	}
	dial := s.Dialer(base)
	for i := 0; i < 2; i++ {
		if _, err := dial("tcp", "x", time.Second); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", i, err)
		}
	}
	c, err := dial("tcp", "x", time.Second)
	if err != nil {
		t.Fatalf("attempt 2: %v", err)
	}
	defer c.Close()
	if calls != 1 {
		t.Errorf("base dial called %d times, want 1 (refusals must not dial)", calls)
	}
	if _, ok := c.(*faultConn); !ok {
		t.Error("successful dial not wrapped")
	}
}

func TestDeterministicCorruptPositions(t *testing.T) {
	// Without an explicit Pos the flipped byte comes from the seeded RNG:
	// same seed, same positions; different seed, (almost surely) different.
	positions := func(seed int64) []int {
		s := New(seed, Rule{Side: SideSim, Conn: Any, Op: OpWrite, Nth: Any, Action: Corrupt})
		var out []int
		for i := 0; i < 8; i++ {
			out = append(out, s.corruptPos(&s.rules[0], 1<<20))
		}
		return out
	}
	if !reflect.DeepEqual(positions(42), positions(42)) {
		t.Error("same seed produced different corrupt positions")
	}
	if reflect.DeepEqual(positions(42), positions(43)) {
		t.Error("different seeds produced identical corrupt positions")
	}
}

func TestCloneResetsCounters(t *testing.T) {
	s := New(1, Rule{Side: SideSim, Conn: 0, Op: OpWrite, Nth: 0, Action: Drop})
	a, _ := memPipe(t)
	c := s.WrapAccepted(a)
	c.Write([]byte("x")) // fires on conn 0
	if len(s.Fired()) != 1 {
		t.Fatalf("fired = %v", s.Fired())
	}
	s2 := s.Clone(2)
	if len(s2.Fired()) != 0 {
		t.Error("clone inherited fired history")
	}
	a2, _ := memPipe(t)
	c2 := s2.WrapAccepted(a2) // counter reset: this is conn 0 again
	if n, err := c2.Write([]byte("x")); err != nil || n != 1 {
		t.Errorf("clone conn 0 write: n=%d err=%v", n, err)
	}
	if len(s2.Fired()) != 1 {
		t.Error("clone rule did not fire on fresh conn 0")
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `
# a comment
sim:0:write[1]:corrupt=30
viz:*:dial[0]:refuse
viz:1:write[2]:delay=250ms
sim:*:read[*]:reset
sim:0:write[3]:partial
viz:0:write[0]:drop
`
	s, err := Parse(text, 7)
	if err != nil {
		t.Fatal(err)
	}
	rules := s.Rules()
	want := []Rule{
		{Side: SideSim, Conn: 0, Op: OpWrite, Nth: 1, Action: Corrupt, Pos: 30},
		{Side: SideViz, Conn: Any, Op: OpDial, Nth: 0, Action: Refuse},
		{Side: SideViz, Conn: 1, Op: OpWrite, Nth: 2, Action: Delay, Delay: 250 * time.Millisecond},
		{Side: SideSim, Conn: Any, Op: OpRead, Nth: Any, Action: Reset},
		{Side: SideSim, Conn: 0, Op: OpWrite, Nth: 3, Action: Partial},
		{Side: SideViz, Conn: 0, Op: OpWrite, Nth: 0, Action: Drop},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("rules = %+v\nwant    %+v", rules, want)
	}
	// String() renders back into parseable syntax.
	for _, r := range rules {
		re, err := parseRule(r.String())
		if err != nil {
			t.Errorf("re-parsing %q: %v", r.String(), err)
		}
		if !reflect.DeepEqual(re, r) {
			t.Errorf("round trip %q: %+v != %+v", r.String(), re, r)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",                         // no rules
		"sim:0:write[1]",           // missing action
		"mars:0:write[1]:corrupt",  // unknown side
		"sim:x:write[1]:corrupt",   // bad conn
		"sim:0:poke[1]:corrupt",    // unknown op
		"sim:0:write[1]:explode",   // unknown action
		"sim:0:write[1]:delay",     // delay without duration
		"sim:0:write[1]:delay=fast",// bad duration
		"sim:-1:write[1]:corrupt",  // negative index
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestNilScheduleIsTransparent(t *testing.T) {
	var s *Schedule
	a, _ := memPipe(t)
	if s.WrapAccepted(a) != a {
		t.Error("nil schedule wrapped the conn")
	}
	if s.Fired() != nil {
		t.Error("nil schedule has fired history")
	}
	if s.Clone(1) != nil {
		t.Error("nil clone not nil")
	}
}
