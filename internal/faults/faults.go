// Package faults is ETH's deterministic fault-injection layer for the
// inter-proxy transport. A Schedule wraps the net.Conn values of a
// socket-coupled proxy pair and injects link failures — byte corruption,
// dropped frames, stalls, partial writes, mid-frame resets, and refused
// dials — from a reproducible plan: every injection is selected by a
// step-indexed rule and any randomness (which byte to corrupt) comes from
// a PRNG seeded at construction, never from wall-clock entropy. The same
// schedule therefore produces the same fault sequence on every run, which
// is what lets the chaos suite assert exact recovery semantics and what
// lets `ethrun -faults` replay a failure end-to-end.
//
// Rules address operations by coordinates that are deterministic under
// the framed transport protocol: each side of a pairing (the accepting
// simulation side, the dialing visualization side) numbers its
// connections 0,1,2,... in establishment order, and each connection
// numbers its Write calls 0,1,2,... Because the transport buffers a whole
// frame and flushes it with one Write, write index k is frame k on that
// connection. Dial rules index dial attempts per schedule the same way.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every error this package
// injects, so recovery code (and tests) can tell a scheduled fault from a
// real one with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Side identifies which end of a proxy pairing a rule applies to.
type Side uint8

const (
	// SideSim is the simulation side: connections wrapped by
	// WrapAccepted, numbered in accept order.
	SideSim Side = iota
	// SideViz is the visualization side: connections wrapped by the
	// Dialer, numbered in successful-dial order; dial rules count
	// attempts on this side.
	SideViz
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == SideViz {
		return "viz"
	}
	return "sim"
}

// Op is the operation class a rule matches.
type Op uint8

const (
	// OpWrite matches the Nth Write call on a connection (frame N under
	// the transport's one-flush-per-frame discipline).
	OpWrite Op = iota
	// OpRead matches the Nth Read call on a connection. Read boundaries
	// depend on kernel delivery, so read rules are less deterministic
	// than write rules; prefer writes for reproducible scenarios.
	OpRead
	// OpDial matches the Nth dial attempt made through the schedule's
	// Dialer.
	OpDial
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpDial:
		return "dial"
	default:
		return "write"
	}
}

// Action is what an activated rule does to its operation.
type Action uint8

const (
	// Corrupt flips one byte of the written data (position from Rule.Pos,
	// or seeded-random when Pos <= 0) and lets the write proceed.
	Corrupt Action = iota
	// Drop swallows the write: the caller sees success, the peer sees
	// nothing. The peer's read deadline is what eventually notices.
	Drop
	// Delay sleeps Rule.Delay before performing the operation.
	Delay
	// Reset writes the first half of the data, closes the underlying
	// connection, and returns an injected error — a mid-frame reset.
	Reset
	// Partial writes the first half of the data and returns an injected
	// error without closing, leaving a truncated frame in flight.
	Partial
	// Refuse fails a dial attempt with an injected error.
	Refuse
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Reset:
		return "reset"
	case Partial:
		return "partial"
	case Refuse:
		return "refuse"
	default:
		return "corrupt"
	}
}

// Rule schedules one class of injection. Conn and Nth select the target
// operation; Any (-1) wildcards match every candidate, so a rule can fire
// repeatedly.
type Rule struct {
	// Side selects which end's counters the rule consults.
	Side Side
	// Conn is the connection index on that side, or Any.
	Conn int
	// Op is the operation class.
	Op Op
	// Nth is the 0-based operation index on the connection (or the dial
	// attempt index for OpDial), or Any.
	Nth int
	// Action is the injected behavior.
	Action Action
	// Delay is the stall duration for Delay actions.
	Delay time.Duration
	// Pos, for Corrupt, is the byte offset to flip; <= 0 picks a
	// seeded-random offset. v3 dataset frames carry an 18-byte header,
	// so offsets >= 18 land in the payload.
	Pos int
}

// Any wildcards a Rule's Conn or Nth coordinate.
const Any = -1

// String renders the rule in the schedule-file syntax understood by
// Parse.
func (r Rule) String() string {
	conn := "*"
	if r.Conn != Any {
		conn = fmt.Sprintf("%d", r.Conn)
	}
	nth := "*"
	if r.Nth != Any {
		nth = fmt.Sprintf("%d", r.Nth)
	}
	s := fmt.Sprintf("%s:%s:%s[%s]:%s", r.Side, conn, r.Op, nth, r.Action)
	switch r.Action {
	case Delay:
		s += "=" + r.Delay.String()
	case Corrupt:
		if r.Pos > 0 {
			s += fmt.Sprintf("=%d", r.Pos)
		}
	}
	return s
}

// Schedule is a reproducible fault plan: a rule set plus a seeded PRNG
// and per-side connection/dial counters. Safe for concurrent use by both
// sides of a pairing.
type Schedule struct {
	mu    sync.Mutex
	seed  int64
	rules []Rule
	rng   *rand.Rand // guarded by mu
	conns [2]int     // guarded by mu: next connection index per side
	dials int        // guarded by mu: dial attempt counter
	fired []string   // guarded by mu: description of every injection
}

// New builds a schedule from rules with the given seed. The seed drives
// only the residual randomness (corrupt-byte positions without an
// explicit Pos); rule selection is fully positional.
func New(seed int64, rules ...Rule) *Schedule {
	return &Schedule{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Clone returns a fresh schedule with the same rules and a new seed,
// zeroed counters, and no fired history — one per rank, so concurrent
// pairs replay independent copies of the same plan.
func (s *Schedule) Clone(seed int64) *Schedule {
	if s == nil {
		return nil
	}
	return New(seed, s.rules...)
}

// Rules returns a copy of the schedule's rule set.
func (s *Schedule) Rules() []Rule {
	return append([]Rule(nil), s.rules...)
}

// Fired returns a description of every injection performed so far, in
// firing order.
func (s *Schedule) Fired() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.fired...)
}

// WrapAccepted wraps a connection accepted by the simulation side,
// assigning it the next SideSim connection index. Nil schedules pass the
// connection through untouched.
func (s *Schedule) WrapAccepted(c net.Conn) net.Conn { return s.wrap(c, SideSim) }

// WrapDialed wraps a connection dialed by the visualization side,
// assigning it the next SideViz connection index.
func (s *Schedule) WrapDialed(c net.Conn) net.Conn { return s.wrap(c, SideViz) }

func (s *Schedule) wrap(c net.Conn, side Side) net.Conn {
	if s == nil {
		return c
	}
	s.mu.Lock()
	idx := s.conns[side]
	s.conns[side]++
	s.mu.Unlock()
	return &faultConn{Conn: c, s: s, side: side, idx: idx}
}

// DialFunc matches transport.Backoff's pluggable dial signature.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Dialer wraps base (nil = net.DialTimeout) with the schedule's dial
// rules: each attempt is counted, Refuse/Delay rules apply, and
// successful dials come back wrapped as SideViz connections.
func (s *Schedule) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = net.DialTimeout
	}
	if s == nil {
		return base
	}
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		s.mu.Lock()
		attempt := s.dials
		s.dials++
		r := s.matchLocked(SideViz, Any, OpDial, attempt)
		if r != nil {
			s.noteLocked("dial[%d] %s", attempt, r.Action)
		}
		s.mu.Unlock()
		if r != nil {
			switch r.Action {
			case Refuse:
				return nil, fmt.Errorf("faults: dial attempt %d refused: %w", attempt, ErrInjected)
			case Delay:
				time.Sleep(r.Delay)
			}
		}
		c, err := base(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		return s.WrapDialed(c), nil
	}
}

// match finds the first rule covering (side, conn, op, nth), or nil.
func (s *Schedule) match(side Side, conn int, op Op, nth int) *Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.matchLocked(side, conn, op, nth)
}

func (s *Schedule) matchLocked(side Side, conn int, op Op, nth int) *Rule {
	for i := range s.rules {
		r := &s.rules[i]
		if r.Side != side || r.Op != op {
			continue
		}
		if r.Conn != Any && conn != Any && r.Conn != conn {
			continue
		}
		if r.Nth != Any && r.Nth != nth {
			continue
		}
		return r
	}
	return nil
}

// note records one injection (locked variant for callers holding mu).
func (s *Schedule) note(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteLocked(format, args...)
}

func (s *Schedule) noteLocked(format string, args ...any) {
	s.fired = append(s.fired, fmt.Sprintf(format, args...))
}

// corruptPos picks the byte to flip: the rule's explicit Pos when set,
// otherwise a seeded-random offset (deterministic per schedule).
func (s *Schedule) corruptPos(r *Rule, n int) int {
	if r.Pos > 0 && r.Pos < n {
		return r.Pos
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Intn(n)
}

// faultConn is a net.Conn that consults its schedule on every operation.
type faultConn struct {
	net.Conn
	s    *Schedule
	side Side
	idx  int
	// opmu guards the per-connection operation counters: the protocol
	// uses each connection from one goroutine at a time, but the chaos
	// suite runs under -race and close races are real.
	opmu   sync.Mutex
	reads  int // guarded by opmu
	writes int // guarded by opmu
}

// nextOp atomically takes the next operation index of the given class.
func (f *faultConn) nextOp(op Op) int {
	f.opmu.Lock()
	defer f.opmu.Unlock()
	if op == OpRead {
		n := f.reads
		f.reads++
		return n
	}
	n := f.writes
	f.writes++
	return n
}

// Write applies any matching write rule before (or instead of)
// delegating.
func (f *faultConn) Write(p []byte) (int, error) {
	nth := f.nextOp(OpWrite)
	r := f.s.match(f.side, f.idx, OpWrite, nth)
	if r == nil {
		return f.Conn.Write(p)
	}
	switch r.Action {
	case Corrupt:
		q := append([]byte(nil), p...)
		pos := f.s.corruptPos(r, len(q))
		q[pos] ^= 0xA5
		f.s.note("%s conn %d write[%d] corrupt byte %d", f.side, f.idx, nth, pos)
		return f.Conn.Write(q)
	case Drop:
		f.s.note("%s conn %d write[%d] drop %dB", f.side, f.idx, nth, len(p))
		return len(p), nil
	case Delay:
		f.s.note("%s conn %d write[%d] delay %v", f.side, f.idx, nth, r.Delay)
		time.Sleep(r.Delay)
		return f.Conn.Write(p)
	case Reset:
		n, _ := f.Conn.Write(p[:len(p)/2])
		f.Conn.Close()
		f.s.note("%s conn %d write[%d] reset after %dB", f.side, f.idx, nth, n)
		return n, fmt.Errorf("faults: reset %s conn %d write %d: %w", f.side, f.idx, nth, ErrInjected)
	case Partial:
		n, err := f.Conn.Write(p[:(len(p)+1)/2])
		f.s.note("%s conn %d write[%d] partial %d/%dB", f.side, f.idx, nth, n, len(p))
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faults: partial %s conn %d write %d: %w", f.side, f.idx, nth, ErrInjected)
	default:
		return f.Conn.Write(p)
	}
}

// Read applies any matching read rule before delegating. Only Delay,
// Drop (returns an injected error without reading), and Reset are
// meaningful on reads.
func (f *faultConn) Read(p []byte) (int, error) {
	nth := f.nextOp(OpRead)
	r := f.s.match(f.side, f.idx, OpRead, nth)
	if r == nil {
		return f.Conn.Read(p)
	}
	switch r.Action {
	case Delay:
		f.s.note("%s conn %d read[%d] delay %v", f.side, f.idx, nth, r.Delay)
		time.Sleep(r.Delay)
		return f.Conn.Read(p)
	case Reset:
		f.Conn.Close()
		f.s.note("%s conn %d read[%d] reset", f.side, f.idx, nth)
		return 0, fmt.Errorf("faults: reset %s conn %d read %d: %w", f.side, f.idx, nth, ErrInjected)
	case Drop:
		f.s.note("%s conn %d read[%d] drop", f.side, f.idx, nth)
		return 0, fmt.Errorf("faults: dropped %s conn %d read %d: %w", f.side, f.idx, nth, ErrInjected)
	default:
		return f.Conn.Read(p)
	}
}

// Parse reads a schedule from its text form: one rule per line,
//
//	<side>:<conn>:<op>[<nth>]:<action>[=<arg>]
//
// where side is sim|viz, conn and nth are integers or *, op is
// write|read|dial, and action is corrupt[=pos] | drop | delay=<dur> |
// reset | partial | refuse. Blank lines and #-comments are skipped.
// Example:
//
//	# corrupt the second frame the sim sends on its first connection,
//	# then refuse the viz side's first reconnect dial
//	sim:0:write[1]:corrupt=30
//	viz:*:dial[1]:refuse
func Parse(text string, seed int64) (*Schedule, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", lineNo+1, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: schedule has no rules")
	}
	return New(seed, rules...), nil
}

func parseRule(line string) (Rule, error) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return Rule{}, fmt.Errorf("want <side>:<conn>:<op>[<nth>]:<action>, got %q", line)
	}
	var r Rule
	switch parts[0] {
	case "sim":
		r.Side = SideSim
	case "viz":
		r.Side = SideViz
	default:
		return Rule{}, fmt.Errorf("unknown side %q (want sim or viz)", parts[0])
	}
	var err error
	if r.Conn, err = parseIndex(parts[1]); err != nil {
		return Rule{}, fmt.Errorf("conn: %w", err)
	}
	opStr, nthStr, ok := splitBracket(parts[2])
	if !ok {
		return Rule{}, fmt.Errorf("want <op>[<nth>], got %q", parts[2])
	}
	switch opStr {
	case "write":
		r.Op = OpWrite
	case "read":
		r.Op = OpRead
	case "dial":
		r.Op = OpDial
	default:
		return Rule{}, fmt.Errorf("unknown op %q (want write, read, or dial)", opStr)
	}
	if r.Nth, err = parseIndex(nthStr); err != nil {
		return Rule{}, fmt.Errorf("nth: %w", err)
	}
	action, arg, _ := strings.Cut(parts[3], "=")
	switch action {
	case "corrupt":
		r.Action = Corrupt
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &r.Pos); err != nil {
				return Rule{}, fmt.Errorf("corrupt position %q: %w", arg, err)
			}
		}
	case "drop":
		r.Action = Drop
	case "delay":
		r.Action = Delay
		if arg == "" {
			return Rule{}, fmt.Errorf("delay needs a duration (delay=50ms)")
		}
		if r.Delay, err = time.ParseDuration(arg); err != nil {
			return Rule{}, fmt.Errorf("delay %q: %w", arg, err)
		}
	case "reset":
		r.Action = Reset
	case "partial":
		r.Action = Partial
	case "refuse":
		r.Action = Refuse
	default:
		return Rule{}, fmt.Errorf("unknown action %q", action)
	}
	return r, nil
}

// parseIndex parses an integer coordinate or the * wildcard.
func parseIndex(s string) (int, error) {
	if s == "*" {
		return Any, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("want integer or *, got %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative index %d", n)
	}
	return n, nil
}

// splitBracket splits "op[nth]" into its parts.
func splitBracket(s string) (op, nth string, ok bool) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", "", false
	}
	return s[:open], s[open+1 : len(s)-1], true
}
