package rt

import (
	"math"
	"testing"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

// hotCoreGrid has a bright core fading to zero at the edges.
func hotCoreGrid(n int) *data.StructuredGrid {
	g := data.NewStructuredGrid(n, n, n)
	c := vec.Splat(float64(n-1) / 2)
	maxR := float64(n-1) / 2
	g.FillField("temperature", func(p vec.V3) float32 {
		r := p.Sub(c).Len() / maxR
		v := 1 - r
		if v < 0 {
			v = 0
		}
		return float32(v)
	})
	return g
}

func TestDVRRendersCore(t *testing.T) {
	g := hotCoreGrid(32)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(96, 96)
	if err := RaycastVolume(frame, g, &cam, DVROptions{Field: "temperature"}); err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() < 500 {
		t.Fatalf("DVR covered %d pixels", frame.CoveredPixels())
	}
	// Center of image (through the hot core) must be brighter than the
	// faint rim.
	center := frame.At(48, 48)
	rim := frame.At(10, 48)
	if center.MaxComp() <= rim.MaxComp() {
		t.Errorf("core %v not brighter than rim %v", center, rim)
	}
	// Colors bounded (compositing cannot exceed the colormap's gamut).
	for _, c := range frame.Color {
		if c.MaxComp() > 1.5 || c.MinComp() < 0 {
			t.Fatalf("unbounded color %v", c)
		}
	}
}

func TestDVROpacityScaleControlsExtinction(t *testing.T) {
	g := hotCoreGrid(24)
	cam := camera.ForBounds(g.Bounds())
	brightness := func(opacity float64) float64 {
		frame := fb.New(64, 64)
		if err := RaycastVolume(frame, g, &cam, DVROptions{
			Field: "temperature", OpacityScale: opacity,
		}); err != nil {
			t.Fatal(err)
		}
		c := frame.At(32, 32)
		return c.X + c.Y + c.Z
	}
	thin := brightness(0.005)
	thick := brightness(0.5)
	if thin >= thick {
		t.Errorf("thin volume (%v) should be dimmer than thick (%v)", thin, thick)
	}
}

func TestDVRDepthIsFirstContribution(t *testing.T) {
	g := hotCoreGrid(24)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(64, 64)
	if err := RaycastVolume(frame, g, &cam, DVROptions{Field: "temperature"}); err != nil {
		t.Fatal(err)
	}
	// Depths of covered pixels lie within the clip range and in front of
	// the far bound.
	for i, d := range frame.Depth {
		if math.IsInf(d, 1) {
			continue
		}
		if d < cam.Near || d > cam.Far {
			t.Fatalf("pixel %d depth %v outside clip [%v, %v]", i, d, cam.Near, cam.Far)
		}
	}
}

func TestDVRErrors(t *testing.T) {
	g := hotCoreGrid(8)
	cam := camera.ForBounds(g.Bounds())
	if err := RaycastVolume(fb.New(8, 8), g, &cam, DVROptions{Field: "nope"}); err == nil {
		t.Error("missing field accepted")
	}
	bad := hotCoreGrid(8)
	bad.Spacing = vec.V3{}
	if err := RaycastVolume(fb.New(8, 8), bad, &cam, DVROptions{Field: "temperature"}); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestDVREmptyVolumeRendersNothing(t *testing.T) {
	g := data.NewStructuredGrid(8, 8, 8)
	g.FillField("temperature", func(vec.V3) float32 { return 0 })
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(32, 32)
	if err := RaycastVolume(frame, g, &cam, DVROptions{Field: "temperature"}); err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() != 0 {
		t.Errorf("zero field rendered %d pixels", frame.CoveredPixels())
	}
}
