package rt

import (
	"fmt"
	"math"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// DVROptions configures direct volume rendering.
type DVROptions struct {
	// Field names the grid scalar.
	Field string
	// Colormap maps normalized scalars; nil = Hot.
	Colormap *fb.Colormap
	// ScalarLo/Hi normalize scalars; equal values select the field range.
	ScalarLo, ScalarHi float32
	// OpacityScale controls overall extinction: the opacity contributed
	// by one voxel-length step at normalized scalar 1.0. Default 0.05.
	OpacityScale float64
	// OpacityGamma shapes the scalar-to-opacity transfer: opacity ~
	// scalar^Gamma. Default 2 (emphasizes high values).
	OpacityGamma float64
}

// RaycastVolume performs direct volume rendering (emission-absorption,
// front-to-back alpha compositing with early termination) — the
// full-volume alternative to slices and isosurfaces, provided as an
// extension algorithm the paper's architecture anticipates ("the
// visualization proxy is extended to include any new algorithm the user
// may wish to study", §VII). Cost per ray is O(N^(1/3)) like the
// ray-marched isosurface, without the early exit on a crossing.
func RaycastVolume(frame *fb.Frame, g *data.StructuredGrid, cam *camera.Camera, opt DVROptions) error {
	f, err := g.Field(opt.Field)
	if err != nil {
		return err
	}
	cmap := opt.Colormap
	if cmap == nil {
		cmap = fb.Hot
	}
	lo, hi := opt.ScalarLo, opt.ScalarHi
	if lo >= hi {
		lo, hi = f.MinMax()
	}
	scale := 0.0
	if hi > lo {
		scale = 1 / float64(hi-lo)
	}
	opScale := opt.OpacityScale
	if opScale <= 0 {
		opScale = 0.05
	}
	gamma := opt.OpacityGamma
	if gamma <= 0 {
		gamma = 2
	}
	bounds := g.Bounds()
	step := g.Spacing.MinComp()
	if step <= 0 {
		return fmt.Errorf("rt: grid has non-positive spacing")
	}

	w, h := frame.W, frame.H
	gen := cam.NewRayGen(w, h)
	par.ForGrained(h, 0, 2, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				ray := gen.Ray(x, y)
				invDir := vec.V3{X: safeInv(ray.Dir.X), Y: safeInv(ray.Dir.Y), Z: safeInv(ray.Dir.Z)}
				t0, t1, ok := bounds.IntersectRay(ray.Origin, invDir, cam.Near, cam.Far)
				if !ok {
					continue
				}
				var accum vec.V3
				alpha := 0.0
				firstT := math.Inf(1)
				for t := t0; t < t1; t += step {
					p := ray.Origin.Add(ray.Dir.Scale(t))
					s := float64(g.Sample(f, p)-lo) * scale
					if s <= 0 {
						continue
					}
					if s > 1 {
						s = 1
					}
					a := opScale * math.Pow(s, gamma)
					if a <= 0 {
						continue
					}
					if math.IsInf(firstT, 1) {
						firstT = t
					}
					c := cmap.Lookup(s)
					// Front-to-back compositing.
					accum = accum.Add(c.Scale(a * (1 - alpha)))
					alpha += a * (1 - alpha)
					if alpha >= 0.98 {
						break
					}
				}
				if alpha <= 0 {
					continue
				}
				frame.DepthSet(x, y, firstT, accum)
			}
		}
		ctrRays.Add(int64((y1 - y0) * w))
	})
	return nil
}
