package rt

import (
	"fmt"
	"math"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/mempool"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/vec"
)

// colorPool recycles the per-particle color table across frames, so
// re-rendering the same (or same-sized) cloud does not reallocate it.
var colorPool mempool.SlicePool[vec.V3]

// Telemetry counters (TACC-Stats analog, §V-A): incremented in aggregate
// per scanline band so the hot loops stay counter-free.
var (
	ctrRays      = telemetry.Default.Counter("rt.rays")
	ctrRayHits   = telemetry.Default.Counter("rt.hits")
	ctrMarchated = telemetry.Default.Counter("rt.march_steps")
)

// SphereOptions configures sphere raycasting.
type SphereOptions struct {
	// Radius is the world-space sphere radius; <= 0 derives one from the
	// dataset density (same default as the Gaussian splatter so the two
	// pipelines are comparable in RMSE tests).
	Radius float64
	// ColorField names the per-particle scalar for colormapping.
	ColorField string
	// Colormap maps normalized scalars; nil = Viridis.
	Colormap *fb.Colormap
	// Strategy selects the BVH build algorithm.
	Strategy BuildStrategy
	// Ambient light fraction; 0 selects 0.25.
	Ambient float64
	// ScalarLo/Hi pin the colormap normalization range; equal values
	// select the field's own range (multi-rank renders pin a global
	// range so ranks color identically).
	ScalarLo, ScalarHi float32
}

// RaycastSpheres renders the particles of p as world-space spheres into
// frame: an acceleration structure is built (O(N log N)), then one
// primary ray per pixel traverses it — cost sub-linear in N and fixed in
// the ray count (§IV-C "Raycast Spheres"). It returns the BVH so callers
// rendering multiple frames amortize the build, matching the paper's
// "once the initial data structure is built" behaviour.
func RaycastSpheres(frame *fb.Frame, p *data.PointCloud, cam *camera.Camera, opt SphereOptions) (*SphereBVH, error) {
	radius := opt.Radius
	if radius <= 0 {
		radius = defaultRadius(p)
	}
	bvh := BuildSphereBVH(p, radius, opt.Strategy)
	if err := RaycastSpheresWithBVH(frame, p, bvh, cam, opt); err != nil {
		return nil, err
	}
	return bvh, nil
}

// RaycastSpheresWithBVH renders using a prebuilt hierarchy.
func RaycastSpheresWithBVH(frame *fb.Frame, p *data.PointCloud, bvh *SphereBVH, cam *camera.Camera, opt SphereOptions) error {
	colors, err := scalarColors(p, opt.ColorField, opt.Colormap, opt.ScalarLo, opt.ScalarHi)
	if err != nil {
		return err
	}
	defer colorPool.Put(colors)
	ambient := opt.Ambient
	if ambient <= 0 {
		ambient = 0.25
	}
	light := cam.Eye.Sub(cam.Center).Norm() // headlight

	w, h := frame.W, frame.H
	gen := cam.NewRayGen(w, h)
	par.ForGrained(h, 0, 4, func(y0, y1 int) {
		hits := 0
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				ray := gen.Ray(x, y)
				hit, ok := bvh.Intersect(ray.Origin, ray.Dir, cam.Near, cam.Far)
				if !ok {
					continue
				}
				hits++
				lambert := hit.Normal.Dot(light)
				if lambert < 0 {
					lambert = 0
				}
				shade := ambient + (1-ambient)*lambert
				c := colors[hit.Particle].Scale(shade)
				frame.DepthSet(x, y, hit.T, c)
			}
		}
		ctrRays.Add(int64((y1 - y0) * w))
		ctrRayHits.Add(int64(hits))
	})
	return nil
}

func defaultRadius(p *data.PointCloud) float64 {
	if p.Count() == 0 {
		return 1
	}
	b := p.Bounds()
	vol := b.Size().X * b.Size().Y * b.Size().Z
	if vol <= 0 {
		return b.Diagonal()/100 + 1e-6
	}
	return 0.5 * math.Cbrt(vol/float64(p.Count()))
}

func scalarColors(p *data.PointCloud, fieldName string, cmap *fb.Colormap, lo, hi float32) ([]vec.V3, error) {
	colors := colorPool.Get(p.Count())
	if fieldName == "" {
		for i := range colors {
			colors[i] = vec.New(1, 1, 1)
		}
		return colors, nil
	}
	f, err := p.Field(fieldName)
	if err != nil {
		colorPool.Put(colors)
		return nil, fmt.Errorf("rt: color field: %w", err)
	}
	if cmap == nil {
		cmap = fb.Viridis
	}
	if lo >= hi {
		lo, hi = f.MinMax()
	}
	scale := 0.0
	if hi > lo {
		scale = 1 / float64(hi-lo)
	}
	par.For(p.Count(), 0, func(i int) {
		colors[i] = cmap.Lookup(float64(f.Values[i]-lo) * scale)
	})
	return colors, nil
}

// VolumeOptions configures volume raycasting (slices and isosurfaces).
type VolumeOptions struct {
	// Field names the grid scalar to visualize.
	Field string
	// Colormap maps normalized scalars; nil = Hot (temperature-style).
	Colormap *fb.Colormap
	// ScalarLo/Hi normalize scalars; equal values select the field range.
	ScalarLo, ScalarHi float32
	// Ambient light fraction; 0 selects 0.25.
	Ambient float64
}

// RaycastSlice renders the cross-section of the grid with the plane
// through point with the given normal. Per-ray cost is O(1): one
// ray-plane intersection plus one trilinear sample (§IV-C "Slices and
// Isosurfaces in Raycasting"), so total cost is O(pixels) independent of
// the grid size.
func RaycastSlice(frame *fb.Frame, g *data.StructuredGrid, cam *camera.Camera, point, normal vec.V3, opt VolumeOptions) error {
	f, err := g.Field(opt.Field)
	if err != nil {
		return err
	}
	n := normal.Norm()
	if n == (vec.V3{}) {
		return fmt.Errorf("rt: slice plane normal is zero")
	}
	cmap := opt.Colormap
	if cmap == nil {
		cmap = fb.Hot
	}
	lo, hi := opt.ScalarLo, opt.ScalarHi
	if lo >= hi {
		lo, hi = f.MinMax()
	}
	scale := 0.0
	if hi > lo {
		scale = 1 / float64(hi-lo)
	}
	bounds := g.Bounds()

	w, h := frame.W, frame.H
	gen := cam.NewRayGen(w, h)
	par.ForGrained(h, 0, 4, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				ray := gen.Ray(x, y)
				denom := ray.Dir.Dot(n)
				if math.Abs(denom) < 1e-12 {
					continue
				}
				t := point.Sub(ray.Origin).Dot(n) / denom
				if t < cam.Near || t > cam.Far {
					continue
				}
				p := ray.Origin.Add(ray.Dir.Scale(t))
				if !bounds.Contains(p) {
					continue
				}
				s := float64(g.Sample(f, p)-lo) * scale
				frame.DepthSet(x, y, t, cmap.Lookup(s))
			}
		}
	})
	return nil
}

// RaycastIsosurface renders the isoValue contour of the grid field by ray
// marching: each ray steps through the volume at ~1 voxel per step
// looking for a sign change, then bisects to refine the crossing. Per-ray
// cost is proportional to the 1-D resolution of the data — the N^(1/3)
// scaling the paper derives (§IV-C).
func RaycastIsosurface(frame *fb.Frame, g *data.StructuredGrid, cam *camera.Camera, isoValue float32, opt VolumeOptions) error {
	f, err := g.Field(opt.Field)
	if err != nil {
		return err
	}
	cmap := opt.Colormap
	if cmap == nil {
		cmap = fb.Hot
	}
	lo, hi := opt.ScalarLo, opt.ScalarHi
	if lo >= hi {
		lo, hi = f.MinMax()
	}
	scale := 0.0
	if hi > lo {
		scale = 1 / float64(hi-lo)
	}
	isoNorm := float64(isoValue-lo) * scale

	bounds := g.Bounds()
	step := g.Spacing.MinComp()
	if step <= 0 {
		return fmt.Errorf("rt: grid has non-positive spacing")
	}
	ambient := opt.Ambient
	if ambient <= 0 {
		ambient = 0.25
	}
	light := cam.Eye.Sub(cam.Center).Norm()

	w, h := frame.W, frame.H
	gen := cam.NewRayGen(w, h)
	par.ForGrained(h, 0, 2, func(y0, y1 int) {
		marchSteps := 0
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				ray := gen.Ray(x, y)
				invDir := vec.V3{X: safeInv(ray.Dir.X), Y: safeInv(ray.Dir.Y), Z: safeInv(ray.Dir.Z)}
				t0, t1, ok := bounds.IntersectRay(ray.Origin, invDir, cam.Near, cam.Far)
				if !ok {
					continue
				}
				// March.
				prevT := t0
				prevV := g.Sample(f, ray.Origin.Add(ray.Dir.Scale(t0)))
				found := false
				var hitT float64
				for t := t0 + step; t <= t1+step; t += step {
					marchSteps++
					tc := math.Min(t, t1)
					v := g.Sample(f, ray.Origin.Add(ray.Dir.Scale(tc)))
					if (prevV < isoValue) != (v < isoValue) {
						// Bisect [prevT, tc] to refine.
						a, bT := prevT, tc
						va := prevV
						for it := 0; it < 8; it++ {
							mid := (a + bT) / 2
							vm := g.Sample(f, ray.Origin.Add(ray.Dir.Scale(mid)))
							if (va < isoValue) != (vm < isoValue) {
								bT = mid
							} else {
								a = mid
								va = vm
							}
						}
						hitT = (a + bT) / 2
						found = true
						break
					}
					prevT, prevV = tc, v
					if tc >= t1 {
						break
					}
				}
				if !found {
					continue
				}
				p := ray.Origin.Add(ray.Dir.Scale(hitT))
				normal := g.Gradient(f, p).Norm()
				lambert := math.Abs(normal.Dot(light))
				shade := ambient + (1-ambient)*lambert
				frame.DepthSet(x, y, hitT, cmap.Lookup(isoNorm).Scale(shade))
			}
		}
		ctrMarchated.Add(int64(marchSteps))
		ctrRays.Add(int64((y1 - y0) * w))
	})
	return nil
}
