package rt

import (
	"testing"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

// TestScalarColorsErrorReleasesColors is a regression test for a color-
// table pool leak found by the poolleak analyzer: a missing color field
// used to error out of scalarColors without returning the freshly
// acquired table to colorPool. The test seeds the pool, drives the error
// path, and asserts the pool hands the same backing array back out —
// possible only if the error path released it. Single goroutine, so
// sync.Pool's per-P slots make the round trip deterministic.
func TestScalarColorsErrorReleasesColors(t *testing.T) {
	p := data.NewPointCloud(16)
	for i := 0; i < 16; i++ {
		p.SetPos(i, vec.New(float64(i), 0, 0))
	}

	seed := colorPool.Get(p.Count())
	seedPtr := &seed[0]
	colorPool.Put(seed)

	if _, err := scalarColors(p, "no-such-field", nil, 0, 0); err == nil {
		t.Fatal("scalarColors with a missing field should fail")
	}

	got := colorPool.Get(p.Count())
	defer colorPool.Put(got)
	if &got[0] != seedPtr {
		t.Errorf("color table not returned to the pool on the error path: got %p, want %p", &got[0], seedPtr)
	}
}
