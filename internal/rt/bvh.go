// Package rt implements ETH's raycasting pipeline — the geometry-free
// renderer of the paper (§IV-C): spheres for particle data via a bounding
// volume hierarchy, and slices / ray-marched isosurfaces for volume data.
// Its cost structure mirrors OSPRay-style CPU raycasters: an O(N log N)
// acceleration-structure build followed by per-ray work that is sub-linear
// in the particle count and independent of it for fixed ray budgets —
// the asymmetry behind the paper's Findings 3 and 7.
package rt

import (
	"math"
	"sort"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/par"
	"github.com/ascr-ecx/eth/internal/vec"
)

// BuildStrategy selects the BVH construction algorithm; DESIGN.md lists
// this as an ablation dimension.
type BuildStrategy uint8

const (
	// MedianSplit splits at the object median along the longest axis —
	// fast O(N log N) build, decent trees.
	MedianSplit BuildStrategy = iota
	// BinnedSAH evaluates a binned surface-area heuristic per split —
	// slower build, faster traversal on irregular distributions.
	BinnedSAH
)

// String implements fmt.Stringer.
func (s BuildStrategy) String() string {
	if s == BinnedSAH {
		return "binned-sah"
	}
	return "median-split"
}

// leafSize is the maximum primitives per leaf.
const leafSize = 8

// node is a BVH node. Leaves have count > 0 and left as the first
// primitive index; internal nodes have count == 0 and left as the index
// of the first child (children are adjacent).
type node struct {
	bounds vec.AABB
	left   int32
	count  int32
}

// SphereBVH is a bounding volume hierarchy over a set of spheres with a
// common radius, built from a particle dataset. Primitive order is
// shuffled during construction; prim[i] maps BVH order back to particle
// index.
type SphereBVH struct {
	nodes  []node
	prim   []int32
	cx     []float32 // particle centers in BVH primitive order
	cy     []float32
	cz     []float32
	radius float64
	// NodesBuilt and LeavesBuilt are build statistics exposed for the
	// instrumentation experiments.
	NodesBuilt  int
	LeavesBuilt int
}

// BuildSphereBVH constructs the hierarchy over all particles of p, each a
// sphere of the given radius. Build cost is O(N log N) — the "additional
// setup phase" the paper attributes raycasting's extra computation to.
func BuildSphereBVH(p *data.PointCloud, radius float64, strategy BuildStrategy) *SphereBVH {
	n := p.Count()
	b := &SphereBVH{
		prim:   make([]int32, n),
		cx:     make([]float32, n),
		cy:     make([]float32, n),
		cz:     make([]float32, n),
		radius: radius,
	}
	for i := 0; i < n; i++ {
		b.prim[i] = int32(i)
	}
	// Work on copies of the coordinates in primitive order.
	copy(b.cx, p.X)
	copy(b.cy, p.Y)
	copy(b.cz, p.Z)
	if n == 0 {
		b.nodes = []node{{bounds: vec.EmptyAABB()}}
		return b
	}
	b.nodes = make([]node, 0, 2*n/leafSize+2)
	b.nodes = append(b.nodes, node{})
	b.build(0, 0, n, strategy, 0)
	b.NodesBuilt = len(b.nodes)
	return b
}

// centroid returns the center of primitive i (in primitive order).
func (b *SphereBVH) centroid(i int) vec.V3 {
	return vec.V3{X: float64(b.cx[i]), Y: float64(b.cy[i]), Z: float64(b.cz[i])}
}

// primBounds returns the bounds of primitives [lo, hi) expanded by the
// sphere radius.
func (b *SphereBVH) primBounds(lo, hi int) vec.AABB {
	box := vec.EmptyAABB()
	for i := lo; i < hi; i++ {
		box = box.Extend(b.centroid(i))
	}
	return box.Expand(b.radius)
}

// build recursively constructs the subtree for primitives [lo, hi) at
// node index ni.
func (b *SphereBVH) build(ni, lo, hi int, strategy BuildStrategy, depth int) {
	b.nodes[ni].bounds = b.primBounds(lo, hi)
	count := hi - lo
	if count <= leafSize || depth > 60 {
		b.nodes[ni].left = int32(lo)
		b.nodes[ni].count = int32(count)
		b.LeavesBuilt++
		return
	}
	var mid int
	switch strategy {
	case BinnedSAH:
		mid = b.sahSplit(lo, hi)
	default:
		mid = b.medianSplit(lo, hi)
	}
	if mid <= lo || mid >= hi {
		mid = (lo + hi) / 2
	}
	left := len(b.nodes)
	b.nodes = append(b.nodes, node{}, node{})
	b.nodes[ni].left = int32(left)
	b.nodes[ni].count = 0
	b.build(left, lo, mid, strategy, depth+1)
	b.build(left+1, mid, hi, strategy, depth+1)
}

// medianSplit partitions [lo, hi) at the median of the longest centroid
// axis and returns the split point.
func (b *SphereBVH) medianSplit(lo, hi int) int {
	box := vec.EmptyAABB()
	for i := lo; i < hi; i++ {
		box = box.Extend(b.centroid(i))
	}
	axis := box.LongestAxis()
	mid := (lo + hi) / 2
	b.nthElement(lo, hi, mid, axis)
	return mid
}

// sahSplit evaluates a 16-bin surface-area heuristic on the longest axis
// and partitions at the cheapest bin boundary.
func (b *SphereBVH) sahSplit(lo, hi int) int {
	const bins = 16
	cb := vec.EmptyAABB()
	for i := lo; i < hi; i++ {
		cb = cb.Extend(b.centroid(i))
	}
	axis := cb.LongestAxis()
	minC := cb.Min.Axis(axis)
	extent := cb.Max.Axis(axis) - minC
	if extent <= 0 {
		return (lo + hi) / 2
	}
	type bin struct {
		bounds vec.AABB
		count  int
	}
	var bs [bins]bin
	for i := range bs {
		bs[i].bounds = vec.EmptyAABB()
	}
	binOf := func(i int) int {
		f := (b.centroid(i).Axis(axis) - minC) / extent * bins
		k := int(f)
		if k >= bins {
			k = bins - 1
		}
		return k
	}
	for i := lo; i < hi; i++ {
		k := binOf(i)
		bs[k].bounds = bs[k].bounds.Extend(b.centroid(i))
		bs[k].count++
	}
	// Sweep to find the cheapest split plane.
	var leftArea, rightArea [bins]float64
	var leftCount, rightCount [bins]int
	acc := vec.EmptyAABB()
	cnt := 0
	for i := 0; i < bins-1; i++ {
		acc = acc.Union(bs[i].bounds)
		cnt += bs[i].count
		leftArea[i] = acc.SurfaceArea()
		leftCount[i] = cnt
	}
	acc = vec.EmptyAABB()
	cnt = 0
	for i := bins - 1; i > 0; i-- {
		acc = acc.Union(bs[i].bounds)
		cnt += bs[i].count
		rightArea[i-1] = acc.SurfaceArea()
		rightCount[i-1] = cnt
	}
	bestCost := math.Inf(1)
	bestBin := bins / 2
	for i := 0; i < bins-1; i++ {
		if leftCount[i] == 0 || rightCount[i] == 0 {
			continue
		}
		cost := leftArea[i]*float64(leftCount[i]) + rightArea[i]*float64(rightCount[i])
		if cost < bestCost {
			bestCost = cost
			bestBin = i
		}
	}
	// Partition primitives by bin.
	mid := lo
	for i := lo; i < hi; i++ {
		if binOf(i) <= bestBin {
			b.swap(mid, i)
			mid++
		}
	}
	return mid
}

// nthElement partially sorts [lo, hi) so that index n holds the value it
// would after a full sort by the given centroid axis (quickselect).
func (b *SphereBVH) nthElement(lo, hi, n, axis int) {
	coord := [3][]float32{b.cx, b.cy, b.cz}[axis]
	for hi-lo > 8 {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if coord[mid] < coord[lo] {
			b.swap(mid, lo)
		}
		if coord[hi-1] < coord[lo] {
			b.swap(hi-1, lo)
		}
		if coord[hi-1] < coord[mid] {
			b.swap(hi-1, mid)
		}
		pivot := coord[mid]
		i, j := lo, hi-1
		for i <= j {
			for coord[i] < pivot {
				i++
			}
			for coord[j] > pivot {
				j--
			}
			if i <= j {
				b.swap(i, j)
				i++
				j--
			}
		}
		if n <= j {
			hi = j + 1
		} else if n >= i {
			lo = i
		} else {
			return
		}
	}
	// Small range: insertion sort.
	sub := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		sub = append(sub, i)
	}
	sort.Slice(sub, func(a, c int) bool { return coord[sub[a]] < coord[sub[c]] })
	// Apply permutation via a scratch copy.
	tmpPrim := make([]int32, hi-lo)
	tmpX := make([]float32, hi-lo)
	tmpY := make([]float32, hi-lo)
	tmpZ := make([]float32, hi-lo)
	for k, src := range sub {
		tmpPrim[k] = b.prim[src]
		tmpX[k] = b.cx[src]
		tmpY[k] = b.cy[src]
		tmpZ[k] = b.cz[src]
	}
	copy(b.prim[lo:hi], tmpPrim)
	copy(b.cx[lo:hi], tmpX)
	copy(b.cy[lo:hi], tmpY)
	copy(b.cz[lo:hi], tmpZ)
}

func (b *SphereBVH) swap(i, j int) {
	b.prim[i], b.prim[j] = b.prim[j], b.prim[i]
	b.cx[i], b.cx[j] = b.cx[j], b.cx[i]
	b.cy[i], b.cy[j] = b.cy[j], b.cy[i]
	b.cz[i], b.cz[j] = b.cz[j], b.cz[i]
}

// Hit describes a ray-sphere intersection.
type Hit struct {
	T        float64 // ray parameter of the hit
	Particle int     // original particle index
	Normal   vec.V3  // outward surface normal at the hit point
}

// Intersect finds the nearest sphere hit along ray origin + t*dir for
// t in (tMin, tMax). It returns ok=false on a miss. dir need not be
// normalized but T is in units of |dir|.
func (b *SphereBVH) Intersect(origin, dir vec.V3, tMin, tMax float64) (Hit, bool) {
	if len(b.nodes) == 0 || b.nodes[0].bounds.IsEmpty() {
		return Hit{}, false
	}
	invDir := vec.V3{X: safeInv(dir.X), Y: safeInv(dir.Y), Z: safeInv(dir.Z)}
	// Stack entries carry the node's entry distance so popped nodes are
	// pruned against the current best hit without re-intersecting their
	// bounds; children are pushed nearer-first.
	type entry struct {
		node int32
		t    float64
	}
	var stack [64]entry
	sp := 0

	best := Hit{T: tMax}
	found := false
	r2 := b.radius * b.radius

	rootT, _, ok := b.nodes[0].bounds.IntersectRay(origin, invDir, tMin, best.T)
	if !ok {
		return Hit{}, false
	}
	stack[sp] = entry{0, rootT}
	sp++

	for sp > 0 {
		sp--
		e := stack[sp]
		if e.t >= best.T {
			continue
		}
		nd := &b.nodes[e.node]
		if nd.count > 0 {
			lo := int(nd.left)
			hi := lo + int(nd.count)
			for i := lo; i < hi; i++ {
				c := b.centroid(i)
				oc := origin.Sub(c)
				// Solve |oc + t*dir|^2 = r^2.
				a := dir.Dot(dir)
				half := oc.Dot(dir)
				cc := oc.Dot(oc) - r2
				disc := half*half - a*cc
				if disc < 0 {
					continue
				}
				sq := math.Sqrt(disc)
				t := (-half - sq) / a
				if t <= tMin {
					t = (-half + sq) / a
				}
				if t <= tMin || t >= best.T {
					continue
				}
				hitP := origin.Add(dir.Scale(t))
				best = Hit{
					T:        t,
					Particle: int(b.prim[i]),
					Normal:   hitP.Sub(c).Norm(),
				}
				found = true
			}
			continue
		}
		// Internal: intersect both children once, push nearer last so it
		// pops first and tightens best.T before the farther child.
		left := nd.left
		right := nd.left + 1
		lt, _, lok := b.nodes[left].bounds.IntersectRay(origin, invDir, tMin, best.T)
		rt0, _, rok := b.nodes[right].bounds.IntersectRay(origin, invDir, tMin, best.T)
		switch {
		case lok && rok:
			if lt <= rt0 {
				stack[sp] = entry{right, rt0}
				stack[sp+1] = entry{left, lt}
			} else {
				stack[sp] = entry{left, lt}
				stack[sp+1] = entry{right, rt0}
			}
			sp += 2
		case lok:
			stack[sp] = entry{left, lt}
			sp++
		case rok:
			stack[sp] = entry{right, rt0}
			sp++
		}
	}
	if !found {
		return Hit{}, false
	}
	return best, true
}

// Bounds returns the world bounds of the hierarchy.
func (b *SphereBVH) Bounds() vec.AABB { return b.nodes[0].bounds }

// Radius returns the common sphere radius.
func (b *SphereBVH) Radius() float64 { return b.radius }

// Count returns the number of spheres.
func (b *SphereBVH) Count() int { return len(b.prim) }

// Validate checks structural invariants: every leaf's primitives are
// inside its bounds, children bounds are inside parents, and every
// primitive appears exactly once. It is used by property tests and
// returns the first violation found.
func (b *SphereBVH) Validate() error {
	seen := make([]bool, len(b.prim))
	var walk func(ni int32, parent vec.AABB) error
	walk = func(ni int32, parent vec.AABB) error {
		nd := &b.nodes[ni]
		if !parent.IsEmpty() {
			u := parent.Union(nd.bounds)
			if u != parent {
				return errBVH("child bounds escape parent")
			}
		}
		if nd.count > 0 {
			for i := nd.left; i < nd.left+nd.count; i++ {
				if seen[i] {
					return errBVH("primitive referenced twice")
				}
				seen[i] = true
				if !nd.bounds.Expand(1e-9).Contains(b.centroid(int(i))) {
					return errBVH("primitive centroid outside leaf bounds")
				}
			}
			return nil
		}
		if err := walk(nd.left, nd.bounds); err != nil {
			return err
		}
		return walk(nd.left+1, nd.bounds)
	}
	if len(b.prim) == 0 {
		return nil
	}
	if err := walk(0, vec.EmptyAABB()); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return errBVH("primitive missing from tree: " + itoa(i))
		}
	}
	return nil
}

type errBVH string

func (e errBVH) Error() string { return "rt: " + string(e) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func safeInv(x float64) float64 {
	//lint:ignore floateq exact IEEE special case: only x == 0 needs the explicit +Inf (avoiding -0 sign surprises); any nonzero x divides fine
	if x == 0 {
		return math.Inf(1)
	}
	return 1 / x
}

// ParallelBuildSphereBVH builds per-chunk BVHs concurrently and joins
// them under a single root, trading tree quality for build speed. Used
// by the ablation bench; rendering results are identical.
func ParallelBuildSphereBVH(p *data.PointCloud, radius float64, chunks int) []*SphereBVH {
	if chunks < 1 {
		chunks = 1
	}
	pieces := p.Partition(chunks)
	out := make([]*SphereBVH, len(pieces))
	par.For(len(pieces), 0, func(i int) {
		out[i] = BuildSphereBVH(pieces[i].(*data.PointCloud), radius, MedianSplit)
	})
	return out
}
