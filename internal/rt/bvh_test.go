package rt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/vec"
)

func randomCloud(n int, seed int64) *data.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i)
		p.SetPos(i, vec.New(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20))
	}
	return p
}

func TestBVHValidateBothStrategies(t *testing.T) {
	for _, s := range []BuildStrategy{MedianSplit, BinnedSAH} {
		for _, n := range []int{0, 1, 7, 8, 9, 100, 5000} {
			p := randomCloud(n, int64(n)+1)
			b := BuildSphereBVH(p, 0.3, s)
			if err := b.Validate(); err != nil {
				t.Errorf("%v n=%d: %v", s, n, err)
			}
			if b.Count() != n {
				t.Errorf("%v n=%d: count %d", s, n, b.Count())
			}
		}
	}
}

func TestBVHStrategyNames(t *testing.T) {
	if MedianSplit.String() != "median-split" || BinnedSAH.String() != "binned-sah" {
		t.Error("strategy names wrong")
	}
}

func TestIntersectSingleSphere(t *testing.T) {
	p := data.NewPointCloud(1)
	p.SetPos(0, vec.New(0, 0, 0))
	b := BuildSphereBVH(p, 1, MedianSplit)
	// Ray along -Z toward the sphere from (0,0,10).
	hit, ok := b.Intersect(vec.New(0, 0, 10), vec.New(0, 0, -1), 0, math.Inf(1))
	if !ok {
		t.Fatal("ray missed sphere")
	}
	if math.Abs(hit.T-9) > 1e-9 {
		t.Errorf("hit T = %v, want 9", hit.T)
	}
	if hit.Normal.Sub(vec.New(0, 0, 1)).Len() > 1e-9 {
		t.Errorf("normal = %v, want +Z", hit.Normal)
	}
	if hit.Particle != 0 {
		t.Errorf("particle = %d", hit.Particle)
	}
	// Miss: offset ray.
	if _, ok := b.Intersect(vec.New(5, 0, 10), vec.New(0, 0, -1), 0, math.Inf(1)); ok {
		t.Error("offset ray should miss")
	}
}

func TestIntersectNearestOfMany(t *testing.T) {
	p := data.NewPointCloud(3)
	p.SetPos(0, vec.New(0, 0, -5))
	p.SetPos(1, vec.New(0, 0, 0))
	p.SetPos(2, vec.New(0, 0, 5))
	b := BuildSphereBVH(p, 0.5, MedianSplit)
	hit, ok := b.Intersect(vec.New(0, 0, 20), vec.New(0, 0, -1), 0, math.Inf(1))
	if !ok {
		t.Fatal("missed")
	}
	if hit.Particle != 2 {
		t.Errorf("nearest = %d, want 2 (closest to origin of ray)", hit.Particle)
	}
}

func TestIntersectFromInsideSphere(t *testing.T) {
	p := data.NewPointCloud(1)
	p.SetPos(0, vec.New(0, 0, 0))
	b := BuildSphereBVH(p, 2, MedianSplit)
	hit, ok := b.Intersect(vec.New(0, 0, 0), vec.New(0, 0, -1), 0, math.Inf(1))
	if !ok {
		t.Fatal("inside ray missed")
	}
	if math.Abs(hit.T-2) > 1e-9 {
		t.Errorf("exit T = %v, want 2", hit.T)
	}
}

func TestIntersectRespectsTMax(t *testing.T) {
	p := data.NewPointCloud(1)
	p.SetPos(0, vec.New(0, 0, 0))
	b := BuildSphereBVH(p, 1, MedianSplit)
	if _, ok := b.Intersect(vec.New(0, 0, 10), vec.New(0, 0, -1), 0, 5); ok {
		t.Error("hit beyond tMax accepted")
	}
}

func TestEmptyBVHNeverHits(t *testing.T) {
	b := BuildSphereBVH(data.NewPointCloud(0), 1, MedianSplit)
	if _, ok := b.Intersect(vec.New(0, 0, 10), vec.New(0, 0, -1), 0, math.Inf(1)); ok {
		t.Error("empty BVH reported a hit")
	}
}

// bruteForce finds the nearest hit by testing every sphere directly.
func bruteForce(p *data.PointCloud, radius float64, origin, dir vec.V3, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: tMax}
	found := false
	r2 := radius * radius
	for i := 0; i < p.Count(); i++ {
		c := p.Pos(i)
		oc := origin.Sub(c)
		a := dir.Dot(dir)
		half := oc.Dot(dir)
		cc := oc.Dot(oc) - r2
		disc := half*half - a*cc
		if disc < 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := (-half - sq) / a
		if t <= tMin {
			t = (-half + sq) / a
		}
		if t <= tMin || t >= best.T {
			continue
		}
		hp := origin.Add(dir.Scale(t))
		best = Hit{T: t, Particle: i, Normal: hp.Sub(c).Norm()}
		found = true
	}
	return best, found
}

// Property: BVH traversal returns exactly the brute-force nearest hit.
func TestIntersectMatchesBruteForceProperty(t *testing.T) {
	p := randomCloud(300, 77)
	const radius = 0.4
	bvhs := map[string]*SphereBVH{
		"median": BuildSphereBVH(p, radius, MedianSplit),
		"sah":    BuildSphereBVH(p, radius, BinnedSAH),
	}
	f := func(ox, oy, oz, tx, ty, tz float64) bool {
		origin := vec.New(mod20(ox)+25, mod20(oy), mod20(oz)) // outside-ish
		target := vec.New(mod20(tx), mod20(ty), mod20(tz))
		dir := target.Sub(origin).Norm()
		if dir == (vec.V3{}) {
			return true
		}
		want, wantOK := bruteForce(p, radius, origin, dir, 0, math.Inf(1))
		for name, b := range bvhs {
			got, ok := b.Intersect(origin, dir, 0, math.Inf(1))
			if ok != wantOK {
				t.Logf("%s: ok=%v want %v", name, ok, wantOK)
				return false
			}
			if ok && (got.Particle != want.Particle || math.Abs(got.T-want.T) > 1e-9) {
				t.Logf("%s: hit %d@%v want %d@%v", name, got.Particle, got.T, want.Particle, want.T)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mod20(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(math.Abs(x), 20)
}

func TestSAHBuildsFewerOrEqualCostTrees(t *testing.T) {
	// Not a strict guarantee, but on a clustered distribution SAH should
	// produce a tree whose total leaf surface area is no larger than
	// median split's by a wide margin (sanity check that SAH differs).
	p := data.NewPointCloud(4000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < p.Count(); i++ {
		// Two clusters far apart.
		base := vec.New(0, 0, 0)
		if i%2 == 0 {
			base = vec.New(100, 0, 0)
		}
		p.SetPos(i, base.Add(vec.New(rng.Float64(), rng.Float64(), rng.Float64())))
	}
	med := BuildSphereBVH(p, 0.1, MedianSplit)
	sah := BuildSphereBVH(p, 0.1, BinnedSAH)
	if err := med.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sah.Validate(); err != nil {
		t.Fatal(err)
	}
	if med.NodesBuilt == 0 || sah.NodesBuilt == 0 {
		t.Error("no nodes built")
	}
}

func TestParallelBuildCoversAllParticles(t *testing.T) {
	p := randomCloud(1000, 3)
	chunks := ParallelBuildSphereBVH(p, 0.2, 4)
	total := 0
	for _, c := range chunks {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		total += c.Count()
	}
	if total != p.Count() {
		t.Errorf("chunked BVHs cover %d particles, want %d", total, p.Count())
	}
}

func BenchmarkBVHBuildMedian100k(b *testing.B) {
	p := randomCloud(100_000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildSphereBVH(p, 0.1, MedianSplit)
	}
}

func BenchmarkBVHBuildSAH100k(b *testing.B) {
	p := randomCloud(100_000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildSphereBVH(p, 0.1, BinnedSAH)
	}
}

func BenchmarkBVHIntersect(b *testing.B) {
	p := randomCloud(100_000, 1)
	bvh := BuildSphereBVH(p, 0.1, MedianSplit)
	origin := vec.New(30, 10, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := vec.New(-1, 0.001*float64(i%100), 0.001*float64(i%37)).Norm()
		bvh.Intersect(origin, dir, 0, math.Inf(1))
	}
}
