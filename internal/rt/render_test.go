package rt

import (
	"math"
	"testing"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

func sphereGrid(n int) *data.StructuredGrid {
	g := data.NewStructuredGrid(n, n, n)
	c := vec.Splat(float64(n-1) / 2)
	g.FillField("r", func(p vec.V3) float32 { return float32(p.Sub(c).Len()) })
	return g
}

func TestRaycastSpheresRendersParticles(t *testing.T) {
	p := randomCloud(2000, 9)
	p.SpeedField()
	cam := camera.ForBounds(p.Bounds())
	frame := fb.New(128, 128)
	bvh, err := RaycastSpheres(frame, p, &cam, SphereOptions{ColorField: "speed"})
	if err != nil {
		t.Fatal(err)
	}
	if bvh == nil || bvh.Count() != p.Count() {
		t.Error("BVH not returned")
	}
	if frame.CoveredPixels() < 200 {
		t.Errorf("covered %d pixels only", frame.CoveredPixels())
	}
}

func TestRaycastSpheresMissingField(t *testing.T) {
	p := randomCloud(10, 1)
	cam := camera.ForBounds(p.Bounds())
	if _, err := RaycastSpheres(fb.New(16, 16), p, &cam, SphereOptions{ColorField: "ghost"}); err == nil {
		t.Error("missing field accepted")
	}
}

func TestRaycastSpheresReuseBVH(t *testing.T) {
	p := randomCloud(500, 2)
	cam := camera.ForBounds(p.Bounds())
	f1 := fb.New(64, 64)
	bvh, err := RaycastSpheres(f1, p, &cam, SphereOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f2 := fb.New(64, 64)
	if err := RaycastSpheresWithBVH(f2, p, bvh, &cam, SphereOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range f1.Color {
		if f1.Color[i] != f2.Color[i] {
			t.Fatal("BVH reuse changed the image")
		}
	}
}

func TestRaycastSphereDepthCorrect(t *testing.T) {
	// Single sphere dead ahead: center pixel depth equals eye distance
	// minus radius.
	p := data.NewPointCloud(1)
	p.SetPos(0, vec.New(0, 0, 0))
	cam := camera.LookAt(vec.New(0, 0, 10), vec.V3{}, vec.New(0, 1, 0))
	cam.Far = 100
	frame := fb.New(65, 65)
	if _, err := RaycastSpheres(frame, p, &cam, SphereOptions{Radius: 2}); err != nil {
		t.Fatal(err)
	}
	d := frame.Depth[frame.Index(32, 32)]
	if math.Abs(d-8) > 0.05 {
		t.Errorf("center depth = %v, want ~8", d)
	}
}

func TestRaycastSliceCoversPlane(t *testing.T) {
	g := sphereGrid(32)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(96, 96)
	err := RaycastSlice(frame, g, &cam, g.Bounds().Center(), vec.New(0, 0, 1), VolumeOptions{Field: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() < 500 {
		t.Errorf("slice covered %d pixels", frame.CoveredPixels())
	}
}

func TestRaycastSliceErrors(t *testing.T) {
	g := sphereGrid(8)
	cam := camera.ForBounds(g.Bounds())
	if err := RaycastSlice(fb.New(8, 8), g, &cam, vec.V3{}, vec.V3{}, VolumeOptions{Field: "r"}); err == nil {
		t.Error("zero normal accepted")
	}
	if err := RaycastSlice(fb.New(8, 8), g, &cam, vec.V3{}, vec.New(0, 0, 1), VolumeOptions{Field: "nope"}); err == nil {
		t.Error("missing field accepted")
	}
}

func TestRaycastSliceColorVaries(t *testing.T) {
	g := sphereGrid(32)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(96, 96)
	if err := RaycastSlice(frame, g, &cam, g.Bounds().Center(), vec.New(0, 1, 0), VolumeOptions{Field: "r"}); err != nil {
		t.Fatal(err)
	}
	seen := map[vec.V3]bool{}
	for i, c := range frame.Color {
		if !math.IsInf(frame.Depth[i], 1) {
			seen[c] = true
		}
	}
	if len(seen) < 5 {
		t.Errorf("slice shows %d distinct colors; field not sampled?", len(seen))
	}
}

func TestRaycastIsosurfaceSphere(t *testing.T) {
	g := sphereGrid(32)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(96, 96)
	if err := RaycastIsosurface(frame, g, &cam, 10, VolumeOptions{Field: "r"}); err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() < 300 {
		t.Fatalf("isosurface covered %d pixels", frame.CoveredPixels())
	}
	// Every hit must lie at distance ~10 from the center: reconstruct hit
	// points from depth and compare.
	c := g.Bounds().Center()
	w, h := frame.W, frame.H
	bad := 0
	checked := 0
	for y := 0; y < h; y += 3 {
		for x := 0; x < w; x += 3 {
			d := frame.Depth[frame.Index(x, y)]
			if math.IsInf(d, 1) {
				continue
			}
			ray := cam.RayThrough(x, y, w, h)
			p := ray.Origin.Add(ray.Dir.Scale(d))
			checked++
			if math.Abs(p.Sub(c).Len()-10) > 0.35 {
				bad++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no hits sampled")
	}
	if frac := float64(bad) / float64(checked); frac > 0.05 {
		t.Errorf("%.1f%% of isosurface hits off-sphere", frac*100)
	}
}

func TestRaycastIsosurfaceMatchesSliceDepthOrdering(t *testing.T) {
	// The isosurface at r=10 should be nearer to the camera than the
	// back half of a slice through the center — weak structural check
	// that depths are consistent across kernels.
	g := sphereGrid(32)
	cam := camera.ForBounds(g.Bounds())
	iso := fb.New(64, 64)
	if err := RaycastIsosurface(iso, g, &cam, 10, VolumeOptions{Field: "r"}); err != nil {
		t.Fatal(err)
	}
	slice := fb.New(64, 64)
	if err := RaycastSlice(slice, g, &cam, g.Bounds().Center(), vec.New(0, 0, 1), VolumeOptions{Field: "r"}); err != nil {
		t.Fatal(err)
	}
	// Composite: nearer-of-two at center pixel must be the isosurface
	// (sphere surface is in front of the central plane from our 3/4 view).
	ci := iso.Index(32, 32)
	if math.IsInf(iso.Depth[ci], 1) || math.IsInf(slice.Depth[ci], 1) {
		t.Skip("center pixel not covered by both")
	}
	if iso.Depth[ci] >= slice.Depth[ci] {
		t.Errorf("isosurface depth %v not in front of slice %v", iso.Depth[ci], slice.Depth[ci])
	}
}

func TestRaycastIsosurfaceEmptyIso(t *testing.T) {
	g := sphereGrid(16)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(32, 32)
	if err := RaycastIsosurface(frame, g, &cam, 1e9, VolumeOptions{Field: "r"}); err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() != 0 {
		t.Error("out-of-range isovalue rendered pixels")
	}
}

func BenchmarkRaycastSpheres(b *testing.B) {
	p := randomCloud(50_000, 4)
	cam := camera.ForBounds(p.Bounds())
	bvh := BuildSphereBVH(p, defaultRadius(p), MedianSplit)
	frame := fb.New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame.Clear(vec.V3{})
		if err := RaycastSpheresWithBVH(frame, p, bvh, &cam, SphereOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRaycastIsosurface(b *testing.B) {
	g := sphereGrid(64)
	cam := camera.ForBounds(g.Bounds())
	frame := fb.New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame.Clear(vec.V3{})
		if err := RaycastIsosurface(frame, g, &cam, 20, VolumeOptions{Field: "r"}); err != nil {
			b.Fatal(err)
		}
	}
}
