// Frame transport: a rendered framebuffer travels to subscribers as a
// W x H x 1 structured grid with r/g/b/depth vertex fields, so the
// existing vtkio container, the v3 wire framing, and every codec (delta
// keyframing included) apply to image streams unchanged.
package hub

import (
	"fmt"
	"hash/crc32"
	"math"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Broadcast frame field names, in canonical order.
const (
	fieldR     = "r"
	fieldG     = "g"
	fieldB     = "b"
	fieldDepth = "depth"
)

// FrameGrid converts a framebuffer into its wire dataset form. When
// reuse has matching shape its field arrays are overwritten in place, so
// a steady stream of equal-sized frames converts without allocating.
// Color and depth are quantized to float32 (the container's scalar
// type); depth +Inf (background) survives the round trip.
func FrameGrid(f *fb.Frame, reuse *data.StructuredGrid) *data.StructuredGrid {
	n := f.W * f.H
	g := reuse
	if g == nil || g.NX != f.W || g.NY != f.H || g.NZ != 1 || len(g.Fields) != 4 ||
		len(g.Fields[0].Values) != n {
		g = data.NewStructuredGrid(f.W, f.H, 1)
		for _, name := range []string{fieldR, fieldG, fieldB, fieldDepth} {
			g.Fields = append(g.Fields, data.Field{Name: name, Values: make([]float32, n)})
		}
	}
	r, gg, b, d := g.Fields[0].Values, g.Fields[1].Values, g.Fields[2].Values, g.Fields[3].Values
	for i := 0; i < n; i++ {
		c := f.Color[i]
		r[i] = float32(c.X)
		gg[i] = float32(c.Y)
		b[i] = float32(c.Z)
		d[i] = float32(f.Depth[i])
	}
	return g
}

// GridFrame is FrameGrid's inverse on the subscriber side. When reuse
// has matching shape it is overwritten in place and returned.
func GridFrame(ds data.Dataset, reuse *fb.Frame) (*fb.Frame, error) {
	g, ok := ds.(*data.StructuredGrid)
	if !ok {
		return nil, fmt.Errorf("hub: frame dataset is %v, want structured grid", ds.Kind())
	}
	if g.NZ != 1 || len(g.Fields) != 4 {
		return nil, fmt.Errorf("hub: frame grid %dx%dx%d with %d fields is not a broadcast frame",
			g.NX, g.NY, g.NZ, len(g.Fields))
	}
	for i, name := range []string{fieldR, fieldG, fieldB, fieldDepth} {
		if g.Fields[i].Name != name {
			return nil, fmt.Errorf("hub: frame grid field %d is %q, want %q", i, g.Fields[i].Name, name)
		}
		if len(g.Fields[i].Values) != g.NX*g.NY {
			return nil, fmt.Errorf("hub: frame grid field %q has %d values, want %d",
				name, len(g.Fields[i].Values), g.NX*g.NY)
		}
	}
	f := reuse
	if f == nil || f.W != g.NX || f.H != g.NY {
		f = fb.New(g.NX, g.NY)
	}
	r, gg, b, d := g.Fields[0].Values, g.Fields[1].Values, g.Fields[2].Values, g.Fields[3].Values
	for i := range f.Color {
		f.Color[i] = vec.V3{X: float64(r[i]), Y: float64(gg[i]), Z: float64(b[i])}
		f.Depth[i] = float64(d[i])
	}
	return f, nil
}

// FrameSig is a quantization-stable signature of a frame's pixels: both
// a frame that crossed the wire (float32 fields) and its float64 source
// hash identically, because the source is quantized the same way the
// wire conversion quantizes. Used by tests and clients to prove
// byte-identical delivery.
func FrameSig(f *fb.Frame) uint32 {
	var buf [16]byte
	crc := uint32(0)
	for i := range f.Color {
		c := f.Color[i]
		put32 := func(off int, v float32) {
			bits := math.Float32bits(v)
			buf[off] = byte(bits >> 24)
			buf[off+1] = byte(bits >> 16)
			buf[off+2] = byte(bits >> 8)
			buf[off+3] = byte(bits)
		}
		put32(0, float32(c.X))
		put32(4, float32(c.Y))
		put32(8, float32(c.Z))
		put32(12, float32(f.Depth[i]))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}
