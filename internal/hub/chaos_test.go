// Subscriber chaos suite: the hub's correctness claims — a slow
// subscriber never perturbs the step cadence, a killed subscriber
// resumes from its cursor with byte-identical frames and a fresh
// keyframe, and a steered run replays deterministically — proven over
// real TCP sockets against the real proxy pipeline.
package hub_test

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/hub"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/proxy"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
)

// chaosSource builds a deterministic time-varying scalar field: a
// gaussian blob orbiting the grid, so isosurfaces, sampling, and delta
// codecs all see genuine evolution.
func chaosSource(steps, n int) *proxy.MemSource {
	src := &proxy.MemSource{}
	for s := 0; s < steps; s++ {
		g := data.NewStructuredGrid(n, n, n)
		vals := make([]float32, n*n*n)
		cx := 0.5 + 0.3*math.Cos(float64(s)*0.7)
		cy := 0.5 + 0.3*math.Sin(float64(s)*0.7)
		i := 0
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					dx := float64(x)/float64(n-1) - cx
					dy := float64(y)/float64(n-1) - cy
					dz := float64(z)/float64(n-1) - 0.5
					vals[i] = float32(math.Exp(-12 * (dx*dx + dy*dy + dz*dz)))
					i++
				}
			}
		}
		g.Fields = append(g.Fields, data.Field{Name: "temperature", Values: vals})
		src.Data = append(src.Data, g)
	}
	return src
}

// chaosViz builds a visualization proxy rendering the chaos source.
func chaosViz(t *testing.T, jw *journal.Writer, pub proxy.FramePublisher, steer hub.Source) *proxy.VizProxy {
	t.Helper()
	viz, err := proxy.NewVizProxy(proxy.VizConfig{
		Width: 48, Height: 36, Algorithm: "vtk-iso", ImagesPerStep: 2,
		Journal: jw, Publisher: pub, Steering: steer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return viz
}

// runPipeline drives sim->viz step by step (the unified coupling shape)
// and returns the per-step frame signatures.
func runPipeline(t *testing.T, sim *proxy.SimProxy, viz *proxy.VizProxy) []uint32 {
	t.Helper()
	var sigs []uint32
	for i := 0; i < sim.Steps(); i++ {
		ds, err := sim.StepData(i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := viz.RenderStep(i, ds)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, hub.FrameSig(res.LastFrame))
	}
	return sigs
}

// drainSub receives frames until Done (or maxFrames, if positive),
// returning steps and signatures.
func drainSub(t *testing.T, c *transport.Conn, maxFrames int) (steps []int64, sigs []uint32) {
	t.Helper()
	var f *fb.Frame
	for maxFrames <= 0 || len(steps) < maxFrames {
		typ, ds, step, err := c.Recv()
		if err != nil {
			t.Fatalf("subscriber recv after %d frames: %v", len(steps), err)
		}
		if typ == transport.MsgDone {
			break
		}
		var ferr error
		f, ferr = hub.GridFrame(ds, f)
		if ferr != nil {
			t.Fatal(ferr)
		}
		steps = append(steps, step)
		sigs = append(sigs, hub.FrameSig(f))
	}
	return steps, sigs
}

// TestHubChaosSlowSubscriber proves the isolation claim: a subscriber
// that never reads does not perturb the publisher's cadence or the
// rendered output, sheds frames via journaled drop-oldest overflow,
// and a healthy subscriber alongside it still receives every step
// byte-identical.
func TestHubChaosSlowSubscriber(t *testing.T) {
	const steps = 10
	// Bare run: no hub at all — the reference cadence and output.
	bareJW := journal.New()
	bareSim, err := proxy.NewSimProxy(proxy.SimConfig{Journal: bareJW}, chaosSource(steps, 12))
	if err != nil {
		t.Fatal(err)
	}
	bare := runPipeline(t, bareSim, chaosViz(t, bareJW, nil, nil))

	// Hub run: one draining subscriber, one stuck subscriber with a tiny
	// queue joining mid-run with a backlog it can never absorb.
	jw := journal.New()
	h, err := hub.New(hub.Config{
		Addr: "127.0.0.1:0", Queue: 4, History: 16,
		WriteTimeout: 500 * time.Millisecond, Journal: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- h.Serve(context.Background()) }()

	healthy := dialHello(t, h.Addr(), "healthy", 0)
	defer healthy.Close()
	waitSubs(t, h, 1)
	type drained struct {
		steps []int64
		sigs  []uint32
	}
	healthyCh := make(chan drained, 1)
	go func() {
		s, g := drainSub(t, healthy, 0)
		healthyCh <- drained{s, g}
	}()

	sim, err := proxy.NewSimProxy(proxy.SimConfig{Journal: jw}, chaosSource(steps, 12))
	if err != nil {
		t.Fatal(err)
	}
	viz := chaosViz(t, jw, h, nil)
	var hubSigs []uint32
	for i := 0; i < steps; i++ {
		ds, err := sim.StepData(i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := viz.RenderStep(i, ds)
		if err != nil {
			t.Fatal(err)
		}
		hubSigs = append(hubSigs, hub.FrameSig(res.LastFrame))
		if i == steps/2 {
			// Mid-run, a subscriber joins asking for the full backlog —
			// more than its queue can hold — and then never reads a byte.
			stuck := dialHello(t, h.Addr(), "stuck", 0)
			defer stuck.Close()
			waitSubs(t, h, 2)
		}
	}
	// The run completed with a wedged subscriber attached: PublishFrame
	// never blocked. Closing drains the healthy stream and times out the
	// stuck one.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	if len(hubSigs) != steps || len(bare) != steps {
		t.Fatalf("run lengths: hub %d, bare %d, want %d", len(hubSigs), len(bare), steps)
	}
	for i := range bare {
		if hubSigs[i] != bare[i] {
			t.Errorf("step %d: broadcasting changed the rendered frame (%08x vs %08x)", i, hubSigs[i], bare[i])
		}
	}
	stuckDrops, healthyDrops, joins := 0, 0, 0
	for _, ev := range jw.Events() {
		switch ev.Type {
		case journal.TypeOverflow:
			if strings.Contains(ev.Detail, "hub subscriber stuck") {
				stuckDrops += int(ev.Elements)
			}
			if strings.Contains(ev.Detail, "hub subscriber healthy") {
				healthyDrops += int(ev.Elements)
			}
		case journal.TypeSubscribe:
			if strings.HasPrefix(ev.Detail, "join") {
				joins++
			}
		}
	}
	// Conservation: every published frame either reached the healthy
	// subscriber or was journaled as dropped — nothing vanished silently.
	got := <-healthyCh
	if len(got.steps)+healthyDrops != steps {
		t.Fatalf("healthy subscriber: %d delivered + %d journaled drops != %d published",
			len(got.steps), healthyDrops, steps)
	}
	for i, s := range got.steps {
		if i > 0 && s <= got.steps[i-1] {
			t.Fatalf("healthy subscriber steps out of order: %v", got.steps)
		}
		if got.sigs[i] != bare[s] {
			t.Errorf("healthy subscriber step %d not byte-identical to the bare run", s)
		}
	}
	// The stuck subscriber joined with a backlog (6 retained frames) its
	// queue of 4 cannot hold: at least 2 drop-oldest overflows are
	// structurally guaranteed, independent of scheduling.
	if stuckDrops < 2 {
		t.Errorf("stuck subscriber shed %d frames, want >= 2 (catch-up overflow)", stuckDrops)
	}
	if joins != 2 {
		t.Errorf("journaled %d joins, want 2", joins)
	}
}

// TestHubChaosKillResume proves the resume claim: a subscriber killed
// mid-stream reconnects with its checkpointed cursor and receives every
// remaining step exactly once, byte-identical to an uninterrupted
// subscriber, with the temporal codec downgrading its first frame to a
// keyframe.
func TestHubChaosKillResume(t *testing.T) {
	const steps, killAfter = 10, 3
	jw := journal.New()
	h, err := hub.New(hub.Config{
		Addr: "127.0.0.1:0", Queue: 32, History: 32,
		Codec: transport.CodecDelta, Journal: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(context.Background())
	defer h.Close()

	for i := 0; i < steps; i++ {
		h.PublishFrame(i, chaosFrame(i))
	}

	// Control subscriber: uninterrupted, sees everything.
	control := dialHello(t, h.Addr(), "control", 0)
	defer control.Close()
	ctrlSteps, ctrlSigs := drainSub(t, control, steps)
	if len(ctrlSteps) != steps {
		t.Fatalf("control got %d frames, want %d", len(ctrlSteps), steps)
	}

	// Victim: read a few frames, checkpoint the cursor after each (the
	// ethwatch client contract), then die without so much as a FIN-ack
	// courtesy — Close on the raw conn models a SIGKILLed viewer.
	cursorPath := filepath.Join(t.TempDir(), "victim.cursor")
	victim := dialHello(t, h.Addr(), "victim", 0)
	vSteps, vSigs := drainSub(t, victim, killAfter)
	cp := journal.Checkpoint{Step: int(vSteps[len(vSteps)-1]) + 1, Detail: "victim"}
	if err := journal.WriteCheckpoint(cursorPath, cp); err != nil {
		t.Fatal(err)
	}
	victim.Close()

	// Resume: reload the cursor, reconnect, and expect a keyframe first
	// (fresh connection, temporal codec) then the exact remaining steps.
	kf0 := telemetry.Default.Counter("transport.keyframes").Value()
	loaded, err := journal.ReadCheckpoint(cursorPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != killAfter {
		t.Fatalf("checkpoint cursor %d, want %d", loaded.Step, killAfter)
	}
	resumed := dialHello(t, h.Addr(), "victim", int64(loaded.Step))
	defer resumed.Close()
	rSteps, rSigs := drainSub(t, resumed, steps-killAfter)
	if kf := telemetry.Default.Counter("transport.keyframes").Value() - kf0; kf < 1 {
		t.Error("resumed connection sent no keyframe; delta state would be undecodable")
	}

	gotSteps := append(append([]int64{}, vSteps...), rSteps...)
	gotSigs := append(append([]uint32{}, vSigs...), rSigs...)
	if len(gotSteps) != steps {
		t.Fatalf("victim+resume received %d frames, want %d", len(gotSteps), steps)
	}
	for i := 0; i < steps; i++ {
		if gotSteps[i] != int64(i) {
			t.Fatalf("kill/resume step sequence %v: step %d missing or duplicated", gotSteps, i)
		}
		if gotSigs[i] != ctrlSigs[i] {
			t.Errorf("step %d after resume not byte-identical to the uninterrupted subscriber", i)
		}
	}
	// The journal carries the full subscriber lifecycle for the audit
	// tooling: two joins under the victim's name, one mid-run leave.
	var joins, leaves int
	for _, ev := range jw.Events() {
		if ev.Type != journal.TypeSubscribe {
			continue
		}
		if strings.HasPrefix(ev.Detail, "join name=victim") {
			joins++
		}
		if strings.HasPrefix(ev.Detail, "leave name=victim") {
			leaves++
		}
	}
	if joins != 2 || leaves < 1 {
		t.Errorf("victim lifecycle journaled %d joins / %d leaves, want 2 joins and >= 1 leave", joins, leaves)
	}
}

// TestHubChaosSteeringReplay proves deterministic steering: two runs
// under the same steering script produce byte-identical frames and
// identical journaled steering sequences, and the script demonstrably
// changes the output versus an unsteered run.
func TestHubChaosSteeringReplay(t *testing.T) {
	const steps = 8
	script := &hub.Script{Entries: []hub.ScriptEntry{
		{Step: 2, Msg: hub.Msg{Kind: hub.KindSteer, Axes: hub.AxisIso, Iso: 0.55}},
		{Step: 4, Msg: hub.Msg{Kind: hub.KindSteer, Axes: hub.AxisCamera,
			Cam: hub.View{Az: 1.1, El: 0.6, Dist: 1.5}}},
		{Step: 6, Msg: hub.Msg{Kind: hub.KindSteer, Axes: hub.AxisRatio | hub.AxisCodec,
			Ratio: 0.5, Codec: transport.CodecDeltaFlate}},
	}}

	run := func(steer hub.Source) ([]uint32, []journal.Event) {
		jw := journal.New()
		sim, err := proxy.NewSimProxy(proxy.SimConfig{Journal: jw, Steering: steer}, chaosSource(steps, 12))
		if err != nil {
			t.Fatal(err)
		}
		sigs := runPipeline(t, sim, chaosViz(t, jw, nil, steer))
		var steerEvs []journal.Event
		for _, ev := range jw.Events() {
			if ev.Type == journal.TypeSteer {
				steerEvs = append(steerEvs, ev)
			}
		}
		return sigs, steerEvs
	}

	sigsA, evsA := run(script)
	sigsB, evsB := run(script)
	plain, evsPlain := run(nil)

	if len(sigsA) != steps {
		t.Fatalf("steered run produced %d steps, want %d", len(sigsA), steps)
	}
	for i := range sigsA {
		if sigsA[i] != sigsB[i] {
			t.Errorf("step %d: two runs of the same steering script diverged", i)
		}
	}
	if len(evsA) == 0 {
		t.Fatal("steered run journaled no steering events")
	}
	if len(evsA) != len(evsB) {
		t.Fatalf("steering event counts diverged: %d vs %d", len(evsA), len(evsB))
	}
	for i := range evsA {
		if evsA[i].Step != evsB[i].Step || evsA[i].Detail != evsB[i].Detail || evsA[i].Rank != evsB[i].Rank {
			t.Errorf("steering event %d diverged:\n A %d %q\n B %d %q",
				i, evsA[i].Step, evsA[i].Detail, evsB[i].Step, evsB[i].Detail)
		}
	}
	if len(evsPlain) != 0 {
		t.Errorf("unsteered run journaled %d steering events, want 0", len(evsPlain))
	}
	differs := false
	for i := range plain {
		if plain[i] != sigsA[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("steering script produced frames identical to the unsteered run; replay proof is vacuous")
	}
	// Steps before the first script entry must match the unsteered run —
	// steering applies at its scripted boundary, not retroactively.
	for i := 0; i < 2; i++ {
		if plain[i] != sigsA[i] {
			t.Errorf("step %d differs before any steering was scripted", i)
		}
	}
}

// TestHubChaosSteeringOverSocketPair proves the forwarded-steering path
// end to end over real sockets: ratio/codec steering enters at the viz
// side, crosses the in-situ connection as a control frame, and the sim
// proxy applies and journals it at a step boundary.
func TestHubChaosSteeringOverSocketPair(t *testing.T) {
	const steps = 6
	script := &hub.Script{Entries: []hub.ScriptEntry{
		{Step: 2, Msg: hub.Msg{Kind: hub.KindSteer, Axes: hub.AxisRatio, Ratio: 0.5}},
	}}
	jw := journal.New()
	sim, err := proxy.NewSimProxy(proxy.SimConfig{Journal: jw}, chaosSource(steps, 12))
	if err != nil {
		t.Fatal(err)
	}
	viz := chaosViz(t, jw, nil, script)

	layout := filepath.Join(t.TempDir(), "layout")
	ln, err := transport.Listen(layout, 0, "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	simDone := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			simDone <- err
			return
		}
		defer nc.Close()
		_, err = sim.Serve(transport.NewConn(nc))
		simDone <- err
	}()
	conn, err := transport.Dial(layout, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := viz.Receive(conn); err != nil {
		t.Fatal(err)
	}
	if err := <-simDone; err != nil {
		t.Fatal(err)
	}

	var forwarded, applied bool
	var appliedStep int
	for _, ev := range jw.Events() {
		if ev.Type != journal.TypeSteer {
			continue
		}
		if strings.HasPrefix(ev.Detail, "forward") {
			forwarded = true
		}
		if strings.HasPrefix(ev.Detail, "sim applied") && strings.Contains(ev.Detail, "ratio=0.5") {
			applied = true
			appliedStep = ev.Step
		}
	}
	if !forwarded {
		t.Error("viz proxy never forwarded the ratio steer upstream")
	}
	if !applied {
		t.Fatal("sim proxy never applied the forwarded ratio")
	}
	// FIFO control framing pins the earliest possible boundary: the steer
	// is scripted at the step-2 receive, so it cannot apply before step 2.
	if appliedStep < 2 {
		t.Errorf("forwarded ratio applied at step %d, before it was scripted (step 2)", appliedStep)
	}
	// Sampling really kicked in: later steps carry fewer elements.
	var before, after int
	for _, ev := range jw.Events() {
		if ev.Type == journal.TypeSample {
			if ev.Step < appliedStep {
				before = ev.Elements
			} else if ev.Step > appliedStep && after == 0 {
				after = ev.Elements
			}
		}
	}
	if before == 0 || after == 0 || after >= before {
		t.Errorf("sampling after steering kept %d elements vs %d before; ratio not applied to the data", after, before)
	}
}

// chaosFrame is a deterministic frame generator for hub-only tests.
func chaosFrame(step int) *fb.Frame {
	f := fb.New(40, 30)
	for i := range f.Color {
		v := float64((i*13+step*131)%997) / 997
		f.Color[i] = vec.V3{X: v, Y: v * 0.5, Z: 1 - v}
		f.Depth[i] = 1 + v
	}
	return f
}

// dialHello connects and registers a subscriber (external-package
// mirror of the unit-test helper).
func dialHello(t *testing.T, addr, name string, from int64) *transport.Conn {
	t.Helper()
	c, err := hub.DialSubscriber(addr, name, from)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitSubs(t *testing.T, h *hub.Hub, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.Subscribers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d subscribers", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
