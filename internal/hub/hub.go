// Package hub is the multi-viewer broadcast layer behind the
// visualization proxy: rendered frames fan out to N concurrent
// subscribers over the v3 wire format, and a CRC-checked steering
// channel flows back from subscribers to the proxies. Each subscriber
// owns its own connection (so the PR 8 per-direction codec state gives
// a late or resumed subscriber an automatic keyframe), its own step
// cursor (the hello message carries the first step wanted, seeded from
// the PR 5 checkpoint machinery on the client), and its own bounded
// queue with drop-oldest overflow journaled in-band — a slow subscriber
// sheds frames visibly instead of ever stalling the sim step loop.
// Steering is last-writer-wins across subscribers and is consumed by
// the proxies at step boundaries, journaled so a run can be replayed.
package hub

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/mempool"
	"github.com/ascr-ecx/eth/internal/telemetry"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// Hub telemetry: aggregate counters plus the subscriber-count gauge.
// Per-slot gauges (queue depth, drops, lag) are resolved in New.
var (
	ctrPublished = telemetry.Default.Counter("hub.frames_published")
	ctrFanout    = telemetry.Default.Counter("hub.frames_fanout")
	ctrDropped   = telemetry.Default.Counter("hub.frames_dropped")
	ctrSteer     = telemetry.Default.Counter("hub.steer_received")
	gSubscribers = telemetry.Default.Gauge("hub.subscribers")
)

// ErrHubClosed is returned by operations on a hub after Close.
var ErrHubClosed = errors.New("hub: closed")

// Config configures a broadcast hub.
type Config struct {
	// Addr is the TCP listen address (host:port; port 0 for ephemeral).
	Addr string
	// MaxSubs bounds concurrent subscribers (default 8); connections
	// past the bound are rejected and journaled.
	MaxSubs int
	// Queue is the per-subscriber frame backlog (default 16). A full
	// queue drops its oldest frame and journals the overflow, the same
	// drop-oldest contract as the obs /events live tail.
	Queue int
	// History is how many published frames the hub retains for
	// late-joining or resuming subscribers (default 2*Queue). A hello
	// asking for steps older than the retention starts at the oldest
	// retained frame.
	History int
	// Codec is the wire codec for subscriber streams. Temporal codecs
	// keyframe automatically on every fresh subscriber connection.
	Codec transport.CodecID
	// WriteTimeout bounds each frame write to a subscriber (default
	// 10s); a wedged subscriber is disconnected, never waited on.
	WriteTimeout time.Duration
	// HelloTimeout bounds the wait for a new connection's hello
	// (default 5s).
	HelloTimeout time.Duration
	// Rank labels journal events.
	Rank int
	// Journal, when set, receives subscribe/steer/overflow events.
	Journal *journal.Writer
}

// frame is one published frame: a pooled vtkio payload shared by the
// history ring and every subscriber queue via refcount. The final
// release returns the buffer to the mempool — dropping a reference on
// the floor is a leak, never a double free.
type frame struct {
	step    int64
	payload []byte
	refs    atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

func (f *frame) retain() { f.refs.Add(1) }

func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		mempool.PutBytes(f.payload)
		f.payload = nil
		framePool.Put(f)
	}
}

// encBuf is a minimal growable write buffer ([]byte as io.Writer) for
// the publish-path vtkio serialization scratch.
type encBuf []byte

func (b *encBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// subscriber is one attached viewer: a bounded frame ring drained by a
// dedicated sender goroutine, fed by PublishFrame without ever blocking.
type subscriber struct {
	slot int
	name string
	from int64
	conn *transport.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*frame
	head   int
	count  int
	done   bool // no more enqueues; sender drains the ring then stops
	drops  int64
	closed sync.Once

	gDepth, gDrops, gLag *telemetry.Gauge
}

// enqueue adds f (ownership of one reference transfers to the queue).
// On overflow the oldest queued frame is evicted and returned for the
// caller to journal and release; the publisher never blocks.
func (s *subscriber) enqueue(f *frame) (evicted *frame) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		f.release()
		return nil
	}
	if s.count == len(s.ring) {
		evicted = s.ring[s.head]
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.drops++
		s.gDrops.Set(s.drops)
	}
	s.ring[(s.head+s.count)%len(s.ring)] = f
	s.count++
	s.gDepth.Set(int64(s.count))
	s.cond.Signal()
	s.mu.Unlock()
	return evicted
}

// dequeue blocks until a frame is available or the queue is finished
// and drained; ok=false means the sender should stop.
func (s *subscriber) dequeue() (f *frame, ok bool) {
	s.mu.Lock()
	for s.count == 0 && !s.done {
		s.cond.Wait()
	}
	if s.count == 0 {
		s.mu.Unlock()
		return nil, false
	}
	f = s.ring[s.head]
	s.ring[s.head] = nil
	s.head = (s.head + 1) % len(s.ring)
	s.count--
	s.gDepth.Set(int64(s.count))
	s.mu.Unlock()
	return f, true
}

// finish stops new enqueues; queued frames still drain (graceful
// end-of-run: the sender flushes the backlog, then sends Done).
func (s *subscriber) finish() {
	s.mu.Lock()
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abort is finish plus dropping the backlog (abrupt teardown after a
// send or read error — the peer is gone, the frames have no taker).
func (s *subscriber) abort() {
	s.mu.Lock()
	s.done = true
	for s.count > 0 {
		f := s.ring[s.head]
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		f.release()
	}
	s.gDepth.Set(0)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// queued reports the current backlog depth.
func (s *subscriber) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Hub is the broadcast layer. Create with New, serve with Serve (or
// coupling.RunHubSupervised), feed with PublishFrame, stop with Close.
type Hub struct {
	cfg Config
	ln  net.Listener

	// pmu serializes PublishFrame and guards its scratch (grid, enc).
	pmu  sync.Mutex
	grid *data.StructuredGrid
	enc  encBuf

	// mu guards membership and the history ring. Lock order: mu before
	// any subscriber.mu.
	mu      sync.Mutex
	subs    []*subscriber
	nsubs   int
	history []*frame
	hhead   int
	hcount  int
	closed  bool

	// latest is the newest published step, read lock-free by sender
	// goroutines for the lag gauge.
	latest    atomic.Int64
	published atomic.Int64

	// steer is the cumulative last-writer-wins steering state.
	smu   sync.Mutex
	steer State

	wg sync.WaitGroup

	slotDepth, slotDrops, slotLag []*telemetry.Gauge
}

// New validates cfg, opens the listener, and resolves the per-slot
// gauge series. The caller still must run Serve to accept subscribers.
func New(cfg Config) (*Hub, error) {
	if cfg.MaxSubs <= 0 {
		cfg.MaxSubs = 8
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.History <= 0 {
		cfg.History = 2 * cfg.Queue
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 5 * time.Second
	}
	if !cfg.Codec.Valid() {
		return nil, fmt.Errorf("hub: invalid codec %d", cfg.Codec)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("hub: listen %s: %w", cfg.Addr, err)
	}
	h := &Hub{
		cfg:     cfg,
		ln:      ln,
		subs:    make([]*subscriber, cfg.MaxSubs),
		history: make([]*frame, cfg.History),
	}
	h.latest.Store(-1)
	// The slot domain is closed and bounded by MaxSubs, so the dynamic
	// series names below are auditable: hub.sub<slot>.{queue_depth,
	// dropped_frames, lag_steps}.
	gauge := func(slot int, kind string) *telemetry.Gauge {
		//lint:ignore metricname slot/kind are drawn from closed bounded domains (MaxSubs slots, three kinds)
		return telemetry.Default.Gauge("hub.sub" + strconv.Itoa(slot) + "." + kind)
	}
	for i := 0; i < cfg.MaxSubs; i++ {
		h.slotDepth = append(h.slotDepth, gauge(i, "queue_depth"))
		h.slotDrops = append(h.slotDrops, gauge(i, "dropped_frames"))
		h.slotLag = append(h.slotLag, gauge(i, "lag_steps"))
	}
	return h, nil
}

// Addr reports the bound listen address (useful with port 0).
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Published reports the number of frames published so far — the
// supervision progress probe.
func (h *Hub) Published() int64 { return h.published.Load() }

// Subscribers reports the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nsubs
}

// Backlog reports the total queued frames across all subscribers —
// zero means every published frame has been handed to the wire.
func (h *Hub) Backlog() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, s := range h.subs {
		if s != nil {
			total += s.queued()
		}
	}
	return total
}

// Current implements Source: a snapshot of the cumulative steering
// state. The step argument is ignored — live steering applies at the
// next boundary, whatever step that is.
func (h *Hub) Current(int) State {
	h.smu.Lock()
	defer h.smu.Unlock()
	return h.steer
}

// Steer folds one steer message into the hub state as if a subscriber
// had sent it (also the entry point for local/scripted drivers).
func (h *Hub) Steer(who string, m Msg) {
	h.smu.Lock()
	h.steer.Merge(m)
	seq := h.steer.Seq
	h.smu.Unlock()
	ctrSteer.Inc()
	h.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeSteer, Rank: h.cfg.Rank, Step: int(h.latest.Load()),
		Detail: fmt.Sprintf("recv from=%s seq=%d %s", who, seq, m),
	})
}

// Serve accepts subscribers until the context is canceled or the hub is
// closed. Safe to call again after a supervised restart, as long as the
// hub itself has not been closed.
func (h *Hub) Serve(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	//lint:ignore nakedgo infallible select-then-Close unblocker; the Close error is re-observed by the Accept loop it wakes
	go func() {
		select {
		case <-ctx.Done():
			h.ln.Close()
		case <-stop:
		}
	}()
	for {
		nc, err := h.ln.Accept()
		if err != nil {
			if ctx.Err() != nil || h.isClosed() {
				return nil
			}
			return fmt.Errorf("hub: accept: %w", err)
		}
		h.wg.Add(1)
		go func() {
			// serveSubscriber recovers protocol panics itself; this outer
			// handler catches anything thrown before its recovery defer is
			// installed, so one bad connection can never take out Accept.
			defer func() {
				if p := recover(); p != nil {
					h.cfg.Journal.Error(h.cfg.Rank, int(h.latest.Load()),
						fmt.Errorf("hub: subscriber setup panic: %v", p))
				}
			}()
			h.serveSubscriber(nc)
		}()
	}
}

func (h *Hub) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Interrupt unblocks Serve and every subscriber goroutine without the
// graceful drain — the supervision teardown hook.
func (h *Hub) Interrupt() {
	h.ln.Close()
	h.mu.Lock()
	subs := make([]*subscriber, 0, h.nsubs)
	for _, s := range h.subs {
		if s != nil {
			subs = append(subs, s)
		}
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.abort()
		s.conn.Close()
	}
}

// serveSubscriber owns one accepted connection: wait for the hello,
// register, then loop reading control frames until the peer leaves. A
// panic in the per-subscriber protocol tears down this subscriber only,
// never the hub.
func (h *Hub) serveSubscriber(nc net.Conn) {
	defer h.wg.Done()
	conn := transport.NewConn(nc)
	conn.SetCodec(h.cfg.Codec)
	conn.SetMaxFrame(transport.MaxControlFrame)
	// Until the hello arrives, bound the read so a silent connection
	// cannot hold a slot-less goroutine forever.
	conn.SetTimeouts(h.cfg.HelloTimeout, h.cfg.WriteTimeout)

	var sub *subscriber
	reason := "done"
	defer func() {
		if p := recover(); p != nil {
			reason = fmt.Sprintf("panic: %v", p)
		}
		if sub != nil {
			h.unsubscribe(sub, reason)
		} else {
			conn.Close()
		}
	}()

	conn.OnControl(func(p []byte) error {
		m, err := DecodeMsg(p)
		if err != nil {
			h.cfg.Journal.Error(h.cfg.Rank, int(h.latest.Load()), err)
			return err
		}
		switch m.Kind {
		case KindHello:
			if sub != nil {
				return fmt.Errorf("hub: duplicate hello from %s", sub.name)
			}
			// A registered subscriber may idle indefinitely between steering
			// messages, so drop the read deadline now — before register
			// starts the sender goroutine, which shares the timeout fields.
			conn.SetTimeouts(0, h.cfg.WriteTimeout)
			s, err := h.register(m, conn)
			if err != nil {
				return err
			}
			sub = s
			return nil
		case KindSteer:
			if sub == nil {
				return fmt.Errorf("hub: steer before hello")
			}
			h.Steer(sub.name, m)
			return nil
		default:
			return fmt.Errorf("hub: unexpected control kind %d", m.Kind)
		}
	})
	for {
		typ, _, _, err := conn.Recv()
		if err != nil {
			reason = err.Error()
			return
		}
		if typ == transport.MsgDone {
			reason = "client left"
			return
		}
		reason = fmt.Sprintf("protocol error: unexpected message type %d", typ)
		return
	}
}

// register claims a slot for a subscriber and seeds its queue from the
// history ring at its requested cursor, so a resumed viewer replays the
// retained tail before joining the live stream.
func (h *Hub) register(m Msg, conn *transport.Conn) (*subscriber, error) {
	name := m.Name
	if name == "" {
		name = "sub"
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, fmt.Errorf("hub: registering %s: %w", name, ErrHubClosed)
	}
	slot := -1
	for i, s := range h.subs {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		h.mu.Unlock()
		h.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeSubscribe, Rank: h.cfg.Rank, Step: int(m.From),
			Detail: fmt.Sprintf("reject name=%s: subscriber limit %d reached", name, len(h.subs)),
		})
		return nil, fmt.Errorf("hub: subscriber limit %d reached", len(h.subs))
	}
	s := &subscriber{
		slot: slot, name: name, from: m.From, conn: conn,
		ring:   make([]*frame, h.cfg.Queue),
		gDepth: h.slotDepth[slot], gDrops: h.slotDrops[slot], gLag: h.slotLag[slot],
	}
	s.cond = sync.NewCond(&s.mu)
	s.gDepth.Set(0)
	s.gDrops.Set(0)
	s.gLag.Set(0)
	seeded := 0
	if m.From >= 0 {
		for i := 0; i < h.hcount; i++ {
			f := h.history[(h.hhead+i)%len(h.history)]
			if f.step >= m.From {
				f.retain()
				if ev := s.enqueue(f); ev != nil {
					// Catch-up exceeded the queue bound; the overflow is
					// journaled below like any live drop.
					ctrDropped.Inc()
					h.cfg.Journal.Emit(journal.Event{
						Type: journal.TypeOverflow, Rank: h.cfg.Rank, Step: int(ev.step), Elements: 1,
						Detail: fmt.Sprintf("hub subscriber %s slot=%d dropped oldest queued frame (catch-up)", name, slot),
					})
					ev.release()
				}
				seeded++
			}
		}
	}
	h.subs[slot] = s
	h.nsubs++
	gSubscribers.Set(int64(h.nsubs))
	h.mu.Unlock()
	h.cfg.Journal.Emit(journal.Event{
		Type: journal.TypeSubscribe, Rank: h.cfg.Rank, Step: int(m.From),
		Detail: fmt.Sprintf("join name=%s slot=%d from=%d seeded=%d", name, slot, m.From, seeded),
	})
	h.wg.Add(1)
	go func() {
		// A panic in the send path tears down this subscriber only.
		defer func() {
			if p := recover(); p != nil {
				h.unsubscribe(s, fmt.Sprintf("sender panic: %v", p))
			}
		}()
		h.sender(s)
	}()
	return s, nil
}

// unsubscribe removes a subscriber; idempotent across the sender and
// reader goroutines (whichever fails first journals its reason).
func (h *Hub) unsubscribe(s *subscriber, reason string) {
	s.closed.Do(func() {
		h.mu.Lock()
		if h.subs[s.slot] == s {
			h.subs[s.slot] = nil
			h.nsubs--
			gSubscribers.Set(int64(h.nsubs))
		}
		h.mu.Unlock()
		h.cfg.Journal.Emit(journal.Event{
			Type: journal.TypeSubscribe, Rank: h.cfg.Rank, Step: int(h.latest.Load()),
			Detail: fmt.Sprintf("leave name=%s slot=%d reason=%s", s.name, s.slot, reason),
		})
	})
	s.abort()
	s.conn.Close()
}

// sender drains one subscriber's queue onto its connection. Each
// subscriber connection carries its own codec instance and temporal
// reference, so the first frame after any (re)connect is a keyframe
// whenever the codec is temporal.
func (h *Hub) sender(s *subscriber) {
	defer h.wg.Done()
	for {
		f, ok := s.dequeue()
		if !ok {
			// Graceful drain complete: end the stream so followers exit.
			s.conn.SendDone()
			h.unsubscribe(s, "stream complete")
			return
		}
		s.conn.Step = int(f.step)
		err := s.conn.SendPayload(f.payload)
		if err == nil {
			s.gLag.Set(h.latest.Load() - f.step)
		}
		f.release()
		if err != nil {
			h.unsubscribe(s, "send: "+err.Error())
			return
		}
	}
}

// PublishFrame serializes one rendered frame and fans it out: one vtkio
// encode into a pooled buffer, one reference per subscriber queue plus
// one for the history ring. It never blocks on subscriber progress —
// a full queue drops its oldest frame (journaled as an in-band overflow
// event) and the sim/render loop proceeds untouched. Safe on a nil hub
// (publishing is a no-op), so callers can wire it unconditionally.
func (h *Hub) PublishFrame(step int, fr *fb.Frame) {
	if h == nil {
		return
	}
	h.pmu.Lock()
	h.grid = FrameGrid(fr, h.grid)
	h.enc = h.enc[:0]
	if err := vtkio.Write(&h.enc, h.grid); err != nil {
		h.pmu.Unlock()
		h.cfg.Journal.Error(h.cfg.Rank, step, fmt.Errorf("hub: encoding frame: %w", err))
		return
	}
	f := framePool.Get().(*frame)
	f.step = int64(step)
	buf := mempool.Bytes(len(h.enc))
	copy(buf, h.enc)
	f.payload = buf
	f.refs.Store(1) // the history ring's reference

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.pmu.Unlock()
		f.release()
		return
	}
	if h.hcount == len(h.history) {
		old := h.history[h.hhead]
		h.history[h.hhead] = nil
		h.hhead = (h.hhead + 1) % len(h.history)
		h.hcount--
		old.release()
	}
	h.history[(h.hhead+h.hcount)%len(h.history)] = f
	h.hcount++
	h.latest.Store(int64(step))
	for _, s := range h.subs {
		if s == nil {
			continue
		}
		f.retain()
		if ev := s.enqueue(f); ev != nil {
			ctrDropped.Inc()
			h.cfg.Journal.Emit(journal.Event{
				Type: journal.TypeOverflow, Rank: h.cfg.Rank, Step: int(ev.step), Elements: 1,
				Detail: fmt.Sprintf("hub subscriber %s slot=%d dropped oldest queued frame", s.name, s.slot),
			})
			ev.release()
		} else {
			ctrFanout.Inc()
		}
	}
	h.mu.Unlock()
	h.pmu.Unlock()
	h.published.Add(1)
	ctrPublished.Inc()
}

// Close stops accepting, lets every subscriber drain its backlog (ends
// each stream with Done), waits for all goroutines, and releases the
// history. Idempotent.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	subs := make([]*subscriber, 0, h.nsubs)
	for _, s := range h.subs {
		if s != nil {
			subs = append(subs, s)
		}
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, s := range subs {
		s.finish()
	}
	h.wg.Wait()
	h.mu.Lock()
	for h.hcount > 0 {
		f := h.history[h.hhead]
		h.history[h.hhead] = nil
		h.hhead = (h.hhead + 1) % len(h.history)
		h.hcount--
		f.release()
	}
	h.mu.Unlock()
	return nil
}
