package hub

import (
	"runtime"
	"testing"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/raceflag"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
)

// TestHubBroadcastSteadyStateAllocs is the fan-out allocation gate:
// publishing a frame to three live subscribers — frame->grid
// conversion, vtkio encode, refcounted pooled payload, three queue
// hand-offs, three per-connection sends, and the three subscriber-side
// decodes — must allocate nothing once warm. AllocsPerRun counts
// mallocs across all goroutines, so the sender goroutines and the
// subscriber clients are inside the budget.
func TestHubBroadcastSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful without -race")
	}
	const subs = 3
	// A small history reaches eviction steady state during warm-up, so
	// each publish recycles the buffer it evicts; a roomy queue plus the
	// drain barrier below keeps the journaling drop path (which
	// allocates) out of the loop.
	h, _ := startHub(t, Config{MaxSubs: subs, Queue: 64, History: 4})
	defer h.Close()

	received := make(chan struct{}, 1024)
	for i := 0; i < subs; i++ {
		c := dialSub(t, h.Addr(), "s", -1)
		defer c.Close()
		c.SetDatasetReuse(true)
		go func() {
			for {
				typ, _, _, err := c.Recv()
				if err != nil || typ == transport.MsgDone {
					return
				}
				received <- struct{}{}
			}
		}()
	}
	waitFor(t, "subscribers", func() bool { return h.Subscribers() == subs })

	f := fb.New(48, 32)
	for i := range f.Color {
		f.Color[i] = vec.V3{X: float64(i%97) / 97, Y: 0.5, Z: 0.25}
		f.Depth[i] = float64(i % 13)
	}
	step := 0
	publish := func() {
		// Perturb so frames are not identical (nothing in the path keys
		// on content, but a degenerate stream would be a weaker gate).
		f.Color[step%len(f.Color)].X += 0.001
		h.PublishFrame(step, f)
		step++
		// Barrier: wait until every subscriber has decoded this frame, so
		// queue depth stays at 0-1 (no drops) and the refcount/pool cycle
		// completes inside the measured op.
		for i := 0; i < subs; i++ {
			<-received
		}
		for h.Backlog() > 0 {
			runtime.Gosched()
		}
	}
	for i := 0; i < 8; i++ {
		publish()
	}
	before := h.Published()
	dropsBefore := ctrDropped.Value()
	if allocs := testing.AllocsPerRun(50, publish); allocs > 0 {
		t.Errorf("broadcast to %d subscribers allocates %.1f times per frame, want 0", subs, allocs)
	}
	// Non-vacuity: the gate really published and nothing was shed.
	if got := h.Published() - before; got < 50 {
		t.Errorf("published %d frames during AllocsPerRun, want >= 50", got)
	}
	if drops := ctrDropped.Value() - dropsBefore; drops != 0 {
		t.Errorf("gate dropped %d frames; the alloc budget only covers the no-drop path", drops)
	}
}
