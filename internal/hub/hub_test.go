package hub

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/transport"
	"github.com/ascr-ecx/eth/internal/vec"
	"github.com/ascr-ecx/eth/internal/vtkio"
)

// steerMsgs enumerates representative valid messages across the kinds
// and axis combinations.
func steerMsgs() []Msg {
	return []Msg{
		{Kind: KindHello, From: -1, Name: "viewer"},
		{Kind: KindHello, From: 0, Name: ""},
		{Kind: KindHello, From: 1 << 40, Name: strings.Repeat("n", 255)},
		{Kind: KindSteer, Axes: AxisCamera, Cam: View{Az: 1.25, El: -0.5, Dist: 2}},
		{Kind: KindSteer, Axes: AxisIso, Iso: 0.375},
		{Kind: KindSteer, Axes: AxisRatio, Ratio: 0.25},
		{Kind: KindSteer, Axes: AxisCodec, Codec: transport.CodecDeltaFlate},
		{Kind: KindSteer, Axes: axisAll,
			Cam: View{Az: math.Pi, El: 0.1, Dist: 1.5}, Iso: -2, Ratio: 1, Codec: transport.CodecRaw},
	}
}

func TestSteerRoundTrip(t *testing.T) {
	for _, m := range steerMsgs() {
		p, err := EncodeMsg(nil, m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := DecodeMsg(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got != m {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
		// Canonical form: re-encoding the decoded message reproduces the
		// original bytes exactly.
		p2, err := EncodeMsg(nil, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(p2) != string(p) {
			t.Errorf("re-encode of %+v is not canonical", m)
		}
	}
}

// TestSteerCorruption flips every byte and tries every truncation of a
// valid message: all of them must fail with ErrSteering, never decode
// to a message, never panic.
func TestSteerCorruption(t *testing.T) {
	for _, m := range steerMsgs() {
		p, err := EncodeMsg(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p {
			bad := append([]byte(nil), p...)
			bad[i] ^= 0x41
			if _, err := DecodeMsg(bad); !errors.Is(err, ErrSteering) {
				t.Fatalf("byte %d flipped: got err %v, want ErrSteering", i, err)
			}
		}
		for n := 0; n < len(p); n++ {
			if _, err := DecodeMsg(p[:n]); !errors.Is(err, ErrSteering) {
				t.Fatalf("truncation to %d bytes: got err %v, want ErrSteering", n, err)
			}
		}
	}
}

// TestSteerRejectsInvalid proves out-of-domain values can neither be
// encoded nor smuggled through a decode with a fixed-up CRC.
func TestSteerRejectsInvalid(t *testing.T) {
	bad := []Msg{
		{Kind: 9},
		{Kind: KindSteer},                                                   // no axes
		{Kind: KindSteer, Axes: 0x80},                                       // unknown axis
		{Kind: KindSteer, Axes: AxisRatio, Ratio: 0},                        // ratio out of domain
		{Kind: KindSteer, Axes: AxisRatio, Ratio: 1.5},                      //
		{Kind: KindSteer, Axes: AxisCamera, Cam: View{Dist: -1}},            // non-positive dist
		{Kind: KindSteer, Axes: AxisCamera, Cam: View{Az: math.NaN(), Dist: 1}},
		{Kind: KindSteer, Axes: AxisIso, Iso: float32(math.Inf(1))},
		{Kind: KindSteer, Axes: AxisCodec, Codec: 99},
		{Kind: KindHello, From: -2},
	}
	for _, m := range bad {
		if _, err := EncodeMsg(nil, m); !errors.Is(err, ErrSteering) {
			t.Errorf("encode %+v: got err %v, want ErrSteering", m, err)
		}
	}
}

func TestStateMergeLastWriterWins(t *testing.T) {
	var st State
	st.Merge(Msg{Kind: KindSteer, Axes: AxisIso, Iso: 0.3})
	st.Merge(Msg{Kind: KindSteer, Axes: AxisIso | AxisRatio, Iso: 0.7, Ratio: 0.5})
	st.Merge(Msg{Kind: KindHello}) // ignored
	if st.Seq != 2 {
		t.Fatalf("seq = %d, want 2", st.Seq)
	}
	if !st.HasIso || st.Iso != 0.7 {
		t.Errorf("iso = %v (has=%v), want 0.7 from the last writer", st.Iso, st.HasIso)
	}
	if !st.HasRatio || st.Ratio != 0.5 {
		t.Errorf("ratio = %v (has=%v), want 0.5", st.Ratio, st.HasRatio)
	}
	if st.HasCam || st.HasCodec {
		t.Error("unsteered axes must stay unset")
	}
}

// TestFrameGridRoundTrip pushes a frame through the full wire shape —
// frame -> grid -> vtkio bytes -> dataset -> frame — and demands the
// quantization-stable signature survive unchanged.
func TestFrameGridRoundTrip(t *testing.T) {
	f := fb.New(17, 9)
	for i := range f.Color {
		f.Color[i] = vec.V3{X: float64(i) * 0.01, Y: 1 - float64(i)*0.005, Z: 0.25}
		f.Depth[i] = float64(i % 7)
	}
	f.Depth[3] = math.Inf(1) // background depth must survive

	g := FrameGrid(f, nil)
	var buf []byte
	w := (*encBuf)(&buf)
	if err := vtkio.Write(w, g); err != nil {
		t.Fatal(err)
	}
	ds, err := vtkio.Read(strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	back, err := GridFrame(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != f.W || back.H != f.H {
		t.Fatalf("round trip shape %dx%d, want %dx%d", back.W, back.H, f.W, f.H)
	}
	if FrameSig(back) != FrameSig(f) {
		t.Error("frame signature changed across the wire round trip")
	}
	if !math.IsInf(back.Depth[3], 1) {
		t.Errorf("background depth = %v, want +Inf", back.Depth[3])
	}

	// In-place reuse: same shape converts into the same arrays.
	g2 := FrameGrid(f, g)
	if &g2.Fields[0].Values[0] != &g.Fields[0].Values[0] {
		t.Error("FrameGrid did not reuse matching-shape field arrays")
	}
}

// startHub builds a hub on an ephemeral port with a memory journal and
// returns it with its serve loop running.
func startHub(t *testing.T, cfg Config) (*Hub, *journal.Writer) {
	t.Helper()
	jw := journal.New()
	cfg.Addr = "127.0.0.1:0"
	cfg.Journal = jw
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- h.Serve(ctx) }()
	t.Cleanup(func() {
		h.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return h, jw
}

// dialSub connects a subscriber and completes the hello handshake.
func dialSub(t *testing.T, addr, name string, from int64) *transport.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewConn(nc)
	p, err := EncodeMsg(nil, Msg{Kind: KindHello, From: from, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendControl(p); err != nil {
		t.Fatal(err)
	}
	return c
}

// testFrame renders a deterministic synthetic frame for step.
func testFrame(step, w, h int) *fb.Frame {
	f := fb.New(w, h)
	for i := range f.Color {
		v := float64((i*31+step*97)%256) / 255
		f.Color[i] = vec.V3{X: v, Y: 1 - v, Z: v * v}
		f.Depth[i] = 1 + v
	}
	return f
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHubBroadcastOrder proves two live subscribers each receive every
// published frame, in step order, byte-identical to the source.
func TestHubBroadcastOrder(t *testing.T) {
	h, _ := startHub(t, Config{Queue: 32, History: 32})
	const steps, w, hh = 6, 20, 10

	conns := []*transport.Conn{
		dialSub(t, h.Addr(), "a", 0),
		dialSub(t, h.Addr(), "b", 0),
	}
	waitFor(t, "both subscribers to register", func() bool { return h.Subscribers() == 2 })

	want := make([]uint32, steps)
	for i := 0; i < steps; i++ {
		f := testFrame(i, w, hh)
		want[i] = FrameSig(f)
		h.PublishFrame(i, f)
	}
	h.Close() // graceful: queues drain, streams end with Done

	for ci, c := range conns {
		var steps2 []int64
		for {
			typ, ds, step, err := c.Recv()
			if err != nil {
				t.Fatalf("sub %d recv: %v", ci, err)
			}
			if typ == transport.MsgDone {
				break
			}
			f, err := GridFrame(ds, nil)
			if err != nil {
				t.Fatalf("sub %d step %d: %v", ci, step, err)
			}
			if got := FrameSig(f); got != want[step] {
				t.Errorf("sub %d step %d signature %08x, want %08x", ci, step, got, want[step])
			}
			steps2 = append(steps2, step)
		}
		if len(steps2) != steps {
			t.Fatalf("sub %d received %d frames, want %d", ci, len(steps2), steps)
		}
		for i, s := range steps2 {
			if s != int64(i) {
				t.Fatalf("sub %d frame %d has step %d, want in-order delivery", ci, i, s)
			}
		}
		c.Close()
	}
}

// TestHubRejectsBeyondMaxSubs proves the subscriber bound: the slot
// holder streams untouched while the excess connection is refused and
// journaled.
func TestHubRejectsBeyondMaxSubs(t *testing.T) {
	h, jw := startHub(t, Config{MaxSubs: 1})
	keeper := dialSub(t, h.Addr(), "keeper", -1)
	defer keeper.Close()
	waitFor(t, "first subscriber", func() bool { return h.Subscribers() == 1 })

	extra := dialSub(t, h.Addr(), "extra", -1)
	defer extra.Close()
	if _, _, _, err := extra.Recv(); err == nil {
		t.Fatal("over-limit subscriber was not disconnected")
	}
	waitFor(t, "reject journal event", func() bool {
		for _, ev := range jw.Events() {
			if ev.Type == journal.TypeSubscribe && strings.HasPrefix(ev.Detail, "reject name=extra") {
				return true
			}
		}
		return false
	})
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want the original 1", h.Subscribers())
	}
}

// TestHubLiveSteeringOverWire sends a steer control frame through a
// real socket and watches it land in the hub's last-writer-wins state
// and journal.
func TestHubLiveSteeringOverWire(t *testing.T) {
	h, jw := startHub(t, Config{})
	c := dialSub(t, h.Addr(), "pilot", -1)
	defer c.Close()
	waitFor(t, "subscriber", func() bool { return h.Subscribers() == 1 })

	m := Msg{Kind: KindSteer, Axes: AxisIso | AxisRatio, Iso: 0.42, Ratio: 0.5}
	p, err := EncodeMsg(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendControl(p); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "steering to apply", func() bool { return h.Current(0).Seq >= 1 })
	st := h.Current(0)
	if !st.HasIso || st.Iso != 0.42 || !st.HasRatio || st.Ratio != 0.5 {
		t.Fatalf("steering state %+v did not capture the wire message", st)
	}
	found := false
	for _, ev := range jw.Events() {
		if ev.Type == journal.TypeSteer && strings.Contains(ev.Detail, "recv from=pilot") {
			found = true
		}
	}
	if !found {
		t.Error("steer message was not journaled")
	}

	// A corrupted steer frame must disconnect the subscriber without
	// touching the state.
	seq := h.Current(0).Seq
	bad := append([]byte(nil), p...)
	bad[len(bad)-1] ^= 1
	if err := c.SendControl(bad); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Recv(); err == nil {
		t.Fatal("subscriber survived sending a corrupt steering frame")
	}
	if got := h.Current(0).Seq; got != seq {
		t.Errorf("corrupt frame advanced steering seq %d -> %d", seq, got)
	}
}

// TestHubDropOldestOnCatchUp pins the bounded-queue contract: a
// subscriber whose requested backlog exceeds its queue gets the newest
// frames, and each shed frame is journaled as an in-band overflow.
func TestHubDropOldestOnCatchUp(t *testing.T) {
	h, jw := startHub(t, Config{Queue: 2, History: 16})
	const steps = 8
	want := make([]uint32, steps)
	for i := 0; i < steps; i++ {
		f := testFrame(i, 16, 8)
		want[i] = FrameSig(f)
		h.PublishFrame(i, f)
	}
	// History now holds steps 0..7; a queue of 2 can only keep the two
	// newest during catch-up.
	c := dialSub(t, h.Addr(), "late", 0)
	defer c.Close()
	waitFor(t, "late subscriber", func() bool { return h.Subscribers() == 1 })
	h.Close()

	var got []int64
	for {
		typ, ds, step, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ == transport.MsgDone {
			break
		}
		f, err := GridFrame(ds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if FrameSig(f) != want[step] {
			t.Errorf("step %d signature mismatch after catch-up drops", step)
		}
		got = append(got, step)
	}
	if len(got) != 2 || got[0] != steps-2 || got[1] != steps-1 {
		t.Fatalf("received steps %v, want the 2 newest [%d %d]", got, steps-2, steps-1)
	}
	drops := 0
	for _, ev := range jw.Events() {
		if ev.Type == journal.TypeOverflow && strings.Contains(ev.Detail, "hub subscriber late") {
			drops += int(ev.Elements)
		}
	}
	if drops != steps-2 {
		t.Errorf("journaled %d overflow drops, want %d", drops, steps-2)
	}
}
