package hub

import (
	"errors"
	"testing"

	"github.com/ascr-ecx/eth/internal/transport"
)

// FuzzSteeringMessage is the parser hardening gate for the steering
// vocabulary: whatever bytes arrive — truncated, bit-flipped, hostile —
// DecodeMsg must either return a message that re-encodes to the exact
// same bytes (canonical form) or fail with an error wrapping the typed
// ErrSteering sentinel. It must never panic and never return a message
// whose fields are outside the steerable domain (which is what would
// make a corrupt frame silently steer a run).
func FuzzSteeringMessage(f *testing.F) {
	for _, m := range []Msg{
		{Kind: KindHello, From: -1, Name: "viewer"},
		{Kind: KindHello, From: 1 << 33, Name: ""},
		{Kind: KindSteer, Axes: AxisCamera, Cam: View{Az: 1, El: -0.25, Dist: 1.5}},
		{Kind: KindSteer, Axes: AxisIso, Iso: 0.5},
		{Kind: KindSteer, Axes: AxisRatio | AxisCodec, Ratio: 0.125, Codec: transport.CodecDelta},
		{Kind: KindSteer, Axes: axisAll, Cam: View{Az: -3, El: 1.2, Dist: 0.5},
			Iso: -1, Ratio: 1, Codec: transport.CodecFlate},
	} {
		p, err := EncodeMsg(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
		// Seed classic corruptions so even a corpus-free run exercises
		// the failure paths.
		flip := append([]byte(nil), p...)
		flip[len(flip)/2] ^= 0xff
		f.Add(flip)
		f.Add(p[:len(p)-1])
	}
	f.Add([]byte{})
	f.Add([]byte{steerMagic0, steerMagic1, steerVersion, KindSteer})

	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := DecodeMsg(p)
		if err != nil {
			if !errors.Is(err, ErrSteering) {
				t.Fatalf("decode error %v does not wrap ErrSteering", err)
			}
			return
		}
		// Accepted messages must be semantically valid (the domain checks
		// are what stop a flipped byte from silently applying) ...
		if err := m.validate(); err != nil {
			t.Fatalf("decode accepted invalid message %+v: %v", m, err)
		}
		// ... and canonical: re-encoding reproduces the input exactly, so
		// there is exactly one wire form per message and a mutated-but-
		// accepted frame is impossible by construction.
		enc, err := EncodeMsg(nil, m)
		if err != nil {
			t.Fatalf("accepted message %+v does not re-encode: %v", m, err)
		}
		if string(enc) != string(p) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x\n msg %+v", p, enc, m)
		}
		back, err := DecodeMsg(enc)
		if err != nil || back != m {
			t.Fatalf("canonical re-decode mismatch: %+v vs %+v (err %v)", back, m, err)
		}
	})
}
