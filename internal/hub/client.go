package hub

import (
	"fmt"
	"net"

	"github.com/ascr-ecx/eth/internal/transport"
)

// DialSubscriber connects to a hub and completes the hello handshake:
// the returned connection is registered under name with its step cursor
// at from (-1 = live tail only; otherwise the hub seeds the retained
// history from that step). The caller then drives Recv for frames and
// may send steer messages with SendSteer.
func DialSubscriber(addr, name string, from int64) (*transport.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("hub: dialing %s: %w", addr, err)
	}
	c := transport.NewConn(nc)
	p, err := EncodeMsg(nil, Msg{Kind: KindHello, From: from, Name: name})
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.SendControl(p); err != nil {
		nc.Close()
		return nil, fmt.Errorf("hub: sending hello: %w", err)
	}
	return c, nil
}

// SendSteer encodes and sends one steer message on a subscriber
// connection. Like all Send* methods it must be called from the
// connection's sending goroutine.
func SendSteer(c *transport.Conn, m Msg) error {
	p, err := EncodeMsg(nil, m)
	if err != nil {
		return err
	}
	return c.SendControl(p)
}
