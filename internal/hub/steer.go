// Steering messages: the CRC-checked control vocabulary subscribers
// speak back through the hub to the proxies. A message is either a hello
// (subscribe with a step cursor) or a steer (a set of design-space axes
// to change: camera, isovalue, sampling ratio, wire codec). The encoding
// is a fixed magic/version preamble, a kind byte, the kind's
// variable-length body, and a CRC32C trailer over everything before it —
// any byte flip or truncation decodes to an error wrapping ErrSteering,
// never a panic and never a silently-applied partial message.
package hub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"github.com/ascr-ecx/eth/internal/transport"
)

// ErrSteering is the typed sentinel every steering decode failure wraps:
// corruption, truncation, unknown versions or kinds, and out-of-domain
// field values all land here, so a receiver can drop a bad message
// without dispatching on error text.
var ErrSteering = errors.New("hub: malformed steering message")

// Message kinds.
const (
	// KindHello subscribes: From carries the first step wanted (-1 =
	// live tail only), Name labels the subscriber in journals/gauges.
	KindHello uint8 = 1
	// KindSteer changes the axes named in Axes, last-writer-wins.
	KindSteer uint8 = 2
)

// Axis bits name the steerable design-space axes of a steer message.
const (
	AxisCamera uint8 = 1 << iota
	AxisIso
	AxisRatio
	AxisCodec

	axisAll = AxisCamera | AxisIso | AxisRatio | AxisCodec
)

// View is a steered camera: an orbit pose around the data bounds.
// Azimuth/elevation are radians; Dist scales the bounds diagonal.
type View struct {
	Az, El, Dist float64
}

// Msg is one decoded steering message.
type Msg struct {
	Kind uint8

	// Hello fields.
	From int64
	Name string

	// Steer fields; only the axes named in Axes are meaningful.
	Axes  uint8
	Cam   View
	Iso   float32
	Ratio float64
	Codec transport.CodecID
}

// Steering wire constants: magic "\xE7S", version 1.
const (
	steerMagic0  = 0xE7
	steerMagic1  = 'S'
	steerVersion = 1
	steerPreLen  = 4 // magic(2) + version(1) + kind(1)
	steerCRCLen  = 4
	// maxHelloName bounds the subscriber label (one length byte).
	maxHelloName = 255
)

// castagnoli matches the transport framing's CRC32C polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeMsg appends the wire encoding of m to dst and returns the
// extended slice (pass a reused buffer's [:0] for allocation-free
// steady state). Encoding a message that would not decode — a bad kind,
// empty or unknown axes, out-of-domain values — returns an error so
// invalid state can never reach the wire.
func EncodeMsg(dst []byte, m Msg) ([]byte, error) {
	if err := m.validate(); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, steerMagic0, steerMagic1, steerVersion, m.Kind)
	switch m.Kind {
	case KindHello:
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.From))
		dst = append(dst, byte(len(m.Name)))
		dst = append(dst, m.Name...)
	case KindSteer:
		dst = append(dst, m.Axes)
		if m.Axes&AxisCamera != 0 {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Cam.Az))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Cam.El))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Cam.Dist))
		}
		if m.Axes&AxisIso != 0 {
			dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(m.Iso))
		}
		if m.Axes&AxisRatio != 0 {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Ratio))
		}
		if m.Axes&AxisCodec != 0 {
			dst = append(dst, byte(m.Codec))
		}
	}
	crc := crc32.Update(0, castagnoli, dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return dst, nil
}

// DecodeMsg parses one steering message. Every failure — short buffer,
// bad magic/version/kind, CRC mismatch, trailing garbage, out-of-domain
// field values — returns an error wrapping ErrSteering. A message that
// decodes cleanly re-encodes to the identical bytes (canonical form).
func DecodeMsg(p []byte) (Msg, error) {
	var m Msg
	if len(p) < steerPreLen+steerCRCLen {
		return m, fmt.Errorf("%w: %d bytes is shorter than any message", ErrSteering, len(p))
	}
	body, trailer := p[:len(p)-steerCRCLen], p[len(p)-steerCRCLen:]
	if crc := crc32.Update(0, castagnoli, body); crc != binary.BigEndian.Uint32(trailer) {
		return m, fmt.Errorf("%w: CRC mismatch", ErrSteering)
	}
	if body[0] != steerMagic0 || body[1] != steerMagic1 {
		return m, fmt.Errorf("%w: bad magic %02x%02x", ErrSteering, body[0], body[1])
	}
	if body[2] != steerVersion {
		return m, fmt.Errorf("%w: unknown version %d", ErrSteering, body[2])
	}
	m.Kind = body[3]
	rest := body[steerPreLen:]
	switch m.Kind {
	case KindHello:
		if len(rest) < 9 {
			return Msg{}, fmt.Errorf("%w: truncated hello", ErrSteering)
		}
		m.From = int64(binary.BigEndian.Uint64(rest[:8]))
		n := int(rest[8])
		if len(rest) != 9+n {
			return Msg{}, fmt.Errorf("%w: hello body length %d, want %d", ErrSteering, len(rest), 9+n)
		}
		m.Name = string(rest[9:])
	case KindSteer:
		if len(rest) < 1 {
			return Msg{}, fmt.Errorf("%w: truncated steer", ErrSteering)
		}
		m.Axes = rest[0]
		rest = rest[1:]
		if m.Axes&AxisCamera != 0 {
			if len(rest) < 24 {
				return Msg{}, fmt.Errorf("%w: truncated camera axis", ErrSteering)
			}
			m.Cam.Az = math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))
			m.Cam.El = math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
			m.Cam.Dist = math.Float64frombits(binary.BigEndian.Uint64(rest[16:24]))
			rest = rest[24:]
		}
		if m.Axes&AxisIso != 0 {
			if len(rest) < 4 {
				return Msg{}, fmt.Errorf("%w: truncated iso axis", ErrSteering)
			}
			m.Iso = math.Float32frombits(binary.BigEndian.Uint32(rest[:4]))
			rest = rest[4:]
		}
		if m.Axes&AxisRatio != 0 {
			if len(rest) < 8 {
				return Msg{}, fmt.Errorf("%w: truncated ratio axis", ErrSteering)
			}
			m.Ratio = math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))
			rest = rest[8:]
		}
		if m.Axes&AxisCodec != 0 {
			if len(rest) < 1 {
				return Msg{}, fmt.Errorf("%w: truncated codec axis", ErrSteering)
			}
			m.Codec = transport.CodecID(rest[0])
			rest = rest[1:]
		}
		if len(rest) != 0 {
			return Msg{}, fmt.Errorf("%w: %d trailing bytes", ErrSteering, len(rest))
		}
	default:
		return Msg{}, fmt.Errorf("%w: unknown kind %d", ErrSteering, m.Kind)
	}
	if err := m.validate(); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// validate checks the semantic domain of every set field, shared by
// encode (never emit garbage) and decode (never apply garbage).
func (m Msg) validate() error {
	switch m.Kind {
	case KindHello:
		if m.From < -1 {
			return fmt.Errorf("%w: hello from-step %d", ErrSteering, m.From)
		}
		if len(m.Name) > maxHelloName {
			return fmt.Errorf("%w: hello name %d bytes exceeds %d", ErrSteering, len(m.Name), maxHelloName)
		}
	case KindSteer:
		if m.Axes == 0 {
			return fmt.Errorf("%w: steer with no axes", ErrSteering)
		}
		if m.Axes&^axisAll != 0 {
			return fmt.Errorf("%w: unknown axis bits %#x", ErrSteering, m.Axes&^axisAll)
		}
		if m.Axes&AxisCamera != 0 {
			if !finite64(m.Cam.Az) || !finite64(m.Cam.El) || !finite64(m.Cam.Dist) || m.Cam.Dist <= 0 {
				return fmt.Errorf("%w: camera az=%v el=%v dist=%v", ErrSteering, m.Cam.Az, m.Cam.El, m.Cam.Dist)
			}
		}
		if m.Axes&AxisIso != 0 {
			if f := float64(m.Iso); !finite64(f) {
				return fmt.Errorf("%w: non-finite isovalue", ErrSteering)
			}
		}
		if m.Axes&AxisRatio != 0 {
			if !finite64(m.Ratio) || m.Ratio <= 0 || m.Ratio > 1 {
				return fmt.Errorf("%w: sampling ratio %v outside (0, 1]", ErrSteering, m.Ratio)
			}
		}
		if m.Axes&AxisCodec != 0 && !m.Codec.Valid() {
			return fmt.Errorf("%w: unknown codec %d", ErrSteering, m.Codec)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrSteering, m.Kind)
	}
	return nil
}

func finite64(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// String renders a steer message's set axes deterministically (no
// pointers, no timestamps) for journal details, so two replayed runs
// produce identical steering event sequences.
func (m Msg) String() string {
	var b strings.Builder
	switch m.Kind {
	case KindHello:
		fmt.Fprintf(&b, "hello name=%s from=%d", m.Name, m.From)
	case KindSteer:
		b.WriteString("steer")
		if m.Axes&AxisCamera != 0 {
			fmt.Fprintf(&b, " camera=%g,%g,%g", m.Cam.Az, m.Cam.El, m.Cam.Dist)
		}
		if m.Axes&AxisIso != 0 {
			fmt.Fprintf(&b, " iso=%g", m.Iso)
		}
		if m.Axes&AxisRatio != 0 {
			fmt.Fprintf(&b, " ratio=%g", m.Ratio)
		}
		if m.Axes&AxisCodec != 0 {
			fmt.Fprintf(&b, " codec=%s", m.Codec)
		}
	default:
		fmt.Fprintf(&b, "kind=%d", m.Kind)
	}
	return b.String()
}

// State is the cumulative steering state: the merge of every steer
// message applied so far, with a monotone Seq so consumers can detect
// "something changed since I last looked" with one comparison. The
// zero State (Seq 0) means nothing has ever been steered.
type State struct {
	Seq      uint64
	HasCam   bool
	Cam      View
	HasIso   bool
	Iso      float32
	HasRatio bool
	Ratio    float64
	HasCodec bool
	Codec    transport.CodecID
}

// Merge folds one steer message into the state, axis by axis
// (last-writer-wins), and bumps Seq. Non-steer kinds are ignored.
func (s *State) Merge(m Msg) {
	if m.Kind != KindSteer {
		return
	}
	if m.Axes&AxisCamera != 0 {
		s.HasCam, s.Cam = true, m.Cam
	}
	if m.Axes&AxisIso != 0 {
		s.HasIso, s.Iso = true, m.Iso
	}
	if m.Axes&AxisRatio != 0 {
		s.HasRatio, s.Ratio = true, m.Ratio
	}
	if m.Axes&AxisCodec != 0 {
		s.HasCodec, s.Codec = true, m.Codec
	}
	s.Seq++
}

// Source supplies steering state to a proxy at step boundaries. Current
// must be cheap, idempotent, and safe for concurrent use; the step lets
// scripted sources key changes to the run position. Consumers track the
// last Seq they applied and act only when it advances.
type Source interface {
	Current(step int) State
}

// Script is a deterministic Source: each entry's message takes effect
// when the run reaches its step. Two runs over the same script produce
// identical Current values at every step — the replay counterpart of
// live steering, used to prove steered runs are reproducible. Entries
// must be ordered by Step (last-writer-wins within a step follows
// slice order).
type Script struct {
	Entries []ScriptEntry
}

// ScriptEntry schedules one steer message at a step boundary.
type ScriptEntry struct {
	Step int
	Msg  Msg
}

// Current implements Source: the merge of every entry at or before step.
func (s *Script) Current(step int) State {
	var st State
	for _, e := range s.Entries {
		if e.Step <= step {
			st.Merge(e.Msg)
		}
	}
	return st
}
