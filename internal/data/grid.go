package data

import (
	"fmt"
	"math"

	"github.com/ascr-ecx/eth/internal/vec"
)

// StructuredGrid is a regular (uniform-spacing) volume dataset, the form
// the paper's xRAGE pipeline hands to visualization after AMR data is
// resampled onto a structured grid (§IV-A). Vertex-centred scalars are
// stored in x-fastest order: index = i + NX*(j + NY*k).
type StructuredGrid struct {
	// NX, NY, NZ are vertex counts along each axis (>= 2 for a volume).
	NX, NY, NZ int
	// Origin is the world position of vertex (0,0,0).
	Origin vec.V3
	// Spacing is the world distance between adjacent vertices per axis.
	Spacing vec.V3
	// Fields holds named per-vertex scalar arrays of length NX*NY*NZ.
	Fields []Field
}

var _ Dataset = (*StructuredGrid)(nil)

// NewStructuredGrid allocates a grid with the given vertex counts, unit
// spacing, and origin at zero. Fields start empty.
func NewStructuredGrid(nx, ny, nz int) *StructuredGrid {
	return &StructuredGrid{
		NX: nx, NY: ny, NZ: nz,
		Spacing: vec.Splat(1),
	}
}

// Kind implements Dataset.
func (g *StructuredGrid) Kind() Kind { return KindStructuredGrid }

// Count implements Dataset; it returns the vertex count.
func (g *StructuredGrid) Count() int { return g.NX * g.NY * g.NZ }

// Cells returns the cell count, (NX-1)(NY-1)(NZ-1), which is what
// geometry extraction iterates over.
func (g *StructuredGrid) Cells() int {
	cx, cy, cz := g.NX-1, g.NY-1, g.NZ-1
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cz < 0 {
		cz = 0
	}
	return cx * cy * cz
}

// Bytes implements Dataset.
func (g *StructuredGrid) Bytes() int64 {
	b := int64(0)
	for _, f := range g.Fields {
		b += int64(len(f.Values)) * 4
	}
	return b
}

// Bounds implements Dataset.
func (g *StructuredGrid) Bounds() vec.AABB {
	far := g.Origin.Add(vec.V3{
		X: float64(g.NX-1) * g.Spacing.X,
		Y: float64(g.NY-1) * g.Spacing.Y,
		Z: float64(g.NZ-1) * g.Spacing.Z,
	})
	return vec.NewAABB(g.Origin, far)
}

// Index returns the linear index of vertex (i, j, k).
func (g *StructuredGrid) Index(i, j, k int) int { return i + g.NX*(j+g.NY*k) }

// VertexPos returns the world position of vertex (i, j, k).
func (g *StructuredGrid) VertexPos(i, j, k int) vec.V3 {
	return vec.V3{
		X: g.Origin.X + float64(i)*g.Spacing.X,
		Y: g.Origin.Y + float64(j)*g.Spacing.Y,
		Z: g.Origin.Z + float64(k)*g.Spacing.Z,
	}
}

// Field returns the named field, or ErrFieldMissing.
func (g *StructuredGrid) Field(name string) (*Field, error) {
	for i := range g.Fields {
		if g.Fields[i].Name == name {
			return &g.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrFieldMissing, name)
}

// AddField attaches a named scalar array of length Count().
func (g *StructuredGrid) AddField(name string, values []float32) error {
	if len(values) != g.Count() {
		return fmt.Errorf("data: field %q has %d values for %d vertices", name, len(values), g.Count())
	}
	g.Fields = append(g.Fields, Field{Name: name, Values: values})
	return nil
}

// FillField allocates a field and fills it by evaluating fn at every
// vertex's world position, in x-fastest order.
func (g *StructuredGrid) FillField(name string, fn func(p vec.V3) float32) *Field {
	vals := make([]float32, g.Count())
	idx := 0
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				vals[idx] = fn(g.VertexPos(i, j, k))
				idx++
			}
		}
	}
	g.Fields = append(g.Fields, Field{Name: name, Values: vals})
	return &g.Fields[len(g.Fields)-1]
}

// Sample trilinearly interpolates the field at world position p. Positions
// outside the grid are clamped to the boundary, which is the behaviour
// ray marchers want at volume edges. It returns the interpolated value.
func (g *StructuredGrid) Sample(f *Field, p vec.V3) float32 {
	// Convert world position to continuous vertex coordinates.
	fx := (p.X - g.Origin.X) / g.Spacing.X
	fy := (p.Y - g.Origin.Y) / g.Spacing.Y
	fz := (p.Z - g.Origin.Z) / g.Spacing.Z
	fx = clampF(fx, 0, float64(g.NX-1))
	fy = clampF(fy, 0, float64(g.NY-1))
	fz = clampF(fz, 0, float64(g.NZ-1))

	i0 := int(fx)
	j0 := int(fy)
	k0 := int(fz)
	if i0 > g.NX-2 {
		i0 = g.NX - 2
	}
	if j0 > g.NY-2 {
		j0 = g.NY - 2
	}
	if k0 > g.NZ-2 {
		k0 = g.NZ - 2
	}
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if k0 < 0 {
		k0 = 0
	}
	tx := fx - float64(i0)
	ty := fy - float64(j0)
	tz := fz - float64(k0)

	v := f.Values
	base := g.Index(i0, j0, k0)
	sx, sy := 1, g.NX
	sz := g.NX * g.NY
	c000 := float64(v[base])
	c100 := float64(v[base+sx])
	c010 := float64(v[base+sy])
	c110 := float64(v[base+sx+sy])
	c001 := float64(v[base+sz])
	c101 := float64(v[base+sx+sz])
	c011 := float64(v[base+sy+sz])
	c111 := float64(v[base+sx+sy+sz])

	c00 := c000 + tx*(c100-c000)
	c10 := c010 + tx*(c110-c010)
	c01 := c001 + tx*(c101-c001)
	c11 := c011 + tx*(c111-c011)
	c0 := c00 + ty*(c10-c00)
	c1 := c01 + ty*(c11-c01)
	return float32(c0 + tz*(c1-c0))
}

// Gradient estimates the field gradient at world position p by central
// differences of Sample, used for isosurface shading normals.
func (g *StructuredGrid) Gradient(f *Field, p vec.V3) vec.V3 {
	hx := g.Spacing.X
	hy := g.Spacing.Y
	hz := g.Spacing.Z
	dx := float64(g.Sample(f, p.Add(vec.V3{X: hx}))) - float64(g.Sample(f, p.Sub(vec.V3{X: hx})))
	dy := float64(g.Sample(f, p.Add(vec.V3{Y: hy}))) - float64(g.Sample(f, p.Sub(vec.V3{Y: hy})))
	dz := float64(g.Sample(f, p.Add(vec.V3{Z: hz}))) - float64(g.Sample(f, p.Sub(vec.V3{Z: hz})))
	return vec.V3{X: dx / (2 * hx), Y: dy / (2 * hy), Z: dz / (2 * hz)}
}

// Partition implements Dataset. The grid is split into n slabs along its
// longest axis. Adjacent slabs share one vertex plane so that cell-based
// algorithms (marching cubes, slicing) see no gaps at slab boundaries —
// the same ghost-layer convention parallel VTK uses.
func (g *StructuredGrid) Partition(n int) []Dataset {
	if n <= 1 {
		return []Dataset{g}
	}
	axis := g.Bounds().LongestAxis()
	dims := [3]int{g.NX, g.NY, g.NZ}
	cells := dims[axis] - 1
	if cells < 1 {
		return []Dataset{g}
	}
	if n > cells {
		n = cells
	}
	pieces := make([]Dataset, 0, n)
	for k := 0; k < n; k++ {
		lo := k * cells / n
		hi := (k + 1) * cells / n
		pieces = append(pieces, g.subgrid(axis, lo, hi))
	}
	return pieces
}

// subgrid copies the vertex range [lo, hi] (inclusive of hi as the shared
// plane) along the given axis into a fresh grid.
func (g *StructuredGrid) subgrid(axis, lo, hi int) *StructuredGrid {
	dims := [3]int{g.NX, g.NY, g.NZ}
	newDims := dims
	newDims[axis] = hi - lo + 1
	out := NewStructuredGrid(newDims[0], newDims[1], newDims[2])
	out.Spacing = g.Spacing
	out.Origin = g.Origin.Add(vec.V3{
		X: g.Spacing.X * float64(lo*boolToInt(axis == 0)),
		Y: g.Spacing.Y * float64(lo*boolToInt(axis == 1)),
		Z: g.Spacing.Z * float64(lo*boolToInt(axis == 2)),
	})
	for _, f := range g.Fields {
		vals := make([]float32, out.Count())
		idx := 0
		for k := 0; k < out.NZ; k++ {
			for j := 0; j < out.NY; j++ {
				for i := 0; i < out.NX; i++ {
					si, sj, sk := i, j, k
					switch axis {
					case 0:
						si += lo
					case 1:
						sj += lo
					default:
						sk += lo
					}
					vals[idx] = f.Values[g.Index(si, sj, sk)]
					idx++
				}
			}
		}
		out.Fields = append(out.Fields, Field{Name: f.Name, Values: vals})
	}
	return out
}

// Downsample returns a grid with every stride-th vertex along each axis,
// the spatial-sampling operation ETH applies to volumes (§IV-B). The
// spacing grows by the stride so world bounds are approximately
// preserved. stride must be >= 1.
func (g *StructuredGrid) Downsample(stride int) *StructuredGrid {
	if stride <= 1 {
		return g
	}
	nx := (g.NX + stride - 1) / stride
	ny := (g.NY + stride - 1) / stride
	nz := (g.NZ + stride - 1) / stride
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	if nz < 2 {
		nz = 2
	}
	out := NewStructuredGrid(nx, ny, nz)
	out.Origin = g.Origin
	out.Spacing = g.Spacing.Scale(float64(stride))
	for _, f := range g.Fields {
		vals := make([]float32, out.Count())
		idx := 0
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					si := minInt(i*stride, g.NX-1)
					sj := minInt(j*stride, g.NY-1)
					sk := minInt(k*stride, g.NZ-1)
					vals[idx] = f.Values[g.Index(si, sj, sk)]
					idx++
				}
			}
		}
		out.Fields = append(out.Fields, Field{Name: f.Name, Values: vals})
	}
	return out
}

func clampF(x, lo, hi float64) float64 { return math.Min(math.Max(x, lo), hi) }

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
