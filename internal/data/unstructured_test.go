package data

import (
	"math"
	"testing"

	"github.com/ascr-ecx/eth/internal/vec"
)

func tetTestGrid() *UnstructuredGrid {
	g := NewStructuredGrid(6, 5, 4)
	g.FillField("f", func(p vec.V3) float32 { return float32(p.X + 2*p.Y - p.Z) })
	return Tetrahedralize(g)
}

func TestTetrahedralizeCounts(t *testing.T) {
	g := NewStructuredGrid(4, 3, 3)
	g.FillField("f", func(p vec.V3) float32 { return float32(p.X) })
	u := Tetrahedralize(g)
	if u.Count() != g.Count() {
		t.Errorf("vertices = %d, want %d", u.Count(), g.Count())
	}
	if u.Cells() != g.Cells()*6 {
		t.Errorf("tets = %d, want %d", u.Cells(), g.Cells()*6)
	}
	if u.Kind() != KindUnstructuredGrid {
		t.Errorf("kind = %v", u.Kind())
	}
	if u.Bounds() != g.Bounds() {
		t.Errorf("bounds differ: %+v vs %+v", u.Bounds(), g.Bounds())
	}
	f, err := u.Field("f")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.Field("f")
	for i := range f.Values {
		if f.Values[i] != src.Values[i] {
			t.Fatal("field not carried over")
		}
	}
}

func TestTetrahedralizeVolumePreserved(t *testing.T) {
	// The six tets of each cube must tile it exactly: total tet volume
	// equals the grid volume.
	g := NewStructuredGrid(4, 4, 4)
	g.Spacing = vec.New(0.5, 1, 2)
	u := Tetrahedralize(g)
	total := 0.0
	for i := range u.Tets {
		total += tetVolume(u, i)
	}
	want := g.Bounds().Size().X * g.Bounds().Size().Y * g.Bounds().Size().Z
	if math.Abs(total-want) > 1e-9*want {
		t.Errorf("tet volume sum %v != box volume %v", total, want)
	}
}

func tetVolume(u *UnstructuredGrid, i int) float64 {
	tet := u.Tets[i]
	a := u.Points[tet[1]].Sub(u.Points[tet[0]])
	b := u.Points[tet[2]].Sub(u.Points[tet[0]])
	c := u.Points[tet[3]].Sub(u.Points[tet[0]])
	return math.Abs(a.Cross(b).Dot(c)) / 6
}

func TestUnstructuredFieldManagement(t *testing.T) {
	u := tetTestGrid()
	if err := u.AddField("extra", make([]float32, u.Count())); err != nil {
		t.Fatal(err)
	}
	if err := u.AddField("bad", make([]float32, 3)); err == nil {
		t.Error("wrong-length field accepted")
	}
	if _, err := u.Field("missing"); err == nil {
		t.Error("missing field found")
	}
	if u.Bytes() <= 0 {
		t.Error("no bytes reported")
	}
}

func TestUnstructuredPartition(t *testing.T) {
	u := tetTestGrid()
	for _, n := range []int{1, 2, 3, 5} {
		pieces := u.Partition(n)
		if n == 1 {
			if len(pieces) != 1 || pieces[0] != Dataset(u) {
				t.Fatal("Partition(1) should return self")
			}
			continue
		}
		if len(pieces) != n {
			t.Fatalf("pieces = %d", len(pieces))
		}
		totalTets := 0
		totalVolume := 0.0
		for _, piece := range pieces {
			pu := piece.(*UnstructuredGrid)
			totalTets += pu.Cells()
			for i := range pu.Tets {
				totalVolume += tetVolume(pu, i)
			}
			// Every piece's fields must be self-consistent.
			if f, err := pu.Field("f"); err != nil || len(f.Values) != pu.Count() {
				t.Fatalf("piece field broken: %v", err)
			}
			// All indices in range.
			for _, tet := range pu.Tets {
				for _, v := range tet {
					if v < 0 || int(v) >= pu.Count() {
						t.Fatal("dangling vertex index")
					}
				}
			}
		}
		if totalTets != u.Cells() {
			t.Errorf("partition lost cells: %d of %d", totalTets, u.Cells())
		}
		want := u.Bounds().Size().X * u.Bounds().Size().Y * u.Bounds().Size().Z
		if math.Abs(totalVolume-want) > 1e-9*want {
			t.Errorf("partition volume %v != %v", totalVolume, want)
		}
	}
}

func TestUnstructuredPartitionFieldValuesMatch(t *testing.T) {
	// Field values must follow vertices through the remap: check that the
	// analytic field holds at every piece vertex.
	u := tetTestGrid()
	for _, piece := range u.Partition(3) {
		pu := piece.(*UnstructuredGrid)
		f, _ := pu.Field("f")
		for i, p := range pu.Points {
			want := float32(p.X + 2*p.Y - p.Z)
			if math.Abs(float64(f.Values[i]-want)) > 1e-5 {
				t.Fatalf("vertex %d: field %v, want %v", i, f.Values[i], want)
			}
		}
	}
}

func TestUnstructuredCentroid(t *testing.T) {
	u := &UnstructuredGrid{
		Points: []vec.V3{{}, {X: 1}, {Y: 1}, {Z: 1}},
		Tets:   [][4]int32{{0, 1, 2, 3}},
	}
	want := vec.New(0.25, 0.25, 0.25)
	if got := u.CellCentroid(0); got.Sub(want).Len() > 1e-12 {
		t.Errorf("centroid = %v", got)
	}
}
