package data

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ascr-ecx/eth/internal/vec"
)

// PointCloud is a particle dataset in structure-of-arrays layout, matching
// the HACC payload the paper describes: per-particle ID, position vector,
// and velocity vector, plus any number of derived scalar fields. SoA keeps
// the hot loops (transform-all-points, BVH build) cache friendly.
type PointCloud struct {
	// IDs are the simulation-assigned particle identifiers.
	IDs []int64
	// X, Y, Z are the particle positions.
	X, Y, Z []float32
	// VX, VY, VZ are the particle velocities.
	VX, VY, VZ []float32
	// Fields holds named per-particle scalars (e.g. speed, mass).
	Fields []Field

	// boundsMu guards the lazy bounds cache: a dataset shared across rank
	// proxies is read concurrently (e.g. Partition in every pair).
	boundsMu  sync.Mutex
	bounds    vec.AABB // guarded by boundsMu
	boundsSet bool     // guarded by boundsMu
	gen       uint64   // guarded by boundsMu; bumped on invalidation
}

var _ Dataset = (*PointCloud)(nil)

// NewPointCloud allocates a cloud with capacity for n particles. All
// arrays are allocated; values are zero.
func NewPointCloud(n int) *PointCloud {
	return &PointCloud{
		IDs: make([]int64, n),
		X:   make([]float32, n), Y: make([]float32, n), Z: make([]float32, n),
		VX: make([]float32, n), VY: make([]float32, n), VZ: make([]float32, n),
	}
}

// Kind implements Dataset.
func (p *PointCloud) Kind() Kind { return KindPointCloud }

// Count implements Dataset.
func (p *PointCloud) Count() int { return len(p.X) }

// Bytes implements Dataset.
func (p *PointCloud) Bytes() int64 {
	n := int64(p.Count())
	b := n * (8 + 6*4) // id + 6 float32
	for _, f := range p.Fields {
		b += int64(len(f.Values)) * 4
	}
	return b
}

// Pos returns the position of particle i.
func (p *PointCloud) Pos(i int) vec.V3 {
	return vec.V3{X: float64(p.X[i]), Y: float64(p.Y[i]), Z: float64(p.Z[i])}
}

// Vel returns the velocity of particle i.
func (p *PointCloud) Vel(i int) vec.V3 {
	return vec.V3{X: float64(p.VX[i]), Y: float64(p.VY[i]), Z: float64(p.VZ[i])}
}

// SetPos sets the position of particle i.
func (p *PointCloud) SetPos(i int, v vec.V3) {
	p.X[i], p.Y[i], p.Z[i] = float32(v.X), float32(v.Y), float32(v.Z)
	p.InvalidateBounds()
}

// SetVel sets the velocity of particle i.
func (p *PointCloud) SetVel(i int, v vec.V3) {
	p.VX[i], p.VY[i], p.VZ[i] = float32(v.X), float32(v.Y), float32(v.Z)
}

// Field returns the named field, or ErrFieldMissing.
func (p *PointCloud) Field(name string) (*Field, error) {
	for i := range p.Fields {
		if p.Fields[i].Name == name {
			return &p.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrFieldMissing, name)
}

// AddField attaches a named scalar array. The array length must equal the
// particle count.
func (p *PointCloud) AddField(name string, values []float32) error {
	if len(values) != p.Count() {
		return fmt.Errorf("data: field %q has %d values for %d particles", name, len(values), p.Count())
	}
	p.Fields = append(p.Fields, Field{Name: name, Values: values})
	return nil
}

// Bounds implements Dataset. The box is cached until positions change via
// SetPos; callers that mutate X/Y/Z slices directly should call
// InvalidateBounds.
func (p *PointCloud) Bounds() vec.AABB {
	p.boundsMu.Lock()
	defer p.boundsMu.Unlock()
	if p.boundsSet {
		return p.bounds
	}
	b := vec.EmptyAABB()
	for i := range p.X {
		b = b.Extend(p.Pos(i))
	}
	p.bounds = b
	p.boundsSet = true
	return b
}

// InvalidateBounds drops the cached bounding box and advances the
// cloud's generation.
func (p *PointCloud) InvalidateBounds() {
	p.boundsMu.Lock()
	p.boundsSet = false
	p.gen++
	p.boundsMu.Unlock()
}

// Generation distinguishes successive contents of one PointCloud object:
// it advances every time InvalidateBounds reports a mutation. Caches
// keyed by dataset pointer (e.g. a renderer's BVH) must also compare
// generations, because buffer-reusing decoders rewrite the same object in
// place for every step.
func (p *PointCloud) Generation() uint64 {
	p.boundsMu.Lock()
	defer p.boundsMu.Unlock()
	return p.gen
}

// Select returns a new cloud containing the particles at the given
// indices, with all fields carried over. Indices may repeat.
func (p *PointCloud) Select(indices []int) *PointCloud {
	out := NewPointCloud(len(indices))
	for j, i := range indices {
		out.IDs[j] = p.IDs[i]
		out.X[j], out.Y[j], out.Z[j] = p.X[i], p.Y[i], p.Z[i]
		out.VX[j], out.VY[j], out.VZ[j] = p.VX[i], p.VY[i], p.VZ[i]
	}
	for _, f := range p.Fields {
		vals := make([]float32, len(indices))
		for j, i := range indices {
			vals[j] = f.Values[i]
		}
		out.Fields = append(out.Fields, Field{Name: f.Name, Values: vals})
	}
	return out
}

// Slice returns a new cloud referencing particles [lo, hi). The returned
// cloud shares backing arrays with p; treat it as read-only.
func (p *PointCloud) Slice(lo, hi int) *PointCloud {
	out := &PointCloud{
		IDs: p.IDs[lo:hi],
		X:   p.X[lo:hi], Y: p.Y[lo:hi], Z: p.Z[lo:hi],
		VX: p.VX[lo:hi], VY: p.VY[lo:hi], VZ: p.VZ[lo:hi],
	}
	for _, f := range p.Fields {
		out.Fields = append(out.Fields, Field{Name: f.Name, Values: f.Values[lo:hi]})
	}
	return out
}

// Partition implements Dataset. Particles are split into n spatial slabs
// along the longest axis of the bounding box, mirroring how a simulation
// decomposes its domain across ranks. Each returned piece is a fresh
// PointCloud (no sharing), so pieces can be shipped independently.
func (p *PointCloud) Partition(n int) []Dataset {
	if n <= 1 {
		return []Dataset{p}
	}
	axis := p.Bounds().LongestAxis()
	coord := [3][]float32{p.X, p.Y, p.Z}[axis]

	// Sort particle indices by the split coordinate and cut into equal
	// count slabs. Equal-count (not equal-width) matches the load balance
	// a production particle code maintains.
	idx := make([]int, p.Count())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return coord[idx[a]] < coord[idx[b]] })

	pieces := make([]Dataset, n)
	for k := 0; k < n; k++ {
		lo := k * len(idx) / n
		hi := (k + 1) * len(idx) / n
		pieces[k] = p.Select(idx[lo:hi])
	}
	return pieces
}

// SpeedField computes |velocity| per particle and attaches it as field
// "speed", returning the values. This is the scalar the paper's HACC
// renderings color by.
func (p *PointCloud) SpeedField() []float32 {
	vals := make([]float32, p.Count())
	for i := range vals {
		v := p.Vel(i)
		vals[i] = float32(v.Len())
	}
	// Replace existing speed field if present.
	for i := range p.Fields {
		if p.Fields[i].Name == "speed" {
			p.Fields[i].Values = vals
			return vals
		}
	}
	p.Fields = append(p.Fields, Field{Name: "speed", Values: vals})
	return vals
}
