package data

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/vec"
)

func linearGrid(nx, ny, nz int) *StructuredGrid {
	g := NewStructuredGrid(nx, ny, nz)
	g.FillField("f", func(p vec.V3) float32 {
		return float32(2*p.X + 3*p.Y - p.Z + 1)
	})
	return g
}

func TestGridBasics(t *testing.T) {
	g := NewStructuredGrid(3, 4, 5)
	if g.Kind() != KindStructuredGrid {
		t.Errorf("kind = %v", g.Kind())
	}
	if g.Count() != 60 {
		t.Errorf("count = %d", g.Count())
	}
	if g.Cells() != 2*3*4 {
		t.Errorf("cells = %d", g.Cells())
	}
	if g.Index(2, 3, 4) != 2+3*(3+4*4) {
		t.Errorf("index = %d", g.Index(2, 3, 4))
	}
	b := g.Bounds()
	if b.Min != (vec.V3{}) || b.Max != vec.New(2, 3, 4) {
		t.Errorf("bounds = %+v", b)
	}
	g.Origin = vec.New(1, 1, 1)
	g.Spacing = vec.New(0.5, 2, 1)
	if got := g.VertexPos(2, 1, 0); got != vec.New(2, 3, 1) {
		t.Errorf("vertex pos = %v", got)
	}
}

func TestGridFieldManagement(t *testing.T) {
	g := NewStructuredGrid(2, 2, 2)
	if err := g.AddField("t", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddField("bad", make([]float32, 7)); err == nil {
		t.Error("accepted wrong-length field")
	}
	if _, err := g.Field("t"); err != nil {
		t.Error(err)
	}
	if _, err := g.Field("missing"); err == nil {
		t.Error("missing field did not error")
	}
}

func TestTrilinearSampleReproducesLinearField(t *testing.T) {
	// Trilinear interpolation is exact for fields linear in x, y, z.
	g := linearGrid(5, 6, 7)
	f, _ := g.Field("f")
	pts := []vec.V3{
		{X: 0.5, Y: 0.5, Z: 0.5},
		{X: 3.99, Y: 4.99, Z: 5.99},
		{X: 0, Y: 0, Z: 0},
		{X: 4, Y: 5, Z: 6},
		{X: 1.25, Y: 2.5, Z: 3.75},
	}
	for _, p := range pts {
		want := 2*p.X + 3*p.Y - p.Z + 1
		got := float64(g.Sample(f, p))
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("Sample(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestSampleClampsOutside(t *testing.T) {
	g := linearGrid(3, 3, 3)
	f, _ := g.Field("f")
	inside := g.Sample(f, vec.New(0, 0, 0))
	outside := g.Sample(f, vec.New(-5, -5, -5))
	if inside != outside {
		t.Errorf("clamp failed: inside %v outside %v", inside, outside)
	}
}

func TestGradientOfLinearField(t *testing.T) {
	g := linearGrid(8, 8, 8)
	f, _ := g.Field("f")
	grad := g.Gradient(f, vec.New(3.5, 3.5, 3.5))
	want := vec.New(2, 3, -1)
	if grad.Sub(want).Len() > 1e-3 {
		t.Errorf("gradient = %v, want %v", grad, want)
	}
}

func TestGridPartitionSharesBoundaryPlane(t *testing.T) {
	g := linearGrid(9, 4, 4) // longest axis = X with 8 cells
	pieces := g.Partition(2)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	a := pieces[0].(*StructuredGrid)
	b := pieces[1].(*StructuredGrid)
	// 8 cells split 4+4 -> 5 vertices each with shared plane.
	if a.NX != 5 || b.NX != 5 {
		t.Fatalf("NX = %d, %d", a.NX, b.NX)
	}
	// Shared plane: last X-plane of a equals first X-plane of b.
	fa, _ := a.Field("f")
	fb, _ := b.Field("f")
	for k := 0; k < a.NZ; k++ {
		for j := 0; j < a.NY; j++ {
			va := fa.Values[a.Index(a.NX-1, j, k)]
			vb := fb.Values[b.Index(0, j, k)]
			if va != vb {
				t.Fatalf("boundary mismatch at j=%d k=%d: %v vs %v", j, k, va, vb)
			}
		}
	}
	// World bounds: union must equal the original.
	u := a.Bounds().Union(b.Bounds())
	if u != g.Bounds() {
		t.Errorf("union bounds %+v != original %+v", u, g.Bounds())
	}
}

func TestGridPartitionClampsPieceCount(t *testing.T) {
	g := linearGrid(3, 2, 2) // only 2 cells along X
	pieces := g.Partition(10)
	if len(pieces) != 2 {
		t.Errorf("pieces = %d, want clamp to 2", len(pieces))
	}
	if len(linearGrid(2, 2, 2).Partition(5)) != 1 {
		t.Error("single-cell grid should not split")
	}
	if got := g.Partition(1); len(got) != 1 || got[0] != Dataset(g) {
		t.Error("Partition(1) should return the grid itself")
	}
}

// Property: sampling at any vertex position returns the stored value.
func TestSampleAtVerticesProperty(t *testing.T) {
	g := linearGrid(4, 5, 6)
	f, _ := g.Field("f")
	fn := func(iRaw, jRaw, kRaw uint8) bool {
		i := int(iRaw) % g.NX
		j := int(jRaw) % g.NY
		k := int(kRaw) % g.NZ
		got := g.Sample(f, g.VertexPos(i, j, k))
		want := f.Values[g.Index(i, j, k)]
		return math.Abs(float64(got-want)) < 1e-5
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	g := linearGrid(9, 9, 9)
	d := g.Downsample(2)
	if d.NX != 5 || d.NY != 5 || d.NZ != 5 {
		t.Fatalf("dims = %d %d %d", d.NX, d.NY, d.NZ)
	}
	if d.Spacing != vec.Splat(2) {
		t.Errorf("spacing = %v", d.Spacing)
	}
	f, _ := d.Field("f")
	src, _ := g.Field("f")
	// Vertex (1,1,1) of the downsampled grid is (2,2,2) of the source.
	if f.Values[d.Index(1, 1, 1)] != src.Values[g.Index(2, 2, 2)] {
		t.Error("downsampled values misaligned")
	}
	// Stride 1 returns the same grid.
	if g.Downsample(1) != g {
		t.Error("stride 1 should be identity")
	}
	// Bytes accounts fields.
	if g.Bytes() != int64(g.Count()*4) {
		t.Errorf("bytes = %d", g.Bytes())
	}
}

func TestDownsampleKeepsMinimumDims(t *testing.T) {
	g := linearGrid(3, 3, 3)
	d := g.Downsample(10)
	if d.NX < 2 || d.NY < 2 || d.NZ < 2 {
		t.Errorf("downsample collapsed grid: %d %d %d", d.NX, d.NY, d.NZ)
	}
}
