// Package data defines ETH's data model: the typed, partitionable objects
// that flow across the simulation-proxy / visualization-proxy interface.
// It is the stand-in for the VTK data objects the paper's implementation
// exchanges (§III-B): a PointCloud for particle codes like HACC and a
// StructuredGrid for volume codes like xRAGE. Both carry named scalar
// fields, report world-space bounds, and can be split into spatial pieces
// for rank-parallel execution.
package data

import (
	"errors"
	"fmt"

	"github.com/ascr-ecx/eth/internal/vec"
)

// Kind discriminates the concrete dataset types carried across the in-situ
// interface.
type Kind uint8

const (
	// KindPointCloud identifies a particle dataset (HACC-like).
	KindPointCloud Kind = iota + 1
	// KindStructuredGrid identifies a regular volume dataset (xRAGE-like).
	KindStructuredGrid
	// KindUnstructuredGrid identifies a tetrahedral mesh — the paper's
	// §VII extension domain.
	KindUnstructuredGrid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPointCloud:
		return "pointcloud"
	case KindStructuredGrid:
		return "structuredgrid"
	case KindUnstructuredGrid:
		return "unstructuredgrid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Dataset is the interface every data object implements. It is
// deliberately small: the harness only needs identity, size, bounds, and
// spatial partitioning; renderers type-switch to the concrete type.
type Dataset interface {
	// Kind returns the concrete type tag.
	Kind() Kind
	// Count returns the number of primitive elements (points or cells).
	Count() int
	// Bounds returns the world-space bounding box of the dataset.
	Bounds() vec.AABB
	// Bytes returns the approximate in-memory payload size, used by the
	// transport layer and the cluster model to account data movement.
	Bytes() int64
	// Partition splits the dataset into n spatial pieces whose union is
	// the dataset. Pieces may be empty when n exceeds the data's extent.
	Partition(n int) []Dataset
}

// ErrFieldMissing is returned when a named field is not present.
var ErrFieldMissing = errors.New("data: field not found")

// Field is a named scalar array attached to a dataset, one value per
// point (PointCloud) or per vertex (StructuredGrid).
type Field struct {
	Name   string
	Values []float32
}

// MinMax returns the range of the field values. It returns (0, 0) for an
// empty field.
func (f *Field) MinMax() (lo, hi float32) {
	if len(f.Values) == 0 {
		return 0, 0
	}
	lo, hi = f.Values[0], f.Values[0]
	for _, v := range f.Values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
