package data

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ascr-ecx/eth/internal/vec"
)

// UnstructuredGrid is a tetrahedral mesh with per-vertex scalar fields —
// the "other domains such as unstructured grid" extension the paper's
// discussion names as the first thing a user would add (§VII). Vertices
// are shared between cells; Tets holds four vertex indices per cell.
type UnstructuredGrid struct {
	// Points are the vertex positions.
	Points []vec.V3
	// Tets are the tetrahedral cells, four vertex indices each.
	Tets [][4]int32
	// Fields holds named per-vertex scalars.
	Fields []Field

	// boundsMu guards the lazy bounds cache: a dataset shared across rank
	// proxies is read concurrently (e.g. Partition in every pair).
	boundsMu  sync.Mutex
	bounds    vec.AABB // guarded by boundsMu
	boundsSet bool     // guarded by boundsMu
}

var _ Dataset = (*UnstructuredGrid)(nil)

// Kind implements Dataset.
func (u *UnstructuredGrid) Kind() Kind { return KindUnstructuredGrid }

// Count implements Dataset; it returns the vertex count.
func (u *UnstructuredGrid) Count() int { return len(u.Points) }

// Cells returns the tetrahedron count.
func (u *UnstructuredGrid) Cells() int { return len(u.Tets) }

// Bytes implements Dataset.
func (u *UnstructuredGrid) Bytes() int64 {
	b := int64(len(u.Points))*24 + int64(len(u.Tets))*16
	for _, f := range u.Fields {
		b += int64(len(f.Values)) * 4
	}
	return b
}

// Bounds implements Dataset.
func (u *UnstructuredGrid) Bounds() vec.AABB {
	u.boundsMu.Lock()
	defer u.boundsMu.Unlock()
	if u.boundsSet {
		return u.bounds
	}
	b := vec.EmptyAABB()
	for _, p := range u.Points {
		b = b.Extend(p)
	}
	u.bounds = b
	u.boundsSet = true
	return b
}

// InvalidateBounds drops the cached bounding box after direct mutation.
func (u *UnstructuredGrid) InvalidateBounds() {
	u.boundsMu.Lock()
	u.boundsSet = false
	u.boundsMu.Unlock()
}

// Field returns the named field, or ErrFieldMissing.
func (u *UnstructuredGrid) Field(name string) (*Field, error) {
	for i := range u.Fields {
		if u.Fields[i].Name == name {
			return &u.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrFieldMissing, name)
}

// AddField attaches a named per-vertex scalar array.
func (u *UnstructuredGrid) AddField(name string, values []float32) error {
	if len(values) != u.Count() {
		return fmt.Errorf("data: field %q has %d values for %d vertices", name, len(values), u.Count())
	}
	u.Fields = append(u.Fields, Field{Name: name, Values: values})
	return nil
}

// CellCentroid returns the centroid of tetrahedron t.
func (u *UnstructuredGrid) CellCentroid(t int) vec.V3 {
	tet := u.Tets[t]
	return u.Points[tet[0]].
		Add(u.Points[tet[1]]).
		Add(u.Points[tet[2]]).
		Add(u.Points[tet[3]]).Scale(0.25)
}

// Partition implements Dataset: cells are sorted by centroid along the
// longest bounds axis and cut into equal-count slabs; each piece gets the
// vertices its cells reference (re-indexed), duplicating shared boundary
// vertices — the standard element-partitioning of unstructured meshes.
func (u *UnstructuredGrid) Partition(n int) []Dataset {
	if n <= 1 || u.Cells() == 0 {
		return []Dataset{u}
	}
	if n > u.Cells() {
		n = u.Cells()
	}
	axis := u.Bounds().LongestAxis()
	order := make([]int, u.Cells())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return u.CellCentroid(order[a]).Axis(axis) < u.CellCentroid(order[b]).Axis(axis)
	})
	pieces := make([]Dataset, 0, n)
	for k := 0; k < n; k++ {
		lo := k * len(order) / n
		hi := (k + 1) * len(order) / n
		pieces = append(pieces, u.extract(order[lo:hi]))
	}
	return pieces
}

// extract builds a self-contained sub-mesh from the given cell indices.
func (u *UnstructuredGrid) extract(cells []int) *UnstructuredGrid {
	remap := make(map[int32]int32)
	out := &UnstructuredGrid{}
	for _, c := range cells {
		var tet [4]int32
		for v := 0; v < 4; v++ {
			old := u.Tets[c][v]
			nw, ok := remap[old]
			if !ok {
				nw = int32(len(out.Points))
				remap[old] = nw
				out.Points = append(out.Points, u.Points[old])
			}
			tet[v] = nw
		}
		out.Tets = append(out.Tets, tet)
	}
	for _, f := range u.Fields {
		vals := make([]float32, len(out.Points))
		for old, nw := range remap {
			vals[nw] = f.Values[old]
		}
		out.Fields = append(out.Fields, Field{Name: f.Name, Values: vals})
	}
	return out
}

// Tetrahedralize converts a structured grid to an unstructured mesh by
// splitting each hexahedral cell into six tetrahedra (the same
// decomposition the contouring filters use), carrying all fields over.
// It is the standard way to obtain unstructured test data from the
// structured generators.
func Tetrahedralize(g *StructuredGrid) *UnstructuredGrid {
	u := &UnstructuredGrid{
		Points: make([]vec.V3, g.Count()),
	}
	idx := 0
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				u.Points[idx] = g.VertexPos(i, j, k)
				idx++
			}
		}
	}
	// Six-tet decomposition of each cube around the 0-7 diagonal
	// (corner numbering: bit0=+x, bit1=+y, bit2=+z).
	tets := [6][4]int{
		{0, 5, 1, 3}, {0, 5, 3, 7}, {0, 5, 7, 4},
		{0, 3, 2, 7}, {0, 2, 6, 7}, {0, 6, 4, 7},
	}
	corner := func(i, j, k, c int) int32 {
		return int32(g.Index(i+(c&1), j+(c>>1&1), k+(c>>2&1)))
	}
	for k := 0; k < g.NZ-1; k++ {
		for j := 0; j < g.NY-1; j++ {
			for i := 0; i < g.NX-1; i++ {
				for _, t := range tets {
					u.Tets = append(u.Tets, [4]int32{
						corner(i, j, k, t[0]),
						corner(i, j, k, t[1]),
						corner(i, j, k, t[2]),
						corner(i, j, k, t[3]),
					})
				}
			}
		}
	}
	for _, f := range g.Fields {
		vals := make([]float32, len(f.Values))
		copy(vals, f.Values)
		u.Fields = append(u.Fields, Field{Name: f.Name, Values: vals})
	}
	return u
}
