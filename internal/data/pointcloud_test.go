package data

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/vec"
)

func randomCloud(n int, seed int64) *PointCloud {
	rng := rand.New(rand.NewSource(seed))
	p := NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i)
		p.SetPos(i, vec.New(rng.Float64()*10, rng.Float64()*20, rng.Float64()*5))
		p.SetVel(i, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	return p
}

func TestPointCloudBasics(t *testing.T) {
	p := NewPointCloud(3)
	if p.Kind() != KindPointCloud {
		t.Errorf("kind = %v", p.Kind())
	}
	if p.Count() != 3 {
		t.Errorf("count = %d", p.Count())
	}
	p.SetPos(1, vec.New(1, 2, 3))
	if got := p.Pos(1); got != vec.New(1, 2, 3) {
		t.Errorf("pos = %v", got)
	}
	p.SetVel(2, vec.New(3, 4, 0))
	if got := p.Vel(2); got != vec.New(3, 4, 0) {
		t.Errorf("vel = %v", got)
	}
	if p.Bytes() != 3*(8+24) {
		t.Errorf("bytes = %d", p.Bytes())
	}
}

func TestPointCloudBoundsCaching(t *testing.T) {
	p := NewPointCloud(2)
	p.SetPos(0, vec.New(0, 0, 0))
	p.SetPos(1, vec.New(1, 2, 3))
	b := p.Bounds()
	if b.Min != vec.New(0, 0, 0) || b.Max != vec.New(1, 2, 3) {
		t.Fatalf("bounds = %+v", b)
	}
	// SetPos invalidates the cache.
	p.SetPos(1, vec.New(5, 5, 5))
	if got := p.Bounds().Max; got != vec.New(5, 5, 5) {
		t.Errorf("bounds after SetPos = %v", got)
	}
	// Direct mutation requires explicit invalidation.
	p.X[0] = -10
	p.InvalidateBounds()
	if got := p.Bounds().Min.X; got != -10 {
		t.Errorf("bounds after InvalidateBounds = %v", got)
	}
}

func TestPointCloudFields(t *testing.T) {
	p := NewPointCloud(4)
	if err := p.AddField("mass", []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f, err := p.Field("mass")
	if err != nil {
		t.Fatal(err)
	}
	if f.Values[2] != 3 {
		t.Errorf("field value = %v", f.Values[2])
	}
	if _, err := p.Field("nope"); !errors.Is(err, ErrFieldMissing) {
		t.Errorf("missing field err = %v", err)
	}
	if err := p.AddField("short", []float32{1}); err == nil {
		t.Error("AddField accepted wrong length")
	}
	lo, hi := f.MinMax()
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	var empty Field
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Errorf("empty MinMax = %v %v", lo, hi)
	}
}

func TestPointCloudSelect(t *testing.T) {
	p := randomCloud(10, 1)
	if err := p.AddField("m", []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	sel := p.Select([]int{9, 0, 5})
	if sel.Count() != 3 {
		t.Fatalf("count = %d", sel.Count())
	}
	if sel.IDs[0] != 9 || sel.IDs[1] != 0 || sel.IDs[2] != 5 {
		t.Errorf("IDs = %v", sel.IDs)
	}
	f, _ := sel.Field("m")
	if f.Values[0] != 9 || f.Values[2] != 5 {
		t.Errorf("selected field = %v", f.Values)
	}
	if sel.Pos(1) != p.Pos(0) {
		t.Errorf("selected pos mismatch")
	}
}

func TestPointCloudSlice(t *testing.T) {
	p := randomCloud(10, 2)
	s := p.Slice(3, 7)
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Pos(0) != p.Pos(3) {
		t.Error("slice misaligned")
	}
}

func TestPointCloudPartitionPreservesParticles(t *testing.T) {
	p := randomCloud(1000, 3)
	for _, n := range []int{1, 2, 3, 7} {
		pieces := p.Partition(n)
		if len(pieces) != n {
			t.Fatalf("Partition(%d) returned %d pieces", n, len(pieces))
		}
		total := 0
		seen := map[int64]bool{}
		for _, piece := range pieces {
			pc := piece.(*PointCloud)
			total += pc.Count()
			for _, id := range pc.IDs {
				if seen[id] {
					t.Fatalf("particle %d in two pieces", id)
				}
				seen[id] = true
			}
		}
		if total != p.Count() {
			t.Fatalf("Partition(%d): %d particles, want %d", n, total, p.Count())
		}
	}
}

func TestPointCloudPartitionIsSpatial(t *testing.T) {
	// Longest axis is Y (range 20). Every slab's Y range must not overlap
	// the next slab's except possibly at boundaries.
	p := randomCloud(500, 4)
	pieces := p.Partition(4)
	prevMax := -1e30
	for _, piece := range pieces {
		pc := piece.(*PointCloud)
		if pc.Count() == 0 {
			continue
		}
		b := pc.Bounds()
		if b.Min.Y < prevMax-1e-6 {
			t.Fatalf("slab min %v < previous slab max %v", b.Min.Y, prevMax)
		}
		prevMax = b.Max.Y
	}
}

func TestSpeedField(t *testing.T) {
	p := NewPointCloud(2)
	p.SetVel(0, vec.New(3, 4, 0))
	p.SetVel(1, vec.New(0, 0, 2))
	vals := p.SpeedField()
	if vals[0] != 5 || vals[1] != 2 {
		t.Errorf("speeds = %v", vals)
	}
	// Recompute replaces, not duplicates.
	p.SetVel(0, vec.New(6, 8, 0))
	vals = p.SpeedField()
	if vals[0] != 10 {
		t.Errorf("recomputed speed = %v", vals[0])
	}
	count := 0
	for _, f := range p.Fields {
		if f.Name == "speed" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("speed fields = %d, want 1", count)
	}
}

// Property: partition of any cloud into any k preserves the multiset of IDs.
func TestPartitionPreservesIDsProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%8 + 1
		p := randomCloud(n, seed)
		pieces := p.Partition(k)
		got := map[int64]int{}
		for _, piece := range pieces {
			for _, id := range piece.(*PointCloud).IDs {
				got[id]++
			}
		}
		if len(got) != n {
			return false
		}
		for _, c := range got {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindPointCloud.String() != "pointcloud" {
		t.Error(KindPointCloud.String())
	}
	if KindStructuredGrid.String() != "structuredgrid" {
		t.Error(KindStructuredGrid.String())
	}
	if Kind(99).String() != "kind(99)" {
		t.Error(Kind(99).String())
	}
}
