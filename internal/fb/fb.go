// Package fb provides the software framebuffer the ETH renderers draw
// into: an RGB color buffer with a float depth buffer, atomic-free
// single-writer operations plus a locked variant for concurrent
// rasterization, PNG export, and the image-difference metrics (RMSE) used
// by the accuracy/energy trade-off experiments (Table II).
package fb

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"github.com/ascr-ecx/eth/internal/vec"
)

// Frame is a W x H framebuffer with per-pixel RGB (float64, linear [0,1])
// and depth. Depth follows the camera convention: smaller values are
// closer; pixels start at +Inf depth and background color.
type Frame struct {
	W, H  int
	Color []vec.V3  // len W*H, linear RGB
	Depth []float64 // len W*H
}

// New returns a frame cleared to black with infinite depth.
func New(w, h int) *Frame {
	f := &Frame{
		W: w, H: h,
		Color: make([]vec.V3, w*h),
		Depth: make([]float64, w*h),
	}
	f.Clear(vec.V3{})
	return f
}

// Clear resets every pixel to bg color and infinite depth.
func (f *Frame) Clear(bg vec.V3) {
	for i := range f.Color {
		f.Color[i] = bg
		f.Depth[i] = math.Inf(1)
	}
}

// CopyFrom overwrites f's pixels with src's — a straight memmove of both
// planes, the cheap way to seed a working frame from an input (a full
// MergeInto onto a cleared frame walks every pixel through a depth
// compare for the same result). Frames must be the same size.
func (f *Frame) CopyFrom(src *Frame) error {
	if f.W != src.W || f.H != src.H {
		return fmt.Errorf("fb: frame sizes differ (%dx%d vs %dx%d)", f.W, f.H, src.W, src.H)
	}
	copy(f.Color, src.Color)
	copy(f.Depth, src.Depth)
	return nil
}

// Index returns the linear index of pixel (x, y); no bounds check.
func (f *Frame) Index(x, y int) int { return y*f.W + x }

// In reports whether (x, y) lies inside the frame.
func (f *Frame) In(x, y int) bool { return x >= 0 && x < f.W && y >= 0 && y < f.H }

// Set writes color c at (x, y) unconditionally (no depth test).
func (f *Frame) Set(x, y int, c vec.V3) {
	if !f.In(x, y) {
		return
	}
	f.Color[f.Index(x, y)] = c
}

// DepthSet writes color c at depth z if z passes the depth test
// (closer than the stored depth). Out-of-bounds writes are ignored.
// Not safe for concurrent writers to the same pixel; renderers
// partition the frame by scanline to avoid races.
func (f *Frame) DepthSet(x, y int, z float64, c vec.V3) {
	if !f.In(x, y) {
		return
	}
	i := f.Index(x, y)
	if z < f.Depth[i] {
		f.Depth[i] = z
		f.Color[i] = c
	}
}

// At returns the color of pixel (x, y), or black outside the frame.
func (f *Frame) At(x, y int) vec.V3 {
	if !f.In(x, y) {
		return vec.V3{}
	}
	return f.Color[f.Index(x, y)]
}

// ToImage converts the frame to an 8-bit sRGB image (gamma 2.2).
func (f *Frame) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c := f.Color[f.Index(x, y)].Clamp(0, 1)
			img.SetRGBA(x, y, color.RGBA{
				R: toSRGB(c.X),
				G: toSRGB(c.Y),
				B: toSRGB(c.Z),
				A: 255,
			})
		}
	}
	return img
}

func toSRGB(lin float64) uint8 {
	v := math.Pow(lin, 1/2.2) * 255
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v + 0.5)
}

// WritePNG encodes the frame as PNG to w.
func (f *Frame) WritePNG(w io.Writer) error {
	return png.Encode(w, f.ToImage())
}

// SavePNG writes the frame to the named file.
func (f *Frame) SavePNG(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WritePNG(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// RMSE computes the root-mean-square error between two frames over all
// channels, the metric Table II of the paper reports. Colors are compared
// in linear space, clamped to [0,1], so the result lies in [0, sqrt(3)].
func RMSE(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("fb: frame sizes differ (%dx%d vs %dx%d)", a.W, a.H, b.W, b.H)
	}
	if len(a.Color) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a.Color {
		ca := a.Color[i].Clamp(0, 1)
		cb := b.Color[i].Clamp(0, 1)
		d := ca.Sub(cb)
		sum += d.Dot(d)
	}
	return math.Sqrt(sum / float64(len(a.Color))), nil
}

// MAE computes the mean absolute error between two frames (average of
// per-channel absolute differences), a companion metric to RMSE.
func MAE(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("fb: frame sizes differ (%dx%d vs %dx%d)", a.W, a.H, b.W, b.H)
	}
	if len(a.Color) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a.Color {
		ca := a.Color[i].Clamp(0, 1)
		cb := b.Color[i].Clamp(0, 1)
		sum += math.Abs(ca.X-cb.X) + math.Abs(ca.Y-cb.Y) + math.Abs(ca.Z-cb.Z)
	}
	return sum / float64(3*len(a.Color)), nil
}

// CoveredPixels returns the number of pixels with finite depth (i.e.
// written by some primitive), a cheap sanity metric for renders.
func (f *Frame) CoveredPixels() int {
	n := 0
	for _, d := range f.Depth {
		if !math.IsInf(d, 1) {
			n++
		}
	}
	return n
}
