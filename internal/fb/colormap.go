package fb

import "github.com/ascr-ecx/eth/internal/vec"

// Colormap maps a scalar in [0, 1] to a linear RGB color. Values outside
// [0, 1] are clamped. ETH uses colormaps to color particles by speed and
// volumes by temperature, matching the paper's rendering tasks.
type Colormap struct {
	name  string
	stops []vec.V3 // equally spaced control colors
}

// Name returns the colormap's registered name.
func (c *Colormap) Name() string { return c.name }

// Lookup returns the interpolated color for t in [0, 1].
func (c *Colormap) Lookup(t float64) vec.V3 {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	n := len(c.stops)
	if n == 0 {
		return vec.V3{}
	}
	if n == 1 {
		return c.stops[0]
	}
	f := t * float64(n-1)
	i := int(f)
	if i >= n-1 {
		return c.stops[n-1]
	}
	return c.stops[i].Lerp(c.stops[i+1], f-float64(i))
}

// Viridis is a perceptually uniform colormap (coarse control points of
// matplotlib's viridis), the default for scalar fields.
var Viridis = &Colormap{
	name: "viridis",
	stops: []vec.V3{
		{X: 0.267, Y: 0.005, Z: 0.329},
		{X: 0.283, Y: 0.141, Z: 0.458},
		{X: 0.254, Y: 0.265, Z: 0.530},
		{X: 0.207, Y: 0.372, Z: 0.553},
		{X: 0.164, Y: 0.471, Z: 0.558},
		{X: 0.128, Y: 0.567, Z: 0.551},
		{X: 0.135, Y: 0.659, Z: 0.518},
		{X: 0.267, Y: 0.749, Z: 0.441},
		{X: 0.478, Y: 0.821, Z: 0.318},
		{X: 0.741, Y: 0.873, Z: 0.150},
		{X: 0.993, Y: 0.906, Z: 0.144},
	},
}

// Hot maps 0 -> black through red and yellow to white, the classic
// temperature map used for the asteroid renders.
var Hot = &Colormap{
	name: "hot",
	stops: []vec.V3{
		{X: 0, Y: 0, Z: 0},
		{X: 0.5, Y: 0, Z: 0},
		{X: 1, Y: 0, Z: 0},
		{X: 1, Y: 0.5, Z: 0},
		{X: 1, Y: 1, Z: 0},
		{X: 1, Y: 1, Z: 1},
	},
}

// Gray is the identity grayscale map.
var Gray = &Colormap{
	name:  "gray",
	stops: []vec.V3{{}, {X: 1, Y: 1, Z: 1}},
}

// Colormaps indexes the built-in maps by name.
var Colormaps = map[string]*Colormap{
	"viridis": Viridis,
	"hot":     Hot,
	"gray":    Gray,
}
