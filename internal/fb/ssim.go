package fb

import (
	"fmt"
	"math"
)

// SSIM computes the mean structural similarity index between two frames —
// the kind of perception-oriented quality metric the paper anticipates
// users will substitute for RMSE ("we expect users of the toolkit to use
// more sophisticated metrics explicitly targeted at measuring the
// perception quality of an image", §VI-A). Implementation follows Wang
// et al. 2004: luminance images, 8x8 windows with stride 4, the standard
// stabilization constants, dynamic range 1.0. Returns a value in
// [-1, 1]; 1 means identical.
func SSIM(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("fb: frame sizes differ (%dx%d vs %dx%d)", a.W, a.H, b.W, b.H)
	}
	if a.W == 0 || a.H == 0 {
		return 1, nil
	}
	la := luminance(a)
	lb := luminance(b)

	const (
		win    = 8
		stride = 4
		c1     = 0.01 * 0.01 // (k1 L)^2 with L = 1
		c2     = 0.03 * 0.03
	)

	var total float64
	windows := 0
	for y0 := 0; y0 < a.H; y0 += stride {
		for x0 := 0; x0 < a.W; x0 += stride {
			x1 := x0 + win
			y1 := y0 + win
			if x1 > a.W {
				x1 = a.W
			}
			if y1 > a.H {
				y1 = a.H
			}
			n := float64((x1 - x0) * (y1 - y0))
			if n < 4 {
				continue
			}
			var sumA, sumB float64
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					i := y*a.W + x
					sumA += la[i]
					sumB += lb[i]
				}
			}
			muA := sumA / n
			muB := sumB / n
			var varA, varB, cov float64
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					i := y*a.W + x
					da := la[i] - muA
					db := lb[i] - muB
					varA += da * da
					varB += db * db
					cov += da * db
				}
			}
			varA /= n - 1
			varB /= n - 1
			cov /= n - 1

			ssim := ((2*muA*muB + c1) * (2*cov + c2)) /
				((muA*muA + muB*muB + c1) * (varA + varB + c2))
			total += ssim
			windows++
		}
	}
	if windows == 0 {
		return 1, nil
	}
	return total / float64(windows), nil
}

// luminance converts the frame to Rec. 709 luma in [0, 1].
func luminance(f *Frame) []float64 {
	out := make([]float64, len(f.Color))
	for i, c := range f.Color {
		cc := c.Clamp(0, 1)
		out[i] = 0.2126*cc.X + 0.7152*cc.Y + 0.0722*cc.Z
	}
	return out
}

// PSNR computes peak signal-to-noise ratio in dB over linear RGB with
// peak 1.0. Identical frames return +Inf.
func PSNR(a, b *Frame) (float64, error) {
	rmse, err := RMSE(a, b)
	if err != nil {
		return 0, err
	}
	if rmse == 0 {
		return math.Inf(1), nil
	}
	return 20 * math.Log10(1/rmse), nil
}
