package fb

import (
	"bytes"
	"image/png"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/ascr-ecx/eth/internal/vec"
)

func TestNewFrameCleared(t *testing.T) {
	f := New(4, 3)
	if f.W != 4 || f.H != 3 || len(f.Color) != 12 || len(f.Depth) != 12 {
		t.Fatalf("frame shape wrong: %+v", f)
	}
	for i := range f.Depth {
		if !math.IsInf(f.Depth[i], 1) {
			t.Fatal("depth not infinite after New")
		}
	}
	if f.CoveredPixels() != 0 {
		t.Error("fresh frame reports coverage")
	}
}

func TestDepthSetRespectsDepth(t *testing.T) {
	f := New(2, 2)
	red := vec.New(1, 0, 0)
	green := vec.New(0, 1, 0)
	f.DepthSet(0, 0, 5, red)
	f.DepthSet(0, 0, 10, green) // farther: ignored
	if f.At(0, 0) != red {
		t.Error("farther write overwrote nearer")
	}
	f.DepthSet(0, 0, 2, green) // nearer: wins
	if f.At(0, 0) != green {
		t.Error("nearer write did not win")
	}
	// Out of bounds: no panic, no effect.
	f.DepthSet(-1, 0, 1, red)
	f.DepthSet(0, 5, 1, red)
	if f.CoveredPixels() != 1 {
		t.Errorf("covered = %d", f.CoveredPixels())
	}
}

func TestSetAndAt(t *testing.T) {
	f := New(3, 3)
	c := vec.New(0.2, 0.4, 0.6)
	f.Set(1, 2, c)
	if f.At(1, 2) != c {
		t.Error("Set/At mismatch")
	}
	if f.At(-1, 0) != (vec.V3{}) || f.At(0, 9) != (vec.V3{}) {
		t.Error("out-of-bounds At should be black")
	}
	f.Set(-1, -1, c) // no panic
}

func TestClear(t *testing.T) {
	f := New(2, 2)
	f.DepthSet(0, 0, 1, vec.New(1, 1, 1))
	bg := vec.New(0.1, 0.1, 0.1)
	f.Clear(bg)
	if f.At(0, 0) != bg || f.CoveredPixels() != 0 {
		t.Error("Clear did not reset")
	}
}

func TestRMSEIdentical(t *testing.T) {
	a := New(8, 8)
	b := New(8, 8)
	got, err := RMSE(a, b)
	if err != nil || got != 0 {
		t.Errorf("RMSE identical = %v, %v", got, err)
	}
}

func TestRMSEKnownValue(t *testing.T) {
	a := New(2, 1)
	b := New(2, 1)
	// One pixel differs by (1,0,0): MSE = 1/2 per pixel set of 2 pixels
	// summed over channels: sum = 1, mean = 1/2, rmse = sqrt(0.5).
	a.Set(0, 0, vec.New(1, 0, 0))
	got, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestRMSESizeMismatch(t *testing.T) {
	if _, err := RMSE(New(2, 2), New(3, 2)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MAE(New(2, 2), New(2, 3)); err == nil {
		t.Error("MAE size mismatch accepted")
	}
}

func TestMAEKnownValue(t *testing.T) {
	a := New(1, 1)
	b := New(1, 1)
	a.Set(0, 0, vec.New(0.3, 0.6, 0.9))
	got, err := MAE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.3 + 0.6 + 0.9) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, want)
	}
}

// Property: RMSE is symmetric and zero iff frames are equal (on clamped colors).
func TestRMSESymmetryProperty(t *testing.T) {
	f := func(vals []float64) bool {
		a := New(4, 4)
		b := New(4, 4)
		for i, v := range vals {
			if i >= 16 {
				break
			}
			x := math.Mod(math.Abs(v), 1)
			a.Color[i] = vec.New(x, x/2, x/3)
			b.Color[i] = vec.New(x/3, x, x/2)
		}
		ab, _ := RMSE(a, b)
		ba, _ := RMSE(b, a)
		return math.Abs(ab-ba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	f := New(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			f.Set(x, y, vec.New(float64(x)/15, float64(y)/7, 0.5))
		}
	}
	var buf bytes.Buffer
	if err := f.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 8 {
		t.Errorf("decoded size = %v", img.Bounds())
	}
}

func TestSavePNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.png")
	if err := New(4, 4).SavePNG(path); err != nil {
		t.Fatal(err)
	}
}

func TestColormapLookup(t *testing.T) {
	for name, cm := range Colormaps {
		if cm.Name() != name {
			t.Errorf("map %q reports name %q", name, cm.Name())
		}
		lo := cm.Lookup(0)
		hi := cm.Lookup(1)
		if lo == hi {
			t.Errorf("%s: endpoints equal", name)
		}
		// Clamping.
		if cm.Lookup(-5) != lo || cm.Lookup(7) != hi {
			t.Errorf("%s: clamp failed", name)
		}
		// Monotone sampling stays within [0,1] per channel.
		for i := 0; i <= 20; i++ {
			c := cm.Lookup(float64(i) / 20)
			if c.MinComp() < -1e-9 || c.MaxComp() > 1+1e-9 {
				t.Errorf("%s: color out of range at %d: %v", name, i, c)
			}
		}
	}
}

func TestColormapDegenerate(t *testing.T) {
	empty := &Colormap{}
	if empty.Lookup(0.5) != (vec.V3{}) {
		t.Error("empty colormap should be black")
	}
	one := &Colormap{stops: []vec.V3{{X: 1}}}
	if one.Lookup(0.9) != (vec.V3{X: 1}) {
		t.Error("single-stop colormap wrong")
	}
}

func TestGrayIsLinear(t *testing.T) {
	mid := Gray.Lookup(0.5)
	if math.Abs(mid.X-0.5) > 1e-12 || mid.X != mid.Y || mid.Y != mid.Z {
		t.Errorf("gray(0.5) = %v", mid)
	}
}
