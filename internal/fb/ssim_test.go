package fb

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ascr-ecx/eth/internal/vec"
)

func noisyFrame(w, h int, seed int64, noise float64) *Frame {
	rng := rand.New(rand.NewSource(seed))
	f := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 0.5 + 0.4*math.Sin(float64(x)/5)*math.Cos(float64(y)/7)
			v := base + rng.NormFloat64()*noise
			f.Set(x, y, vec.Splat(v).Clamp(0, 1))
		}
	}
	return f
}

func TestSSIMIdentical(t *testing.T) {
	f := noisyFrame(64, 64, 1, 0)
	got, err := SSIM(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(f, f) = %v, want 1", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	ref := noisyFrame(64, 64, 1, 0)
	low := noisyFrame(64, 64, 2, 0.02)
	high := noisyFrame(64, 64, 3, 0.3)
	// Same base pattern: low noise should score higher than heavy noise.
	sLow, err := SSIM(ref, low)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := SSIM(ref, high)
	if err != nil {
		t.Fatal(err)
	}
	if sLow <= sHigh {
		t.Errorf("SSIM low-noise %v <= high-noise %v", sLow, sHigh)
	}
	if sLow < 0.7 {
		t.Errorf("SSIM with 2%% noise = %v, implausibly low", sLow)
	}
	if sHigh > 0.8 {
		t.Errorf("SSIM with 30%% noise = %v, implausibly high", sHigh)
	}
}

func TestSSIMStructuralVsUniformShift(t *testing.T) {
	// SSIM's defining property: a small uniform brightness shift hurts
	// less than structural scrambling at equal RMSE-ish magnitude.
	ref := noisyFrame(64, 64, 1, 0)
	shifted := New(64, 64)
	for i, c := range ref.Color {
		shifted.Color[i] = c.Add(vec.Splat(0.1)).Clamp(0, 1)
	}
	scrambled := New(64, 64)
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(len(ref.Color))
	for i, j := range perm {
		scrambled.Color[i] = ref.Color[j]
	}
	sShift, _ := SSIM(ref, shifted)
	sScram, _ := SSIM(ref, scrambled)
	if sShift <= sScram {
		t.Errorf("uniform shift (%v) should score above scrambling (%v)", sShift, sScram)
	}
}

func TestSSIMSizeMismatch(t *testing.T) {
	if _, err := SSIM(New(8, 8), New(9, 8)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPSNR(t *testing.T) {
	a := noisyFrame(32, 32, 1, 0)
	if p, err := PSNR(a, a); err != nil || !math.IsInf(p, 1) {
		t.Errorf("PSNR identical = %v, %v", p, err)
	}
	b := noisyFrame(32, 32, 2, 0.1)
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 5 || p > 60 {
		t.Errorf("PSNR = %v dB, implausible", p)
	}
	if _, err := PSNR(New(2, 2), New(3, 3)); err == nil {
		t.Error("size mismatch accepted")
	}
}
