package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Spec kinds: which harness binary an experiment runs under.
const (
	// KindRun invokes the single-shot harness (ethrun) with the spec's
	// arguments plus fleet-managed -trace/-resume/-out wiring.
	KindRun = "run"
	// KindBench invokes the evaluation harness (ethbench -run-one <id>)
	// for one named experiment.
	KindBench = "bench"
	// KindExec invokes Args[0] directly — the escape hatch for custom
	// workers and the chaos suite's helper processes. The worker finds
	// its fleet-assigned journal and artifact paths in the
	// ETH_FLEET_JOURNAL and ETH_FLEET_ARTIFACTS environment variables.
	KindExec = "exec"
)

// ErrBadSpec is wrapped by every spec validation failure.
var ErrBadSpec = errors.New("fleet: invalid spec")

// Spec is one experiment the fleet owns: an ID, the harness kind that
// runs it, and its arguments. Specs arrive over the HTTP API or from a
// sweep file and live in the fleet checkpoint until they complete or
// quarantine, so the whole type must round-trip through JSON.
type Spec struct {
	// ID names the experiment. It doubles as the spec's directory name
	// under the fleet dir and the Src tag on every journal event the
	// spec's workers produce, so it is restricted to [a-zA-Z0-9._-].
	ID string `json:"id"`
	// Kind selects the worker binary: KindRun, KindBench, or KindExec.
	Kind string `json:"kind"`
	// Args are appended to the worker command line (for KindExec,
	// Args[0] is the binary itself).
	Args []string `json:"args,omitempty"`
	// Env entries are appended to the worker environment.
	Env []string `json:"env,omitempty"`
	// Retries is this spec's retry budget: how many times a failed
	// attempt is requeued before the spec quarantines. 0 inherits the
	// fleet default; -1 means no retries (the first failure
	// quarantines).
	Retries int `json:"retries,omitempty"`
}

// retryBudget resolves the effective budget against the fleet default.
func (s Spec) retryBudget(fleetDefault int) int {
	switch {
	case s.Retries < 0:
		return 0
	case s.Retries == 0:
		return fleetDefault
	default:
		return s.Retries
	}
}

// Validate checks the spec is runnable before it enters the queue, so
// a malformed submission is rejected at the API boundary instead of
// burning its retry budget on exec failures.
func (s Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("spec has no id: %w", ErrBadSpec)
	}
	for _, r := range s.ID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("spec id %q: character %q not in [a-zA-Z0-9._-]: %w", s.ID, r, ErrBadSpec)
		}
	}
	if strings.HasPrefix(s.ID, ".") {
		return fmt.Errorf("spec id %q may not start with a dot: %w", s.ID, ErrBadSpec)
	}
	switch s.Kind {
	case KindRun, KindBench:
	case KindExec:
		if len(s.Args) == 0 {
			return fmt.Errorf("spec %s: kind exec needs Args[0] as the binary: %w", s.ID, ErrBadSpec)
		}
	default:
		return fmt.Errorf("spec %s: unknown kind %q (want run, bench, or exec): %w", s.ID, s.Kind, ErrBadSpec)
	}
	if s.Retries < -1 {
		return fmt.Errorf("spec %s: retries %d (want >= -1): %w", s.ID, s.Retries, ErrBadSpec)
	}
	return nil
}

// LoadSweep reads a sweep file: a JSON array of specs, submitted in
// order. Every spec is validated and IDs must be unique — a sweep with
// any bad entry is rejected whole, so a partial sweep never starts.
func LoadSweep(path string) ([]Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: reading sweep: %w", err)
	}
	var specs []Spec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return nil, fmt.Errorf("fleet: decoding sweep %s: %w", path, err)
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: sweep %s entry %d: %w", path, i, err)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("fleet: sweep %s entry %d: duplicate id %q: %w", path, i, s.ID, ErrBadSpec)
		}
		seen[s.ID] = true
	}
	return specs, nil
}
