package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/ascr-ecx/eth/internal/journal"
)

// TestDoneSetLoadsOldFormatCheckpoints is the extraction regression:
// checkpoint files written by earlier ethbench builds (raw
// journal.Checkpoint JSON) must load into the shared DoneSet
// unchanged. The literal below is byte-for-byte what those builds
// wrote.
func TestDoneSetLoadsOldFormatCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.ckpt")
	old := `{"t":"2026-07-30T22:15:04.123456789Z","step":-1,"done":["table1","table2","fig8"],"detail":"last=fig8"}` + "\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDoneSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.IDs(); !reflect.DeepEqual(got, []string{"table1", "table2", "fig8"}) {
		t.Fatalf("old-format checkpoint loaded as %v", got)
	}
	if !d.Has("fig8") || d.Has("fig9") {
		t.Fatal("membership wrong after old-format load")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

// TestDoneSetRoundTrip proves Save writes a file journal.ReadCheckpoint
// (the old reader) still understands — the format is shared both ways.
func TestDoneSetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	d := NewDoneSet()
	d.Add("fig10")
	d.Add("fig11")
	d.Add("fig10") // idempotent
	if err := d.Save(path, "last=fig11"); err != nil {
		t.Fatal(err)
	}
	cp, err := journal.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp.Done, []string{"fig10", "fig11"}) {
		t.Fatalf("old reader sees Done=%v", cp.Done)
	}
	if cp.Detail != "last=fig11" {
		t.Fatalf("detail = %q", cp.Detail)
	}
	if cp.Step != -1 {
		t.Fatalf("step = %d, want -1 (done sets are not step-scoped)", cp.Step)
	}

	d2, err := LoadDoneSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Has("fig10") || !d2.Has("fig11") || d2.Len() != 2 {
		t.Fatal("round-trip lost membership")
	}
}

// TestDoneSetMissingFileIsFresh: no checkpoint yet means an empty set,
// not an error.
func TestDoneSetMissingFileIsFresh(t *testing.T) {
	d, err := LoadDoneSet(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("fresh set has %d entries", d.Len())
	}
}

// TestDoneSetRejectsCorruptFile: a torn or corrupt ledger must fail
// loudly, never silently replay a sweep from scratch.
func TestDoneSetRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte(`{"done": [truncat`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDoneSet(path); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}
