//go:build unix

package fleet_test

// Fleet-level chaos: SIGKILL the workers mid-experiment, SIGKILL the
// scheduler mid-sweep, and prove the resumed fleet converges to the
// same completed-spec set and byte-identical artifacts as an
// unperturbed serial run — with the conservation law
// completed + quarantined == submitted intact throughout.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/fleet"
	"github.com/ascr-ecx/eth/internal/journal"
)

// serialBaseline runs the same spec IDs unperturbed, one worker, fresh
// dir, and returns the artifact bytes per spec — the ground truth the
// chaotic runs must reproduce exactly.
func serialBaseline(t *testing.T, dir string, ids []string, steps int) map[string][]byte {
	t.Helper()
	s, err := fleet.New(fleet.Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var specs []fleet.Spec
	for _, id := range ids {
		specs = append(specs, helperSpec(id, "", steps, 0, dir))
	}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	if c := s.Counts(); c.Completed != len(ids) {
		t.Fatalf("serial baseline incomplete: %+v", c)
	}
	arts := map[string][]byte{}
	for _, id := range ids {
		raw, err := os.ReadFile(filepath.Join(dir, "artifacts", id, "result.txt"))
		if err != nil {
			t.Fatalf("serial baseline artifact %s: %v", id, err)
		}
		arts[id] = raw
	}
	return arts
}

// TestFleetChaosWorkerSIGKILL: half the fleet's workers die by kill -9
// mid-write (torn journal tails included); the retry ladder re-runs
// them, resumed workers skip completed steps, and the fleet converges
// to the serial baseline — same completed set, byte-identical
// artifacts, every step ingested exactly once, and each crash surfaced
// as exactly one torn-tail event in the merged journal.
func TestFleetChaosWorkerSIGKILL(t *testing.T) {
	base := chaosDir(t)
	dir := filepath.Join(base, "chaotic")
	const steps = 6
	ids := []string{"c-00", "c-01", "c-02", "c-03", "c-04", "c-05"}
	crashed := map[string]bool{"c-00": true, "c-02": true, "c-04": true}

	baseline := serialBaseline(t, filepath.Join(base, "serial"), ids, steps)

	s, err := fleet.New(fleet.Config{
		Dir: dir, Workers: 3,
		Retries:     4,
		BackoffBase: 50 * time.Millisecond,
		Stall:       5 * time.Second,
		Poll:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var specs []fleet.Spec
	for _, id := range ids {
		mode := ""
		if crashed[id] {
			mode = "crash-once"
		}
		specs = append(specs, helperSpec(id, mode, steps, 0, dir))
	}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("Run: %v", err)
	}

	c := s.Counts()
	if c.Completed != len(ids) || c.Quarantined != 0 || !c.Balanced() {
		t.Fatalf("counts %+v, want all %d completed despite worker kills", c, len(ids))
	}
	got := s.Completed()
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("completed %v, want %v", got, ids)
	}

	// Artifacts must match the unperturbed serial run byte for byte.
	for _, id := range ids {
		raw, err := os.ReadFile(filepath.Join(dir, "artifacts", id, "result.txt"))
		if err != nil {
			t.Fatalf("artifact %s: %v", id, err)
		}
		if !bytes.Equal(raw, baseline[id]) {
			t.Errorf("artifact %s diverged from serial baseline:\nchaos:  %q\nserial: %q", id, raw, baseline[id])
		}
	}

	// Merged-journal accounting: every step of every spec ingested
	// exactly once (workers resume, never replay), and each crash's
	// torn tail reported exactly once.
	events, err := journal.ReadFile(filepath.Join(dir, fleet.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	stepsSeen := map[string]map[int]int{}
	tornBySpec := map[string]int{}
	for _, ev := range events {
		switch {
		case ev.Type == journal.TypeRender && ev.Src != "":
			if stepsSeen[ev.Src] == nil {
				stepsSeen[ev.Src] = map[int]int{}
			}
			stepsSeen[ev.Src][ev.Step]++
		case ev.Type == journal.TypeError && strings.Contains(ev.Detail, "torn tail"):
			tornBySpec[ev.Src]++
		}
	}
	for _, id := range ids {
		for step := 0; step < steps; step++ {
			if n := stepsSeen[id][step]; n != 1 {
				t.Errorf("spec %s step %d ingested %d times, want exactly 1", id, step, n)
			}
		}
		wantTorn := 0
		if crashed[id] {
			wantTorn = 1
		}
		if tornBySpec[id] != wantTorn {
			t.Errorf("spec %s: %d torn-tail events in merged journal, want %d", id, tornBySpec[id], wantTorn)
		}
	}
}

const schedHelperEnv = "ETH_FLEET_SCHED"

// TestHelperFleetScheduler is not a test: it is the scheduler
// subprocess for the scheduler-SIGKILL chaos test. It builds a fleet
// in ETH_SCHED_DIR, submits the sweep, and runs until killed.
func TestHelperFleetScheduler(t *testing.T) {
	if os.Getenv(schedHelperEnv) != "1" {
		t.Skip("helper process body; skipped in normal runs")
	}
	os.Exit(fleetSchedulerMain())
}

func fleetSchedulerMain() int {
	dir := os.Getenv("ETH_SCHED_DIR")
	markerDir := os.Getenv("ETH_HELPER_MARKER_DIR")
	n, _ := strconv.Atoi(os.Getenv("ETH_SCHED_SPECS"))
	steps, _ := strconv.Atoi(os.Getenv("ETH_SCHED_STEPS"))
	s, err := fleet.New(fleet.Config{
		Dir: dir, Workers: 3,
		BackoffBase: 25 * time.Millisecond,
		Stall:       10 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background()) }()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("spec-%02d", i)
		mode := ""
		if i%3 == 0 {
			mode = "crash-once"
		}
		sp := helperSpec(id, mode, steps, 5, markerDir)
		sp.Env = append(sp.Env, "ETH_HELPER_STEP_MS=20")
		if err := s.Submit(sp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	s.Drain()
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// TestFleetChaosSchedulerSIGKILLResume: the scheduler itself is
// SIGKILLed mid-sweep — workers orphaned, queue in flight — and a
// resumed scheduler on the same dir completes every remaining spec
// exactly once, converging on the serial baseline.
func TestFleetChaosSchedulerSIGKILLResume(t *testing.T) {
	base := chaosDir(t)
	dir := filepath.Join(base, "fleet")
	markerDir := filepath.Join(base, "markers")
	for _, d := range []string{dir, markerDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	const nspecs, steps = 9, 6
	var ids []string
	for i := 0; i < nspecs; i++ {
		ids = append(ids, fmt.Sprintf("spec-%02d", i))
	}
	baseline := serialBaseline(t, filepath.Join(base, "serial"), ids, steps)

	// Phase 1: the scheduler subprocess starts the sweep...
	var schedOut bytes.Buffer
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperFleetScheduler$", "-test.v=false")
	cmd.Env = append(os.Environ(),
		schedHelperEnv+"=1",
		"ETH_SCHED_DIR="+dir,
		"ETH_HELPER_MARKER_DIR="+markerDir,
		"ETH_SCHED_SPECS="+strconv.Itoa(nspecs),
		"ETH_SCHED_STEPS="+strconv.Itoa(steps),
	)
	cmd.Stdout, cmd.Stderr = &schedOut, &schedOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// ...and is SIGKILLed once real progress exists but work remains.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cp, err := fleet.ReadCheckpoint(dir)
		if err == nil && len(cp.Done) >= 2 && len(cp.Done)+len(cp.Quarantined) < len(cp.Specs) {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("scheduler never reached mid-sweep state; output:\n%s", schedOut.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(cmd.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cp, err := fleet.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Specs) != nspecs {
		t.Fatalf("checkpoint lost specs across SIGKILL: %d/%d", len(cp.Specs), nspecs)
	}
	t.Logf("killed scheduler with %d/%d specs done", len(cp.Done), nspecs)

	// Phase 2: resume on the same dir. Orphaned workers may still hold
	// their journal flocks for a moment; the retry ladder absorbs that.
	s, err := fleet.New(fleet.Config{
		Dir: dir, Resume: true, Workers: 3,
		BackoffBase: 25 * time.Millisecond,
		Stall:       10 * time.Second,
		Poll:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background()) }()
	waitCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitIdle(waitCtx); err != nil {
		t.Fatalf("resumed fleet never idled: %v (counts %+v)", err, s.Counts())
	}
	s.Drain()
	if err := <-done; err != nil {
		t.Fatalf("resumed Run: %v", err)
	}

	// Exactly once: the completed set equals the sweep, no duplicates.
	c := s.Counts()
	if c.Submitted != nspecs || c.Completed != nspecs || c.Quarantined != 0 || !c.Balanced() {
		t.Fatalf("resumed counts %+v, want all %d completed, balanced", c, nspecs)
	}
	completed := s.Completed()
	seen := map[string]int{}
	for _, id := range completed {
		seen[id]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("spec %s completed %d times, want exactly once", id, seen[id])
		}
	}

	// Byte-identical artifacts vs the unperturbed serial run.
	for _, id := range ids {
		raw, err := os.ReadFile(filepath.Join(dir, "artifacts", id, "result.txt"))
		if err != nil {
			t.Fatalf("artifact %s: %v", id, err)
		}
		if !bytes.Equal(raw, baseline[id]) {
			t.Errorf("artifact %s diverged from serial baseline:\nchaos:  %q\nserial: %q", id, raw, baseline[id])
		}
	}

	// The final checkpoint alone tells the whole story.
	cp2, err := fleet.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp2.Done) != nspecs || len(cp2.Quarantined) != 0 {
		t.Fatalf("final checkpoint done=%d quarantined=%d, want %d/0", len(cp2.Done), len(cp2.Quarantined), nspecs)
	}
}
