// Package fleet is the experiment fleet scheduler behind ethserve: it
// accepts experiment specs (over a local HTTP API or from sweep
// files), shards them across a bounded pool of supervised worker
// subprocesses, and survives the failure of any participant — worker
// or scheduler — without losing or double-counting work.
//
// Each attempt runs one spec under internal/supervise's subprocess
// supervision with a zero restart budget: the supervision is the
// lease. Liveness is the growth of the spec's journal file; a worker
// that stops making journal progress for the stall window is killed
// and its spec re-enters the queue. Failed attempts climb a
// retry→requeue→quarantine ladder with capped exponential backoff,
// and a quarantined spec keeps the tail of its last journal for
// post-mortem.
//
// Every state transition — submit, lease, requeue, quarantine,
// complete — is persisted twice: as a journal event in the merged
// fleet journal (through the internal/ingest batcher, alongside the
// workers' own event streams) and as an atomically-replaced fleet
// checkpoint. SIGKILL the scheduler at any instant and a -resume
// brings back exactly the outstanding specs; the conservation law
//
//	completed + quarantined == submitted
//
// holds for every terminated fleet.
//
// Worker journals are one-writer-per-file (journal.ErrLocked): an
// orphaned worker from a killed scheduler still holds its journal's
// flock, so the resumed scheduler's fresh attempt fails cleanly and
// retries after backoff instead of interleaving two writers in one
// file. The kernel drops the lock when the orphan exits.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/ascr-ecx/eth/internal/ingest"
	"github.com/ascr-ecx/eth/internal/journal"
	"github.com/ascr-ecx/eth/internal/supervise"
	"github.com/ascr-ecx/eth/internal/telemetry"
)

// Spec lifecycle states, as reported by Snapshot and the HTTP API.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusQuarantined = "quarantined"
)

// JournalFile is the merged fleet journal's name under the fleet dir.
const JournalFile = "fleet.jsonl"

// ErrDuplicate is wrapped when a spec ID is submitted twice.
var ErrDuplicate = errors.New("fleet: spec id already submitted")

// Fleet telemetry, exposed on /metrics by any obs server sharing the
// default registry.
var (
	gaugeQueue       = telemetry.Default.Gauge("fleet.queue_depth")
	gaugeInflight    = telemetry.Default.Gauge("fleet.inflight")
	gaugeQuarantined = telemetry.Default.Gauge("fleet.quarantined")
	ctrSubmitted     = telemetry.Default.Counter("fleet.submitted")
	ctrCompleted     = telemetry.Default.Counter("fleet.completed")
	ctrRetries       = telemetry.Default.Counter("fleet.retries")
	ctrRequeues      = telemetry.Default.Counter("fleet.requeues")
)

// Config shapes a Scheduler.
type Config struct {
	// Dir is the fleet state directory: the merged journal, the fleet
	// checkpoint, and per-spec journal/artifact directories live here.
	Dir string
	// Workers bounds the subprocess pool. Default 2.
	Workers int
	// Retries is the default per-spec retry budget for specs that do
	// not set their own. Default 2.
	Retries int
	// Stall is the lease heartbeat: an attempt whose journal file stops
	// growing for this long is killed and requeued. 0 disables stall
	// detection (crash-only supervision). Coarse-grained workers like
	// ethbench emit few events; give them a generous window or 0.
	Stall time.Duration
	// Grace is the SIGTERM→SIGKILL drain window per worker. Default 2s
	// (supervise.Proc's default).
	Grace time.Duration
	// BackoffBase and BackoffMax shape the requeue backoff: attempt n
	// waits Base<<(n-1), capped at Max. Defaults 100ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// RunBin and BenchBin are the worker binaries for KindRun and
	// KindBench specs. Defaults "ethrun" and "ethbench" (from PATH).
	RunBin, BenchBin string
	// Resume loads the fleet checkpoint from Dir and requeues every
	// spec not yet completed or quarantined.
	Resume bool
	// Poll is the ingestion poll interval (default 25ms).
	Poll time.Duration
	// FlushCount, FlushEvery, Queue tune the ingest batcher (see
	// ingest.Config); zero values take that package's defaults.
	FlushCount int
	FlushEvery time.Duration
	Queue      int
	// Stdout and Stderr receive worker output. Nil discards.
	Stdout, Stderr io.Writer
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

func (c Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 2
	}
	return c.Retries
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.BackoffBase
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 5 * time.Second
	}
	return c.BackoffMax
}

func (c Config) runBin() string {
	if c.RunBin == "" {
		return "ethrun"
	}
	return c.RunBin
}

func (c Config) benchBin() string {
	if c.BenchBin == "" {
		return "ethbench"
	}
	return c.BenchBin
}

// specState is one spec's scheduler-side lifecycle.
type specState struct {
	spec      Spec
	status    string
	attempts  int // failed attempts so far
	notBefore time.Time
	lastErr   string
}

// Counts is the fleet's live tally, the basis of the conservation law.
type Counts struct {
	Submitted   int `json:"submitted"`
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Completed   int `json:"completed"`
	Quarantined int `json:"quarantined"`
	Retries     int `json:"retries"`
	Requeues    int `json:"requeues"`
}

// Balanced reports the conservation law for a terminated fleet:
// everything submitted either completed or quarantined.
func (c Counts) Balanced() bool {
	return c.Completed+c.Quarantined == c.Submitted && c.Queued == 0 && c.Running == 0
}

// SpecStatus is one spec's externally visible state (Snapshot, API).
type SpecStatus struct {
	Spec
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	LastErr  string `json:"last_err,omitempty"`
}

// Scheduler owns the fleet: queue, worker pool, ingestion, checkpoint.
// Create with New, feed with Submit, drive with Run; Drain requests a
// graceful stop.
type Scheduler struct {
	cfg       Config
	jw        *journal.Writer
	batcher   *ingest.Batcher
	collector *ingest.Collector

	mu          sync.Mutex
	specs       map[string]*specState
	order       []string // submission order
	queue       []string // runnable, FIFO
	done        *DoneSet
	quarantined []Quarantine
	running     int
	retries     int
	requeues    int
	cancel      context.CancelFunc

	wake chan struct{}
}

// New opens the fleet directory and its merged journal (held with an
// exclusive lock — a second scheduler on the same dir gets
// journal.ErrLocked), wires ingestion, and, with cfg.Resume, reloads
// the checkpoint so every outstanding spec re-enters the queue.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: Config.Dir is required: %w", ErrBadSpec)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating fleet dir: %w", err)
	}
	jw, err := journal.Append(filepath.Join(cfg.Dir, JournalFile))
	if err != nil {
		return nil, fmt.Errorf("fleet: opening fleet journal: %w", err)
	}
	b := ingest.NewBatcher(ingest.Config{
		Sink: jw, FlushCount: cfg.FlushCount, FlushEvery: cfg.FlushEvery, Queue: cfg.Queue,
	})
	s := &Scheduler{
		cfg:       cfg,
		jw:        jw,
		batcher:   b,
		collector: ingest.NewCollector(b, cfg.Poll),
		specs:     map[string]*specState{},
		done:      NewDoneSet(),
		wake:      make(chan struct{}, 1),
	}
	if cfg.Resume {
		if err := s.resume(); err != nil {
			b.Close()
			jw.Close()
			return nil, err
		}
	}
	s.setGauges()
	return s, nil
}

// resume reloads fleet state from the checkpoint. Outstanding specs
// re-enter the queue with a fresh retry budget; completed and
// quarantined specs keep their terminal state.
func (s *Scheduler) resume() error {
	cp, err := ReadCheckpoint(s.cfg.Dir)
	if errIsNotExist(err) {
		return nil // fresh dir: nothing to resume
	}
	if err != nil {
		return err
	}
	terminal := map[string]string{}
	for _, id := range cp.Done {
		terminal[id] = StatusDone
	}
	quarErr := map[string]Quarantine{}
	for _, q := range cp.Quarantined {
		terminal[q.ID] = StatusQuarantined
		quarErr[q.ID] = q
	}
	for _, sp := range cp.Specs {
		st := &specState{spec: sp, status: StatusQueued}
		// Re-emit the checkpoint's ledger state in-band. A SIGKILLed
		// scheduler loses whatever was queued in its batcher, so the
		// journal may be missing submit/complete/quarantine events the
		// checkpoint already recorded; replaying them here makes the
		// merged journal converge back to the conservation law. Audits
		// tally unique spec IDs, so the duplicates are harmless.
		s.emit(journal.Event{
			Type: journal.TypeSubmit, Src: sp.ID,
			Detail: "resume: reloaded from checkpoint",
		})
		switch terminal[sp.ID] {
		case StatusDone:
			st.status = StatusDone
			s.done.Add(sp.ID)
			s.emit(journal.Event{
				Type: journal.TypeComplete, Src: sp.ID,
				Detail: "resume: recorded complete in checkpoint",
			})
		case StatusQuarantined:
			q := quarErr[sp.ID]
			st.status = StatusQuarantined
			st.attempts = q.Attempts
			st.lastErr = q.Err
			s.quarantined = append(s.quarantined, q)
			s.emit(journal.Event{
				Type: journal.TypeQuarantine, Src: sp.ID, Step: q.Attempts, Err: q.Err,
				Detail: "resume: recorded quarantined in checkpoint",
			})
		default:
			s.queue = append(s.queue, sp.ID)
		}
		s.specs[sp.ID] = st
		s.order = append(s.order, sp.ID)
	}
	return nil
}

// Submit validates the spec, persists it in the checkpoint (the queue
// survives any crash from this point on), journals the submission, and
// wakes the pool. Duplicate IDs are rejected with ErrDuplicate.
func (s *Scheduler) Submit(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.specs[sp.ID]; ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: spec %s: %w", sp.ID, ErrDuplicate)
	}
	s.specs[sp.ID] = &specState{spec: sp, status: StatusQueued}
	s.order = append(s.order, sp.ID)
	s.queue = append(s.queue, sp.ID)
	cp := s.checkpointLocked()
	s.mu.Unlock()

	ctrSubmitted.Inc()
	s.setGauges()
	s.emit(journal.Event{
		Type: journal.TypeSubmit, Src: sp.ID, Step: -1,
		Detail: fmt.Sprintf("kind=%s retries=%d", sp.Kind, sp.retryBudget(s.cfg.retries())),
	})
	if err := WriteCheckpoint(s.cfg.Dir, cp); err != nil {
		return err
	}
	s.wakeWorkers()
	return nil
}

// Run starts ingestion and the worker pool and blocks until the fleet
// drains: the parent context is canceled (signal) or Drain is called
// (API, or batch mode going idle). On the way out it requeues whatever
// was in flight, writes a final checkpoint, and flushes and closes the
// merged journal. Returns an ErrShutdown-wrapped error when the parent
// context forced the drain, nil otherwise.
func (s *Scheduler) Run(ctx context.Context) error {
	rctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	colDone := make(chan error, 1)
	go func() { colDone <- s.collector.Run(rctx) }()

	var wg sync.WaitGroup
	for i := 0; i < s.cfg.workers(); i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					s.emit(journal.Event{
						Type: journal.TypeError, Step: -1,
						Err: fmt.Sprintf("fleet worker %d panicked: %v", n, v),
					})
				}
			}()
			s.workerLoop(rctx)
		}(i)
	}
	wg.Wait()
	cancel()
	<-colDone // ingestion's final drain has run

	s.mu.Lock()
	cp := s.checkpointLocked()
	counts := s.countsLocked()
	s.mu.Unlock()
	err := WriteCheckpoint(s.cfg.Dir, cp)
	s.emit(journal.Event{
		Type: journal.TypeShutdown, Step: -1,
		Detail: fmt.Sprintf("fleet drained: submitted=%d completed=%d quarantined=%d queued=%d",
			counts.Submitted, counts.Completed, counts.Quarantined, counts.Queued),
	})
	if cerr := s.batcher.Close(); err == nil {
		err = cerr
	}
	if jerr := s.jw.Close(); err == nil {
		err = jerr
	}
	if err != nil {
		return fmt.Errorf("fleet: closing: %w", err)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("fleet: drained on signal: %w", supervise.ErrShutdown)
	}
	return nil
}

// Drain requests a graceful stop: in-flight workers get SIGTERM (then
// SIGKILL after the grace window), their specs requeue without
// spending retry budget, and Run returns after the final checkpoint.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// WaitIdle blocks until the fleet has no queued or running spec (batch
// mode's exit condition) or ctx ends.
func (s *Scheduler) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := len(s.queue) == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Counts reports the live tally.
func (s *Scheduler) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countsLocked()
}

func (s *Scheduler) countsLocked() Counts {
	return Counts{
		Submitted:   len(s.order),
		Queued:      len(s.queue),
		Running:     s.running,
		Completed:   s.done.Len(),
		Quarantined: len(s.quarantined),
		Retries:     s.retries,
		Requeues:    s.requeues,
	}
}

// Snapshot lists every spec in submission order with its live state.
func (s *Scheduler) Snapshot() []SpecStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpecStatus, 0, len(s.order))
	for _, id := range s.order {
		st := s.specs[id]
		out = append(out, SpecStatus{
			Spec: st.spec, Status: st.status, Attempts: st.attempts, LastErr: st.lastErr,
		})
	}
	return out
}

// Completed returns the completed-spec IDs in completion order.
func (s *Scheduler) Completed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done.IDs()
}

// Quarantined returns the quarantine records.
func (s *Scheduler) Quarantined() []Quarantine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantine(nil), s.quarantined...)
}

// workerLoop is one pool slot: claim the next runnable spec, run one
// attempt, repeat until the fleet drains.
func (s *Scheduler) workerLoop(ctx context.Context) {
	for {
		st := s.next(ctx)
		if st == nil {
			return
		}
		s.runAttempt(ctx, st)
	}
}

// next blocks until a spec is runnable (queued and past its backoff
// gate) and claims it, or returns nil when ctx ends.
func (s *Scheduler) next(ctx context.Context) *specState {
	for {
		// Check for drain before claiming: a requeued in-flight spec must
		// stay queued (and checkpointed) on the way out, not be re-leased
		// by a worker that has not yet noticed the cancellation.
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		s.mu.Lock()
		now := time.Now()
		for i, id := range s.queue {
			st := s.specs[id]
			if st.notBefore.After(now) {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			st.status = StatusRunning
			s.running++
			s.mu.Unlock()
			s.setGauges()
			return st
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-s.wake:
		case <-time.After(15 * time.Millisecond):
			// Backoff gates expire without an event; poll for them.
		}
	}
}

// runAttempt executes one supervised attempt of st's spec and applies
// the outcome to the retry→requeue→quarantine ladder.
func (s *Scheduler) runAttempt(ctx context.Context, st *specState) {
	sp := st.spec
	sdir := filepath.Join(s.cfg.Dir, "specs", sp.ID)
	artDir := filepath.Join(s.cfg.Dir, "artifacts", sp.ID)
	var err error
	if err = os.MkdirAll(sdir, 0o755); err == nil {
		err = os.MkdirAll(artDir, 0o755)
	}
	jpath := filepath.Join(sdir, "worker.jsonl")
	if err == nil {
		s.collector.Watch(sp.ID, jpath)
		s.emit(journal.Event{
			Type: journal.TypeLease, Src: sp.ID, Step: st.attempts + 1,
			Detail: fmt.Sprintf("attempt %d leased to worker pool", st.attempts+1),
		})
		// The supervision IS the lease: zero restart budget, liveness
		// from journal growth. A stalled or crashed worker surfaces here
		// as an error and re-enters the queue via the ladder below.
		err = supervise.RunProc(ctx, supervise.Config{
			Role:        "spec:" + sp.ID,
			MaxRestarts: 0,
			Stall:       s.cfg.Stall,
		}, s.procFor(sp, jpath, artDir))
	}
	s.finish(ctx, st, jpath, err)
}

// procFor builds the worker command for one attempt. Fleet-managed
// flags come after the spec's own arguments so they win: the journal
// and artifact paths are the scheduler's contract, not the spec's.
func (s *Scheduler) procFor(sp Spec, jpath, artDir string) supervise.Proc {
	var path string
	var args []string
	switch sp.Kind {
	case KindRun:
		path = s.cfg.runBin()
		args = append(append([]string{}, sp.Args...), "-trace", jpath, "-out", artDir)
		if _, err := os.Stat(jpath); err == nil {
			// A previous attempt left a journal: resume from its step
			// cursors (and repair its torn tail) instead of replaying.
			args = append(args, "-resume")
		}
	case KindBench:
		path = s.cfg.benchBin()
		args = append(append([]string{}, sp.Args...), "-run-one", sp.ID, "-trace", jpath, "-csv", artDir)
	default: // KindExec — validated at submission
		path = sp.Args[0]
		args = append([]string{}, sp.Args[1:]...)
	}
	env := append(append([]string{}, sp.Env...),
		"ETH_FLEET_SPEC="+sp.ID,
		"ETH_FLEET_JOURNAL="+jpath,
		"ETH_FLEET_ARTIFACTS="+artDir,
	)
	return supervise.Proc{
		Path: path, Args: args, Env: env,
		ProgressPath: jpath, Grace: s.cfg.Grace,
		Stdout: s.cfg.Stdout, Stderr: s.cfg.Stderr,
	}
}

// finish applies one attempt's outcome: complete, requeue-for-drain,
// retry with backoff, or quarantine.
func (s *Scheduler) finish(ctx context.Context, st *specState, jpath string, err error) {
	id := st.spec.ID
	switch {
	case err == nil:
		// Pull the worker's final events into the merged journal before
		// the ledger records completion, so a complete spec is never
		// missing its tail.
		s.collector.Unwatch(id)
		s.mu.Lock()
		st.status = StatusDone
		st.lastErr = ""
		s.done.Add(id)
		s.running--
		attempt := st.attempts + 1
		cp := s.checkpointLocked()
		s.mu.Unlock()
		ctrCompleted.Inc()
		s.emit(journal.Event{
			Type: journal.TypeComplete, Src: id, Step: attempt,
			Detail: fmt.Sprintf("completed on attempt %d", attempt),
		})
		s.checkpoint(cp)

	case ctx.Err() != nil || errors.Is(err, supervise.ErrShutdown):
		// Drain: the attempt was interrupted, not at fault. Requeue
		// without spending retry budget; the checkpoint already carries
		// the spec, so the queue survives even a SIGKILL right here.
		s.mu.Lock()
		st.status = StatusQueued
		st.notBefore = time.Time{}
		s.queue = append(s.queue, id)
		s.running--
		s.requeues++
		s.mu.Unlock()
		ctrRequeues.Inc()
		s.emit(journal.Event{
			Type: journal.TypeRequeue, Src: id, Step: st.attempts + 1,
			Detail: "drain: attempt interrupted by shutdown; budget not spent",
		})

	default:
		s.mu.Lock()
		st.attempts++
		st.lastErr = err.Error()
		budget := st.spec.retryBudget(s.cfg.retries())
		quarantine := st.attempts > budget
		attempts := st.attempts
		s.mu.Unlock()
		if quarantine {
			tail := preserveTail(jpath, filepath.Join(s.cfg.Dir, "specs", id, "quarantine.tail"))
			s.collector.Unwatch(id)
			s.mu.Lock()
			st.status = StatusQuarantined
			q := Quarantine{ID: id, Attempts: attempts, Err: err.Error(), TailPath: tail}
			s.quarantined = append(s.quarantined, q)
			s.running--
			cp := s.checkpointLocked()
			s.mu.Unlock()
			s.emit(journal.Event{
				Type: journal.TypeQuarantine, Src: id, Step: attempts,
				Err:    err.Error(),
				Detail: fmt.Sprintf("retry budget %d exhausted after %d attempts; journal tail preserved", budget, attempts),
			})
			s.checkpoint(cp)
		} else {
			backoff := s.cfg.backoffBase() << (attempts - 1)
			if backoff > s.cfg.backoffMax() {
				backoff = s.cfg.backoffMax()
			}
			s.mu.Lock()
			st.status = StatusQueued
			st.notBefore = time.Now().Add(backoff)
			s.queue = append(s.queue, id)
			s.running--
			s.retries++
			s.requeues++
			s.mu.Unlock()
			ctrRetries.Inc()
			ctrRequeues.Inc()
			s.emit(journal.Event{
				Type: journal.TypeRequeue, Src: id, Step: attempts,
				Err:    err.Error(),
				Detail: fmt.Sprintf("attempt %d/%d failed; requeued with %v backoff", attempts, budget+1, backoff),
			})
		}
	}
	s.setGauges()
	s.wakeWorkers()
}

// checkpoint persists cp, surfacing a failed write in the journal —
// the fleet keeps running, but the operator sees that resumability is
// degraded.
func (s *Scheduler) checkpoint(cp Checkpoint) {
	if err := WriteCheckpoint(s.cfg.Dir, cp); err != nil {
		s.emit(journal.Event{Type: journal.TypeError, Step: -1, Err: err.Error(),
			Detail: "fleet checkpoint write failed; a crash now would replay completed specs"})
	}
}

// checkpointLocked builds the durable state snapshot. Caller holds mu.
func (s *Scheduler) checkpointLocked() Checkpoint {
	specs := make([]Spec, 0, len(s.order))
	for _, id := range s.order {
		specs = append(specs, s.specs[id].spec)
	}
	return Checkpoint{
		Specs:       specs,
		Done:        s.done.IDs(),
		Quarantined: append([]Quarantine(nil), s.quarantined...),
	}
}

// emit sends one fleet control event through the ingest batcher so it
// interleaves with worker traffic in the merged journal.
func (s *Scheduler) emit(ev journal.Event) {
	ev.Rank = -1
	_ = s.batcher.Put(ev)
}

func (s *Scheduler) setGauges() {
	s.mu.Lock()
	c := s.countsLocked()
	s.mu.Unlock()
	gaugeQueue.Set(int64(c.Queued))
	gaugeInflight.Set(int64(c.Running))
	gaugeQuarantined.Set(int64(c.Quarantined))
}

// wakeWorkers nudges one idle pool slot; the rest poll.
func (s *Scheduler) wakeWorkers() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// preserveTail copies the last few KiB of a quarantined spec's journal
// to dst for post-mortem, returning dst ("" when there was nothing to
// preserve).
func preserveTail(jpath, dst string) string {
	const keep = 8 << 10
	raw, err := os.ReadFile(jpath)
	if err != nil || len(raw) == 0 {
		return ""
	}
	if len(raw) > keep {
		raw = raw[len(raw)-keep:]
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		return ""
	}
	return dst
}
