//go:build unix

package fleet_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/fleet"
	"github.com/ascr-ecx/eth/internal/obs"
)

// TestFleetMetricsExposed proves the fleet's gauges and counters reach
// /metrics through the shared telemetry registry: run a tiny fleet
// with one quarantining spec, scrape an obs server, and check the
// conservation-law metrics are present and consistent.
func TestFleetMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s, err := fleet.New(fleet.Config{Dir: dir, Workers: 1, BackoffBase: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	specs := []fleet.Spec{
		helperSpec("m-good", "", 2, 0, dir),
		helperSpec("m-bad", "poison", 2, -1, dir),
	}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("Run: %v", err)
	}

	srv, err := obs.Start(obs.Config{Addr: "127.0.0.1:0", Role: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL()+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Gauges reflect the drained fleet: empty queue, nothing in flight,
	// one quarantined.
	for name, want := range map[string]float64{
		"eth_fleet_queue_depth": 0,
		"eth_fleet_inflight":    0,
		"eth_fleet_quarantined": 1,
	} {
		v, ok := exp.Value(name)
		if !ok {
			t.Errorf("metric %s missing from /metrics", name)
			continue
		}
		if v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
		if typ := exp.Types[name]; typ != "gauge" {
			t.Errorf("%s declared as %q, want gauge", name, typ)
		}
	}

	// Counters only accumulate (other tests in this process may have
	// run fleets too), so assert presence and a sane floor.
	for name, floor := range map[string]float64{
		"eth_fleet_submitted_total": 2,
		"eth_fleet_completed_total": 1,
		"eth_fleet_requeues_total":  0,
	} {
		v, ok := exp.Value(name)
		if !ok {
			t.Errorf("metric %s missing from /metrics", name)
			continue
		}
		if v < floor {
			t.Errorf("%s = %v, want >= %v", name, v, floor)
		}
	}

	// Ingestion's own plane rode along.
	if _, ok := exp.Value("eth_ingest_events_total"); !ok {
		t.Error("eth_ingest_events_total missing: fleet ingestion is not on the metrics plane")
	}
}
