package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CheckpointFile is the fleet checkpoint's name under the fleet dir.
const CheckpointFile = "fleet.ckpt"

// Quarantine records a spec the retry ladder gave up on: its attempt
// count, the final failure, and where the last journal tail was
// preserved for post-mortem.
type Quarantine struct {
	ID       string `json:"id"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err"`
	TailPath string `json:"tail,omitempty"`
}

// Checkpoint is the fleet's crash-safe state: every submitted spec,
// the completed set, and the quarantined set. It is written with the
// same write-temp/fsync/rename protocol as journal checkpoints on
// every submit/complete/quarantine transition, so a scheduler killed
// at any instant — SIGKILL included — resumes with an exact picture of
// what remains: specs minus done minus quarantined is the queue. The
// invariant a finished fleet must satisfy is the conservation law
//
//	completed + quarantined == submitted
//
// and ethinfo's fleet audit checks it from the journal side.
type Checkpoint struct {
	T           time.Time    `json:"t"`
	Specs       []Spec       `json:"specs"`
	Done        []string     `json:"done,omitempty"`
	Quarantined []Quarantine `json:"quarantined,omitempty"`
}

// WriteCheckpoint atomically replaces the fleet checkpoint in dir.
func WriteCheckpoint(dir string, cp Checkpoint) error {
	if cp.T.IsZero() {
		cp.T = time.Now()
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("fleet: encoding checkpoint: %w", err)
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, CheckpointFile)
	f, err := os.CreateTemp(dir, CheckpointFile+".tmp*")
	if err != nil {
		return fmt.Errorf("fleet: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: writing checkpoint %s: %w", path, err)
	}
	return nil
}

// ReadCheckpoint loads the fleet checkpoint from dir. A missing file
// is an os.ErrNotExist-wrapped error so -resume on a fresh dir can be
// distinguished from a corrupt checkpoint.
func ReadCheckpoint(dir string) (Checkpoint, error) {
	path := filepath.Join(dir, CheckpointFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("fleet: reading checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("fleet: decoding checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// HasCheckpoint reports whether dir holds a fleet checkpoint.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, CheckpointFile))
	return err == nil
}

// errIsNotExist reports a missing-checkpoint read.
func errIsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
