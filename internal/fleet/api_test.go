//go:build unix

package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/fleet"
)

// TestFleetAPI drives the full steering surface over HTTP: submit (one
// and many), list, fetch, counts, and drain.
func TestFleetAPI(t *testing.T) {
	dir := t.TempDir()
	s, err := fleet.New(fleet.Config{Dir: dir, Workers: 2, BackoffBase: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(context.Background()) }()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/specs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A single spec object and an array both submit.
	sp := helperSpec("api-a", "", 2, 0, dir)
	one, _ := json.Marshal(sp)
	if resp := post(string(one)); resp.StatusCode != http.StatusOK {
		t.Fatalf("single submit: %s", resp.Status)
	}
	sp2, sp3 := helperSpec("api-b", "", 2, 0, dir), helperSpec("api-c", "", 2, 0, dir)
	many, _ := json.Marshal([]fleet.Spec{sp2, sp3})
	if resp := post(string(many)); resp.StatusCode != http.StatusOK {
		t.Fatalf("array submit: %s", resp.Status)
	}

	// Duplicates conflict; malformed specs are rejected up front.
	if resp := post(string(one)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit: %s, want 409", resp.Status)
	}
	if resp := post(`{"id":"bad/slash","kind":"run"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit: %s, want 400", resp.Status)
	}
	if resp := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage submit: %s, want 400", resp.Status)
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitIdle(waitCtx); err != nil {
		t.Fatalf("fleet never idled: %v", err)
	}

	// GET /specs lists all three; GET /specs/{id} fetches one.
	resp, err := http.Get(srv.URL + "/specs")
	if err != nil {
		t.Fatal(err)
	}
	var list []fleet.SpecStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("GET /specs returned %d specs, want 3", len(list))
	}
	resp, err = http.Get(srv.URL + "/specs/api-b")
	if err != nil {
		t.Fatal(err)
	}
	var st fleet.SpecStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "api-b" || st.Status != fleet.StatusDone {
		t.Fatalf("GET /specs/api-b = %+v", st)
	}
	if resp, _ := http.Get(srv.URL + "/specs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown spec: %s, want 404", resp.Status)
	}

	// GET /fleet reports the conservation tally.
	resp, err = http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var tally struct {
		fleet.Counts
		Balanced bool `json:"balanced"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tally); err != nil {
		t.Fatal(err)
	}
	if tally.Submitted != 3 || tally.Completed != 3 || !tally.Balanced {
		t.Fatalf("GET /fleet = %+v", tally)
	}

	// POST /drain ends Run.
	resp, err = http.Post(srv.URL+"/drain", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /drain: %s, want 202", resp.Status)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after POST /drain")
	}
}
