package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"run", Spec{ID: "sweep-a.1", Kind: KindRun}, true},
		{"bench", Spec{ID: "fig8", Kind: KindBench}, true},
		{"exec", Spec{ID: "x", Kind: KindExec, Args: []string{"/bin/true"}}, true},
		{"no id", Spec{Kind: KindRun}, false},
		{"bad id char", Spec{ID: "a/b", Kind: KindRun}, false},
		{"dot prefix", Spec{ID: ".hidden", Kind: KindRun}, false},
		{"unknown kind", Spec{ID: "a", Kind: "shell"}, false},
		{"exec without argv", Spec{ID: "a", Kind: KindExec}, false},
		{"retries too negative", Spec{ID: "a", Kind: KindRun, Retries: -2}, false},
		{"no retries", Spec{ID: "a", Kind: KindRun, Retries: -1}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate = %v, want nil", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: Validate = nil, want error", tc.name)
			} else if !errors.Is(err, ErrBadSpec) {
				t.Errorf("%s: Validate = %v, want ErrBadSpec", tc.name, err)
			}
		}
	}
}

func TestSpecRetryBudget(t *testing.T) {
	if got := (Spec{Retries: 0}).retryBudget(2); got != 2 {
		t.Errorf("inherit: %d, want 2", got)
	}
	if got := (Spec{Retries: -1}).retryBudget(2); got != 0 {
		t.Errorf("none: %d, want 0", got)
	}
	if got := (Spec{Retries: 5}).retryBudget(2); got != 5 {
		t.Errorf("own: %d, want 5", got)
	}
}

func TestLoadSweep(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "sweep.json")
	os.WriteFile(good, []byte(`[
		{"id": "a", "kind": "run", "args": ["-steps", "3"]},
		{"id": "b", "kind": "bench", "retries": 1}
	]`), 0o644)
	specs, err := LoadSweep(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "a" || specs[1].Retries != 1 {
		t.Fatalf("sweep loaded as %+v", specs)
	}

	dup := filepath.Join(dir, "dup.json")
	os.WriteFile(dup, []byte(`[{"id":"a","kind":"run"},{"id":"a","kind":"run"}]`), 0o644)
	if _, err := LoadSweep(dup); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate ids = %v, want ErrBadSpec", err)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`[{"id":"a","kind":"run"},{"kind":"run"}]`), 0o644)
	if _, err := LoadSweep(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("invalid entry = %v, want ErrBadSpec (reject the whole sweep)", err)
	}
}
