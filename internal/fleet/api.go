package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler exposes the scheduler's control surface as a local HTTP API:
//
//	POST /specs       submit one spec or a JSON array of specs
//	GET  /specs       list every spec with its live state
//	GET  /specs/{id}  one spec's state
//	GET  /fleet       the live counts (conservation-law tally)
//	POST /drain       request a graceful drain
//
// The API is a steering plane, not a public service: ethserve binds it
// to localhost. Submissions are validated and checkpointed before the
// 200 returns, so an acknowledged spec survives any crash.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /specs", s.handleSubmit)
	mux.HandleFunc("GET /specs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.HandleFunc("GET /specs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		for _, st := range s.Snapshot() {
			if st.ID == id {
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
		http.Error(w, fmt.Sprintf("unknown spec %q", id), http.StatusNotFound)
	})
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		c := s.Counts()
		writeJSON(w, http.StatusOK, struct {
			Counts
			Balanced bool `json:"balanced"`
		}{c, c.Balanced()})
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		s.Drain()
		writeJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
	})
	return mux
}

// handleSubmit accepts one spec or an array. All-or-nothing per
// request is NOT promised — each spec is acknowledged individually and
// the first failure stops the batch with its index reported, matching
// the persistence order.
func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	var specs []Spec
	if err := json.Unmarshal(raw, &specs); err != nil {
		// Not an array: retry as a single spec object.
		var one Spec
		if oerr := json.Unmarshal(raw, &one); oerr != nil {
			http.Error(w, fmt.Sprintf("decoding specs: %v (send a spec object or an array of specs)", err), http.StatusBadRequest)
			return
		}
		specs = []Spec{one}
	}
	for i, sp := range specs {
		if err := s.Submit(sp); err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrBadSpec):
				status = http.StatusBadRequest
			case errors.Is(err, ErrDuplicate):
				status = http.StatusConflict
			}
			http.Error(w, fmt.Sprintf("spec %d (%d submitted before it): %v", i, i, err), status)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"submitted": len(specs)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
