//go:build unix

package fleet_test

// Fleet scheduler lifecycle, subprocess half: every worker attempt is
// this very test binary re-executed with ETH_FLEET_HELPER=1 — the
// standard helper-process pattern, so no extra binaries are built. The
// helper emits journal events like a real harness worker, resumes from
// its own journal across attempts, and — on request — dies by SIGKILL
// mid-write, refuses to run (poison), or stops heartbeating (stall).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/fleet"
	"github.com/ascr-ecx/eth/internal/journal"
)

const fleetHelperEnv = "ETH_FLEET_HELPER"

// TestHelperFleetWorker is not a test: it is the worker body, entered
// only when the scheduler under test spawns this binary with
// ETH_FLEET_HELPER=1. It exits through os.Exit, never returning to the
// test framework.
func TestHelperFleetWorker(t *testing.T) {
	if os.Getenv(fleetHelperEnv) != "1" {
		t.Skip("helper process body; skipped in normal runs")
	}
	os.Exit(fleetWorkerMain())
}

// fleetWorkerMain models one experiment worker: journal a configurable
// number of steps (resuming past steps already journaled by an earlier
// attempt), then write a deterministic artifact. ETH_HELPER_MODE
// selects the failure to inject:
//
//	crash-once  SIGKILL itself mid-sweep, leaving a torn journal tail;
//	            later attempts run clean (a marker file arms it once)
//	poison      journal one error then exit 1, every attempt
//	stall       journal one step then stop heartbeating forever
func fleetWorkerMain() int {
	id := os.Getenv("ETH_FLEET_SPEC")
	jpath := os.Getenv("ETH_FLEET_JOURNAL")
	artDir := os.Getenv("ETH_FLEET_ARTIFACTS")
	mode := os.Getenv("ETH_HELPER_MODE")
	steps := 4
	if v := os.Getenv("ETH_HELPER_STEPS"); v != "" {
		steps, _ = strconv.Atoi(v)
	}
	stepDelay := 2 * time.Millisecond
	if v := os.Getenv("ETH_HELPER_STEP_MS"); v != "" {
		ms, _ := strconv.Atoi(v)
		stepDelay = time.Duration(ms) * time.Millisecond
	}

	jw, err := journal.Append(jpath)
	if err != nil {
		// Likely ErrLocked: an orphaned earlier incarnation still holds
		// the journal. Fail this attempt; the retry ladder comes back.
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if mode == "poison" {
		jw.Emit(journal.Event{Type: journal.TypeError, Rank: 0, Step: -1, Err: "poison spec: refusing to run"})
		jw.Sync()
		jw.Close()
		return 1
	}
	if mode == "stall" {
		jw.Emit(journal.Event{Type: journal.TypeRender, Rank: 0, Step: 0})
		jw.Sync()
		time.Sleep(30 * time.Second) // the lease watchdog kills us first
		return 0
	}

	// Resume point: steps already journaled by earlier attempts stay
	// done — the fleet's exactly-once story depends on workers resuming,
	// not replaying.
	start := 0
	if prior, err := journal.ReadFile(jpath); err == nil {
		for _, ev := range prior {
			if ev.Type == journal.TypeRender {
				start++
			}
		}
	}

	for i := start; i < steps; i++ {
		jw.Emit(journal.Event{Type: journal.TypeRender, Rank: 0, Step: i})
		if err := jw.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if mode == "crash-once" && i == steps/2 {
			marker := filepath.Join(os.Getenv("ETH_HELPER_MARKER_DIR"), id+".crashed")
			if _, err := os.Stat(marker); err != nil {
				_ = os.WriteFile(marker, []byte("armed once\n"), 0o644)
				// kill -9 mid-write: a torn half-event lands at the tail,
				// exactly as an interrupted Emit leaves it. The flock is
				// advisory, so the raw append models the torn write.
				f, _ := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
				_, _ = f.WriteString(`{"type":"render","ste`)
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable
			}
		}
		time.Sleep(stepDelay)
	}

	if err := os.WriteFile(filepath.Join(artDir, "result.txt"),
		[]byte("artifact:"+id+":steps="+strconv.Itoa(steps)+"\n"), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := jw.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// helperSpec builds an exec spec that re-runs this binary as a worker.
func helperSpec(id, mode string, steps, retries int, markerDir string) fleet.Spec {
	return fleet.Spec{
		ID:   id,
		Kind: fleet.KindExec,
		Args: []string{os.Args[0], "-test.run=^TestHelperFleetWorker$", "-test.v=false"},
		Env: []string{
			fleetHelperEnv + "=1",
			"ETH_HELPER_MODE=" + mode,
			"ETH_HELPER_STEPS=" + strconv.Itoa(steps),
			"ETH_HELPER_MARKER_DIR=" + markerDir,
		},
		Retries: retries,
	}
}

// runFleet drives a scheduler to idle and drains it, returning Run's
// error.
func runFleet(t *testing.T, s *fleet.Scheduler, specs []fleet.Spec) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background()) }()
	for _, sp := range specs {
		if err := s.Submit(sp); err != nil {
			t.Fatalf("Submit(%s): %v", sp.ID, err)
		}
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitIdle(waitCtx); err != nil {
		t.Fatalf("fleet never went idle: %v (counts %+v)", err, s.Counts())
	}
	s.Drain()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Drain")
		return nil
	}
}

// chaosDir returns the artifact dir for a test, honoring ETH_CHAOS_DIR
// so CI can upload fleet state on failure.
func chaosDir(t *testing.T) string {
	if base := os.Getenv("ETH_CHAOS_DIR"); base != "" {
		dir := filepath.Join(base, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestFleetCompletesSweep is the happy path: a small sweep across a
// bounded pool completes every spec, balances the conservation law,
// persists a complete checkpoint, and journals the full submit → lease
// → complete lifecycle per spec.
func TestFleetCompletesSweep(t *testing.T) {
	dir := chaosDir(t)
	s, err := fleet.New(fleet.Config{Dir: dir, Workers: 2, BackoffBase: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"exp-a", "exp-b", "exp-c", "exp-d"}
	var specs []fleet.Spec
	for _, id := range ids {
		specs = append(specs, helperSpec(id, "", 3, 0, dir))
	}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("Run: %v", err)
	}

	c := s.Counts()
	if !c.Balanced() || c.Completed != len(ids) || c.Quarantined != 0 {
		t.Fatalf("counts %+v, want %d completed, balanced", c, len(ids))
	}
	got := s.Completed()
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("completed %v, want %v", got, ids)
	}
	for _, id := range ids {
		art := filepath.Join(dir, "artifacts", id, "result.txt")
		if _, err := os.Stat(art); err != nil {
			t.Errorf("spec %s left no artifact: %v", id, err)
		}
	}

	// The checkpoint alone reconstructs the fleet.
	cp, err := fleet.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Specs) != len(ids) || len(cp.Done) != len(ids) || len(cp.Quarantined) != 0 {
		t.Fatalf("checkpoint %+v incomplete", cp)
	}

	// The merged journal carries the full lifecycle, tagged by spec.
	events, err := journal.ReadFile(filepath.Join(dir, fleet.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	perSpec := map[string]map[string]int{}
	renders := map[string]int{}
	for _, ev := range events {
		if ev.Src == "" {
			continue
		}
		if perSpec[ev.Src] == nil {
			perSpec[ev.Src] = map[string]int{}
		}
		perSpec[ev.Src][ev.Type]++
		if ev.Type == journal.TypeRender {
			renders[ev.Src]++
		}
	}
	for _, id := range ids {
		m := perSpec[id]
		if m[journal.TypeSubmit] != 1 || m[journal.TypeLease] != 1 || m[journal.TypeComplete] != 1 {
			t.Errorf("spec %s lifecycle events = %v, want 1 submit/lease/complete", id, m)
		}
		if renders[id] != 3 {
			t.Errorf("spec %s: %d worker render events ingested, want 3", id, renders[id])
		}
	}
}

// TestFleetRetryLadder: a poison spec climbs retry → requeue →
// quarantine while a healthy spec completes beside it; the quarantined
// spec keeps its journal tail, and the conservation law still holds.
func TestFleetRetryLadder(t *testing.T) {
	dir := chaosDir(t)
	s, err := fleet.New(fleet.Config{Dir: dir, Workers: 2, BackoffBase: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	specs := []fleet.Spec{
		helperSpec("good", "", 3, 0, dir),
		helperSpec("bad", "poison", 3, 1, dir), // budget 1: two attempts total
	}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("Run: %v", err)
	}

	c := s.Counts()
	if c.Completed != 1 || c.Quarantined != 1 || !c.Balanced() {
		t.Fatalf("counts %+v, want 1 completed + 1 quarantined, balanced", c)
	}
	qs := s.Quarantined()
	if len(qs) != 1 || qs[0].ID != "bad" {
		t.Fatalf("quarantined %+v", qs)
	}
	if qs[0].Attempts != 2 {
		t.Errorf("poison spec burned %d attempts, want 2 (1 + retry budget 1)", qs[0].Attempts)
	}
	if qs[0].TailPath == "" {
		t.Fatal("quarantine kept no journal tail")
	}
	tail, err := os.ReadFile(qs[0].TailPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tail), "poison spec") {
		t.Errorf("preserved tail does not show the failure: %q", tail)
	}

	events, err := journal.ReadFile(filepath.Join(dir, fleet.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	var requeues, quarantines int
	for _, ev := range events {
		if ev.Src != "bad" {
			continue
		}
		switch ev.Type {
		case journal.TypeRequeue:
			requeues++
		case journal.TypeQuarantine:
			quarantines++
		}
	}
	if requeues != 1 || quarantines != 1 {
		t.Errorf("bad spec journaled %d requeues and %d quarantines, want 1 and 1", requeues, quarantines)
	}
}

// TestFleetLeaseKillsStalledWorker: a worker that stops journaling is
// killed by the lease heartbeat and its spec quarantines (no retries)
// with a stall-classified error.
func TestFleetLeaseKillsStalledWorker(t *testing.T) {
	dir := chaosDir(t)
	s, err := fleet.New(fleet.Config{
		Dir: dir, Workers: 1,
		Stall:       300 * time.Millisecond,
		Grace:       100 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []fleet.Spec{helperSpec("wedged", "stall", 3, -1, dir)}
	if err := runFleet(t, s, specs); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := s.Counts()
	if c.Quarantined != 1 || !c.Balanced() {
		t.Fatalf("counts %+v, want the stalled spec quarantined", c)
	}
	qs := s.Quarantined()
	if !strings.Contains(qs[0].Err, "stall") {
		t.Errorf("quarantine error %q does not classify the stall", qs[0].Err)
	}
}

// TestFleetDuplicateSubmit: the same ID cannot enter the fleet twice.
func TestFleetDuplicateSubmit(t *testing.T) {
	dir := t.TempDir()
	s, err := fleet.New(fleet.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sp := helperSpec("dup", "", 1, 0, dir)
	if err := s.Submit(sp); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(sp); !errors.Is(err, fleet.ErrDuplicate) {
		t.Fatalf("second Submit = %v, want ErrDuplicate", err)
	}
	// Never ran: close the scheduler by running an already-drained loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Run(ctx); !errors.Is(err, context.Canceled) && err != nil && !strings.Contains(err.Error(), "shutdown") {
		t.Logf("Run on canceled ctx: %v", err)
	}
}

// TestFleetSecondSchedulerRejected: the fleet journal's flock means one
// scheduler per fleet dir.
func TestFleetSecondSchedulerRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := fleet.New(fleet.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.New(fleet.Config{Dir: dir}); !errors.Is(err, journal.ErrLocked) {
		t.Fatalf("second scheduler = %v, want journal.ErrLocked", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Run(ctx)
}
