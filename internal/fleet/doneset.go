package fleet

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/ascr-ecx/eth/internal/journal"
)

// DoneSet is the completed-work-unit ledger shared by every sweep
// driver: ethbench's experiment checkpoint and the fleet scheduler's
// completed-spec set are the same idea, so they share this type. It
// wraps the journal.Checkpoint sidecar — the on-disk format is
// unchanged, so checkpoint files written by earlier ethbench builds
// load exactly as before — and adds the set operations sweeps need:
// membership, insertion without duplicates, and an atomic Save.
type DoneSet struct {
	cp journal.Checkpoint
}

// NewDoneSet returns an empty set.
func NewDoneSet() *DoneSet {
	return &DoneSet{cp: journal.Checkpoint{Step: -1}}
}

// LoadDoneSet reads the checkpoint at path. A missing file is a fresh
// start: an empty set and no error. Any other read or decode failure
// is returned, so a corrupt ledger never silently replays a sweep.
func LoadDoneSet(path string) (*DoneSet, error) {
	cp, err := journal.ReadCheckpoint(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewDoneSet(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: loading done set: %w", err)
	}
	if cp.Step == 0 {
		cp.Step = -1 // done sets are never step-scoped
	}
	return &DoneSet{cp: cp}, nil
}

// Has reports whether id is recorded as completed.
func (d *DoneSet) Has(id string) bool { return d.cp.Has(id) }

// Add records id as completed; re-adding a known id is a no-op, so a
// resumed sweep that re-verifies a finished unit never double-counts.
func (d *DoneSet) Add(id string) {
	if d.cp.Has(id) {
		return
	}
	d.cp.Done = append(d.cp.Done, id)
}

// Len reports how many units are recorded as completed.
func (d *DoneSet) Len() int { return len(d.cp.Done) }

// IDs returns the completed IDs in completion order. The slice is a
// copy; mutating it does not affect the set.
func (d *DoneSet) IDs() []string {
	return append([]string(nil), d.cp.Done...)
}

// Save atomically replaces the checkpoint at path with the current set,
// stamped with the given detail (for humans reading the sidecar). The
// write-temp/fsync/rename protocol means a crash mid-save leaves the
// previous ledger intact, never a torn one.
func (d *DoneSet) Save(path, detail string) error {
	cp := d.cp
	cp.Detail = detail
	cp.T = time.Time{} // restamp at write
	if err := journal.WriteCheckpoint(path, cp); err != nil {
		return fmt.Errorf("fleet: saving done set: %w", err)
	}
	return nil
}
