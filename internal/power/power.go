// Package power models node power draw and the rack-level metering of the
// paper's testbed. Hikari's HPE Apollo 8000 system manager samples
// instantaneous power and records 5-second averages (§V-A, §V-C); the
// Meter type reproduces that pipeline over a simulated timeline so
// experiments report power/energy exactly the way the paper computes them:
// average power over a run times execution time.
//
// The node model is the standard linear form P = Idle + util * Dynamic.
// Coefficients are calibrated in DESIGN.md §5 so that 400 busy nodes draw
// ~55 kW (Table I) and the dynamic fraction matches the paper's Figure 9b
// sampling result.
package power

import (
	"fmt"
	"math"
)

// NodeModel is the per-node linear power model.
type NodeModel struct {
	// IdleW is the node's idle draw in watts.
	IdleW float64
	// DynamicW is the additional draw at full utilization in watts.
	DynamicW float64
}

// Hikari returns the calibrated model for the paper's testbed nodes
// (2x 12-core Haswell E5-2600v3; HVDC power delivery makes idle draw
// comparatively low).
func Hikari() NodeModel {
	return NodeModel{IdleW: 85, DynamicW: 190}
}

// Power returns the node draw at the given utilization (clamped to [0,1]).
func (m NodeModel) Power(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return m.IdleW + util*m.DynamicW
}

// Interval is a span of simulated time with constant cluster-wide power.
type Interval struct {
	// Start and End are simulated seconds from run start.
	Start, End float64
	// Watts is the total cluster draw during the interval.
	Watts float64
}

// Meter accumulates a power timeline and reports Apollo-8000-style
// 5-second averaged samples plus run-level aggregates.
type Meter struct {
	intervals []Interval
	cursor    float64
}

// SamplePeriod is the Apollo 8000 system manager's recording period.
const SamplePeriod = 5.0 // seconds

// Record appends a constant-power interval of the given duration,
// starting where the previous interval ended. Negative or zero durations
// are ignored.
func (m *Meter) Record(seconds, watts float64) {
	if seconds <= 0 {
		return
	}
	m.intervals = append(m.intervals, Interval{
		Start: m.cursor,
		End:   m.cursor + seconds,
		Watts: watts,
	})
	m.cursor += seconds
}

// Duration returns the total recorded time in seconds.
func (m *Meter) Duration() float64 { return m.cursor }

// EnergyJ integrates the timeline and returns total energy in joules.
func (m *Meter) EnergyJ() float64 {
	e := 0.0
	for _, iv := range m.intervals {
		e += (iv.End - iv.Start) * iv.Watts
	}
	return e
}

// AverageW returns run-average power (energy / duration), the quantity
// the paper multiplies by execution time to report energy (§V-C).
func (m *Meter) AverageW() float64 {
	if m.cursor == 0 {
		return 0
	}
	return m.EnergyJ() / m.cursor
}

// PeakW returns the highest interval power.
func (m *Meter) PeakW() float64 {
	p := 0.0
	for _, iv := range m.intervals {
		p = math.Max(p, iv.Watts)
	}
	return p
}

// Samples returns the 5-second averaged series the system manager would
// have logged: sample k averages [k*5, (k+1)*5), with the final partial
// window averaged over its actual length.
func (m *Meter) Samples() []float64 {
	if m.cursor == 0 {
		return nil
	}
	n := int(math.Ceil(m.cursor / SamplePeriod))
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		lo := float64(k) * SamplePeriod
		hi := math.Min(lo+SamplePeriod, m.cursor)
		e := 0.0
		for _, iv := range m.intervals {
			ovLo := math.Max(lo, iv.Start)
			ovHi := math.Min(hi, iv.End)
			if ovHi > ovLo {
				e += (ovHi - ovLo) * iv.Watts
			}
		}
		out[k] = e / (hi - lo)
	}
	return out
}

// Reset clears the timeline.
func (m *Meter) Reset() {
	m.intervals = m.intervals[:0]
	m.cursor = 0
}

// String summarizes the meter.
func (m *Meter) String() string {
	return fmt.Sprintf("power: %.1fs, avg %.1f W, peak %.1f W, %.1f kJ",
		m.Duration(), m.AverageW(), m.PeakW(), m.EnergyJ()/1000)
}

// UtilizationForWork maps work-per-core to a utilization level with a
// saturating curve: when each core has at least saturationWork units the
// node is fully utilized; below that utilization falls off smoothly but
// never below floor (OS, memory, uncore activity). This reproduces the
// paper's Figure 9b observation that aggressive spatial sampling lowers
// dynamic power because "it becomes difficult to keep all parallel
// resources busy".
func UtilizationForWork(workPerCore, saturationWork, floor float64) float64 {
	if saturationWork <= 0 {
		return 1
	}
	u := workPerCore / saturationWork
	if u > 1 {
		u = 1
	}
	if u < floor {
		u = floor
	}
	return u
}
