package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeModelClamps(t *testing.T) {
	m := NodeModel{IdleW: 100, DynamicW: 200}
	if got := m.Power(0); got != 100 {
		t.Errorf("idle = %v", got)
	}
	if got := m.Power(1); got != 300 {
		t.Errorf("full = %v", got)
	}
	if got := m.Power(-5); got != 100 {
		t.Errorf("negative util = %v", got)
	}
	if got := m.Power(7); got != 300 {
		t.Errorf("over-unity util = %v", got)
	}
	if got := m.Power(0.5); got != 200 {
		t.Errorf("half = %v", got)
	}
}

func TestHikariCalibration(t *testing.T) {
	// 400 nodes at the utilization the HACC runs see (~0.27) should land
	// near the paper's 55 kW rack readings.
	m := Hikari()
	total := 400 * m.Power(0.27)
	if total < 50_000 || total > 60_000 {
		t.Errorf("400-node draw = %.0f W, want ~55 kW", total)
	}
}

func TestMeterEnergyAndAverage(t *testing.T) {
	var m Meter
	m.Record(10, 100) // 1000 J
	m.Record(5, 400)  // 2000 J
	if got := m.EnergyJ(); got != 3000 {
		t.Errorf("energy = %v", got)
	}
	if got := m.Duration(); got != 15 {
		t.Errorf("duration = %v", got)
	}
	if got := m.AverageW(); got != 200 {
		t.Errorf("average = %v", got)
	}
	if got := m.PeakW(); got != 400 {
		t.Errorf("peak = %v", got)
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	var m Meter
	m.Record(0, 500)
	m.Record(-3, 500)
	if m.Duration() != 0 || m.EnergyJ() != 0 {
		t.Error("non-positive intervals recorded")
	}
	if m.AverageW() != 0 {
		t.Error("empty meter average not 0")
	}
	if m.Samples() != nil {
		t.Error("empty meter has samples")
	}
}

func TestMeterSamples(t *testing.T) {
	var m Meter
	m.Record(5, 100)  // sample 0: 100 W
	m.Record(5, 300)  // sample 1: 300 W
	m.Record(2.5, 80) // sample 2 (partial): 80 W
	s := m.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %v", s)
	}
	if s[0] != 100 || s[1] != 300 || s[2] != 80 {
		t.Errorf("samples = %v", s)
	}
}

func TestMeterSamplesSpanIntervals(t *testing.T) {
	var m Meter
	m.Record(7.5, 200) // covers sample 0 fully, half of sample 1
	m.Record(7.5, 400) // second half of sample 1, sample 2
	s := m.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %v", s)
	}
	if s[0] != 200 || math.Abs(s[1]-300) > 1e-9 || s[2] != 400 {
		t.Errorf("samples = %v", s)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Record(5, 100)
	m.Reset()
	if m.Duration() != 0 || m.EnergyJ() != 0 {
		t.Error("reset failed")
	}
}

// Property: energy equals average power times duration exactly.
func TestEnergyIdentityProperty(t *testing.T) {
	f := func(durs, watts []uint16) bool {
		var m Meter
		n := len(durs)
		if len(watts) < n {
			n = len(watts)
		}
		for i := 0; i < n; i++ {
			m.Record(float64(durs[i])/100, float64(watts[i]))
		}
		if m.Duration() == 0 {
			return m.EnergyJ() == 0
		}
		return math.Abs(m.EnergyJ()-m.AverageW()*m.Duration()) < 1e-6*(1+m.EnergyJ())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the mean of the 5s samples weighted by window length equals
// the run average.
func TestSampleConsistencyProperty(t *testing.T) {
	f := func(durs, watts []uint16) bool {
		var m Meter
		n := len(durs)
		if len(watts) < n {
			n = len(watts)
		}
		for i := 0; i < n; i++ {
			m.Record(float64(durs[i]%1000)/50+0.01, float64(watts[i]))
		}
		if m.Duration() == 0 {
			return true
		}
		samples := m.Samples()
		total := 0.0
		for k, s := range samples {
			lo := float64(k) * SamplePeriod
			hi := math.Min(lo+SamplePeriod, m.Duration())
			total += s * (hi - lo)
		}
		return math.Abs(total-m.EnergyJ()) < 1e-6*(1+m.EnergyJ())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationForWork(t *testing.T) {
	// Saturated.
	if got := UtilizationForWork(100, 50, 0.1); got != 1 {
		t.Errorf("saturated = %v", got)
	}
	// Proportional below saturation.
	if got := UtilizationForWork(25, 50, 0.1); got != 0.5 {
		t.Errorf("half = %v", got)
	}
	// Floor.
	if got := UtilizationForWork(1, 1000, 0.15); got != 0.15 {
		t.Errorf("floor = %v", got)
	}
	// Degenerate saturation.
	if got := UtilizationForWork(5, 0, 0.1); got != 1 {
		t.Errorf("zero saturation = %v", got)
	}
}

func TestMeterString(t *testing.T) {
	var m Meter
	m.Record(2, 100)
	if m.String() == "" {
		t.Error("empty String()")
	}
}
