package render

import (
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/raster"
	"github.com/ascr-ecx/eth/internal/vec"
)

// screenHeadlight lights sphere impostors from slightly above-left of the
// viewer in screen space (impostor normals live in screen space, +Z
// toward the viewer), giving the roundness cue the paper's Gaussian
// splatter shader produces.
var screenHeadlight = vec.New(-0.3, 0.4, 1).Norm()

func drawSprites(frame *fb.Frame, sprites []raster.Sprite) {
	raster.DrawSprites(frame, sprites, 0)
}

func drawImpostors(frame *fb.Frame, imps []raster.Impostor) {
	raster.DrawImpostors(frame, imps, screenHeadlight, 0)
}
