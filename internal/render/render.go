// Package render unifies ETH's two rendering back-ends behind one
// interface (the paper's Figure 6: "options for pipeline execution").
// Experiments name an algorithm — "raycast", "gsplat", "points" for
// particle data; "vtk-iso", "ray-iso", "vtk-slice", "ray-slice" for
// volumes — and the registry returns a Renderer whose Render method
// reports instrumentation (setup vs render time, primitive counts) that
// the harness and the cluster model consume.
package render

import (
	"fmt"
	"sort"
	"time"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/geom"
	"github.com/ascr-ecx/eth/internal/rt"
	"github.com/ascr-ecx/eth/internal/vec"
)

// Options carries the per-render parameters shared by all algorithms;
// each algorithm reads the fields it understands.
type Options struct {
	// ColorField names the scalar for colormapping (particles) or the
	// volume field (grids). Defaults: "speed" for clouds,
	// "temperature" for grids.
	ColorField string
	// Colormap maps normalized scalars; nil selects a per-kind default.
	Colormap *fb.Colormap
	// IsoValue is the contour value for isosurface algorithms.
	IsoValue float32
	// SlicePoint / SliceNormal define the plane for slice algorithms.
	SlicePoint, SliceNormal vec.V3
	// PointSize is the sprite size for the points algorithm (pixels).
	PointSize int
	// Radius is the particle world radius for splats and raycast spheres;
	// <= 0 derives one from density.
	Radius float64
	// ScalarLo/Hi pin the colormap normalization range.
	ScalarLo, ScalarHi float32
	// Strategy selects the BVH build for raycasting.
	Strategy rt.BuildStrategy
}

// Stats instruments one Render call.
type Stats struct {
	// Algorithm is the registry name.
	Algorithm string
	// Elements is the number of input elements processed (particles or
	// grid cells).
	Elements int
	// Primitives is the number of intermediate primitives generated
	// (sprites, impostors, triangles, or BVH nodes).
	Primitives int
	// Setup is the time spent building intermediate structures
	// (geometry extraction or BVH build) before pixels were produced.
	Setup time.Duration
	// Render is the time spent producing pixels.
	Render time.Duration
}

// Total returns setup + render time.
func (s Stats) Total() time.Duration { return s.Setup + s.Render }

// Renderer renders one dataset kind with one algorithm.
type Renderer interface {
	// Name returns the registry name.
	Name() string
	// Kind returns the dataset kind this renderer accepts.
	Kind() data.Kind
	// Render draws ds into frame. Implementations may cache
	// view-independent structures (BVHs) across calls with the same
	// dataset, mirroring production raycasters.
	Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error)
}

// factories registers constructors; each New call returns a fresh,
// stateful renderer (caches are per-instance).
var factories = map[string]func() Renderer{
	"points":    func() Renderer { return &pointsRenderer{} },
	"gsplat":    func() Renderer { return &splatRenderer{} },
	"raycast":   func() Renderer { return &raycastSpheres{} },
	"vtk-iso":   func() Renderer { return &vtkIso{} },
	"ray-iso":   func() Renderer { return &rayIso{} },
	"vtk-slice": func() Renderer { return &vtkSlice{} },
	"ray-slice": func() Renderer { return &raySlice{} },
}

// New returns a fresh renderer for the named algorithm.
func New(name string) (Renderer, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("render: unknown algorithm %q (have %v)", name, Algorithms())
	}
	return f(), nil
}

// Algorithms returns the sorted registry names.
func Algorithms() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AlgorithmsFor returns the registry names accepting the given kind.
func AlgorithmsFor(kind data.Kind) []string {
	var names []string
	for _, n := range Algorithms() {
		r, _ := New(n)
		if r.Kind() == kind {
			names = append(names, n)
		}
	}
	return names
}

// vec3zero and defaultNormal are shared by the slice renderers.
var (
	vec3zero      vec.V3
	defaultNormal = vec.New(0, 0, 1)
)

// kindError reports a dataset-kind mismatch uniformly.
func kindError(name, want string, ds data.Dataset) error {
	return fmt.Errorf("render: %s requires %s, got %v", name, want, ds.Kind())
}

func wantCloud(ds data.Dataset, name string) (*data.PointCloud, error) {
	p, ok := ds.(*data.PointCloud)
	if !ok {
		return nil, kindError(name, "a point cloud", ds)
	}
	return p, nil
}

func wantGrid(ds data.Dataset, name string) (*data.StructuredGrid, error) {
	g, ok := ds.(*data.StructuredGrid)
	if !ok {
		return nil, kindError(name, "a structured grid", ds)
	}
	return g, nil
}

func cloudColorField(opt Options) string {
	if opt.ColorField == "" {
		return "speed"
	}
	return opt.ColorField
}

func gridField(opt Options) string {
	if opt.ColorField == "" {
		return "temperature"
	}
	return opt.ColorField
}

// ---- particle algorithms ----

// pointsRenderer implements the "VTK points" technique (§IV-C).
type pointsRenderer struct{}

func (*pointsRenderer) Name() string    { return "points" }
func (*pointsRenderer) Kind() data.Kind { return data.KindPointCloud }

func (*pointsRenderer) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	p, err := wantCloud(ds, "points")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	sprites, err := geom.MapPoints(p, cam, frame.W, frame.H, geom.PointsOptions{
		Size:       opt.PointSize,
		ColorField: cloudColorField(opt),
		Colormap:   opt.Colormap,
		ScalarLo:   opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	drawSprites(frame, sprites)
	n := len(sprites)
	geom.PutSprites(sprites)
	return Stats{
		Algorithm:  "points",
		Elements:   p.Count(),
		Primitives: n,
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// splatRenderer implements the Gaussian splatter (§IV-C).
type splatRenderer struct{}

func (*splatRenderer) Name() string    { return "gsplat" }
func (*splatRenderer) Kind() data.Kind { return data.KindPointCloud }

func (*splatRenderer) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	p, err := wantCloud(ds, "gsplat")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	imps, err := geom.MapSplats(p, cam, frame.W, frame.H, geom.SplatOptions{
		WorldRadius: opt.Radius,
		ColorField:  cloudColorField(opt),
		Colormap:    opt.Colormap,
		ScalarLo:    opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	drawImpostors(frame, imps)
	n := len(imps)
	geom.PutImpostors(imps)
	return Stats{
		Algorithm:  "gsplat",
		Elements:   p.Count(),
		Primitives: n,
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// raycastSpheres implements "Raycast Spheres" (§IV-C) with a per-dataset
// BVH cache: the paper notes raycasting's extra cost is the one-time
// acceleration-structure build, so repeat renders of the same data reuse
// the tree.
type raycastSpheres struct {
	cached   *rt.SphereBVH
	cacheKey *data.PointCloud
	cacheGen uint64
	cacheRad float64
}

func (*raycastSpheres) Name() string    { return "raycast" }
func (*raycastSpheres) Kind() data.Kind { return data.KindPointCloud }

func (r *raycastSpheres) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	p, err := wantCloud(ds, "raycast")
	if err != nil {
		return Stats{}, err
	}
	sphereOpt := rt.SphereOptions{
		Radius:     opt.Radius,
		ColorField: cloudColorField(opt),
		Colormap:   opt.Colormap,
		Strategy:   opt.Strategy,
		ScalarLo:   opt.ScalarLo, ScalarHi: opt.ScalarHi,
	}
	t0 := time.Now()
	radius := opt.Radius
	if radius <= 0 {
		radius = geom.DefaultSplatRadius(p)
		sphereOpt.Radius = radius
	}
	// The generation check catches in-place rewrites: a buffer-reusing
	// receiver delivers every step in the same PointCloud object, so
	// pointer identity alone would serve a stale tree.
	if r.cacheKey != p || r.cacheGen != p.Generation() || r.cacheRad != radius {
		r.cached = rt.BuildSphereBVH(p, radius, opt.Strategy)
		r.cacheKey = p
		r.cacheGen = p.Generation()
		r.cacheRad = radius
	}
	t1 := time.Now()
	if err := rt.RaycastSpheresWithBVH(frame, p, r.cached, cam, sphereOpt); err != nil {
		return Stats{}, err
	}
	return Stats{
		Algorithm:  "raycast",
		Elements:   p.Count(),
		Primitives: r.cached.NodesBuilt,
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// ---- volume algorithms ----

// vtkIso is the geometry-pipeline isosurface: contour extraction then
// rasterization, VTK-style.
type vtkIso struct{}

func (*vtkIso) Name() string    { return "vtk-iso" }
func (*vtkIso) Kind() data.Kind { return data.KindStructuredGrid }

func (*vtkIso) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	g, err := wantGrid(ds, "vtk-iso")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	mesh, err := geom.Isosurface(g, gridField(opt), opt.IsoValue)
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	geom.DrawMesh(frame, mesh, cam, geom.ShadeOptions{
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	return Stats{
		Algorithm:  "vtk-iso",
		Elements:   g.Cells(),
		Primitives: mesh.TriangleCount(),
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// rayIso is the raycasting isosurface (ray marching).
type rayIso struct{}

func (*rayIso) Name() string    { return "ray-iso" }
func (*rayIso) Kind() data.Kind { return data.KindStructuredGrid }

func (*rayIso) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	g, err := wantGrid(ds, "ray-iso")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	err = rt.RaycastIsosurface(frame, g, cam, opt.IsoValue, rt.VolumeOptions{
		Field:    gridField(opt),
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Algorithm:  "ray-iso",
		Elements:   g.Cells(),
		Primitives: frame.W * frame.H, // rays
		Render:     time.Since(t0),
	}, nil
}

// vtkSlice is the geometry-pipeline slicing plane.
type vtkSlice struct{}

func (*vtkSlice) Name() string    { return "vtk-slice" }
func (*vtkSlice) Kind() data.Kind { return data.KindStructuredGrid }

func (*vtkSlice) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	g, err := wantGrid(ds, "vtk-slice")
	if err != nil {
		return Stats{}, err
	}
	point, normal := slicePlane(g, opt)
	t0 := time.Now()
	mesh, err := geom.SlicePlane(g, gridField(opt), point, normal)
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	geom.DrawMesh(frame, mesh, cam, geom.ShadeOptions{
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
		Ambient: 0.95, // slices are unshaded color maps
	})
	return Stats{
		Algorithm:  "vtk-slice",
		Elements:   g.Cells(),
		Primitives: mesh.TriangleCount(),
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// raySlice is the raycasting slicing plane.
type raySlice struct{}

func (*raySlice) Name() string    { return "ray-slice" }
func (*raySlice) Kind() data.Kind { return data.KindStructuredGrid }

func (*raySlice) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	g, err := wantGrid(ds, "ray-slice")
	if err != nil {
		return Stats{}, err
	}
	point, normal := slicePlane(g, opt)
	t0 := time.Now()
	err = rt.RaycastSlice(frame, g, cam, point, normal, rt.VolumeOptions{
		Field:    gridField(opt),
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Algorithm:  "ray-slice",
		Elements:   g.Cells(),
		Primitives: frame.W * frame.H,
		Render:     time.Since(t0),
	}, nil
}

func slicePlane(g *data.StructuredGrid, opt Options) (point, normal vec.V3) {
	point = opt.SlicePoint
	normal = opt.SliceNormal
	if normal == (vec.V3{}) {
		normal = vec.New(0, 0, 1)
		point = g.Bounds().Center()
	}
	return point, normal
}

func volumeColormap(opt Options) *fb.Colormap {
	if opt.Colormap != nil {
		return opt.Colormap
	}
	return fb.Hot
}
