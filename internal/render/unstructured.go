package render

import (
	"time"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/geom"
	"github.com/ascr-ecx/eth/internal/rt"
)

// Unstructured-grid renderers — the §VII extension: "If necessary, the
// visualization proxy is extended to include any new algorithm that the
// user may wish to study." These register the tetrahedral-mesh contour
// filters under "uns-iso" and "uns-slice".

func init() {
	factories["uns-iso"] = func() Renderer { return &unsIso{} }
	factories["uns-slice"] = func() Renderer { return &unsSlice{} }
}

func wantUnstructured(ds data.Dataset, name string) (*data.UnstructuredGrid, error) {
	u, ok := ds.(*data.UnstructuredGrid)
	if !ok {
		return nil, kindError(name, "an unstructured grid", ds)
	}
	return u, nil
}

// unsIso is the geometry-pipeline isosurface over tetrahedral meshes.
type unsIso struct{}

func (*unsIso) Name() string    { return "uns-iso" }
func (*unsIso) Kind() data.Kind { return data.KindUnstructuredGrid }

func (*unsIso) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	u, err := wantUnstructured(ds, "uns-iso")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	mesh, err := geom.IsosurfaceUnstructured(u, gridField(opt), opt.IsoValue)
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	geom.DrawMesh(frame, mesh, cam, geom.ShadeOptions{
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	return Stats{
		Algorithm:  "uns-iso",
		Elements:   u.Cells(),
		Primitives: mesh.TriangleCount(),
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// unsSlice is the geometry-pipeline slicing plane over tetrahedral
// meshes.
type unsSlice struct{}

func (*unsSlice) Name() string    { return "uns-slice" }
func (*unsSlice) Kind() data.Kind { return data.KindUnstructuredGrid }

func (*unsSlice) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	u, err := wantUnstructured(ds, "uns-slice")
	if err != nil {
		return Stats{}, err
	}
	point, normal := opt.SlicePoint, opt.SliceNormal
	if normal == (vec3zero) {
		normal = defaultNormal
		point = u.Bounds().Center()
	}
	t0 := time.Now()
	mesh, err := geom.SlicePlaneUnstructured(u, gridField(opt), point, normal)
	if err != nil {
		return Stats{}, err
	}
	t1 := time.Now()
	geom.DrawMesh(frame, mesh, cam, geom.ShadeOptions{
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
		Ambient: 0.95,
	})
	return Stats{
		Algorithm:  "uns-slice",
		Elements:   u.Cells(),
		Primitives: mesh.TriangleCount(),
		Setup:      t1.Sub(t0),
		Render:     time.Since(t1),
	}, nil
}

// rayDVR is the direct-volume-rendering extension algorithm for
// structured grids, registered alongside the paper's slice/isosurface
// back-ends.
type rayDVR struct{}

func init() {
	factories["ray-dvr"] = func() Renderer { return &rayDVR{} }
}

func (*rayDVR) Name() string    { return "ray-dvr" }
func (*rayDVR) Kind() data.Kind { return data.KindStructuredGrid }

func (*rayDVR) Render(frame *fb.Frame, ds data.Dataset, cam *camera.Camera, opt Options) (Stats, error) {
	g, err := wantGrid(ds, "ray-dvr")
	if err != nil {
		return Stats{}, err
	}
	t0 := time.Now()
	err = rt.RaycastVolume(frame, g, cam, rt.DVROptions{
		Field:    gridField(opt),
		Colormap: volumeColormap(opt),
		ScalarLo: opt.ScalarLo, ScalarHi: opt.ScalarHi,
	})
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Algorithm:  "ray-dvr",
		Elements:   g.Cells(),
		Primitives: frame.W * frame.H,
		Render:     time.Since(t0),
	}, nil
}
