package render

import (
	"math/rand"
	"testing"

	"github.com/ascr-ecx/eth/internal/camera"
	"github.com/ascr-ecx/eth/internal/data"
	"github.com/ascr-ecx/eth/internal/fb"
	"github.com/ascr-ecx/eth/internal/vec"
)

func testCloud(n int) *data.PointCloud {
	rng := rand.New(rand.NewSource(1))
	p := data.NewPointCloud(n)
	for i := 0; i < n; i++ {
		p.IDs[i] = int64(i)
		p.SetPos(i, vec.New(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		p.SetVel(i, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	p.SpeedField()
	return p
}

func testGrid(n int) *data.StructuredGrid {
	g := data.NewStructuredGrid(n, n, n)
	c := vec.Splat(float64(n-1) / 2)
	g.FillField("temperature", func(p vec.V3) float32 {
		return float32(1 / (1 + p.Sub(c).Len()))
	})
	return g
}

func TestRegistry(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 10 {
		t.Fatalf("algorithms = %v", algs)
	}
	for _, name := range algs {
		r, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name {
			t.Errorf("renderer %q reports name %q", name, r.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmsFor(t *testing.T) {
	clouds := AlgorithmsFor(data.KindPointCloud)
	grids := AlgorithmsFor(data.KindStructuredGrid)
	if len(clouds) != 3 {
		t.Errorf("cloud algorithms = %v", clouds)
	}
	if len(grids) != 5 {
		t.Errorf("grid algorithms = %v", grids)
	}
}

func TestAllCloudAlgorithmsRender(t *testing.T) {
	p := testCloud(2000)
	cam := camera.ForBounds(p.Bounds())
	for _, name := range AlgorithmsFor(data.KindPointCloud) {
		r, _ := New(name)
		frame := fb.New(96, 96)
		stats, err := r.Render(frame, p, &cam, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if frame.CoveredPixels() < 50 {
			t.Errorf("%s covered %d pixels", name, frame.CoveredPixels())
		}
		if stats.Elements != p.Count() {
			t.Errorf("%s elements = %d", name, stats.Elements)
		}
		if stats.Primitives == 0 {
			t.Errorf("%s reported no primitives", name)
		}
		if stats.Total() <= 0 {
			t.Errorf("%s reported no time", name)
		}
		// Wrong kind rejected.
		if _, err := r.Render(frame, testGrid(4), &cam, Options{}); err == nil {
			t.Errorf("%s accepted a grid", name)
		}
	}
}

func TestAllGridAlgorithmsRender(t *testing.T) {
	g := testGrid(24)
	cam := camera.ForBounds(g.Bounds())
	for _, name := range AlgorithmsFor(data.KindStructuredGrid) {
		r, _ := New(name)
		frame := fb.New(96, 96)
		stats, err := r.Render(frame, g, &cam, Options{IsoValue: 0.12})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if frame.CoveredPixels() < 50 {
			t.Errorf("%s covered %d pixels", name, frame.CoveredPixels())
		}
		if stats.Elements != g.Cells() {
			t.Errorf("%s elements = %d, want %d", name, stats.Elements, g.Cells())
		}
		if _, err := r.Render(frame, testCloud(4), &cam, Options{}); err == nil {
			t.Errorf("%s accepted a cloud", name)
		}
	}
}

func TestRaycastBVHCache(t *testing.T) {
	p := testCloud(5000)
	cam := camera.ForBounds(p.Bounds())
	r, _ := New("raycast")
	frame := fb.New(64, 64)
	s1, err := r.Render(frame, p, &cam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Render(frame, p, &cam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Setup == 0 {
		t.Error("first render reported no setup time")
	}
	if s2.Setup > s1.Setup/2 {
		t.Errorf("cached setup %v not much cheaper than first build %v", s2.Setup, s1.Setup)
	}
	// Different dataset invalidates the cache.
	p2 := testCloud(5000)
	s3, err := r.Render(frame, p2, &cam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Setup <= s2.Setup {
		t.Log("note: rebuild setup not larger than cache hit (timing noise tolerated)")
	}
}

func TestGeometryVsRaycastAgreeOnCoverage(t *testing.T) {
	// The two isosurface pipelines must show roughly the same silhouette:
	// covered-pixel counts within 40% of each other.
	g := testGrid(32)
	cam := camera.ForBounds(g.Bounds())
	opt := Options{IsoValue: 0.12}
	va, _ := New("vtk-iso")
	rb, _ := New("ray-iso")
	f1 := fb.New(128, 128)
	f2 := fb.New(128, 128)
	if _, err := va.Render(f1, g, &cam, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Render(f2, g, &cam, opt); err != nil {
		t.Fatal(err)
	}
	c1, c2 := float64(f1.CoveredPixels()), float64(f2.CoveredPixels())
	if c1 == 0 || c2 == 0 {
		t.Fatalf("coverage: vtk=%v ray=%v", c1, c2)
	}
	ratio := c1 / c2
	if ratio < 0.6 || ratio > 1.67 {
		t.Errorf("pipeline silhouettes diverge: vtk=%v ray=%v", c1, c2)
	}
}

func TestSliceAlgorithmsAgree(t *testing.T) {
	g := testGrid(24)
	cam := camera.ForBounds(g.Bounds())
	opt := Options{
		SlicePoint:  g.Bounds().Center(),
		SliceNormal: vec.New(0, 1, 0),
	}
	vs, _ := New("vtk-slice")
	rs, _ := New("ray-slice")
	f1 := fb.New(96, 96)
	f2 := fb.New(96, 96)
	if _, err := vs.Render(f1, g, &cam, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Render(f2, g, &cam, opt); err != nil {
		t.Fatal(err)
	}
	rmse, err := fb.RMSE(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	// The two pipelines draw the same plane with the same colormap; they
	// differ only by interpolation and shading details.
	if rmse > 0.25 {
		t.Errorf("slice pipelines diverge: RMSE = %v", rmse)
	}
}

func TestDefaultSlicePlane(t *testing.T) {
	g := testGrid(16)
	cam := camera.ForBounds(g.Bounds())
	r, _ := New("ray-slice")
	frame := fb.New(64, 64)
	// No plane specified: defaults to center, +Z normal.
	if _, err := r.Render(frame, g, &cam, Options{}); err != nil {
		t.Fatal(err)
	}
	if frame.CoveredPixels() == 0 {
		t.Error("default slice rendered nothing")
	}
}

func testUnstructured(n int) *data.UnstructuredGrid {
	return data.Tetrahedralize(testGrid(n))
}

func TestUnstructuredAlgorithmsRender(t *testing.T) {
	u := testUnstructured(16)
	cam := camera.ForBounds(u.Bounds())
	for _, name := range AlgorithmsFor(data.KindUnstructuredGrid) {
		r, _ := New(name)
		frame := fb.New(96, 96)
		stats, err := r.Render(frame, u, &cam, Options{IsoValue: 0.12})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if frame.CoveredPixels() < 50 {
			t.Errorf("%s covered %d pixels", name, frame.CoveredPixels())
		}
		if stats.Elements != u.Cells() {
			t.Errorf("%s elements = %d, want %d", name, stats.Elements, u.Cells())
		}
		// Wrong kind rejected.
		if _, err := r.Render(frame, testGrid(4), &cam, Options{}); err == nil {
			t.Errorf("%s accepted a structured grid", name)
		}
	}
	if len(AlgorithmsFor(data.KindUnstructuredGrid)) != 2 {
		t.Errorf("unstructured algorithms = %v", AlgorithmsFor(data.KindUnstructuredGrid))
	}
}

// The structured and unstructured isosurface renderers must agree on the
// same underlying field (the tet mesh comes from the same grid).
func TestUnstructuredMatchesStructuredImage(t *testing.T) {
	g := testGrid(20)
	u := data.Tetrahedralize(g)
	cam := camera.ForBounds(g.Bounds())
	opt := Options{IsoValue: 0.12}
	rs, _ := New("vtk-iso")
	ru, _ := New("uns-iso")
	f1 := fb.New(96, 96)
	f2 := fb.New(96, 96)
	if _, err := rs.Render(f1, g, &cam, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := ru.Render(f2, u, &cam, opt); err != nil {
		t.Fatal(err)
	}
	rmse, err := fb.RMSE(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.01 {
		t.Errorf("structured vs unstructured isosurface RMSE = %v", rmse)
	}
}

// Determinism: rendering the same scene twice — and with different
// GOMAXPROCS-driven worker splits — must produce identical frames. Bands
// and ranks partition pixels disjointly, so there is no legal source of
// nondeterminism.
func TestRenderDeterminism(t *testing.T) {
	p := testCloud(3000)
	g := testGrid(20)
	cam := camera.ForBounds(p.Bounds())
	gcam := camera.ForBounds(g.Bounds())
	for _, name := range Algorithms() {
		r1, _ := New(name)
		r2, _ := New(name)
		var ds data.Dataset
		var c *camera.Camera
		opt := Options{IsoValue: 0.12}
		switch r1.Kind() {
		case data.KindPointCloud:
			ds, c = p, &cam
		case data.KindStructuredGrid:
			ds, c = g, &gcam
		case data.KindUnstructuredGrid:
			ds, c = data.Tetrahedralize(g), &gcam
		}
		f1 := fb.New(80, 80)
		f2 := fb.New(80, 80)
		if _, err := r1.Render(f1, ds, c, opt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := r2.Render(f2, ds, c, opt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range f1.Color {
			if f1.Color[i] != f2.Color[i] {
				t.Fatalf("%s: nondeterministic at pixel %d", name, i)
			}
		}
	}
}
