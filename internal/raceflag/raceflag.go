// Package raceflag reports whether the race detector is active. The
// allocation-regression tests use it to skip exact testing.AllocsPerRun
// assertions under `go test -race`: the detector instruments allocations
// and sync.Pool behaviour, so steady-state zero-alloc guarantees hold
// only for race-free builds (which is also how production binaries run).
package raceflag

// Enabled is true when this binary was built with -race. It is a var set
// from a build-tagged init (rather than a pair of build-tagged consts) so
// tools that type-check all files together still see one declaration.
var Enabled = false
