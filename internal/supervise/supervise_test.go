package supervise

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ascr-ecx/eth/internal/journal"
)

func fastCfg(role string, restarts int) Config {
	return Config{
		Role:        role,
		MaxRestarts: restarts,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

func TestRunSucceedsFirstTry(t *testing.T) {
	s := New(fastCfg("viz", 3))
	var calls int
	if err := s.Run(context.Background(), func(context.Context) error {
		calls++
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 1 || s.Restarts() != 0 {
		t.Fatalf("calls=%d restarts=%d, want 1/0", calls, s.Restarts())
	}
}

func TestRunRestartsOnErrorThenSucceeds(t *testing.T) {
	jw := journal.New()
	cfg := fastCfg("sim", 3)
	cfg.Journal = jw
	s := New(cfg)
	var calls int
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 || s.Restarts() != 2 {
		t.Fatalf("calls=%d restarts=%d, want 3/2", calls, s.Restarts())
	}
	var restarts []journal.Event
	for _, ev := range jw.Events() {
		if ev.Type == journal.TypeRestart {
			restarts = append(restarts, ev)
		}
	}
	if len(restarts) != 2 {
		t.Fatalf("restart events = %d, want 2", len(restarts))
	}
	if !strings.Contains(restarts[0].Detail, "role=sim") ||
		!strings.Contains(restarts[0].Detail, "attempt=1/3") ||
		!strings.Contains(restarts[0].Detail, "cause=error") {
		t.Fatalf("restart detail = %q", restarts[0].Detail)
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	s := New(fastCfg("sim", 2))
	boom := errors.New("boom")
	err := s.Run(context.Background(), func(context.Context) error { return boom })
	if !errors.Is(err, ErrRestartBudget) {
		t.Fatalf("err = %v, want ErrRestartBudget", err)
	}
	if s.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2", s.Restarts())
	}
	if ExitCode(err) != ExitBudget {
		t.Fatalf("ExitCode = %d, want %d", ExitCode(err), ExitBudget)
	}
}

func TestRunRecoversPanicWithStack(t *testing.T) {
	jw := journal.New()
	cfg := fastCfg("viz", 1)
	cfg.Journal = jw
	s := New(cfg)
	var calls int
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			panic("kaboom at step 3")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	var errEv, restartEv *journal.Event
	for i, ev := range jw.Events() {
		switch ev.Type {
		case journal.TypeError:
			errEv = &jw.Events()[i]
		case journal.TypeRestart:
			restartEv = &jw.Events()[i]
		}
	}
	if errEv == nil || !strings.Contains(errEv.Err, "kaboom at step 3") ||
		!strings.Contains(errEv.Err, "goroutine") {
		t.Fatalf("panic error event missing or lacks stack: %+v", errEv)
	}
	if restartEv == nil || !strings.Contains(restartEv.Detail, "cause=panic") {
		t.Fatalf("restart event = %+v, want cause=panic", restartEv)
	}
}

func TestWatchdogStallTearsDownAndRestarts(t *testing.T) {
	var progress atomic.Int64
	var interrupted atomic.Int64
	cfg := fastCfg("viz", 1)
	cfg.Stall = 30 * time.Millisecond
	cfg.Probe = progress.Load
	cfg.Interrupt = func() { interrupted.Add(1) }
	cfg.Journal = journal.New()
	s := New(cfg)
	var calls int
	err := s.Run(context.Background(), func(ctx context.Context) error {
		calls++
		if calls == 1 {
			// First attempt hangs: no progress, only unblocked by teardown.
			<-ctx.Done()
			return fmt.Errorf("attempt torn down: %w", ctx.Err())
		}
		progress.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 2 || s.Restarts() != 1 {
		t.Fatalf("calls=%d restarts=%d, want 2/1", calls, s.Restarts())
	}
	if interrupted.Load() == 0 {
		t.Fatal("Interrupt was not invoked on stall")
	}
	var detail string
	for _, ev := range cfg.Journal.Events() {
		if ev.Type == journal.TypeRestart {
			detail = ev.Detail
		}
	}
	if !strings.Contains(detail, "cause=stall") {
		t.Fatalf("restart detail = %q, want cause=stall", detail)
	}
}

func TestWatchdogToleratesSlowProgress(t *testing.T) {
	var progress atomic.Int64
	cfg := fastCfg("viz", 0)
	cfg.Stall = 60 * time.Millisecond
	cfg.Probe = progress.Load
	s := New(cfg)
	err := s.Run(context.Background(), func(context.Context) error {
		// Advance progress well inside the stall window, for longer than
		// the window itself.
		for i := 0; i < 8; i++ {
			time.Sleep(20 * time.Millisecond)
			progress.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v (watchdog fired despite progress)", err)
	}
}

func TestShutdownDoesNotSpendBudget(t *testing.T) {
	jw := journal.New()
	cfg := fastCfg("sim", 5)
	cfg.Journal = jw
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	err := s.Run(ctx, func(tctx context.Context) error {
		calls++
		cancel()
		<-tctx.Done()
		return fmt.Errorf("drained: %w", ErrShutdown)
	})
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("err = %v, want ErrShutdown", err)
	}
	if calls != 1 || s.Restarts() != 0 {
		t.Fatalf("calls=%d restarts=%d, want 1/0 (shutdown must not restart)", calls, s.Restarts())
	}
	var sawShutdown bool
	for _, ev := range jw.Events() {
		if ev.Type == journal.TypeShutdown {
			sawShutdown = true
		}
	}
	if !sawShutdown {
		t.Fatal("no shutdown event journaled")
	}
	if ExitCode(err) != ExitShutdown {
		t.Fatalf("ExitCode = %d, want %d", ExitCode(err), ExitShutdown)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("x: %w", ErrShutdown), ExitShutdown},
		{fmt.Errorf("x: %w", ErrRestartBudget), ExitBudget},
		{context.Canceled, ExitShutdown},
		{errors.New("other"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestShutdownDrainIsNotStalled is a regression test for a watchdog
// misclassification found by the ctxguard analyzer: the watchdog loop
// never observed the run context, so a graceful shutdown whose drain
// outlasted the stall window was torn down as a stall — firing Interrupt
// and counting a spurious restart cause against a run that was already
// exiting. The watchdog must stand down once shutdown is in flight.
func TestShutdownDrainIsNotStalled(t *testing.T) {
	var progress atomic.Int64
	var interrupted atomic.Int64
	cfg := fastCfg("sim", 3)
	cfg.Stall = 30 * time.Millisecond
	cfg.Probe = progress.Load
	cfg.Interrupt = func() { interrupted.Add(1) }
	cfg.Journal = journal.New()
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	err := s.Run(ctx, func(tctx context.Context) error {
		cancel()
		// Drain for longer than the stall window without progress — a slow
		// but orderly teardown, not a hang.
		time.Sleep(4 * cfg.Stall)
		<-tctx.Done()
		return fmt.Errorf("drained: %w", ErrShutdown)
	})
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("err = %v, want ErrShutdown", err)
	}
	if errors.Is(err, ErrStalled) {
		t.Fatalf("slow drain misclassified as stall: %v", err)
	}
	if interrupted.Load() != 0 {
		t.Fatal("watchdog fired Interrupt during a graceful shutdown drain")
	}
	if s.Restarts() != 0 {
		t.Fatalf("restarts = %d, want 0", s.Restarts())
	}
}
